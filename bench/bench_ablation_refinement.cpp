// Ablation study (not a paper artifact): what each methodology stage
// contributes to the accuracy of the inferred CO graphs. Runs the §5
// pipeline on the Comcast-like ISP with one stage disabled at a time and
// reports edge precision/recall against ground truth, plus the
// single-upstream statistic each variant would have reported.
//
// Expected shape: disabling alias resolution or the p2p pass costs
// precision (stale/unnamed addresses leak wrong COs); disabling ring
// completion costs recall and inflates "single-upstream" EdgeCOs;
// disabling EdgeCO-EdgeCO removal costs precision; disabling the MPLS
// check wrecks the Charter-style MPLS region (measured separately).
#include "common.hpp"

namespace {

struct Variant {
  const char* name;
  ran::infer::CablePipelineConfig config;
};

struct Score {
  double precision = 0;
  double recall = 0;
  double single_upstream = 0;
  std::size_t edges = 0;
};

Score score(const ran::infer::CableStudy& study, const ran::topo::Isp& isp) {
  using namespace ran;
  Score out;
  std::size_t correct = 0, inferred = 0, truth = 0;
  infer::RedundancyStats red;
  for (const auto& [name, graph] : study.regions()) {
    const auto accuracy = infer::compare_with_truth(graph, isp);
    if (!accuracy) continue;
    correct += accuracy->correct_edges;
    inferred += accuracy->inferred_edges;
    truth += accuracy->true_edges;
    const auto r = infer::redundancy_of(graph);
    red.edge_cos += r.edge_cos;
    red.single_upstream += r.single_upstream;
  }
  out.precision = inferred ? static_cast<double>(correct) / inferred : 0;
  out.recall = truth ? static_cast<double>(correct) / truth : 0;
  out.single_upstream =
      red.edge_cos ? static_cast<double>(red.single_upstream) / red.edge_cos
                   : 0;
  out.edges = inferred;
  return out;
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();

  std::vector<Variant> variants;
  variants.push_back({"full pipeline", {}});
  {
    infer::CablePipelineConfig c;
    c.use_alias_resolution = false;
    variants.push_back({"- alias resolution", c});
  }
  {
    infer::CablePipelineConfig c;
    c.use_p2p_refinement = false;
    variants.push_back({"- p2p refinement", c});
  }
  {
    infer::CablePipelineConfig c;
    c.use_edge_edge_removal = false;
    variants.push_back({"- edge-edge removal", c});
  }
  {
    infer::CablePipelineConfig c;
    c.use_ring_completion = false;
    variants.push_back({"- ring completion", c});
  }

  std::cout << "=== Ablation: methodology stages on the comcast-like ISP "
               "===\n";
  net::TextTable table{{"variant", "edges", "precision", "recall",
                        "single-upstream"}};
  for (const auto& variant : variants) {
    const infer::CablePipeline pipeline{bundle->world, bundle->comcast,
                                        bundle->rdns(bundle->comcast),
                                        variant.config};
    const auto study = pipeline.run(bundle->vps);
    const auto s = score(study, bundle->world.isp(bundle->comcast));
    table.add_row({variant.name, std::to_string(s.edges),
                   net::fmt_percent(s.precision),
                   net::fmt_percent(s.recall),
                   net::fmt_percent(s.single_upstream)});
  }
  table.print(std::cout);

  // The MPLS check matters in the Charter-style midwest region.
  std::cout << "\n=== Ablation: MPLS false-link check on the charter-like "
               "midwest ===\n";
  for (const bool use_mpls : {true, false}) {
    infer::CablePipelineConfig config;
    config.use_mpls_check = use_mpls;
    const infer::CablePipeline pipeline{bundle->world, bundle->charter,
                                        bundle->rdns(bundle->charter),
                                        config};
    const auto study = pipeline.run(bundle->vps);
    const auto it = study.regions().find("midwest");
    if (it == study.regions().end()) continue;
    const auto accuracy =
        infer::compare_with_truth(it->second, bundle->world.isp(
                                                  bundle->charter));
    std::cout << (use_mpls ? "with MPLS check   : " : "without MPLS check: ")
              << "midwest precision "
              << net::fmt_percent(accuracy ? accuracy->edge_precision() : 0)
              << ", recall "
              << net::fmt_percent(accuracy ? accuracy->edge_recall() : 0)
              << ", AggCOs " << it->second.agg_cos.size() << "\n";
  }
  return 0;
}
