// Ablation study (not a paper artifact): how inference quality scales
// with vantage-point count — the quantitative version of the paper's
// §5.4/§6.1 observation that "traceroute can reveal all of the paths
// through the regional network, provided the VPs can exhaust the possible
// entries into the region".
//
// Sweeps the number of distributed VPs for the cable pipeline and the
// number of internal VPs (Ark/Atlas + hotspots) for the AT&T region, and
// prints accuracy / coverage per budget.
#include "common.hpp"

int main() {
  using namespace ran;

  std::cout << "=== VP-count sweep: cable pipeline (comcast-like) ===\n";
  {
    const auto bundle = bench::make_cable_bundle();
    net::TextTable table{{"VPs", "edges", "precision", "recall",
                          "bb entries found"}};
    for (const int count : {4, 12, 24, 47}) {
      const auto subset = std::span{bundle->vps}.first(
          static_cast<std::size_t>(count));
      const infer::CablePipeline pipeline{bundle->world, bundle->comcast,
                                          bundle->rdns(bundle->comcast)};
      const auto study = pipeline.run(subset);
      std::size_t correct = 0, inferred = 0, truth = 0, entries = 0;
      for (const auto& [name, graph] : study.regions()) {
        const auto accuracy = infer::compare_with_truth(
            graph, bundle->world.isp(bundle->comcast));
        if (!accuracy) continue;
        correct += accuracy->correct_edges;
        inferred += accuracy->inferred_edges;
        truth += accuracy->true_edges;
        entries += graph.backbone_entries.size();
      }
      table.add_row(
          {std::to_string(count), std::to_string(inferred),
           net::fmt_percent(inferred ? static_cast<double>(correct) /
                                           inferred
                                     : 0),
           net::fmt_percent(truth ? static_cast<double>(correct) / truth
                                  : 0),
           std::to_string(entries)});
    }
    table.print(std::cout);
  }

  std::cout << "\n=== internal-VP sweep: AT&T San Diego ===\n";
  {
    const auto bundle = bench::make_telco_bundle();
    const auto region = bench::telco_region_named(*bundle, "sndgca");
    const auto vantage = bench::make_att_vantage(*bundle, region);
    const infer::AttPipeline pipeline{bundle->world, bundle->att,
                                      bundle->rdns()};
    net::TextTable table{{"VPs", "EdgeCOs", "edge routers", "agg routers",
                          "distinct paths"}};
    const auto& all = vantage.with_hotspots;
    for (const std::size_t count : {std::size_t{4}, std::size_t{10},
                                    all.size()}) {
      const auto subset =
          std::span{all}.first(std::min(count, all.size()));
      const auto study = pipeline.map_region("sndgca", subset);
      const auto coverage = infer::count_distinct_paths(study.corpus());
      table.add_row({std::to_string(subset.size()),
                     std::to_string(study.edge_cos()),
                     std::to_string(study.edge_routers),
                     std::to_string(study.agg_routers),
                     std::to_string(coverage.distinct_paths)});
    }
    table.print(std::cout);
    std::cout << "(the last row adds the McTraceroute hotspots; §6.1's "
                 "coverage claim)\n";
  }
  return 0;
}
