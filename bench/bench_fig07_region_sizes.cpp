// Fig 7 reproduction: CDFs of (a) total COs per region and (b) AggCOs per
// region for the Comcast-like (28 regions) and Charter-like (6 regions)
// ISPs, from the inferred — not ground-truth — graphs.
//
// Paper shape: Charter regions contain far more COs than Comcast regions
// (medians ~130+ vs ~25) and far more AggCOs per region.
#include "common.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();
  const auto comcast = bench::run_cable_study(*bundle, bundle->comcast);
  const auto charter = bench::run_cable_study(*bundle, bundle->charter);

  std::cout << "=== Fig 7: region sizes (inferred) ===\n";
  std::cout << "regions inferred: comcast=" << comcast.regions().size()
            << " (paper: 28), charter=" << charter.regions().size()
            << " (paper: 6)\n\n";

  const auto comcast_sizes = infer::region_sizes(comcast.regions());
  const auto charter_sizes = infer::region_sizes(charter.regions());

  net::print_cdf(std::cout, "Fig 7a comcast: total COs per region",
                 net::Cdf{comcast_sizes.total_cos});
  net::print_cdf(std::cout, "Fig 7a charter: total COs per region",
                 net::Cdf{charter_sizes.total_cos});
  net::print_cdf(std::cout, "Fig 7b comcast: AggCOs per region",
                 net::Cdf{comcast_sizes.agg_cos});
  net::print_cdf(std::cout, "Fig 7b charter: AggCOs per region",
                 net::Cdf{charter_sizes.agg_cos});

  const double comcast_median = net::median(comcast_sizes.total_cos);
  const double charter_median = net::median(charter_sizes.total_cos);
  std::cout << "median COs/region: comcast=" << comcast_median
            << " charter=" << charter_median << "  (paper: charter >> comcast)"
            << (charter_median > 2 * comcast_median ? "  [shape OK]"
                                                    : "  [SHAPE MISMATCH]")
            << "\n";

  // §5.5: 7.7x as many EdgeCOs as AggCOs across both ISPs.
  double edges = 0, aggs = 0;
  for (const auto* study : {&comcast, &charter}) {
    const auto sizes = infer::region_sizes(study->regions());
    for (std::size_t i = 0; i < sizes.total_cos.size(); ++i) {
      aggs += sizes.agg_cos[i];
      edges += sizes.total_cos[i] - sizes.agg_cos[i];
    }
  }
  std::cout << "EdgeCO:AggCO ratio across both ISPs: "
            << net::fmt_double(edges / aggs, 1) << "x (paper: 7.7x)\n";
  return 0;
}
