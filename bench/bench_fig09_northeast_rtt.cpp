// Fig 9 reproduction: median RTT from the nearest US cloud region of each
// provider (AWS / Azure / Google Cloud) to the Comcast-like EdgeCOs of
// Massachusetts, Connecticut, Vermont, and New Hampshire.
//
// Paper shape: all four states sit 10-20 ms from clouds whose closest
// location is Northern Virginia; Connecticut — though geographically the
// closest — is 3.5-4 ms WORSE than Massachusetts because its regional
// network has no backbone entries of its own and reaches the Internet
// through the Boston-area AggCOs.
#include "common.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();
  const auto study = bench::run_cable_study(*bundle, bundle->comcast);

  const auto targets = infer::edge_co_targets(study);
  const auto rtts = infer::cloud_latency_campaign(
      bundle->world, bundle->clouds, targets, /*pings=*/20);

  const std::vector<std::string> states{"ct", "ma", "nh", "vt"};
  const auto medians = infer::state_medians(rtts, states);

  std::cout << "=== Fig 9: median RTT (ms) from each cloud provider to "
               "northeastern EdgeCOs ===\n";
  net::TextTable table{{"provider", "CT", "MA", "NH", "VT"}};
  for (const auto& [provider, by_state] : medians) {
    auto cell = [&](const char* st) {
      const auto it = by_state.find(st);
      return it == by_state.end() ? std::string{"-"}
                                  : net::fmt_double(it->second, 1);
    };
    table.add_row({provider, cell("ct"), cell("ma"), cell("nh"), cell("vt")});
  }
  bench::emit_table(table, "bench_fig09_northeast_rtt");

  std::cout << "\npaper shape check: CT pays a 3.5-4 ms penalty vs MA in "
               "every cloud\n";
  for (const auto& [provider, by_state] : medians) {
    if (!by_state.contains("ct") || !by_state.contains("ma")) continue;
    const double penalty = by_state.at("ct") - by_state.at("ma");
    std::cout << "  " << provider << ": CT-MA = "
              << net::fmt_double(penalty, 2) << " ms"
              << (penalty > 1.0 ? "  [shape OK]" : "  [SHAPE MISMATCH]")
              << "\n";
  }

  // The mechanism: the Connecticut region has no backbone entries, only a
  // region entry through the Boston-area AggCOs (§5.5).
  const auto it = study.regions().find("westnewengland");
  if (it != study.regions().end()) {
    std::cout << "\ninferred Connecticut entries: backbone="
              << it->second.backbone_entries.size() << " via-region="
              << it->second.region_entries.size() << " (paper: 0 backbone, "
              << "entries via the Massachusetts AggCOs)\n";
    for (const auto& [co, from] : it->second.region_entries)
      std::cout << "  enters from " << from.first << " via " << co << "\n";
  }
  return 0;
}
