// Fig 10 reproduction: CDFs of EdgeCO latency (a) from the nearest cloud
// VM and (b) from the EdgeCO's own AggCO, for both cable ISPs.
//
// Paper shape: more than 80 % of Comcast EdgeCOs and 90 % of Charter
// EdgeCOs are farther than 5 ms RTT from the nearest cloud location, yet
// more than 80 % of EdgeCOs sit within 5 ms RTT of their AggCOs — the
// §5.5/§8 argument for placing edge computing in AggCOs.
#include "common.hpp"

namespace {

void run_for(const char* label, const ran::bench::CableBundle& bundle,
             const ran::infer::CableStudy& study) {
  using namespace ran;
  const auto targets = infer::edge_co_targets(study);
  const auto rtts = infer::cloud_latency_campaign(
      bundle.world, bundle.clouds, targets, /*pings=*/10);
  std::vector<double> nearest;
  nearest.reserve(rtts.size());
  for (const auto& row : rtts) nearest.push_back(row.nearest());
  const net::Cdf cloud_cdf{std::move(nearest)};

  const auto agg_map = infer::agg_to_edge_rtts(study);
  std::vector<double> agg_rtts;
  agg_rtts.reserve(agg_map.size());
  for (const auto& [co, rtt] : agg_map) agg_rtts.push_back(rtt);
  const net::Cdf agg_cdf{std::move(agg_rtts)};

  std::cout << "--- " << label << " ---\n";
  net::print_cdf(std::cout,
                 std::string{"Fig 10a: EdgeCO RTT from nearest cloud VM ("} +
                     label + ")",
                 cloud_cdf);
  net::print_cdf(std::cout,
                 std::string{"Fig 10b: EdgeCO RTT from its AggCO ("} + label +
                     ")",
                 agg_cdf);
  const double above5_cloud = 1.0 - cloud_cdf.fraction_at_or_below(5.0);
  const double within5_agg = agg_cdf.fraction_at_or_below(5.0);
  std::cout << "EdgeCOs > 5 ms from nearest cloud : "
            << net::fmt_percent(above5_cloud) << " (paper: >80-90%)"
            << (above5_cloud > 0.7 ? "  [shape OK]" : "  [SHAPE MISMATCH]")
            << "\n";
  std::cout << "EdgeCOs <= 5 ms from their AggCO  : "
            << net::fmt_percent(within5_agg) << " (paper: >80%)"
            << (within5_agg > 0.7 ? "  [shape OK]" : "  [SHAPE MISMATCH]")
            << "\n\n";
}

}  // namespace

int main() {
  const auto bundle = ran::bench::make_cable_bundle();
  const auto comcast = ran::bench::run_cable_study(*bundle, bundle->comcast);
  const auto charter = ran::bench::run_cable_study(*bundle, bundle->charter);
  std::cout << "=== Fig 10: the edge-computing latency argument ===\n\n";
  run_for("comcast", *bundle, comcast);
  run_for("charter", *bundle, charter);
  return 0;
}
