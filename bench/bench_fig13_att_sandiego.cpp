// Fig 13 reproduction: AT&T's San Diego regional network mapped with the
// §6 methodology — lspgw bootstrap, router-prefix discovery, Direct Path
// Revelation, alias resolution, last-mile CO clustering — from Ark/Atlas
// internal VPs plus McTraceroute WiFi hotspots.
//
// Paper values: 2 backbone routers in 1 BackboneCO; 4 aggregation routers
// (each hidden by MPLS from ordinary traceroutes); 84 EdgeCO routers in
// ~42 EdgeCOs, two routers each; every edge router homed to two
// aggregation routers; backbone routers fully connected to all agg
// routers. §6.1: 23 of 58 McDonald's on AT&T WiFi; the 10 Ark/Atlas VPs
// alone revealed only half the IP paths McTraceroute exposed. Table 6:
// the region's routers live in a handful of /24s.
#include "common.hpp"

#include "netbase/strings.hpp"

#include "dnssim/rdns.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_telco_bundle();
  const auto region = bench::telco_region_named(*bundle, "sndgca");
  const auto vantage = bench::make_att_vantage(*bundle, region);

  const infer::AttPipeline pipeline{bundle->world, bundle->att,
                                    bundle->rdns()};
  std::cout << "=== §6.1: vantage points ===\n"
            << "McDonald's sites in the region: " << vantage.hotspots_total
            << " (paper: 58), on AT&T WiFi: " << vantage.hotspots_usable
            << " (paper: 23)\n";

  // Path-coverage ablation: Ark/Atlas only vs with hotspots.
  const auto study_ark = pipeline.map_region("sndgca", vantage.ark_atlas);
  const auto study = pipeline.map_region("sndgca", vantage.with_hotspots);
  const auto paths_ark = infer::count_distinct_paths(study_ark.corpus());
  const auto paths_full = infer::count_distinct_paths(study.corpus());
  std::cout << "distinct IP paths: ark/atlas only " << paths_ark.distinct_paths
            << ", with McTraceroute " << paths_full.distinct_paths
            << " => " << net::fmt_double(
                   static_cast<double>(paths_full.distinct_paths) /
                       static_cast<double>(paths_ark.distinct_paths),
                   1)
            << "x (paper: ~2x)\n\n";

  std::cout << "=== Fig 13a: inferred router-level topology ===\n"
            << "backbone routers : " << study.backbone_routers
            << " (paper: 2)\n"
            << "agg routers      : " << study.agg_routers << " (paper: 4)\n"
            << "edge routers     : " << study.edge_routers
            << " (paper: ~84)\n"
            << "backbone<->agg links: " << study.backbone_agg_links
            << " (paper: 8, full mesh)\n";
  int dual_homed = 0;
  for (const auto& [router, links] : study.agg_links_per_edge_router)
    dual_homed += links >= 2;
  std::cout << "edge routers homed to two agg routers: " << dual_homed << "/"
            << study.agg_links_per_edge_router.size() << "\n\n";

  std::cout << "=== Fig 13b: inferred CO-level topology ===\n"
            << "region tag (backbone rDNS): " << study.backbone_tag
            << " (paper: sd2ca)\n"
            << "BackboneCOs : 1 (single tandem; paper: 1)\n"
            << "EdgeCOs     : " << study.edge_cos() << " (paper: ~42)\n";
  std::map<int, int> router_histogram;
  for (const int n : study.routers_per_edge_co) ++router_histogram[n];
  std::cout << "routers per EdgeCO: ";
  for (const auto& [n, count] : router_histogram)
    std::cout << count << "x" << n << " ";
  std::cout << "(paper: two each)\n\n";

  std::cout << "=== Table 6: router prefixes discovered ===\n";
  for (const auto s24 : study.router_slash24s)
    std::cout << "  " << net::IPv4Address{s24 << 8}.to_string() << "/24\n";
  std::cout << "(" << study.router_slash24s.size()
            << " prefixes; paper: 7 for San Diego)\n\n";

  std::cout << "=== §4/37-region check ===\n";
  const auto regions = pipeline.discover_lspgws();
  std::cout << "regions identified in lightspeed rDNS: " << regions.size()
            << " (paper: 37)\n\n";

  // §6.3's aggregation-density contrast: AT&T inherits the dense CO grid
  // of the copper telephone plant, while the cable provider's HFC plant
  // needs far fewer EdgeCOs for the same metro.
  std::cout << "=== §6.3: CO density, AT&T vs Charter (San Diego metro) "
               "===\n";
  {
    sim::World cable_world{bench::kSeed + 63};
    net::Rng rng{bench::kSeed + 63};
    auto profile = topo::charter_profile();
    profile.regions = {profile.regions.front()};  // socal only
    auto gen_rng = rng.fork();
    cable_world.add_isp(topo::generate_cable(profile, gen_rng));
    auto vp_rng = rng.fork();
    const auto vps = vp::add_distributed_vps(cable_world, 24, vp_rng);
    cable_world.finalize();
    auto dns_rng = rng.fork();
    const auto live = dns::make_rdns(cable_world.isp(0), {}, dns_rng);
    const auto snapshot = dns::age_snapshot(live, 0.01, dns_rng);
    const infer::CablePipeline cable_pipeline{cable_world, 0,
                                              {&live, &snapshot}};
    const auto socal = cable_pipeline.run(vps);
    // The paper's comparison is per SUB-REGION: the EdgeCOs served by the
    // San Diego AggCO pair (not every CO in the metro's radius).
    const net::GeoPoint sd{32.72, -117.16};
    std::set<std::string> sd_subregion;
    for (const auto& [name, graph] : socal.regions()) {
      for (const auto& agg : graph.agg_cos) {
        const auto fields = net::split(agg, '|');
        if (fields.size() < 2) continue;
        const auto* city = net::find_city(fields[0], fields[1]);
        if (city == nullptr ||
            net::haversine_km(city->location, sd) > 40.0)
          continue;
        const auto it = graph.out.find(agg);
        if (it == graph.out.end()) continue;
        for (const auto& [child, count] : it->second)
          if (!graph.agg_cos.contains(child)) sd_subregion.insert(child);
      }
    }
    const int charter_sd = static_cast<int>(sd_subregion.size());
    std::cout << "charter socal EdgeCOs in the SD metro: " << charter_sd
              << " (paper: 16)\n"
              << "at&t San Diego EdgeCOs               : "
              << study.edge_cos() << " (paper: 42, i.e. 2.6x denser)\n"
              << ((study.edge_cos() > charter_sd + 5)
                      ? "[shape OK]: AT&T is denser (copper loop-length "
                        "legacy)\n"
                      : "[SHAPE MISMATCH]\n")
              << "(our CA gazetteer is San-Diego-suburb heavy by design "
                 "for the AT&T study, so the cable side lands above the "
                 "paper's 16)\n";
  }
  return 0;
}
