// Fig 14 reproduction: ShipTraceroute's energy budget on a smartphone.
//
// Paper values: a round of traceroutes to the 266 AT&T-neighbour targets
// costs 8.6 mAh with stock hop-serial scamper versus 5.3 mAh with the
// parallel-hop modification (38 % less); waking from airplane mode costs
// 1.4-2.6 mAh; 55 minutes asleep costs 14.5 mAh connected vs 9 mAh in
// airplane mode; the modified prober sustains hourly rounds for ~12 days
// on one charge, ~4 days longer than stock.
#include "common.hpp"

#include "probe/energy.hpp"

int main() {
  using namespace ran;
  const probe::RoundProfile round;  // 266 destinations (App. D)
  const probe::RadioModel radio;

  const double old_mah = probe::round_energy_mah(round, false);
  const double new_mah = probe::round_energy_mah(round, true);
  std::cout << "=== Fig 14: scamper round energy ===\n"
            << "destinations per round : " << round.destinations
            << " (paper: 266)\n"
            << "stock (hop-serial)     : " << net::fmt_double(old_mah, 1)
            << " mAh over "
            << net::fmt_double(probe::round_duration_s(round, false) / 60, 1)
            << " min (paper: 8.6 mAh, ~7 min)\n"
            << "parallel-hop           : " << net::fmt_double(new_mah, 1)
            << " mAh over "
            << net::fmt_double(probe::round_duration_s(round, true) / 60, 1)
            << " min (paper: 5.3 mAh)\n"
            << "reduction              : "
            << net::fmt_percent(1.0 - new_mah / old_mah)
            << " (paper: 38%)\n"
            << "wake from airplane     : "
            << net::fmt_double(radio.wake_mah_min, 1) << "-"
            << net::fmt_double(radio.wake_mah_max, 1)
            << " mAh (paper: 1.4-2.6)\n"
            << "sleep 55 min           : "
            << net::fmt_double(radio.sleep_connected_mah_per_55min, 1)
            << " mAh connected vs "
            << net::fmt_double(radio.sleep_airplane_mah_per_55min, 1)
            << " mAh airplane (paper: 14.5 vs 9)\n\n";

  const double days_new = probe::battery_days(4500, round, true, true);
  const double days_old = probe::battery_days(4500, round, false, false);
  std::cout << "battery life at hourly rounds (4500 mAh):\n"
            << "  ShipTraceroute (parallel + airplane sleep): "
            << net::fmt_double(days_new, 1) << " days (paper: ~12)\n"
            << "  stock (serial + connected sleep)          : "
            << net::fmt_double(days_old, 1) << " days\n"
            << "  gain: " << net::fmt_double(days_new - days_old, 1)
            << " days (paper: ~4)\n\n";

  std::cout << "cumulative energy over one wake->probe cycle (Fig 14 curve):\n";
  for (const bool parallel : {false, true}) {
    const auto timeline = probe::energy_timeline(round, parallel, 1.0);
    std::cout << (parallel ? "  new code: " : "  old code: ");
    for (std::size_t i = 0; i < timeline.size();
         i += std::max<std::size_t>(1, timeline.size() / 8)) {
      std::cout << "t=" << net::fmt_double(timeline[i].t_min, 1) << "min/"
                << net::fmt_double(timeline[i].cumulative_mah, 1) << "mAh  ";
    }
    std::cout << "(final "
              << net::fmt_double(timeline.back().cumulative_mah, 1)
              << " mAh)\n";
  }
  return 0;
}
