// Fig 15 reproduction: the ShipTraceroute campaign footprint.
//
// Paper values: shipping to 12 destinations traversed 40 states; hourly
// rounds succeeded 1592/1948 (82 %) on AT&T, 1720/2054 (84 %) on Verizon,
// and 872/1153 (75 %) on T-Mobile, signal permitting.
#include "common.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();

  std::cout << "=== Fig 15: shipping campaign coverage ===\n";
  net::TextTable table{{"carrier", "rounds attempted", "succeeded", "rate",
                        "paper rate"}};
  struct Row {
    const char* name;
    const vp::ShipCampaignResult* result;
    const char* paper;
  };
  const Row rows[] = {
      {"at&t", &bundle->att_corpus, "82% (1592/1948)"},
      {"verizon", &bundle->vz_corpus, "84% (1720/2054)"},
      {"t-mobile", &bundle->tmo_corpus, "75% (872/1153)"},
  };
  for (const auto& row : rows) {
    table.add_row({row.name, std::to_string(row.result->rounds_attempted),
                   std::to_string(row.result->rounds_succeeded),
                   net::fmt_percent(
                       static_cast<double>(row.result->rounds_succeeded) /
                       row.result->rounds_attempted),
                   row.paper});
  }
  bench::emit_table(table, "bench_fig15_shipping");

  const auto& att = bundle->att_corpus;
  std::cout << "\nshipment destinations : " << att.destinations.size()
            << " (paper: 12)\n"
            << "states traversed      : " << att.states_visited.size()
            << " (paper: 40)\n  ";
  for (const auto& state : att.states_visited) std::cout << state << " ";
  std::cout << "\n\nenergy used per device: "
            << net::fmt_double(att.energy_used_mah, 0)
            << " mAh over the campaign (battery "
            << net::fmt_double(att.battery_mah, 0)
            << " mAh; recharged at each destination)\n";
  return 0;
}
