// Fig 16 reproduction: the IPv6 address bit fields each mobile carrier
// uses to encode topology, recovered purely from the geo-tagged
// ShipTraceroute corpus (bit flip statistics across airplane-mode cycles
// and across the country).
//
// Paper findings:
//   AT&T     — user bits 32-39 = region; infra (2600:300::/32) bits 32-47
//              = region, ~48-52 = packet gateway.
//   Verizon  — user bits 24-31 = backbone region, 32-39 = EdgeCO,
//              40-43 = PGW; infra (2001:4888::/32) bits 64-75 track the
//              EdgeCO.
//   T-Mobile — user bits 32-39 = PGW (no geographic code); infra
//              (fd00:976a::/32) bits 32-47 = PGW.
#include "common.hpp"

#include "netbase/strings.hpp"

namespace {

void print_study(const ran::infer::MobileStudy& study) {
  using namespace ran;
  std::cout << "--- " << study.carrier << " ---\n";
  std::cout << "user prefix : " << study.user_prefix.to_string() << "\n";
  net::TextTable table{{"side", "field", "bits", "distinct values"}};
  for (const auto& field : study.user_fields) {
    if (field.role == "prefix") continue;
    table.add_row({"user", field.role,
                   net::format("%d-%d", field.first_bit,
                               field.first_bit + field.width - 1),
                   std::to_string(field.distinct_values)});
  }
  for (const auto& field : study.infra_fields) {
    if (field.role == "prefix") continue;
    table.add_row({"infra", field.role,
                   net::format("%d-%d", field.first_bit,
                               field.first_bit + field.width - 1),
                   std::to_string(field.distinct_values)});
  }
  table.print(std::cout);
  std::cout << "infra prefix: " << study.infra_prefix.to_string() << "\n\n";
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();

  const auto att = infer::analyze_mobile(bundle->att_corpus, "at&t-mobile",
                                         bundle->att.asn());
  const auto vz = infer::analyze_mobile(bundle->vz_corpus, "verizon",
                                        bundle->verizon.asn());
  const auto tmo = infer::analyze_mobile(bundle->tmo_corpus, "t-mobile",
                                         bundle->tmobile.asn());

  std::cout << "=== Fig 16: inferred IPv6 bit fields ===\n\n";
  print_study(att);
  print_study(vz);
  print_study(tmo);

  std::cout << "paper shape checks:\n";
  auto check = [](const char* what, bool ok) {
    std::cout << "  " << what << (ok ? "  [shape OK]" : "  [SHAPE MISMATCH]")
              << "\n";
  };
  check("at&t user has a region field and no pgw field",
        att.user_field("region") != nullptr &&
            att.user_field("pgw") == nullptr);
  check("at&t infra has region and pgw fields",
        att.infra_field("region") != nullptr &&
            att.infra_field("pgw") != nullptr);
  check("verizon user has region, edgeco, and pgw fields",
        vz.user_field("region") != nullptr &&
            vz.user_field("edgeco") != nullptr &&
            vz.user_field("pgw") != nullptr);
  check("t-mobile user has a pgw field and no geographic field",
        tmo.user_field("pgw") != nullptr &&
            tmo.user_field("region") == nullptr);
  check("t-mobile infra prefix is a ULA (fd00::/8 space)",
        tmo.infra_prefix.network().bits(0, 8) == 0xfd);
  return 0;
}
