// Fig 17 reproduction: the three carriers' inferred packet-core
// architectures.
//
// Paper findings: AT&T concentrates each huge region in a single mobile
// EdgeCO with 2-6 PGWs behind its own backbone; Verizon spreads many
// EdgeCOs under shared BackboneCO regions, all behind its own backbone
// (alter.net); T-Mobile distributes EdgeCOs that cycle between several
// third-party backbone providers (Zayo, Lumen, ...).
#include "common.hpp"

namespace {

void summarize(const char* name, const ran::infer::MobileStudy& study,
               const ran::vp::ShipCampaignResult& corpus) {
  using namespace ran;
  (void)corpus;
  double pgw_sum = 0;
  std::size_t multi_backbone = 0;
  std::set<int> providers;
  for (const auto& region : study.regions) {
    pgw_sum += static_cast<double>(region.pgw_values.size());
    multi_backbone += region.backbone_asns.size() >= 2;
    providers.insert(region.backbone_asns.begin(),
                     region.backbone_asns.end());
  }
  std::cout << "--- " << name << " ---\n"
            << "  regions (mobile EdgeCO groups) : " << study.regions.size()
            << "\n"
            << "  mean PGWs per region           : "
            << net::fmt_double(pgw_sum / study.regions.size(), 1) << "\n"
            << "  distinct backbone providers    : " << providers.size()
            << "\n"
            << "  regions on multiple backbones  : " << multi_backbone
            << "/" << study.regions.size() << "\n\n";
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();
  const auto att = infer::analyze_mobile(bundle->att_corpus, "at&t-mobile",
                                         bundle->att.asn());
  const auto vz = infer::analyze_mobile(bundle->vz_corpus, "verizon",
                                        bundle->verizon.asn());
  const auto tmo = infer::analyze_mobile(bundle->tmo_corpus, "t-mobile",
                                         bundle->tmobile.asn());

  std::cout << "=== Fig 17: inferred mobile architectures ===\n\n";
  summarize("at&t (centralized: few huge regions, single backbone)", att,
            bundle->att_corpus);
  summarize("verizon (regionalized: many EdgeCOs, single backbone)", vz,
            bundle->vz_corpus);
  summarize("t-mobile (distributed: EdgeCOs on several backbones)", tmo,
            bundle->tmo_corpus);

  std::cout << "paper shape checks:\n";
  auto check = [](const char* what, bool ok) {
    std::cout << "  " << what << (ok ? "  [shape OK]" : "  [SHAPE MISMATCH]")
              << "\n";
  };
  check("at&t has far fewer regions than verizon",
        att.regions.size() * 2 <= vz.regions.size());
  auto single_backbone = [](const infer::MobileStudy& study) {
    std::set<int> providers;
    for (const auto& region : study.regions)
      providers.insert(region.backbone_asns.begin(),
                       region.backbone_asns.end());
    return providers.size() == 1;
  };
  check("at&t and verizon ride a single backbone each",
        single_backbone(att) && single_backbone(vz));
  std::size_t tmo_multi = 0;
  for (const auto& region : tmo.regions)
    tmo_multi += region.backbone_asns.size() >= 2;
  check("most t-mobile regions cycle across multiple backbones",
        2 * tmo_multi >= tmo.regions.size());
  return 0;
}
