// Fig 18 reproduction: minimum RTT from the shipped device to a server in
// San Diego, per carrier, grouped by the inferred serving region.
//
// Paper shape: AT&T's few vast regions force circuitous paths — Montana /
// North Dakota samples exceed 140 ms; Verizon's denser EdgeCOs keep
// latency lower; T-Mobile is comparable to Verizon but shows an anomaly
// near the Florida/Louisiana gulf coast, where the device attached to a
// distant South Carolina EdgeCO.
#include "common.hpp"

namespace {

using ran::net::fmt_double;

void report(const char* name, const ran::infer::MobileStudy& study,
            const ran::vp::ShipCampaignResult& corpus) {
  using namespace ran;
  // Per-region latency summary (the colored patches of Fig 18).
  std::cout << "--- " << name << " ---\n";
  net::TextTable table{{"region", "samples", "min RTT", "median RTT",
                        "max RTT"}};
  std::map<int, std::vector<double>> rtts;
  for (std::size_t i = 0; i < corpus.samples.size(); ++i) {
    const int region = study.region_of_sample[i];
    if (region >= 0)
      rtts[region].push_back(corpus.samples[i].min_rtt_to_server_ms);
  }
  for (const auto& [region, values] : rtts) {
    const auto& info = study.regions[static_cast<std::size_t>(region)];
    table.add_row({info.label, std::to_string(values.size()),
                   fmt_double(net::min_value(values), 0),
                   fmt_double(net::median(values), 0),
                   fmt_double(net::max_value(values), 0)});
  }
  table.print(std::cout);
  std::vector<double> all;
  for (const auto& sample : corpus.samples)
    all.push_back(sample.min_rtt_to_server_ms);
  std::cout << "overall median " << fmt_double(net::median(all), 0)
            << " ms, p90 " << fmt_double(net::percentile(all, 90), 0)
            << " ms, max " << fmt_double(net::max_value(all), 0) << " ms\n\n";
}

double median_in_box(const ran::vp::ShipCampaignResult& corpus, double lat_lo,
                     double lat_hi, double lon_lo, double lon_hi) {
  std::vector<double> values;
  for (const auto& sample : corpus.samples) {
    const auto& p = sample.true_location;
    if (p.lat < lat_lo || p.lat > lat_hi || p.lon < lon_lo || p.lon > lon_hi)
      continue;
    values.push_back(sample.min_rtt_to_server_ms);
  }
  return values.empty() ? -1 : ran::net::median(values);
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();
  const auto att = infer::analyze_mobile(bundle->att_corpus, "at&t-mobile",
                                         bundle->att.asn());
  const auto vz = infer::analyze_mobile(bundle->vz_corpus, "verizon",
                                        bundle->verizon.asn());
  const auto tmo = infer::analyze_mobile(bundle->tmo_corpus, "t-mobile",
                                         bundle->tmobile.asn());

  std::cout << "=== Fig 18: min RTT to the San Diego server ===\n\n";
  report("at&t", att, bundle->att_corpus);
  report("verizon", vz, bundle->vz_corpus);
  report("t-mobile", tmo, bundle->tmo_corpus);

  std::cout << "paper shape checks:\n";
  auto check = [](const char* what, bool ok) {
    std::cout << "  " << what << (ok ? "  [shape OK]" : "  [SHAPE MISMATCH]")
              << "\n";
  };
  // Montana/North Dakota latency on AT&T vs Verizon.
  const double att_mt = median_in_box(bundle->att_corpus, 44, 49, -116, -96);
  const double vz_mt = median_in_box(bundle->vz_corpus, 44, 49, -116, -96);
  std::cout << "  northern-plains medians: at&t " << fmt_double(att_mt, 0)
            << " ms vs verizon " << fmt_double(vz_mt, 0) << " ms\n";
  check("at&t northern plains pay more than verizon",
        att_mt > vz_mt + 10.0);

  // The T-Mobile gulf-coast anomaly: higher latency than Verizon there.
  const double tmo_gulf =
      median_in_box(bundle->tmo_corpus, 29, 31.8, -92, -84);
  const double vz_gulf = median_in_box(bundle->vz_corpus, 29, 31.8, -92, -84);
  std::cout << "  gulf-coast medians: t-mobile " << fmt_double(tmo_gulf, 0)
            << " ms vs verizon " << fmt_double(vz_gulf, 0) << " ms\n";
  check("t-mobile gulf coast shows the South-Carolina-attachment anomaly",
        tmo_gulf > vz_gulf + 8.0);
  return 0;
}
