// Performance microbenchmarks (google-benchmark) for the simulator and
// inference kernels — not a paper artifact, but the scalability story a
// downstream user cares about: traceroute throughput, alias resolution,
// CO mapping, graph refinement, and the mobile bit-field analysis.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "obs/trace.hpp"
#include "probe/campaign.hpp"

namespace {

using namespace ran;

const bench::CableBundle& cable_bundle() {
  static const auto bundle = bench::make_cable_bundle();
  return *bundle;
}

const infer::CableStudy& comcast_study() {
  static const auto study =
      bench::run_cable_study(cable_bundle(), cable_bundle().comcast);
  return study;
}

void BM_Traceroute(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const probe::TracerouteEngine engine{bundle.world, {}};
  const auto targets = infer::edge_co_targets(comcast_study());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& vp = bundle.vps[i % bundle.vps.size()];
    const auto& target = targets[i % targets.size()];
    benchmark::DoNotOptimize(engine.run(vp.source(), target.addr, vp.name));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Traceroute);

void BM_CampaignParallel(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  std::vector<probe::ProbeTask> tasks;
  for (const auto& vp : bundle.vps)
    for (std::size_t t = 0; t < std::min<std::size_t>(targets.size(), 256); ++t)
      tasks.push_back({vp.source(), vp.name, targets[t].addr, 0});
  const probe::CampaignRunner runner{
      bundle.world, {.parallelism = static_cast<int>(state.range(0))}};
  for (auto _ : state) benchmark::DoNotOptimize(runner.run(tasks));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The tracer cost contract: Arg(0) runs the campaign with tracing
// disabled (null tracer — the instrumented hot loop is one pointer
// test), Arg(1) with a live tracer collecting shard spans + sampled
// probe instants. The disabled path must stay within noise (<2%) of
// BM_CampaignParallel/4.
void BM_CampaignTraced(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  std::vector<probe::ProbeTask> tasks;
  for (const auto& vp : bundle.vps)
    for (std::size_t t = 0; t < std::min<std::size_t>(targets.size(), 256);
         ++t)
      tasks.push_back({vp.source(), vp.name, targets[t].addr, 0});
  obs::Registry metrics;
  obs::Tracer tracer;
  if (state.range(0) != 0) metrics.set_tracer(&tracer);
  probe::CampaignConfig config;
  config.parallelism = 4;
  config.metrics = &metrics;
  const probe::CampaignRunner runner{bundle.world, config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(tasks));
    // Drop the events between iterations so the timed region measures
    // recording cost, not an ever-growing export buffer.
    if (state.range(0) != 0) tracer.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_CampaignTraced)->Arg(0)->Arg(1)->UseRealTime();

void BM_Ping(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  const auto vp = bundle.clouds.front().source();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bundle.world.ping(vp, targets[i % targets.size()].addr));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ping);

void BM_MidarResolve(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  std::vector<net::IPv4Address> addrs;
  const auto& isp = bundle.world.isp(bundle.comcast);
  for (const auto& iface : isp.ifaces()) {
    if (iface.addr.is_unspecified() || iface.p2p_len == 0) continue;
    addrs.push_back(iface.addr);
    if (addrs.size() >= static_cast<std::size_t>(state.range(0))) break;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(probe::midar_resolve(bundle.world, addrs));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_MidarResolve)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CoMapping(benchmark::State& state) {
  const auto& study = comcast_study();
  const auto& bundle = cable_bundle();
  const auto pairs = infer::consecutive_pairs(study.corpus(), true);
  std::vector<net::IPv4Address> addrs;
  for (const auto& [addr, annotation] : study.mapping.map.entries())
    addrs.push_back(addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::build_co_mapping(
        addrs, pairs, study.p2p_len, bundle.rdns(bundle.comcast),
        study.clusters()));
  }
}
BENCHMARK(BM_CoMapping);

void BM_BuildAndPrune(benchmark::State& state) {
  const auto& study = comcast_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        infer::build_and_prune(study.corpus(), study.mapping.map, {}));
  }
}
BENCHMARK(BM_BuildAndPrune);

void BM_RefineRegions(benchmark::State& state) {
  const auto& study = comcast_study();
  for (auto _ : state) {
    auto regions = study.adjacency.regions;  // copy: refinement mutates
    benchmark::DoNotOptimize(
        infer::refine_regions(regions, study.corpus(), study.mapping.map));
  }
}
BENCHMARK(BM_RefineRegions);

void BM_MobileAnalyze(benchmark::State& state) {
  static const auto bundle = bench::make_mobile_bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::analyze_mobile(
        bundle->vz_corpus, "verizon", bundle->verizon.asn()));
  }
}
BENCHMARK(BM_MobileAnalyze);

void BM_GenerateComcast(benchmark::State& state) {
  for (auto _ : state) {
    net::Rng rng{42};
    benchmark::DoNotOptimize(
        topo::generate_cable(topo::comcast_profile(), rng));
  }
}
BENCHMARK(BM_GenerateComcast);

}  // namespace

// Expanded BENCHMARK_MAIN so the JSON export carries build provenance
// (git sha, compiler, build type, thread count) in its context block.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ran::bench::add_benchmark_run_metadata();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
