// Performance microbenchmarks (google-benchmark) for the simulator and
// inference kernels — not a paper artifact, but the scalability story a
// downstream user cares about: traceroute throughput, alias resolution,
// CO mapping, graph refinement, and the mobile bit-field analysis.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/corpus_index.hpp"
#include "core/csr_graph.hpp"
#include "netbase/strings.hpp"
#include "obs/trace.hpp"
#include "probe/campaign.hpp"

namespace {

using namespace ran;

const bench::CableBundle& cable_bundle() {
  static const auto bundle = bench::make_cable_bundle();
  return *bundle;
}

const infer::CableStudy& comcast_study() {
  static const auto study =
      bench::run_cable_study(cable_bundle(), cable_bundle().comcast);
  return study;
}

void BM_Traceroute(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const probe::TracerouteEngine engine{bundle.world, {}};
  const auto targets = infer::edge_co_targets(comcast_study());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& vp = bundle.vps[i % bundle.vps.size()];
    const auto& target = targets[i % targets.size()];
    benchmark::DoNotOptimize(engine.run(vp.source(), target.addr, vp.name));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Traceroute);

void BM_CampaignParallel(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  std::vector<probe::ProbeTask> tasks;
  for (const auto& vp : bundle.vps)
    for (std::size_t t = 0; t < std::min<std::size_t>(targets.size(), 256); ++t)
      tasks.push_back({vp.source(), vp.name, targets[t].addr, 0});
  const probe::CampaignRunner runner{
      bundle.world, {.parallelism = static_cast<int>(state.range(0))}};
  for (auto _ : state) benchmark::DoNotOptimize(runner.run(tasks));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The tracer cost contract: Arg(0) runs the campaign with tracing
// disabled (null tracer — the instrumented hot loop is one pointer
// test), Arg(1) with a live tracer collecting shard spans + sampled
// probe instants. The disabled path must stay within noise (<2%) of
// BM_CampaignParallel/4.
void BM_CampaignTraced(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  std::vector<probe::ProbeTask> tasks;
  for (const auto& vp : bundle.vps)
    for (std::size_t t = 0; t < std::min<std::size_t>(targets.size(), 256);
         ++t)
      tasks.push_back({vp.source(), vp.name, targets[t].addr, 0});
  obs::Registry metrics;
  obs::Tracer tracer;
  if (state.range(0) != 0) metrics.set_tracer(&tracer);
  probe::CampaignConfig config;
  config.parallelism = 4;
  config.metrics = &metrics;
  const probe::CampaignRunner runner{bundle.world, config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(tasks));
    // Drop the events between iterations so the timed region measures
    // recording cost, not an ever-growing export buffer.
    if (state.range(0) != 0) tracer.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_CampaignTraced)->Arg(0)->Arg(1)->UseRealTime();

void BM_Ping(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  const auto targets = infer::edge_co_targets(comcast_study());
  const auto vp = bundle.clouds.front().source();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bundle.world.ping(vp, targets[i % targets.size()].addr));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ping);

void BM_MidarResolve(benchmark::State& state) {
  const auto& bundle = cable_bundle();
  std::vector<net::IPv4Address> addrs;
  const auto& isp = bundle.world.isp(bundle.comcast);
  for (const auto& iface : isp.ifaces()) {
    if (iface.addr.is_unspecified() || iface.p2p_len == 0) continue;
    addrs.push_back(iface.addr);
    if (addrs.size() >= static_cast<std::size_t>(state.range(0))) break;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(probe::midar_resolve(bundle.world, addrs));
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(addrs.size()));
}
BENCHMARK(BM_MidarResolve)->Arg(256)->Arg(1024)->Arg(4096);

// The three phase-2 kernels measure the CorpusIndex-based APIs the
// pipelines run in production (the map-based originals remain as the
// equivalence reference). The index itself is built once, untimed —
// BM_CorpusIndex tracks that scan separately.
const infer::CorpusIndex& comcast_index() {
  static const auto index = infer::CorpusIndex::build(comcast_study().corpus());
  return index;
}

void BM_CorpusIndex(benchmark::State& state) {
  const auto& study = comcast_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::CorpusIndex::build(study.corpus()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(comcast_index().hop_count()));
}
BENCHMARK(BM_CorpusIndex);

void BM_CoMapping(benchmark::State& state) {
  const auto& study = comcast_study();
  const auto& bundle = cable_bundle();
  std::vector<infer::WeightedAdjacency> pairs;
  for (const auto& record : comcast_index().pairs())
    if (record.transit_count > 0)
      pairs.push_back({record.a, record.b,
                       static_cast<int>(record.transit_count),
                       record.last_transit_seq});
  std::vector<net::IPv4Address> addrs;
  for (const auto& [addr, annotation] : study.mapping.map.entries())
    addrs.push_back(addr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::build_co_mapping(
        addrs, pairs, study.p2p_len, bundle.rdns(bundle.comcast),
        study.clusters()));
  }
}
BENCHMARK(BM_CoMapping);

void BM_BuildAndPrune(benchmark::State& state) {
  const auto& study = comcast_study();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::build_and_prune(
        study.corpus(), comcast_index(), study.mapping.map, {}));
  }
}
BENCHMARK(BM_BuildAndPrune);

void BM_RefineRegions(benchmark::State& state) {
  const auto& study = comcast_study();
  for (auto _ : state) {
    auto regions = study.adjacency.regions;  // copy: refinement mutates
    benchmark::DoNotOptimize(infer::refine_regions(
        regions, comcast_index(), study.mapping.map));
  }
}
BENCHMARK(BM_RefineRegions);

// Facade parents_of is a full-edge scan per CO; the reverse-CSR rows
// answer the same question with one row lookup. Same work in both: every
// CO of every inferred region.
void BM_ParentsOfFacade(benchmark::State& state) {
  const auto& regions = comcast_study().adjacency.regions;
  std::int64_t cos = 0;
  for (const auto& [name, graph] : regions)
    cos += static_cast<std::int64_t>(graph.cos.size());
  for (auto _ : state) {
    std::size_t parents = 0;
    for (const auto& [name, graph] : regions)
      for (const auto& co : graph.cos) parents += graph.parents_of(co).size();
    benchmark::DoNotOptimize(parents);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cos);
}
BENCHMARK(BM_ParentsOfFacade);

void BM_ParentsOfCsr(benchmark::State& state) {
  const auto& regions = comcast_study().adjacency.regions;
  std::vector<infer::CsrGraph> graphs;
  std::int64_t cos = 0;
  for (const auto& [name, graph] : regions) {
    graphs.push_back(infer::CsrGraph::from_regional(graph));
    cos += static_cast<std::int64_t>(graph.cos.size());
  }
  for (auto _ : state) {
    std::size_t parents = 0;
    for (const auto& csr : graphs)
      for (std::uint32_t id = 0; id < csr.node_count(); ++id)
        parents += csr.parents_of(id).size();
    benchmark::DoNotOptimize(parents);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cos);
}
BENCHMARK(BM_ParentsOfCsr);

/// Synthetic prune workload: `regions` independent stars of `cos` COs
/// each, three observations per adjacency (enough to survive the
/// single-observation prune). Scaling is reported as CO adjacencies
/// classified per second.
struct SyntheticPrune {
  infer::TraceCorpus corpus;
  infer::CoMap map;
};

SyntheticPrune make_synthetic_prune(int regions, int cos) {
  SyntheticPrune out;
  for (int r = 0; r < regions; ++r) {
    const auto region = net::format("r%03d", r);
    auto addr_of = [&](int co) {
      return net::IPv4Address{(10u << 24) |
                              (static_cast<std::uint32_t>(r) << 12) |
                              static_cast<std::uint32_t>(co)};
    };
    for (int c = 0; c < cos; ++c) {
      infer::CoAnnotation annotation;
      annotation.co_key = net::format("%s|co%04d", region.c_str(), c);
      annotation.region = region;
      annotation.from_rdns = true;
      out.map.set(addr_of(c), annotation);
    }
    for (int c = 1; c < cos; ++c) {
      for (int occurrence = 0; occurrence < 3; ++occurrence) {
        probe::TraceRecord record;
        record.vp = "bench";
        sim::Hop agg;
        agg.ttl = 1;
        agg.addr = addr_of(0);
        sim::Hop edge;
        edge.ttl = 2;
        edge.addr = addr_of(c);
        record.hops = {agg, edge};
        record.dst = edge.addr;
        record.reached = false;  // keep the pair a transit observation
        out.corpus.add(std::move(record));
      }
    }
  }
  return out;
}

void BM_PruneScaling(benchmark::State& state) {
  const auto synthetic =
      make_synthetic_prune(static_cast<int>(state.range(0)),
                           static_cast<int>(state.range(1)));
  const auto index = infer::CorpusIndex::build(synthetic.corpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::build_and_prune(
        synthetic.corpus, index, synthetic.map, {}));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(index.pairs().size()));
}
BENCHMARK(BM_PruneScaling)
    ->ArgNames({"regions", "cos"})
    ->Args({4, 64})
    ->Args({16, 64})
    ->Args({64, 64})
    ->Args({16, 16})
    ->Args({16, 256});

void BM_MobileAnalyze(benchmark::State& state) {
  static const auto bundle = bench::make_mobile_bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::analyze_mobile(
        bundle->vz_corpus, "verizon", bundle->verizon.asn()));
  }
}
BENCHMARK(BM_MobileAnalyze);

void BM_GenerateComcast(benchmark::State& state) {
  for (auto _ : state) {
    net::Rng rng{42};
    benchmark::DoNotOptimize(
        topo::generate_cable(topo::comcast_profile(), rng));
  }
}
BENCHMARK(BM_GenerateComcast);

}  // namespace

// Expanded BENCHMARK_MAIN so the JSON export carries build provenance
// (git sha, compiler, build type, thread count) in its context block.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ran::bench::add_benchmark_run_metadata();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
