// Serving-layer load generator: closed-loop clients hammering the
// QueryEngine in-process (the transport-independent hot path — what the
// daemon's workers run per request line), plus the cost of atomically
// republishing a snapshot generation under that load. The read-mostly
// target is >= 1M queries/s aggregated across client threads on the
// baseline host; BM_ServeQuery / BM_ServeRepublish gate in CI via
// `manifest_diff --bench` against BENCH_perf_kernels.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/query_engine.hpp"
#include "core/snapshot.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace ran;

/// A serving-sized synthetic topology: 12 regions of ~90 COs, two
/// aggregation tiers, measured RTTs on a third of the COs — large
/// enough that path queries walk real indexes, small enough that the
/// fixture builds in milliseconds.
std::map<std::string, infer::RegionalGraph> serve_regions() {
  std::map<std::string, infer::RegionalGraph> regions;
  char name[32];
  for (int r = 0; r < 12; ++r) {
    std::snprintf(name, sizeof(name), "region%02d", r);
    infer::RegionalGraph& graph = regions[name];
    graph.region = name;
    for (int agg = 0; agg < 3; ++agg) {
      char agg_key[32];
      std::snprintf(agg_key, sizeof(agg_key), "r%02d.agg%d", r, agg);
      graph.agg_cos.insert(agg_key);
      for (int e = 0; e < 28; ++e) {
        char edge_key[32];
        std::snprintf(edge_key, sizeof(edge_key), "r%02d.e%d.%02d", r, agg,
                      e);
        graph.add_edge(agg_key, edge_key, 3 + e % 5);
        // A few cross-links so paths are longer than one hop.
        if (e % 7 == 0 && agg > 0) {
          char other[32];
          std::snprintf(other, sizeof(other), "r%02d.agg%d", r, agg - 1);
          graph.add_edge(other, edge_key, 1);
        }
      }
    }
  }
  return regions;
}

std::shared_ptr<const infer::TopologySnapshot> serve_snapshot(
    std::uint64_t generation) {
  static const auto regions = serve_regions();
  std::map<std::string, double> rtts;
  int i = 0;
  for (const auto& [name, graph] : regions)
    for (const auto& co : graph.cos)
      if (++i % 3 == 0) rtts[co] = 2.0 + (i % 40) * 0.25;
  return std::make_shared<const infer::TopologySnapshot>(
      infer::TopologySnapshot::build("bench", regions, nullptr, generation,
                                     rtts));
}

/// The read-mostly request mix: mostly path/latency lookups with pings
/// and the occasional region-wide stats/resilience scan.
const std::vector<std::string>& request_mix() {
  static const std::vector<std::string> requests = [] {
    std::vector<std::string> out;
    for (int r = 0; r < 12; ++r)
      for (int q = 0; q < 8; ++q) {
        char line[160];
        std::snprintf(
            line, sizeof(line),
            R"({"op":"%s","region":"region%02d","from":"r%02d.e0.%02d","to":"r%02d.e2.%02d"})",
            q % 2 == 0 ? "path" : "latency", r, r, q * 3 % 28, r,
            (q * 5 + 1) % 28);
        out.emplace_back(line);
        if (q == 0) out.emplace_back(R"({"op":"ping"})");
        if (q == 1) {
          std::snprintf(line, sizeof(line),
                        R"({"op":"resilience","region":"region%02d"})", r);
          out.emplace_back(line);
        }
      }
    out.emplace_back(R"({"op":"stats"})");
    return out;
  }();
  return requests;
}

/// Closed-loop clients: every benchmark thread is one client issuing
/// the mixed read workload back to back. items/s is aggregate queries/s.
void BM_ServeQuery(benchmark::State& state) {
  static infer::SnapshotHub hub;
  if (state.thread_index() == 0) hub.publish(serve_snapshot(1));
  const infer::QueryEngine engine{hub};
  const auto& requests = request_mix();
  std::size_t i =
      static_cast<std::size_t>(state.thread_index()) * 7 % requests.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.answer(requests[i]));
    if (++i == requests.size()) i = 0;  // no div on the hot loop
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeQuery)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

/// The same closed-loop mix with the full telemetry stack attached —
/// registry counters, per-op latency histograms, and a flight recorder
/// capturing every request. The delta against BM_ServeQuery is the
/// whole per-request observability bill (rid stamp, two clock reads,
/// ring write under the thread-local lock). Informational: the CI gate
/// pins the uninstrumented BM_ServeQuery, which this path never touches.
void BM_ServeQueryTelemetry(benchmark::State& state) {
  static infer::SnapshotHub hub;
  static obs::Registry metrics;
  static obs::FlightRecorder recorder;
  if (state.thread_index() == 0) hub.publish(serve_snapshot(1));
  infer::QueryEngineConfig config;
  config.metrics = &metrics;
  config.recorder = &recorder;
  const infer::QueryEngine engine{hub, config};
  const auto& requests = request_mix();
  std::size_t i =
      static_cast<std::size_t>(state.thread_index()) * 7 % requests.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.answer(requests[i]));
    if (++i == requests.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeQueryTelemetry)->Threads(1)->Threads(4)->UseRealTime();

/// Republish under read load: thread 0 publishes alternating prebuilt
/// generations while the remaining threads keep querying — the
/// SnapshotHub swap cost plus the shared_ptr churn it causes.
void BM_ServeRepublish(benchmark::State& state) {
  static infer::SnapshotHub hub;
  static std::shared_ptr<const infer::TopologySnapshot> generations[2];
  if (state.thread_index() == 0) {
    generations[0] = serve_snapshot(1);
    generations[1] = serve_snapshot(2);
    hub.publish(generations[0]);
  }
  if (state.thread_index() == 0) {
    std::size_t i = 0;
    for (auto _ : state) {
      hub.publish(generations[i & 1]);
      ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  } else {
    const infer::QueryEngine engine{hub};
    const auto& requests = request_mix();
    std::size_t i =
        static_cast<std::size_t>(state.thread_index()) * 13 % requests.size();
    for (auto _ : state) {
      benchmark::DoNotOptimize(engine.answer(requests[i]));
      if (++i == requests.size()) i = 0;
    }
  }
}
BENCHMARK(BM_ServeRepublish)->Threads(4)->UseRealTime();

}  // namespace

// Expanded BENCHMARK_MAIN so the JSON export carries build provenance
// (git sha, compiler, build type, thread count) in its context block.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ran::bench::add_benchmark_run_metadata();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
