// Table 1 reproduction: the aggregation archetype of every inferred region
// (single AggCO / two AggCOs / multi-level), plus the §5.3 redundancy
// statistics (single-upstream EdgeCO fractions, backbone entry counts).
//
// Paper values: Comcast 5 / 11 / 12, Charter 0 / 0 / 6; 11.4 % of Comcast
// and 37.7 % of Charter EdgeCOs have a single upstream CO; 57 backbone
// entry points across the Comcast regions, all but three regions with two
// or more.
#include "common.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();
  const auto comcast = bench::run_cable_study(*bundle, bundle->comcast);
  const auto charter = bench::run_cable_study(*bundle, bundle->charter);

  std::cout << "=== Table 1: regional aggregation types (inferred) ===\n";
  net::TextTable table{{"aggregation type", "comcast", "paper", "charter",
                        "paper"}};
  auto count_types = [](const infer::CableStudy& study) {
    std::map<infer::AggregationType, int> counts;
    for (const auto& [name, graph] : study.regions())
      ++counts[infer::classify_region(graph)];
    return counts;
  };
  auto comcast_types = count_types(comcast);
  auto charter_types = count_types(charter);
  table.add_row({"Single AggCO (Fig 8a)",
                 std::to_string(
                     comcast_types[infer::AggregationType::kSingleAgg]),
                 "5",
                 std::to_string(
                     charter_types[infer::AggregationType::kSingleAgg]),
                 "0"});
  table.add_row({"Two AggCOs (Fig 8b)",
                 std::to_string(comcast_types[infer::AggregationType::kTwoAggs]),
                 "11",
                 std::to_string(charter_types[infer::AggregationType::kTwoAggs]),
                 "0"});
  table.add_row(
      {"Multi-level (Fig 8c)",
       std::to_string(comcast_types[infer::AggregationType::kMultiLevel]),
       "12",
       std::to_string(charter_types[infer::AggregationType::kMultiLevel]),
       "6"});
  bench::emit_table(table, "bench_table1_aggregation_types");

  std::cout << "\n=== §5.3 redundancy ===\n";
  auto redundancy = [](const infer::CableStudy& study) {
    infer::RedundancyStats total;
    for (const auto& [name, graph] : study.regions()) {
      const auto r = infer::redundancy_of(graph);
      total.edge_cos += r.edge_cos;
      total.single_upstream += r.single_upstream;
      total.single_via_edge += r.single_via_edge;
      total.agg_cos += r.agg_cos;
    }
    return total;
  };
  const auto rc = redundancy(comcast);
  const auto rh = redundancy(charter);
  std::cout << "single-upstream EdgeCOs: comcast "
            << net::fmt_percent(
                   static_cast<double>(rc.single_upstream) / rc.edge_cos)
            << " (paper: 11.4%), charter "
            << net::fmt_percent(
                   static_cast<double>(rh.single_upstream) / rh.edge_cos)
            << " (paper: 37.7%)\n";
  std::cout << "...of those, hanging off another EdgeCO: comcast "
            << net::fmt_percent(rc.single_upstream == 0
                                    ? 0.0
                                    : static_cast<double>(rc.single_via_edge) /
                                          rc.single_upstream)
            << " (paper: 33.7%), charter "
            << net::fmt_percent(rh.single_upstream == 0
                                    ? 0.0
                                    : static_cast<double>(rh.single_via_edge) /
                                          rh.single_upstream)
            << " (paper: 42.2%)\n";

  int entries = 0;
  int regions_with_two = 0;
  int access_regions = 0;
  for (const auto& [name, graph] : comcast.regions()) {
    ++access_regions;
    entries += static_cast<int>(graph.backbone_entries.size());
    regions_with_two += graph.backbone_entries.size() >= 2;
  }
  std::cout << "comcast backbone entry points observed: " << entries
            << " (paper: 57); regions with >=2 entries: " << regions_with_two
            << "/" << access_regions << " (paper: all but 3)\n";

  // §5.1: directly targeting CO interfaces multiplies the interconnections
  // seen relative to the /24 sweep (paper: 5.3x Comcast, 2.6x Charter).
  auto gain = [](const infer::CableStudy& s) {
    return s.co_adjs_sweep_only == 0
               ? 0.0
               : static_cast<double>(s.co_adjs_total) /
                     static_cast<double>(s.co_adjs_sweep_only);
  };
  std::cout << "CO interconnection gain from rDNS targeting: comcast "
            << net::fmt_double(gain(comcast), 1) << "x (paper: 5.3x), charter "
            << net::fmt_double(gain(charter), 1) << "x (paper: 2.6x)\n";
  return 0;
}
