// Table 2 reproduction: latency from a Los Angeles Google Cloud VM to the
// EdgeCOs of AT&T's San Diego region, measured with TTL-limited echoes
// toward customer addresses (the §6.3 trick: external pings to AT&T
// infrastructure are filtered, but the penultimate hop of a customer-bound
// probe answers with time-exceeded).
//
// Paper values: buckets 3-4 ms (5 EdgeCOs), 4-5 (19), 5-6 (7), 6-7 (2),
// 9-10 (2); average 4.3 ms; the two distant EdgeCOs serve customers in
// Calexico and El Centro, ~2x the regional average.
#include "common.hpp"

#include "netbase/strings.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_telco_bundle();
  const infer::AttPipeline pipeline{bundle->world, bundle->att,
                                    bundle->rdns()};

  // The LA Google Cloud VM (gcp/us-west2).
  const vp::ExternalVp* la = nullptr;
  for (const auto& vm : bundle->clouds)
    if (vm.name == "gcp/us-west2") la = &vm;
  RAN_EXPECTS(la != nullptr);

  // Customer-address hints: in the paper these come from M-Lab NDT tests
  // geolocated to San Diego/Imperial County by NetAcuity. The synthetic
  // equivalent samples subscriber addresses of the region's last miles
  // (documented substitution; see DESIGN.md).
  const auto region = bench::telco_region_named(*bundle, "sndgca");
  const auto& isp = bundle->world.isp(bundle->att);
  std::vector<net::IPv4Address> customers;
  for (const auto& lm : isp.last_miles()) {
    if (isp.co(lm.edge_co).region != region) continue;
    for (std::uint64_t i = 1; i <= 4; ++i)
      customers.push_back(lm.customer_pool.host(i * 7));
  }

  const auto latencies = pipeline.edge_co_latency(
      la->source(), customers, "sd2ca", /*pings=*/20);

  std::map<int, int> buckets;
  std::vector<double> values;
  for (const auto& [addr, rtt] : latencies) {
    ++buckets[static_cast<int>(rtt)];
    values.push_back(rtt);
  }
  std::cout << "=== Table 2: AT&T San Diego EdgeCO latency from LA Google "
               "Cloud ===\n"
            << "(paper: 3-4ms:5, 4-5ms:19, 5-6ms:7, 6-7ms:2, 9-10ms:2; "
               "avg 4.3ms)\n\n";
  net::TextTable table{{"latency bucket", "EdgeCO addresses"}};
  for (const auto& [bucket, count] : buckets)
    table.add_row({net::format("%d-%dms", bucket, bucket + 1),
                   std::to_string(count)});
  bench::emit_table(table, "bench_table2_att_latency");

  if (!values.empty()) {
    const double avg = net::mean(values);
    const double worst = net::max_value(values);
    std::cout << "\nEdgeCO devices measured : " << values.size() << "\n"
              << "average RTT             : " << net::fmt_double(avg, 1)
              << " ms (paper: 4.3 ms)\n"
              << "worst EdgeCO            : " << net::fmt_double(worst, 1)
              << " ms => " << net::fmt_double(worst / avg, 1)
              << "x the average (paper: the Imperial-valley EdgeCOs at "
                 ">2x)\n";
    std::cout << ((worst > 1.7 * avg) ? "[shape OK]" : "[SHAPE MISMATCH]")
              << ": a distant-EdgeCO latency tail exists\n";
  }
  return 0;
}
