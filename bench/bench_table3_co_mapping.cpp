// Table 3 reproduction: CO-mapping refinement accounting for both cable
// ISPs — initial rDNS mappings, then the share changed/added/removed by
// alias resolution and by point-to-point subnet analysis.
//
// Paper values (Comcast / Charter): initial 204,744 / 54,079 mappings;
// alias resolution changed 2.35 % / 1.10 %, added 2.76 % / 0.80 %,
// removed 0.86 % / 0.20 %; point-to-point subnets changed 0.04 % / 0.05 %
// and added 1.27 % / 0.48 %. Absolute counts scale with the synthetic
// deployment; the percentages are the comparable shape.
#include "common.hpp"

namespace {

void print_column(const char* name, const ran::infer::CoMappingStats& s) {
  using ran::net::fmt_percent;
  const auto pct = [&](std::size_t n, std::size_t base) {
    return base == 0 ? std::string{"n/a"}
                     : fmt_percent(static_cast<double>(n) / base, 2);
  };
  std::cout << name << "\n"
            << "  initial mappings        : " << s.initial << "\n"
            << "  alias resolution changed: " << pct(s.alias_changed, s.initial)
            << "\n"
            << "  alias resolution added  : " << pct(s.alias_added, s.initial)
            << "\n"
            << "  alias resolution removed: " << pct(s.alias_removed, s.initial)
            << "\n"
            << "  after alias resolution  : " << s.after_alias << "\n"
            << "  p2p subnets changed     : "
            << pct(s.p2p_changed, s.after_alias) << "\n"
            << "  p2p subnets added       : " << pct(s.p2p_added, s.after_alias)
            << "\n"
            << "  final                   : " << s.final_count << "\n\n";
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();
  const auto comcast = bench::run_cable_study(*bundle, bundle->comcast);
  const auto charter = bench::run_cable_study(*bundle, bundle->charter);

  std::cout << "=== Table 3: mapping IP addresses to COs ===\n"
            << "(paper: comcast 204,744 initial; alias chg 2.35% add 2.76% "
               "rm 0.86%; p2p chg 0.04% add 1.27%)\n"
            << "(paper: charter  54,079 initial; alias chg 1.10% add 0.80% "
               "rm 0.20%; p2p chg 0.05% add 0.48%)\n\n";
  print_column("comcast-like", comcast.mapping.stats);
  print_column("charter-like", charter.mapping.stats);

  std::cout << "detected point-to-point subnet lengths: comcast /"
            << comcast.p2p_len << " (paper: /30), charter /"
            << charter.p2p_len << " (paper: /31)\n";
  return 0;
}
