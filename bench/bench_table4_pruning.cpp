// Table 4 reproduction: unique IP and CO adjacencies pruned per class
// (backbone separation, cross-region stale rDNS, single-observation
// anomalies) for both cable ISPs.
//
// Paper values (Comcast): 95,671 IP adjs / 4,777 CO adjs initial;
// backbone 26.07 % / 7.39 %, cross-region 4.45 % / 18.78 %, single
// 0.06 % / 1.15 %. (Charter): 64,667 / 3,994; 11.67 % / 5.02 %;
// 1.78 % / 2.37 %; 0.03 % / 0.43 %.
#include "common.hpp"

namespace {

void print_column(const char* name, const ran::infer::PruningStats& s) {
  using ran::net::fmt_percent;
  const auto pct = [](std::size_t n, std::size_t base) {
    return base == 0 ? std::string{"n/a"}
                     : ran::net::fmt_percent(static_cast<double>(n) / base, 2);
  };
  std::cout << name << "\n"
            << "                IP adjs      CO adjs\n"
            << "  initial       " << s.ip_adj_initial << "        "
            << s.co_adj_initial << "\n"
            << "  mpls          " << pct(s.ip_adj_mpls, s.ip_adj_initial)
            << "        " << pct(s.co_adj_mpls, s.co_adj_initial) << "\n"
            << "  backbone      " << pct(s.ip_adj_backbone, s.ip_adj_initial)
            << "        " << pct(s.co_adj_backbone, s.co_adj_initial) << "\n"
            << "  cross-region  "
            << pct(s.ip_adj_cross_region, s.ip_adj_initial) << "        "
            << pct(s.co_adj_cross_region, s.co_adj_initial) << "\n"
            << "  single        " << pct(s.ip_adj_single, s.ip_adj_initial)
            << "        " << pct(s.co_adj_single, s.co_adj_initial)
            << "\n\n";
}

}  // namespace

int main() {
  using namespace ran;
  const auto bundle = bench::make_cable_bundle();
  const auto comcast = bench::run_cable_study(*bundle, bundle->comcast);
  const auto charter = bench::run_cable_study(*bundle, bundle->charter);

  std::cout << "=== Table 4: pruned adjacencies ===\n"
            << "(paper comcast: IP 95,671 / CO 4,777; backbone 26.07%/7.39%; "
               "cross-region 4.45%/18.78%; single 0.06%/1.15%)\n"
            << "(paper charter: IP 64,667 / CO 3,994; backbone 11.67%/5.02%; "
               "cross-region 1.78%/2.37%; single 0.03%/0.43%)\n\n";
  print_column("comcast-like", comcast.adjacency.stats);
  print_column("charter-like", charter.adjacency.stats);

  // The MPLS heuristic matters in exactly one Charter region (§5.1, B.2).
  std::cout << "MPLS-pruned CO adjacencies: comcast "
            << comcast.adjacency.stats.co_adj_mpls << " (paper: none), charter "
            << charter.adjacency.stats.co_adj_mpls
            << " (paper: one region affected throughout)\n";
  return 0;
}
