// Table 7 reproduction: AT&T mobile regions and their inferred packet
// gateway counts, recovered from the region bits of infrastructure
// addresses and the PGW bits cycling across airplane-mode re-attachments.
//
// Paper values: 11 regions (BTH CNC VNN ALN HST CHC AKR ALP NYC ART GSV)
// with 2/5/5/5/5/5/3/6/4/3/3 MTSOs (PGWs).
#include "common.hpp"

#include "netbase/strings.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();
  const auto study = infer::analyze_mobile(bundle->att_corpus, "at&t-mobile",
                                           bundle->att.asn());

  std::cout << "=== Table 7: inferred AT&T mobile regions ===\n";
  net::TextTable table{{"region bits", "samples", "PGWs inferred",
                        "centroid"}};
  int total_pgws = 0;
  for (const auto& region : study.regions) {
    total_pgws += static_cast<int>(region.pgw_values.size());
    table.add_row({region.label, std::to_string(region.samples),
                   std::to_string(region.pgw_values.size()),
                   net::format("%.1f,%.1f", region.centroid.lat,
                               region.centroid.lon)});
  }
  bench::emit_table(table, "bench_table7_att_pgws");
  std::cout << "\nregions inferred : " << study.regions.size()
            << " (paper: 11)\n"
            << "total PGWs       : " << total_pgws
            << " (ground truth: 46; paper reports 2-6 per region)\n";

  // Validate against the generator's hidden plan.
  int exact = 0;
  for (const auto& region : study.regions) {
    for (const auto& mr : bundle->att.mobile_regions()) {
      if (mr.user_code != region.geo_value) continue;  // user region byte
      exact += region.pgw_values.size() == mr.pgws.size();
    }
  }
  std::cout << "regions whose PGW count matches ground truth exactly: "
            << exact << "/" << study.regions.size() << "\n";
  return 0;
}
