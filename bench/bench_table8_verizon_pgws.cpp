// Table 8 reproduction: Verizon wireless regions grouped under their
// backbone regions, with inferred PGW counts — from the user-address
// backbone/EdgeCO/PGW bit fields and the alter.net backbone-hop rDNS.
//
// Paper values: ~28 wireless regions under 14 backbone regions, 1-4 PGWs
// each (Table 8 lists e.g. VISTCA with 3, CHRXNC with 4).
#include "common.hpp"

#include "netbase/strings.hpp"

int main() {
  using namespace ran;
  const auto bundle = bench::make_mobile_bundle();
  const auto study = infer::analyze_mobile(bundle->vz_corpus, "verizon",
                                           bundle->verizon.asn());

  // Backbone-region labels from the alter.net hop rDNS per region.
  std::map<int, std::string> backbone_of_region;
  for (std::size_t i = 0; i < bundle->vz_corpus.samples.size(); ++i) {
    const int region = study.region_of_sample[i];
    if (region < 0 || backbone_of_region.contains(region)) continue;
    for (const auto& hop : bundle->vz_corpus.samples[i].hops)
      if (!hop.rdns.empty()) backbone_of_region[region] = hop.rdns;
  }

  std::cout << "=== Table 8: inferred Verizon wireless regions ===\n";
  net::TextTable table{{"region bits", "backbone (alter.net)", "samples",
                        "PGWs"}};
  std::set<std::string> backbones;
  int total_pgws = 0;
  for (std::size_t r = 0; r < study.regions.size(); ++r) {
    const auto& region = study.regions[r];
    const auto it = backbone_of_region.find(static_cast<int>(r));
    const std::string backbone =
        it == backbone_of_region.end() ? "-" : it->second;
    backbones.insert(backbone);
    total_pgws += static_cast<int>(region.pgw_values.size());
    table.add_row({region.label, backbone, std::to_string(region.samples),
                   std::to_string(region.pgw_values.size())});
  }
  table.print(std::cout);
  std::cout << "\nwireless regions inferred : " << study.regions.size()
            << " (paper: ~28-32)\n"
            << "backbone regions          : " << backbones.size()
            << " (paper: 14)\n"
            << "PGWs per region           : 1-4 expected; total "
            << total_pgws << " (ground truth: 53)\n";

  // Ground-truth check: inferred (backbone, edge) codes vs the plan.
  int matched = 0;
  for (const auto& region : study.regions) {
    for (const auto& mr : bundle->verizon.mobile_regions()) {
      const auto truth_key =
          (mr.backbone_code << 8) | mr.region_code;  // region field packs both
      if (truth_key != region.geo_value) continue;
      matched += region.pgw_values.size() == mr.pgws.size();
    }
  }
  std::cout << "regions whose PGW count matches ground truth exactly: "
            << matched << "/" << study.regions.size() << "\n";
  return 0;
}
