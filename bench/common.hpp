// Shared campaign setup for the bench harnesses: builds the measurement
// world with the paper's ISPs, vantage points, and rDNS sources, and runs
// the §5 studies. Every bench prints one paper table/figure from these
// results; see EXPERIMENTS.md for the paper-vs-measured record.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "core/att_pipeline.hpp"
#include "core/cable_pipeline.hpp"
#include "core/eval.hpp"
#include "core/latency_study.hpp"
#include "core/mobile_pipeline.hpp"
#include "dnssim/rdns.hpp"
#include "netbase/report.hpp"
#include "simnet/mobile_core.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/mctraceroute.hpp"
#include "vantage/ship.hpp"
#include "vantage/vps.hpp"

namespace ran::bench {

inline constexpr std::uint64_t kSeed = 20211102;  // IMC'21 opening day

#ifndef RAN_GIT_SHA
#define RAN_GIT_SHA "unknown"
#endif
#ifndef RAN_BUILD_TYPE
#define RAN_BUILD_TYPE "unspecified"
#endif

/// Stamps the google-benchmark context block (and therefore every
/// `--benchmark_format=json` export) with the run's provenance, so a
/// checked-in BENCH_*.json says exactly which build produced it and a
/// `manifest_diff --bench` report can be traced back to two commits.
/// Call from main() before RunSpecifiedBenchmarks().
inline void add_benchmark_run_metadata() {
  benchmark::AddCustomContext("git_sha", RAN_GIT_SHA);
  benchmark::AddCustomContext("build_type", RAN_BUILD_TYPE);
  // __VERSION__ alone is just a number on GCC ("12.2.0"); prepend the
  // vendor so two exports from different toolchains stay attributable.
#if defined(__clang__)
  benchmark::AddCustomContext("compiler", "clang " __VERSION__);
#elif defined(__GNUC__)
  benchmark::AddCustomContext("compiler", "gcc " __VERSION__);
#else
  benchmark::AddCustomContext("compiler", __VERSION__);
#endif
  benchmark::AddCustomContext(
      "hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));
}

/// Prints `table` and mirrors it to `<name>_table.json` in the working
/// directory, through the same JSON path the run manifests use.
inline void emit_table(const net::TextTable& table, const std::string& name) {
  table.print(std::cout);
  if (std::ofstream os{name + "_table.json"}; os)
    os << table.to_json() << "\n";
}

/// The §5 world: Comcast-like and Charter-like ISPs, 47 distributed VPs,
/// and a VM in every US cloud region.
struct CableBundle {
  sim::World world{kSeed};
  int comcast = -1;
  int charter = -1;
  std::vector<vp::ExternalVp> vps;
  std::vector<vp::ExternalVp> clouds;
  dns::RdnsDb live_comcast, snap_comcast;
  dns::RdnsDb live_charter, snap_charter;

  [[nodiscard]] infer::RdnsSources rdns(int isp) const {
    if (isp == comcast) return {&live_comcast, &snap_comcast};
    return {&live_charter, &snap_charter};
  }
};

inline std::unique_ptr<CableBundle> make_cable_bundle() {
  auto bundle = std::make_unique<CableBundle>();
  net::Rng rng{kSeed};
  auto comcast_rng = rng.fork();
  auto charter_rng = rng.fork();
  bundle->comcast = bundle->world.add_isp(
      topo::generate_cable(topo::comcast_profile(), comcast_rng));
  bundle->charter = bundle->world.add_isp(
      topo::generate_cable(topo::charter_profile(), charter_rng));
  auto vp_rng = rng.fork();
  bundle->vps = vp::add_distributed_vps(bundle->world, 47, vp_rng);
  bundle->clouds = vp::add_cloud_vms(bundle->world);
  bundle->world.finalize();

  // rDNS quality differs by operator: the paper found far more outdated
  // names at Comcast (location-tag naming) than at Charter (building
  // CLLIs); see Table 4's cross-region shares.
  auto dns_rng = rng.fork();
  dns::RdnsNoise comcast_noise;
  comcast_noise.missing_prob = 0.08;
  comcast_noise.stale_prob = 0.05;
  comcast_noise.stale_cross_region_frac = 0.40;
  dns::RdnsNoise charter_noise;
  charter_noise.missing_prob = 0.06;
  charter_noise.stale_prob = 0.025;
  charter_noise.stale_cross_region_frac = 0.15;
  bundle->live_comcast = dns::make_rdns(bundle->world.isp(bundle->comcast),
                                        comcast_noise, dns_rng);
  bundle->snap_comcast = dns::age_snapshot(bundle->live_comcast, 0.02,
                                           dns_rng);
  bundle->live_charter = dns::make_rdns(bundle->world.isp(bundle->charter),
                                        charter_noise, dns_rng);
  bundle->snap_charter = dns::age_snapshot(bundle->live_charter, 0.01,
                                           dns_rng);
  return bundle;
}

inline infer::CableStudy run_cable_study(const CableBundle& bundle,
                                         int isp) {
  const infer::CablePipeline pipeline{bundle.world, isp, bundle.rdns(isp)};
  return pipeline.run(bundle.vps);
}

/// The §6 world: the AT&T-style telco plus cloud VMs.
struct TelcoBundle {
  sim::World world{kSeed + 6};
  int att = -1;
  std::vector<vp::ExternalVp> clouds;
  dns::RdnsDb live, snapshot;

  [[nodiscard]] infer::RdnsSources rdns() const { return {&live, &snapshot}; }
};

inline std::unique_ptr<TelcoBundle> make_telco_bundle() {
  auto bundle = std::make_unique<TelcoBundle>();
  net::Rng rng{kSeed + 6};
  auto gen_rng = rng.fork();
  bundle->att = bundle->world.add_isp(
      topo::generate_telco(topo::att_profile(), gen_rng));
  bundle->clouds = vp::add_cloud_vms(bundle->world);
  bundle->world.finalize();
  auto dns_rng = rng.fork();
  bundle->live = dns::make_rdns(bundle->world.isp(bundle->att), {}, dns_rng);
  bundle->snapshot = dns::age_snapshot(bundle->live, 0.02, dns_rng);
  return bundle;
}

/// Internal VPs (Ark/Atlas style) plus McTraceroute hotspots for a region.
struct AttVantage {
  std::vector<std::pair<sim::ProbeSource, std::string>> ark_atlas;
  std::vector<std::pair<sim::ProbeSource, std::string>> with_hotspots;
  int hotspots_total = 0;
  int hotspots_usable = 0;
};

inline AttVantage make_att_vantage(const TelcoBundle& bundle,
                                   topo::RegionId region) {
  AttVantage out;
  net::Rng rng{kSeed + 61};
  const auto internal = vp::pick_internal_vps(bundle.world, bundle.att,
                                              region, 8, rng);
  for (const auto& vp : internal)
    out.ark_atlas.emplace_back(
        bundle.world.vantage_behind(vp.isp, vp.last_mile), vp.name);
  // Plus a couple of Ark probes in a *nearby* region (the paper's
  // inter-region probing, Fig 20b): those traces cross the BackboneCO.
  const auto& isp = bundle.world.isp(bundle.att);
  topo::RegionId nearby = topo::kInvalidId;
  double best_km = 1e18;
  const auto& home = isp.co(isp.region(region).cos.front()).location;
  for (const auto& other : isp.regions()) {
    if (other.id == region || other.cos.empty()) continue;
    const double km =
        net::haversine_km(home, isp.co(other.cos.front()).location);
    if (km < best_km) {
      best_km = km;
      nearby = other.id;
    }
  }
  for (const auto& vp :
       vp::pick_internal_vps(bundle.world, bundle.att, nearby, 2, rng))
    out.ark_atlas.emplace_back(
        bundle.world.vantage_behind(vp.isp, vp.last_mile), vp.name);
  out.with_hotspots = out.ark_atlas;

  const vp::HotspotConfig hotspot_config;
  const auto hotspots = vp::enumerate_hotspots(bundle.world, bundle.att,
                                               region, hotspot_config, rng);
  out.hotspots_total = static_cast<int>(hotspots.size());
  for (const auto& spot : hotspots) {
    if (!spot.on_target_isp) continue;
    ++out.hotspots_usable;
    out.with_hotspots.emplace_back(
        vp::hotspot_source(bundle.world, bundle.att, spot, hotspot_config),
        spot.name);
  }
  return out;
}

/// Ground-truth region id for a telco metro tag (deployment knowledge:
/// "our Ark VPs are in San Diego").
inline topo::RegionId telco_region_named(const TelcoBundle& bundle,
                                         const std::string& name) {
  for (const auto& region : bundle.world.isp(bundle.att).regions())
    if (region.name == name) return region.id;
  return topo::kInvalidId;
}

/// The §7 mobile corpora: one shipping campaign per carrier.
struct MobileBundle {
  topo::Isp att{"", 0, topo::IspKind::kMobile};
  topo::Isp verizon{"", 0, topo::IspKind::kMobile};
  topo::Isp tmobile{"", 0, topo::IspKind::kMobile};
  std::unique_ptr<sim::MobileCore> att_core, vz_core, tmo_core;
  vp::ShipCampaignResult att_corpus, vz_corpus, tmo_corpus;
  net::GeoPoint server{32.72, -117.16};  // CAIDA, San Diego
};

inline std::unique_ptr<MobileBundle> make_mobile_bundle() {
  auto bundle = std::make_unique<MobileBundle>();
  net::Rng rng{kSeed + 7};
  auto att_rng = rng.fork();
  auto vz_rng = rng.fork();
  auto tmo_rng = rng.fork();
  bundle->att = topo::generate_mobile(topo::att_mobile_profile(), att_rng);
  bundle->verizon = topo::generate_mobile(topo::verizon_profile(), vz_rng);
  bundle->tmobile = topo::generate_mobile(topo::tmobile_profile(), tmo_rng);
  bundle->att_core =
      std::make_unique<sim::MobileCore>(bundle->att, kSeed + 71);
  bundle->vz_core =
      std::make_unique<sim::MobileCore>(bundle->verizon, kSeed + 72);
  bundle->tmo_core =
      std::make_unique<sim::MobileCore>(bundle->tmobile, kSeed + 73);

  vp::ShipConfig att_cfg;
  att_cfg.signal_quality = 0.89;
  vp::ShipConfig vz_cfg;
  vz_cfg.signal_quality = 0.91;
  vp::ShipConfig tmo_cfg;
  tmo_cfg.signal_quality = 0.82;
  auto c1 = rng.fork();
  auto c2 = rng.fork();
  auto c3 = rng.fork();
  bundle->att_corpus =
      vp::run_ship_campaign(*bundle->att_core, att_cfg, bundle->server, c1);
  bundle->vz_corpus =
      vp::run_ship_campaign(*bundle->vz_core, vz_cfg, bundle->server, c2);
  bundle->tmo_corpus =
      vp::run_ship_campaign(*bundle->tmo_core, tmo_cfg, bundle->server, c3);
  return bundle;
}

}  // namespace ran::bench
