# Empty compiler generated dependencies file for bench_ablation_vantage.
# This may be replaced when dependencies are built.
