file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_region_sizes.dir/bench_fig07_region_sizes.cpp.o"
  "CMakeFiles/bench_fig07_region_sizes.dir/bench_fig07_region_sizes.cpp.o.d"
  "bench_fig07_region_sizes"
  "bench_fig07_region_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_region_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
