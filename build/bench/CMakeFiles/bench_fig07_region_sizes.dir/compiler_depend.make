# Empty compiler generated dependencies file for bench_fig07_region_sizes.
# This may be replaced when dependencies are built.
