file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_northeast_rtt.dir/bench_fig09_northeast_rtt.cpp.o"
  "CMakeFiles/bench_fig09_northeast_rtt.dir/bench_fig09_northeast_rtt.cpp.o.d"
  "bench_fig09_northeast_rtt"
  "bench_fig09_northeast_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_northeast_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
