# Empty dependencies file for bench_fig09_northeast_rtt.
# This may be replaced when dependencies are built.
