file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_att_sandiego.dir/bench_fig13_att_sandiego.cpp.o"
  "CMakeFiles/bench_fig13_att_sandiego.dir/bench_fig13_att_sandiego.cpp.o.d"
  "bench_fig13_att_sandiego"
  "bench_fig13_att_sandiego.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_att_sandiego.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
