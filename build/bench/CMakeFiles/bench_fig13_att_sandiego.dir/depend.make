# Empty dependencies file for bench_fig13_att_sandiego.
# This may be replaced when dependencies are built.
