file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_shipping.dir/bench_fig15_shipping.cpp.o"
  "CMakeFiles/bench_fig15_shipping.dir/bench_fig15_shipping.cpp.o.d"
  "bench_fig15_shipping"
  "bench_fig15_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
