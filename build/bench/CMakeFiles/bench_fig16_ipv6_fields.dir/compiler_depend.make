# Empty compiler generated dependencies file for bench_fig16_ipv6_fields.
# This may be replaced when dependencies are built.
