file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mobile_topologies.dir/bench_fig17_mobile_topologies.cpp.o"
  "CMakeFiles/bench_fig17_mobile_topologies.dir/bench_fig17_mobile_topologies.cpp.o.d"
  "bench_fig17_mobile_topologies"
  "bench_fig17_mobile_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mobile_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
