# Empty dependencies file for bench_fig17_mobile_topologies.
# This may be replaced when dependencies are built.
