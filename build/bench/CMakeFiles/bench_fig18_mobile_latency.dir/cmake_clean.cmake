file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_mobile_latency.dir/bench_fig18_mobile_latency.cpp.o"
  "CMakeFiles/bench_fig18_mobile_latency.dir/bench_fig18_mobile_latency.cpp.o.d"
  "bench_fig18_mobile_latency"
  "bench_fig18_mobile_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_mobile_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
