# Empty dependencies file for bench_fig18_mobile_latency.
# This may be replaced when dependencies are built.
