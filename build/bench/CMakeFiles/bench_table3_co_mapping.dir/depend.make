# Empty dependencies file for bench_table3_co_mapping.
# This may be replaced when dependencies are built.
