file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pruning.dir/bench_table4_pruning.cpp.o"
  "CMakeFiles/bench_table4_pruning.dir/bench_table4_pruning.cpp.o.d"
  "bench_table4_pruning"
  "bench_table4_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
