# Empty dependencies file for bench_table4_pruning.
# This may be replaced when dependencies are built.
