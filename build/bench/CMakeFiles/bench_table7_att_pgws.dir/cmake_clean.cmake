file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_att_pgws.dir/bench_table7_att_pgws.cpp.o"
  "CMakeFiles/bench_table7_att_pgws.dir/bench_table7_att_pgws.cpp.o.d"
  "bench_table7_att_pgws"
  "bench_table7_att_pgws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_att_pgws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
