# Empty dependencies file for bench_table7_att_pgws.
# This may be replaced when dependencies are built.
