file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_verizon_pgws.dir/bench_table8_verizon_pgws.cpp.o"
  "CMakeFiles/bench_table8_verizon_pgws.dir/bench_table8_verizon_pgws.cpp.o.d"
  "bench_table8_verizon_pgws"
  "bench_table8_verizon_pgws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_verizon_pgws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
