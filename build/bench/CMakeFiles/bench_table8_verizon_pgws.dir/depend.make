# Empty dependencies file for bench_table8_verizon_pgws.
# This may be replaced when dependencies are built.
