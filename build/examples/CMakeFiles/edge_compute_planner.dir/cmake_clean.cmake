file(REMOVE_RECURSE
  "CMakeFiles/edge_compute_planner.dir/edge_compute_planner.cpp.o"
  "CMakeFiles/edge_compute_planner.dir/edge_compute_planner.cpp.o.d"
  "edge_compute_planner"
  "edge_compute_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_compute_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
