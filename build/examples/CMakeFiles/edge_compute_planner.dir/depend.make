# Empty dependencies file for edge_compute_planner.
# This may be replaced when dependencies are built.
