file(REMOVE_RECURSE
  "CMakeFiles/map_att_region.dir/map_att_region.cpp.o"
  "CMakeFiles/map_att_region.dir/map_att_region.cpp.o.d"
  "map_att_region"
  "map_att_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_att_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
