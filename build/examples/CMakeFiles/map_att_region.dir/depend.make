# Empty dependencies file for map_att_region.
# This may be replaced when dependencies are built.
