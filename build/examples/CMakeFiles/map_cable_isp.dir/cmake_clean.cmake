file(REMOVE_RECURSE
  "CMakeFiles/map_cable_isp.dir/map_cable_isp.cpp.o"
  "CMakeFiles/map_cable_isp.dir/map_cable_isp.cpp.o.d"
  "map_cable_isp"
  "map_cable_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_cable_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
