# Empty compiler generated dependencies file for map_cable_isp.
# This may be replaced when dependencies are built.
