file(REMOVE_RECURSE
  "CMakeFiles/ship_mobile.dir/ship_mobile.cpp.o"
  "CMakeFiles/ship_mobile.dir/ship_mobile.cpp.o.d"
  "ship_mobile"
  "ship_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ship_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
