# Empty compiler generated dependencies file for ship_mobile.
# This may be replaced when dependencies are built.
