
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alias_resolution.cpp" "src/core/CMakeFiles/ran_core.dir/alias_resolution.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/alias_resolution.cpp.o.d"
  "/root/repo/src/core/att_pipeline.cpp" "src/core/CMakeFiles/ran_core.dir/att_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/att_pipeline.cpp.o.d"
  "/root/repo/src/core/cable_pipeline.cpp" "src/core/CMakeFiles/ran_core.dir/cable_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/cable_pipeline.cpp.o.d"
  "/root/repo/src/core/co_mapping.cpp" "src/core/CMakeFiles/ran_core.dir/co_mapping.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/co_mapping.cpp.o.d"
  "/root/repo/src/core/corpus_io.cpp" "src/core/CMakeFiles/ran_core.dir/corpus_io.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/corpus_io.cpp.o.d"
  "/root/repo/src/core/eval.cpp" "src/core/CMakeFiles/ran_core.dir/eval.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/eval.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/ran_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/export.cpp.o.d"
  "/root/repo/src/core/latency_study.cpp" "src/core/CMakeFiles/ran_core.dir/latency_study.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/latency_study.cpp.o.d"
  "/root/repo/src/core/mobile_pipeline.cpp" "src/core/CMakeFiles/ran_core.dir/mobile_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/mobile_pipeline.cpp.o.d"
  "/root/repo/src/core/observations.cpp" "src/core/CMakeFiles/ran_core.dir/observations.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/observations.cpp.o.d"
  "/root/repo/src/core/pruning.cpp" "src/core/CMakeFiles/ran_core.dir/pruning.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/pruning.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/ran_core.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/refine.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/ran_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/render.cpp.o.d"
  "/root/repo/src/core/resilience.cpp" "src/core/CMakeFiles/ran_core.dir/resilience.cpp.o" "gcc" "src/core/CMakeFiles/ran_core.dir/resilience.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probe/CMakeFiles/ran_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssim/CMakeFiles/ran_dnssim.dir/DependInfo.cmake"
  "/root/repo/build/src/vantage/CMakeFiles/ran_vantage.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ran_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/ran_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/ran_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
