file(REMOVE_RECURSE
  "CMakeFiles/ran_core.dir/alias_resolution.cpp.o"
  "CMakeFiles/ran_core.dir/alias_resolution.cpp.o.d"
  "CMakeFiles/ran_core.dir/att_pipeline.cpp.o"
  "CMakeFiles/ran_core.dir/att_pipeline.cpp.o.d"
  "CMakeFiles/ran_core.dir/cable_pipeline.cpp.o"
  "CMakeFiles/ran_core.dir/cable_pipeline.cpp.o.d"
  "CMakeFiles/ran_core.dir/co_mapping.cpp.o"
  "CMakeFiles/ran_core.dir/co_mapping.cpp.o.d"
  "CMakeFiles/ran_core.dir/corpus_io.cpp.o"
  "CMakeFiles/ran_core.dir/corpus_io.cpp.o.d"
  "CMakeFiles/ran_core.dir/eval.cpp.o"
  "CMakeFiles/ran_core.dir/eval.cpp.o.d"
  "CMakeFiles/ran_core.dir/export.cpp.o"
  "CMakeFiles/ran_core.dir/export.cpp.o.d"
  "CMakeFiles/ran_core.dir/latency_study.cpp.o"
  "CMakeFiles/ran_core.dir/latency_study.cpp.o.d"
  "CMakeFiles/ran_core.dir/mobile_pipeline.cpp.o"
  "CMakeFiles/ran_core.dir/mobile_pipeline.cpp.o.d"
  "CMakeFiles/ran_core.dir/observations.cpp.o"
  "CMakeFiles/ran_core.dir/observations.cpp.o.d"
  "CMakeFiles/ran_core.dir/pruning.cpp.o"
  "CMakeFiles/ran_core.dir/pruning.cpp.o.d"
  "CMakeFiles/ran_core.dir/refine.cpp.o"
  "CMakeFiles/ran_core.dir/refine.cpp.o.d"
  "CMakeFiles/ran_core.dir/render.cpp.o"
  "CMakeFiles/ran_core.dir/render.cpp.o.d"
  "CMakeFiles/ran_core.dir/resilience.cpp.o"
  "CMakeFiles/ran_core.dir/resilience.cpp.o.d"
  "libran_core.a"
  "libran_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
