file(REMOVE_RECURSE
  "libran_core.a"
)
