# Empty compiler generated dependencies file for ran_core.
# This may be replaced when dependencies are built.
