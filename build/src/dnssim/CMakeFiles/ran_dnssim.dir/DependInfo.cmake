
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnssim/extract.cpp" "src/dnssim/CMakeFiles/ran_dnssim.dir/extract.cpp.o" "gcc" "src/dnssim/CMakeFiles/ran_dnssim.dir/extract.cpp.o.d"
  "/root/repo/src/dnssim/naming.cpp" "src/dnssim/CMakeFiles/ran_dnssim.dir/naming.cpp.o" "gcc" "src/dnssim/CMakeFiles/ran_dnssim.dir/naming.cpp.o.d"
  "/root/repo/src/dnssim/rdns.cpp" "src/dnssim/CMakeFiles/ran_dnssim.dir/rdns.cpp.o" "gcc" "src/dnssim/CMakeFiles/ran_dnssim.dir/rdns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topogen/CMakeFiles/ran_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/ran_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
