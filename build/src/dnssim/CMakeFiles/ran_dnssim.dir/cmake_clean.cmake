file(REMOVE_RECURSE
  "CMakeFiles/ran_dnssim.dir/extract.cpp.o"
  "CMakeFiles/ran_dnssim.dir/extract.cpp.o.d"
  "CMakeFiles/ran_dnssim.dir/naming.cpp.o"
  "CMakeFiles/ran_dnssim.dir/naming.cpp.o.d"
  "CMakeFiles/ran_dnssim.dir/rdns.cpp.o"
  "CMakeFiles/ran_dnssim.dir/rdns.cpp.o.d"
  "libran_dnssim.a"
  "libran_dnssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_dnssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
