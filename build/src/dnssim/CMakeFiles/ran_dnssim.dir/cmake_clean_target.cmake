file(REMOVE_RECURSE
  "libran_dnssim.a"
)
