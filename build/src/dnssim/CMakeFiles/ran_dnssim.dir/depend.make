# Empty dependencies file for ran_dnssim.
# This may be replaced when dependencies are built.
