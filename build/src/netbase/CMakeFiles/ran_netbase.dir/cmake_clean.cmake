file(REMOVE_RECURSE
  "CMakeFiles/ran_netbase.dir/clli.cpp.o"
  "CMakeFiles/ran_netbase.dir/clli.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/geo.cpp.o"
  "CMakeFiles/ran_netbase.dir/geo.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/ipv4.cpp.o"
  "CMakeFiles/ran_netbase.dir/ipv4.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/ipv6.cpp.o"
  "CMakeFiles/ran_netbase.dir/ipv6.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/report.cpp.o"
  "CMakeFiles/ran_netbase.dir/report.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/stats.cpp.o"
  "CMakeFiles/ran_netbase.dir/stats.cpp.o.d"
  "CMakeFiles/ran_netbase.dir/strings.cpp.o"
  "CMakeFiles/ran_netbase.dir/strings.cpp.o.d"
  "libran_netbase.a"
  "libran_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
