file(REMOVE_RECURSE
  "libran_netbase.a"
)
