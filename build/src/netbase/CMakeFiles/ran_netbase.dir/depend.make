# Empty dependencies file for ran_netbase.
# This may be replaced when dependencies are built.
