file(REMOVE_RECURSE
  "CMakeFiles/ran_probe.dir/alias.cpp.o"
  "CMakeFiles/ran_probe.dir/alias.cpp.o.d"
  "CMakeFiles/ran_probe.dir/energy.cpp.o"
  "CMakeFiles/ran_probe.dir/energy.cpp.o.d"
  "CMakeFiles/ran_probe.dir/traceroute.cpp.o"
  "CMakeFiles/ran_probe.dir/traceroute.cpp.o.d"
  "libran_probe.a"
  "libran_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
