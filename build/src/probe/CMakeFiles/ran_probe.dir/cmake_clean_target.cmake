file(REMOVE_RECURSE
  "libran_probe.a"
)
