# Empty dependencies file for ran_probe.
# This may be replaced when dependencies are built.
