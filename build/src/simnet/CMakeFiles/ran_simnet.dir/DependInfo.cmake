
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/mobile_core.cpp" "src/simnet/CMakeFiles/ran_simnet.dir/mobile_core.cpp.o" "gcc" "src/simnet/CMakeFiles/ran_simnet.dir/mobile_core.cpp.o.d"
  "/root/repo/src/simnet/world.cpp" "src/simnet/CMakeFiles/ran_simnet.dir/world.cpp.o" "gcc" "src/simnet/CMakeFiles/ran_simnet.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topogen/CMakeFiles/ran_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/ran_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
