file(REMOVE_RECURSE
  "CMakeFiles/ran_simnet.dir/mobile_core.cpp.o"
  "CMakeFiles/ran_simnet.dir/mobile_core.cpp.o.d"
  "CMakeFiles/ran_simnet.dir/world.cpp.o"
  "CMakeFiles/ran_simnet.dir/world.cpp.o.d"
  "libran_simnet.a"
  "libran_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
