file(REMOVE_RECURSE
  "libran_simnet.a"
)
