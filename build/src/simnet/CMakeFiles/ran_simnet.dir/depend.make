# Empty dependencies file for ran_simnet.
# This may be replaced when dependencies are built.
