
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topogen/builder.cpp" "src/topogen/CMakeFiles/ran_topogen.dir/builder.cpp.o" "gcc" "src/topogen/CMakeFiles/ran_topogen.dir/builder.cpp.o.d"
  "/root/repo/src/topogen/cable_gen.cpp" "src/topogen/CMakeFiles/ran_topogen.dir/cable_gen.cpp.o" "gcc" "src/topogen/CMakeFiles/ran_topogen.dir/cable_gen.cpp.o.d"
  "/root/repo/src/topogen/mobile_gen.cpp" "src/topogen/CMakeFiles/ran_topogen.dir/mobile_gen.cpp.o" "gcc" "src/topogen/CMakeFiles/ran_topogen.dir/mobile_gen.cpp.o.d"
  "/root/repo/src/topogen/model.cpp" "src/topogen/CMakeFiles/ran_topogen.dir/model.cpp.o" "gcc" "src/topogen/CMakeFiles/ran_topogen.dir/model.cpp.o.d"
  "/root/repo/src/topogen/telco_gen.cpp" "src/topogen/CMakeFiles/ran_topogen.dir/telco_gen.cpp.o" "gcc" "src/topogen/CMakeFiles/ran_topogen.dir/telco_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/ran_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
