file(REMOVE_RECURSE
  "CMakeFiles/ran_topogen.dir/builder.cpp.o"
  "CMakeFiles/ran_topogen.dir/builder.cpp.o.d"
  "CMakeFiles/ran_topogen.dir/cable_gen.cpp.o"
  "CMakeFiles/ran_topogen.dir/cable_gen.cpp.o.d"
  "CMakeFiles/ran_topogen.dir/mobile_gen.cpp.o"
  "CMakeFiles/ran_topogen.dir/mobile_gen.cpp.o.d"
  "CMakeFiles/ran_topogen.dir/model.cpp.o"
  "CMakeFiles/ran_topogen.dir/model.cpp.o.d"
  "CMakeFiles/ran_topogen.dir/telco_gen.cpp.o"
  "CMakeFiles/ran_topogen.dir/telco_gen.cpp.o.d"
  "libran_topogen.a"
  "libran_topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
