file(REMOVE_RECURSE
  "libran_topogen.a"
)
