# Empty dependencies file for ran_topogen.
# This may be replaced when dependencies are built.
