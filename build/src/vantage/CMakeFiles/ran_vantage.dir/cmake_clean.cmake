file(REMOVE_RECURSE
  "CMakeFiles/ran_vantage.dir/mctraceroute.cpp.o"
  "CMakeFiles/ran_vantage.dir/mctraceroute.cpp.o.d"
  "CMakeFiles/ran_vantage.dir/ship.cpp.o"
  "CMakeFiles/ran_vantage.dir/ship.cpp.o.d"
  "CMakeFiles/ran_vantage.dir/vps.cpp.o"
  "CMakeFiles/ran_vantage.dir/vps.cpp.o.d"
  "libran_vantage.a"
  "libran_vantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_vantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
