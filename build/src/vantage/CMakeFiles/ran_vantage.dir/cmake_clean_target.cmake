file(REMOVE_RECURSE
  "libran_vantage.a"
)
