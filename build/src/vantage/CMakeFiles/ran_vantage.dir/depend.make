# Empty dependencies file for ran_vantage.
# This may be replaced when dependencies are built.
