file(REMOVE_RECURSE
  "CMakeFiles/test_contracts_misc.dir/test_contracts_misc.cpp.o"
  "CMakeFiles/test_contracts_misc.dir/test_contracts_misc.cpp.o.d"
  "test_contracts_misc"
  "test_contracts_misc.pdb"
  "test_contracts_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contracts_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
