# Empty compiler generated dependencies file for test_contracts_misc.
# This may be replaced when dependencies are built.
