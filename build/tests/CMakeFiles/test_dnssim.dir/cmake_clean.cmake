file(REMOVE_RECURSE
  "CMakeFiles/test_dnssim.dir/test_dnssim.cpp.o"
  "CMakeFiles/test_dnssim.dir/test_dnssim.cpp.o.d"
  "test_dnssim"
  "test_dnssim.pdb"
  "test_dnssim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
