# Empty compiler generated dependencies file for test_dnssim.
# This may be replaced when dependencies are built.
