file(REMOVE_RECURSE
  "CMakeFiles/test_eval_latency.dir/test_eval_latency.cpp.o"
  "CMakeFiles/test_eval_latency.dir/test_eval_latency.cpp.o.d"
  "test_eval_latency"
  "test_eval_latency.pdb"
  "test_eval_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
