# Empty compiler generated dependencies file for test_eval_latency.
# This may be replaced when dependencies are built.
