file(REMOVE_RECURSE
  "CMakeFiles/test_infer_units.dir/test_infer_units.cpp.o"
  "CMakeFiles/test_infer_units.dir/test_infer_units.cpp.o.d"
  "test_infer_units"
  "test_infer_units.pdb"
  "test_infer_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infer_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
