# Empty compiler generated dependencies file for test_infer_units.
# This may be replaced when dependencies are built.
