
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_probe.cpp" "tests/CMakeFiles/test_probe.dir/test_probe.cpp.o" "gcc" "tests/CMakeFiles/test_probe.dir/test_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ran_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vantage/CMakeFiles/ran_vantage.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/ran_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/dnssim/CMakeFiles/ran_dnssim.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ran_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/ran_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/ran_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
