# Empty dependencies file for test_topogen.
# This may be replaced when dependencies are built.
