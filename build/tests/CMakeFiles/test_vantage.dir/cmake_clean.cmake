file(REMOVE_RECURSE
  "CMakeFiles/test_vantage.dir/test_vantage.cpp.o"
  "CMakeFiles/test_vantage.dir/test_vantage.cpp.o.d"
  "test_vantage"
  "test_vantage.pdb"
  "test_vantage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
