# Empty dependencies file for test_vantage.
# This may be replaced when dependencies are built.
