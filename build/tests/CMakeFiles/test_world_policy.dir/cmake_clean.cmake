file(REMOVE_RECURSE
  "CMakeFiles/test_world_policy.dir/test_world_policy.cpp.o"
  "CMakeFiles/test_world_policy.dir/test_world_policy.cpp.o.d"
  "test_world_policy"
  "test_world_policy.pdb"
  "test_world_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
