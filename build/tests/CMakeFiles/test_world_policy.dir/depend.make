# Empty dependencies file for test_world_policy.
# This may be replaced when dependencies are built.
