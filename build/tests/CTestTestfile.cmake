# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_netbase[1]_include.cmake")
include("/root/repo/build/tests/test_topogen[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_dnssim[1]_include.cmake")
include("/root/repo/build/tests/test_probe[1]_include.cmake")
include("/root/repo/build/tests/test_vantage[1]_include.cmake")
include("/root/repo/build/tests/test_infer_units[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_mobile[1]_include.cmake")
include("/root/repo/build/tests/test_eval_latency[1]_include.cmake")
include("/root/repo/build/tests/test_world_policy[1]_include.cmake")
include("/root/repo/build/tests/test_contracts_misc[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_properties[1]_include.cmake")
