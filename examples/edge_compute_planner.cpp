// Example application (§5.5 / §8): where should edge computing live?
//
// Uses the inferred regional topologies — never the ground truth — to
// compare three placements against a 5 ms AR/VR budget:
//   1. cloud only (status quo),
//   2. compute in every EdgeCO (maximal, expensive),
//   3. compute in the AggCOs (the paper's recommendation).
// Prints the share of EdgeCOs (a proxy for subscribers) within budget and
// the build-out size of each option.
#include <iostream>

#include "core/cable_pipeline.hpp"
#include "core/latency_study.hpp"
#include "core/snapshot.hpp"
#include "example_util.hpp"
#include "dnssim/rdns.hpp"
#include "netbase/report.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger =
      examples::make_logger(argc, argv, out, "edge_compute_planner");
  constexpr double kBudgetMs = 5.0;

  std::cout << "mapping a Comcast-like ISP...\n";
  sim::World world{31337};
  net::Rng rng{31337};
  auto gen_rng = rng.fork();
  const int isp = world.add_isp(
      topo::generate_cable(topo::comcast_profile(), gen_rng));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 47, vp_rng);
  const auto clouds = vp::add_cloud_vms(world);
  world.finalize();
  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(isp), {}, dns_rng);
  const auto snapshot = dns::age_snapshot(live, 0.02, dns_rng);
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  world.set_metrics(&metrics);
  infer::CablePipelineConfig config;
  config.campaign.metrics = &metrics;
  config.campaign.parallelism = examples::threads(argc, argv, 0);
  const infer::CablePipeline pipeline{world, isp, {&live, &snapshot},
                                      config};
  const auto study = pipeline.run(vps);

  std::cout << "measuring latency from every US cloud region...\n";
  const auto targets = infer::edge_co_targets(study);
  const auto cloud_rtts =
      infer::cloud_latency_campaign(world, clouds, targets, 10);
  const auto agg_rtts = infer::agg_to_edge_rtts(study);

  std::size_t in_budget_cloud = 0;
  std::size_t in_budget_agg = 0;
  std::size_t measured = 0;
  for (const auto& row : cloud_rtts) {
    ++measured;
    in_budget_cloud += row.nearest() <= kBudgetMs;
    const auto it = agg_rtts.find(row.target.co_key);
    if (it != agg_rtts.end()) in_budget_agg += it->second <= kBudgetMs;
  }

  // Site counts come from the frozen snapshot — the same artifact the
  // `stats` query of ran_serve reports, so planner and daemon agree.
  std::size_t edge_sites = 0;
  std::size_t agg_sites = 0;
  for (const auto& [name, region] : study.snapshot()->regions()) {
    edge_sites += region.edge_co_count();
    agg_sites += region.agg_co_count();
  }

  std::cout << "\nedge-compute placement vs a " << kBudgetMs
            << " ms RTT budget (" << measured << " EdgeCOs measured)\n\n";
  net::TextTable table{{"placement", "sites to build", "EdgeCOs in budget"}};
  table.add_row({"cloud only", "0",
                 net::fmt_percent(static_cast<double>(in_budget_cloud) /
                                  static_cast<double>(measured))});
  table.add_row({"every EdgeCO", std::to_string(edge_sites), "100.0%"});
  table.add_row({"every AggCO", std::to_string(agg_sites),
                 net::fmt_percent(static_cast<double>(in_budget_agg) /
                                  static_cast<double>(measured))});
  table.print(std::cout);

  std::cout << "\nthe AggCO option needs "
            << net::fmt_double(
                   static_cast<double>(edge_sites) /
                       static_cast<double>(agg_sites),
                   1)
            << "x fewer sites than EdgeCO build-out (paper: 7.7x) while "
               "keeping most subscribers within the AR/VR budget (§5.5).\n";

  const auto manifest_path =
      (out / "edge_compute_planner_manifest.json").string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "run manifest written to " << manifest_path << "\n";
  return 0;
}
