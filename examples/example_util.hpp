// Shared CLI plumbing for the examples. Run artifacts (manifests, trace
// timelines, exported graphs) go under an --out-dir directory instead of
// the current working directory, so repeated runs never litter the repo
// root (the generated *_manifest.json / *_trace.json names are also
// .gitignore'd as a second line of defense).
#pragma once

#include <cstring>
#include <filesystem>

namespace ran::examples {

/// Parses `--out-dir <path>` (default "out"), creates the directory, and
/// returns it. Every other argument is left for the example to interpret.
inline std::filesystem::path out_dir(int argc, char** argv,
                                     const char* fallback = "out") {
  std::filesystem::path dir = fallback;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--out-dir") == 0) dir = argv[i + 1];
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace ran::examples
