// Shared CLI plumbing for the examples. Run artifacts (manifests, trace
// timelines, exported graphs) go under an --out-dir directory instead of
// the current working directory, so repeated runs never litter the repo
// root (the generated *_manifest.json / *_trace.json names are also
// .gitignore'd as a second line of defense).
//
// All examples also understand:
//   --threads <n>        campaign parallelism (0 = hardware concurrency)
//   --log-level <level>  debug | info | warn | error | off (default info)
//   --log-file <path>    JSONL log sink (default <out-dir>/<name>_log.jsonl)
#pragma once

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "obs/log.hpp"

namespace ran::examples {

/// Returns the value following `flag`, or nullptr when absent.
inline const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return nullptr;
}

/// Parses `--out-dir <path>` (default "out"), creates the directory, and
/// returns it. Every other argument is left for the example to interpret.
inline std::filesystem::path out_dir(int argc, char** argv,
                                     const char* fallback = "out") {
  std::filesystem::path dir = fallback;
  if (const char* v = flag_value(argc, argv, "--out-dir")) dir = v;
  std::filesystem::create_directories(dir);
  return dir;
}

/// Parses `--threads <n>`; 0 means "use hardware concurrency" and is the
/// CampaignConfig convention, so it passes through unchanged.
inline int threads(int argc, char** argv, int fallback = 1) {
  if (const char* v = flag_value(argc, argv, "--threads"))
    return std::atoi(v);
  return fallback;
}

/// Builds the example's logger from --log-level / --log-file. Returns
/// null for `--log-level off` (instrumented code then pays one pointer
/// test and nothing else). The JSONL sink defaults to
/// `<out-dir>/<name>_log.jsonl`; warnings and errors additionally go to
/// stderr as they happen.
inline std::unique_ptr<obs::Log> make_logger(
    int argc, char** argv, const std::filesystem::path& out,
    const char* name) {
  obs::LogConfig config;
  if (const char* v = flag_value(argc, argv, "--log-level")) {
    if (std::strcmp(v, "off") == 0) return nullptr;
    if (std::strcmp(v, "debug") == 0) config.min_level = obs::LogLevel::kDebug;
    else if (std::strcmp(v, "info") == 0) config.min_level = obs::LogLevel::kInfo;
    else if (std::strcmp(v, "warn") == 0) config.min_level = obs::LogLevel::kWarn;
    else if (std::strcmp(v, "error") == 0) config.min_level = obs::LogLevel::kError;
  }
  if (const char* v = flag_value(argc, argv, "--log-file"))
    config.jsonl_path = v;
  else
    config.jsonl_path = (out / (std::string{name} + "_log.jsonl")).string();
  return std::make_unique<obs::Log>(config);
}

}  // namespace ran::examples
