// manifest_diff: the CI regression gate over two observability artifacts.
//
// Compares two run-manifest JSONs (default), two google-benchmark JSON
// exports (--bench), or two Prometheus exposition scrapes (--metrics,
// the rolling ran_serve_metrics.prom files `ran_serve --telemetry-every`
// writes). Deterministic manifest content must match byte-for-byte;
// volatile timings / resource samples are compared within a tolerance;
// benchmark real_time may not regress beyond the slowdown threshold;
// exposition scrapes of one live daemon must parse and every monotonic
// series (counters, histogram buckets/sums/counts) must be >= its
// earlier value — the delta/reset-free scrape contract. Exit code 0 =
// gate passes, 1 = drift detected, 2 = bad usage or unreadable input.
//
//   manifest_diff before_manifest.json after_manifest.json
//   manifest_diff --bench --slowdown 0.5 before_bench.json after_bench.json
//   manifest_diff --metrics scrape1.prom scrape2.prom
//   manifest_diff --json report.json a.json b.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "netbase/json.hpp"
#include "obs/diff.hpp"
#include "obs/exposition.hpp"

namespace {

constexpr const char* kUsage =
    "usage: manifest_diff [options] <before.json> <after.json>\n"
    "  --bench            diff google-benchmark exports instead of "
    "manifests\n"
    "  --metrics          diff Prometheus exposition scrapes instead of "
    "manifests\n"
    "  --json <path>      also write the machine-readable report there\n"
    "  --rel-tol <x>      relative tolerance for volatile numerics "
    "(default 0.5)\n"
    "  --abs-tol <x>      absolute tolerance for volatile numerics "
    "(default 64)\n"
    "  --slowdown <x>     --bench: allowed relative real_time slowdown "
    "(default 0.35)\n"
    "  --filter <regex>   --bench: only compare benchmarks whose name "
    "matches\n";

std::optional<std::string> load_text(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::cerr << "manifest_diff: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Whether a sample is monotonic under the scrape contract: counters,
/// and every histogram sub-series except the quantile gauges.
bool is_monotonic_sample(const std::string& key,
                         const std::map<std::string, std::string>& types) {
  const auto base_end = key.find('{');
  std::string name =
      base_end == std::string::npos ? key : key.substr(0, base_end);
  if (auto it = types.find(name); it != types.end())
    return it->second == "counter";
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > std::strlen(suffix) &&
        name.compare(name.size() - std::strlen(suffix), std::string::npos,
                     suffix) == 0) {
      const auto histogram = name.substr(0, name.size() - std::strlen(suffix));
      if (auto it = types.find(histogram); it != types.end())
        return it->second == "histogram";
    }
  }
  return false;
}

/// The --metrics gate: both scrapes parse, no series vanishes, every
/// monotonic series grew or held. Returns the exit code.
int diff_metrics(const char* before_path, const char* after_path) {
  const auto before_text = load_text(before_path);
  const auto after_text = load_text(after_path);
  if (!before_text || !after_text) return 2;
  std::string error;
  std::map<std::string, std::string> before_types;
  std::map<std::string, std::string> after_types;
  const auto before =
      ran::obs::parse_exposition(*before_text, &error, &before_types);
  if (!before) {
    std::cerr << "manifest_diff: " << before_path << ": " << error << "\n";
    return 2;
  }
  const auto after =
      ran::obs::parse_exposition(*after_text, &error, &after_types);
  if (!after) {
    std::cerr << "manifest_diff: " << after_path << ": " << error << "\n";
    return 2;
  }

  int violations = 0;
  std::size_t monotonic = 0;
  for (const auto& [key, before_value] : *before) {
    const auto it = after->find(key);
    if (it == after->end()) {
      std::cout << "FAIL " << key
                << ": series present before, missing after\n";
      ++violations;
      continue;
    }
    if (!is_monotonic_sample(key, before_types)) continue;
    ++monotonic;
    if (it->second < before_value) {
      std::cout << "FAIL " << key << ": monotonic series decreased ("
                << before_value << " -> " << it->second << ")\n";
      ++violations;
    }
  }
  std::cout << "metrics diff: " << before->size() << " series before, "
            << after->size() << " after, " << monotonic
            << " monotonic checked, " << violations << " violation"
            << (violations == 1 ? "" : "s") << "\n";
  return violations == 0 ? 0 : 1;
}

std::optional<ran::net::JsonValue> load_json(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::cerr << "manifest_diff: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = ran::net::parse_json(buffer.str(), &error);
  if (!parsed)
    std::cerr << "manifest_diff: " << path << ": " << error << "\n";
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool bench = false;
  bool metrics = false;
  const char* json_out = nullptr;
  ran::obs::DiffOptions options;
  ran::obs::BenchDiffOptions bench_options;
  const char* files[2] = {nullptr, nullptr};
  int n_files = 0;

  for (int i = 1; i < argc; ++i) {
    const auto number = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    if (std::strcmp(argv[i], "--bench") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--rel-tol") == 0) {
      if (!number(options.rel_tolerance)) break;
    } else if (std::strcmp(argv[i], "--abs-tol") == 0) {
      if (!number(options.abs_tolerance)) break;
    } else if (std::strcmp(argv[i], "--slowdown") == 0) {
      if (!number(bench_options.slowdown_threshold)) break;
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      bench_options.name_filter = argv[++i];
    } else if (argv[i][0] == '-') {
      std::cerr << "manifest_diff: unknown option " << argv[i] << "\n"
                << kUsage;
      return 2;
    } else if (n_files < 2) {
      files[n_files++] = argv[i];
    } else {
      n_files = 3;  // too many positionals
      break;
    }
  }
  if (n_files != 2) {
    std::cerr << kUsage;
    return 2;
  }
  if (metrics) return diff_metrics(files[0], files[1]);

  const auto before = load_json(files[0]);
  const auto after = load_json(files[1]);
  if (!before || !after) return 2;

  const ran::obs::DiffReport report =
      bench ? ran::obs::diff_bench(*before, *after, bench_options)
            : ran::obs::diff_manifests(*before, *after, options);

  std::cout << report.text();
  if (json_out != nullptr) {
    std::ofstream out{json_out, std::ios::binary};
    out << report.to_json();
    if (!out) {
      std::cerr << "manifest_diff: cannot write " << json_out << "\n";
      return 2;
    }
  }
  return report.gate_ok() ? 0 : 1;
}
