// manifest_diff: the CI regression gate over two observability artifacts.
//
// Compares two run-manifest JSONs (default) or two google-benchmark JSON
// exports (--bench). Deterministic manifest content must match byte-for-
// byte; volatile timings / resource samples are compared within a
// tolerance; benchmark real_time may not regress beyond the slowdown
// threshold. Exit code 0 = gate passes, 1 = drift detected, 2 = bad
// usage or unreadable input.
//
//   manifest_diff before_manifest.json after_manifest.json
//   manifest_diff --bench --slowdown 0.5 before_bench.json after_bench.json
//   manifest_diff --json report.json a.json b.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "netbase/json.hpp"
#include "obs/diff.hpp"

namespace {

constexpr const char* kUsage =
    "usage: manifest_diff [options] <before.json> <after.json>\n"
    "  --bench            diff google-benchmark exports instead of "
    "manifests\n"
    "  --json <path>      also write the machine-readable report there\n"
    "  --rel-tol <x>      relative tolerance for volatile numerics "
    "(default 0.5)\n"
    "  --abs-tol <x>      absolute tolerance for volatile numerics "
    "(default 64)\n"
    "  --slowdown <x>     --bench: allowed relative real_time slowdown "
    "(default 0.35)\n"
    "  --filter <regex>   --bench: only compare benchmarks whose name "
    "matches\n";

std::optional<ran::net::JsonValue> load_json(const char* path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::cerr << "manifest_diff: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto parsed = ran::net::parse_json(buffer.str(), &error);
  if (!parsed)
    std::cerr << "manifest_diff: " << path << ": " << error << "\n";
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool bench = false;
  const char* json_out = nullptr;
  ran::obs::DiffOptions options;
  ran::obs::BenchDiffOptions bench_options;
  const char* files[2] = {nullptr, nullptr};
  int n_files = 0;

  for (int i = 1; i < argc; ++i) {
    const auto number = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    if (std::strcmp(argv[i], "--bench") == 0) {
      bench = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--rel-tol") == 0) {
      if (!number(options.rel_tolerance)) break;
    } else if (std::strcmp(argv[i], "--abs-tol") == 0) {
      if (!number(options.abs_tolerance)) break;
    } else if (std::strcmp(argv[i], "--slowdown") == 0) {
      if (!number(bench_options.slowdown_threshold)) break;
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      bench_options.name_filter = argv[++i];
    } else if (argv[i][0] == '-') {
      std::cerr << "manifest_diff: unknown option " << argv[i] << "\n"
                << kUsage;
      return 2;
    } else if (n_files < 2) {
      files[n_files++] = argv[i];
    } else {
      n_files = 3;  // too many positionals
      break;
    }
  }
  if (n_files != 2) {
    std::cerr << kUsage;
    return 2;
  }

  const auto before = load_json(files[0]);
  const auto after = load_json(files[1]);
  if (!before || !after) return 2;

  const ran::obs::DiffReport report =
      bench ? ran::obs::diff_bench(*before, *after, bench_options)
            : ran::obs::diff_manifests(*before, *after, options);

  std::cout << report.text();
  if (json_out != nullptr) {
    std::ofstream out{json_out, std::ios::binary};
    out << report.to_json();
    if (!out) {
      std::cerr << "manifest_diff: cannot write " << json_out << "\n";
      return 2;
    }
  }
  return report.gate_ok() ? 0 : 1;
}
