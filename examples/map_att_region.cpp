// Example: the §6 AT&T study for any region — bootstrap from lightspeed
// rDNS, discover the router prefixes, run Direct Path Revelation through
// the MPLS tunnels from Ark/Atlas VPs plus McTraceroute WiFi hotspots,
// and print the Fig 13 router/CO inventory.
//
//   ./build/examples/map_att_region [metro-code]   (default: sndgca)
#include <iostream>

#include "core/att_pipeline.hpp"
#include "example_util.hpp"
#include "dnssim/rdns.hpp"
#include "netbase/report.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/mctraceroute.hpp"
#include "vantage/vps.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger = examples::make_logger(argc, argv, out, "map_att_region");
  const std::string metro =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "sndgca";

  std::cout << "generating the AT&T-style wireline ground truth (37 "
               "regions)...\n";
  sim::World world{2021};
  net::Rng rng{2021};
  auto gen_rng = rng.fork();
  const int att = world.add_isp(topo::generate_telco(topo::att_profile(),
                                                     gen_rng));
  world.finalize();
  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(att), {}, dns_rng);
  const auto snapshot = dns::age_snapshot(live, 0.02, dns_rng);
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  world.set_metrics(&metrics);
  infer::AttPipelineConfig config;
  config.campaign.metrics = &metrics;
  config.campaign.parallelism = examples::threads(argc, argv, 0);
  const infer::AttPipeline pipeline{world, att, {&live, &snapshot}, config};

  const auto regions = pipeline.discover_lspgws();
  std::cout << "regions identified in lightspeed rDNS: " << regions.size()
            << "\n";
  if (!regions.contains(metro)) {
    std::cout << "unknown metro '" << metro << "'. available:";
    for (const auto& [code, addrs] : regions) std::cout << " " << code;
    std::cout << "\n";
    return 1;
  }

  // Vantage: 8 in-region + 2 nearby-region Ark/Atlas probes, plus WiFi
  // hotspots of a fast-food chain.
  topo::RegionId region_id = topo::kInvalidId;
  for (const auto& region : world.isp(att).regions())
    if (region.name == metro) region_id = region.id;
  auto vp_rng = rng.fork();
  std::vector<std::pair<sim::ProbeSource, std::string>> vps;
  for (const auto& vp :
       vp::pick_internal_vps(world, att, region_id, 8, vp_rng))
    vps.emplace_back(world.vantage_behind(att, vp.last_mile), vp.name);
  // Ark probes "in and NEARBY" the region (§6.1): the inter-region traces
  // are what reveal the BackboneCO and pin the region's backbone tag.
  const auto& isp_truth = world.isp(att);
  topo::RegionId nearby = topo::kInvalidId;
  double best_km = 1e18;
  const auto home =
      isp_truth.co(isp_truth.region(region_id).cos.front()).location;
  for (const auto& other : isp_truth.regions()) {
    if (other.id == region_id || other.cos.empty()) continue;
    const double km = net::haversine_km(
        home, isp_truth.co(other.cos.front()).location);
    if (km < best_km) {
      best_km = km;
      nearby = other.id;
    }
  }
  for (const auto& vp : vp::pick_internal_vps(world, att, nearby, 2, vp_rng))
    vps.emplace_back(world.vantage_behind(att, vp.last_mile), vp.name);
  const vp::HotspotConfig hotspot_config;
  const auto hotspots = vp::enumerate_hotspots(world, att, region_id,
                                               hotspot_config, vp_rng);
  int usable = 0;
  for (const auto& spot : hotspots) {
    if (!spot.on_target_isp) continue;
    ++usable;
    vps.emplace_back(vp::hotspot_source(world, att, spot, hotspot_config),
                     spot.name);
  }
  std::cout << "vantage points: " << vps.size() - usable
            << " Ark/Atlas probes + " << usable << "/" << hotspots.size()
            << " WiFi hotspots on the target ISP\n";

  std::cout << "mapping region '" << metro << "'...\n\n";
  const auto study = pipeline.map_region(metro, vps);

  std::cout << "region " << metro << " (backbone tag "
            << study.backbone_tag << ")\n"
            << "  backbone routers : " << study.backbone_routers << "\n"
            << "  agg routers      : " << study.agg_routers
            << " (MPLS-hidden; revealed by DPR)\n"
            << "  edge routers     : " << study.edge_routers << "\n"
            << "  EdgeCOs          : " << study.edge_cos()
            << " (via shared last-mile clustering)\n"
            << "  bb<->agg links   : " << study.backbone_agg_links << "\n"
            << "  router prefixes  :";
  for (const auto s24 : study.router_slash24s)
    std::cout << " " << net::IPv4Address{s24 << 8}.to_string() << "/24";
  std::cout << "\n";

  std::map<int, int> histogram;
  for (const int n : study.routers_per_edge_co) ++histogram[n];
  std::cout << "  routers per CO   : ";
  for (const auto& [n, count] : histogram)
    std::cout << count << "x" << n << " ";
  std::cout << "\n";
  const auto coverage = infer::count_distinct_paths(study.corpus());
  std::cout << "  distinct IP paths: " << coverage.distinct_paths << " from "
            << coverage.traces << " traces\n";

  const std::string manifest_path =
      (out / ("map_att_region_" + metro + "_manifest.json")).string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "run manifest written to " << manifest_path << "\n";
  return 0;
}
