// Example: map a full cable ISP the way §5 maps Comcast and Charter, and
// print an operator-style report per region — inferred COs, AggCOs,
// entries, aggregation archetype, redundancy, and accuracy against the
// hidden ground truth (our stand-in for the §5.4 operator interviews).
//
//   ./build/examples/map_cable_isp [comcast|charter]
#include <cstring>
#include <iostream>

#include "core/cable_pipeline.hpp"
#include "core/eval.hpp"
#include "example_util.hpp"
#include "dnssim/rdns.hpp"
#include "netbase/report.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger = examples::make_logger(argc, argv, out, "map_cable_isp");
  const bool charter = argc > 1 && std::strcmp(argv[1], "charter") == 0;
  const auto profile =
      charter ? topo::charter_profile() : topo::comcast_profile();

  std::cout << "generating hidden ground truth for a " << profile.name
            << "-like ISP...\n";
  sim::World world{99};
  net::Rng rng{99};
  auto gen_rng = rng.fork();
  const int isp = world.add_isp(topo::generate_cable(profile, gen_rng));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 47, vp_rng);
  world.finalize();

  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(isp), {}, dns_rng);
  const auto snapshot = dns::age_snapshot(live, 0.02, dns_rng);

  std::cout << "running the two-phase measurement campaign from "
            << vps.size() << " vantage points...\n";
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  world.set_metrics(&metrics);
  infer::CablePipelineConfig config;
  config.campaign.metrics = &metrics;
  config.campaign.parallelism = examples::threads(argc, argv, 0);
  const infer::CablePipeline pipeline{world, isp, {&live, &snapshot},
                                      config};
  const auto study = pipeline.run(vps);

  std::cout << "\ncampaign summary\n"
            << "  traceroutes      : " << study.corpus().size() << "\n"
            << "  /24 sweep targets: " << study.sweep_targets << "\n"
            << "  rDNS targets     : " << study.rdns_targets << "\n"
            << "  router groups    : "
            << study.clusters().alias_cluster_count() << " multi-interface\n"
            << "  p2p subnets      : /" << study.p2p_len << "\n\n";

  net::TextTable table{{"region", "COs", "AggCOs", "edges", "bb entries",
                        "via region", "type", "single-upstr", "precision",
                        "recall"}};
  infer::RedundancyStats totals;
  for (const auto& [name, graph] : study.regions()) {
    const auto redundancy = infer::redundancy_of(graph);
    totals.edge_cos += redundancy.edge_cos;
    totals.single_upstream += redundancy.single_upstream;
    const auto accuracy = infer::compare_with_truth(graph, world.isp(isp));
    table.add_row({
        name,
        std::to_string(graph.cos.size()),
        std::to_string(graph.agg_cos.size()),
        std::to_string(graph.edge_count()),
        std::to_string(graph.backbone_entries.size()),
        std::to_string(graph.region_entries.size()),
        std::string{to_string(infer::classify_region(graph))},
        net::fmt_percent(redundancy.edge_cos == 0
                             ? 0.0
                             : static_cast<double>(
                                   redundancy.single_upstream) /
                                   redundancy.edge_cos),
        accuracy ? net::fmt_percent(accuracy->edge_precision()) : "n/a",
        accuracy ? net::fmt_percent(accuracy->edge_recall()) : "n/a",
    });
  }
  table.print(std::cout);
  std::cout << "\noverall single-upstream EdgeCOs: "
            << net::fmt_percent(static_cast<double>(totals.single_upstream) /
                                totals.edge_cos)
            << "\n";

  const std::string manifest_path =
      (out / ("map_cable_isp_" + profile.name + "_manifest.json")).string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "run manifest written to " << manifest_path << "\n";
  return 0;
}
