// Example: the collect-once / analyze-offline workflow. Real measurement
// campaigns run for weeks; analysis iterates for months afterwards. This
// example runs a small campaign, persists the raw artifacts (traceroute
// corpus + rDNS snapshot) to disk, then reloads them and re-runs phase 2
// of the pipeline without touching the network/simulator again.
//
//   ./build/examples/offline_analysis [output-dir] [--strict]
//       [--explain <co_a> <co_b>] [--trace-out <path>]
//
// Ingest policy: by default the reload is lenient — malformed corpus
// records are skipped-and-counted, and the manifest's ingest.* counters
// record how much data was dropped. With --strict the first malformed
// record aborts the analysis with a structured parse error.
//
// --explain prints the provenance transcript for one CO pair: supporting
// observation count, first/last supporting (vp,dst) traces, and the full
// rule-decision chain that created, kept, or removed the edge. The
// transcript is deterministic — byte-identical at any thread count.
//
// --trace-out records a Chrome trace-event timeline of the whole run
// (collection campaign shards + analysis stages); load the file in
// Perfetto or chrome://tracing.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/alias_resolution.hpp"
#include "core/cable_pipeline.hpp"
#include "core/corpus_index.hpp"
#include "core/corpus_io.hpp"
#include "core/eval.hpp"
#include "core/export.hpp"
#include "core/snapshot.hpp"
#include "dnssim/rdns.hpp"
#include "example_util.hpp"
#include "netbase/report.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  std::filesystem::path dir = "offline-study";
  auto mode = infer::IngestMode::kLenient;
  std::string explain_a;
  std::string explain_b;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      mode = infer::IngestMode::kStrict;
    } else if (std::strcmp(argv[i], "--explain") == 0 && i + 2 < argc) {
      explain_a = argv[i + 1];
      explain_b = argv[i + 2];
      i += 2;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[i + 1];
      ++i;
    } else if ((std::strcmp(argv[i], "--log-level") == 0 ||
                std::strcmp(argv[i], "--log-file") == 0 ||
                std::strcmp(argv[i], "--threads") == 0) &&
               i + 1 < argc) {
      ++i;  // parsed by example_util below
    } else {
      dir = argv[i];
    }
  }
  std::filesystem::create_directories(dir);
  const auto logger =
      examples::make_logger(argc, argv, dir, "offline_analysis");

  // One registry spans both phases; an optional tracer and the logger
  // ride on it and capture the campaign shards as well as the offline
  // stage timers.
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  obs::Tracer tracer;
  if (!trace_out.empty()) metrics.set_tracer(&tracer);

  // ---- collection phase (needs the "Internet") ------------------------
  sim::World world{808080};
  net::Rng rng{808080};
  auto profile = topo::comcast_profile();
  profile.regions = {
      {"study", {"mo", "ks"}, 26, {"kansas city,mo", "dallas,tx"}, {},
       false}};
  auto gen_rng = rng.fork();
  world.add_isp(topo::generate_cable(profile, gen_rng));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 16, vp_rng);
  world.finalize();
  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(0), {}, dns_rng);
  const auto snapshot = dns::age_snapshot(live, 0.02, dns_rng);

  std::cout << "collecting (campaign + alias probes)...\n";
  infer::CablePipelineConfig collect_config;
  collect_config.campaign.metrics = &metrics;
  const infer::CablePipeline pipeline{world, 0, {&live, &snapshot},
                                      collect_config};
  const auto collected = pipeline.run(vps);

  {
    std::ofstream os{dir / "corpus.txt"};
    infer::write_corpus(os, collected.corpus());
  }
  {
    std::ofstream os{dir / "rdns.txt"};
    infer::write_rdns(os, live);
  }
  std::cout << "saved " << collected.corpus().size() << " traces to "
            << (dir / "corpus.txt") << "\n";

  // ---- offline analysis phase (no simulator access) --------------------
  std::cout << "reloading and re-analyzing offline ("
            << infer::to_string(mode) << " ingest)...\n";
  std::ifstream corpus_in{dir / "corpus.txt"};
  std::ifstream rdns_in{dir / "rdns.txt"};
  const infer::IngestConfig ingest{mode, /*reject_duplicate_traces=*/false,
                                   &metrics, logger.get()};
  infer::ParseReport corpus_report;
  infer::ParseReport rdns_report;
  const auto corpus = infer::read_corpus(corpus_in, ingest, &corpus_report);
  const auto rdns_db = infer::read_rdns(rdns_in, ingest, &rdns_report);
  if (!corpus || !rdns_db) {
    const auto& failed = !corpus ? corpus_report : rdns_report;
    std::cerr << "reload failed: " << failed.summary() << "\n";
    return 1;
  }
  std::cout << "corpus ingest: " << corpus_report.summary() << "\n";

  const infer::RdnsSources sources{&*rdns_db, nullptr};
  const auto addrs = corpus->responding_addresses();
  const int threads = examples::threads(argc, argv);
  // Offline analysis has no live alias probes; B.1's rDNS + p2p passes
  // still apply (exactly the degraded mode the ablation bench measures).
  // One corpus scan (the index) feeds all three phase-2 kernels.
  obs::ProvenanceLog provenance;
  obs::StageTimer mapping_stage{&metrics, "b1_mapping"};
  const auto index = infer::CorpusIndex::build(*corpus);
  std::vector<infer::WeightedAdjacency> pairs;
  for (const auto& record : index.pairs())
    if (record.transit_count > 0)
      pairs.push_back({record.a, record.b,
                       static_cast<int>(record.transit_count),
                       record.last_transit_seq});
  const auto mapping = infer::build_co_mapping(
      addrs, pairs, infer::detect_p2p_len(addrs), sources,
      infer::RouterClusters{}, &provenance, logger.get());
  mapping_stage.add_items(addrs.size());
  mapping_stage.stop();
  obs::StageTimer prune_stage{&metrics, "b2_prune"};
  auto pruned = infer::build_and_prune(*corpus, index, mapping.map, {},
                                       &provenance, logger.get(), threads);
  prune_stage.add_items(pruned.stats.co_adj_initial);
  prune_stage.stop();
  obs::StageTimer refine_stage{&metrics, "refine"};
  infer::RefineOptions refine_options;
  refine_options.threads = threads;
  const auto refine_stats = infer::refine_regions(
      pruned.regions, index, mapping.map, refine_options, &provenance);
  refine_stage.add_items(pruned.regions.size());
  refine_stage.stop();
  mapping.stats.publish(metrics, "offline.b1");
  pruned.stats.publish(metrics, "offline.b2");
  refine_stats.publish(metrics, "offline.refine");

  // Freeze the offline result as a versioned TopologySnapshot, save it,
  // and reload: every export below comes from the *reloaded* artifact,
  // so this example doubles as an end-to-end check of the snapshot
  // format (the round-trip is byte-exact — tests/test_snapshot.cpp).
  const auto built = infer::TopologySnapshot::build(
      "offline", pruned.regions,
      std::make_shared<obs::ProvenanceLog>(provenance), 1);
  {
    std::ofstream os{dir / "snapshot.json"};
    built.save(os);
  }
  std::ifstream snapshot_in{dir / "snapshot.json"};
  std::string snapshot_error;
  const auto reloaded =
      infer::TopologySnapshot::load(snapshot_in, &snapshot_error);
  if (!reloaded) {
    std::cerr << "snapshot reload failed: " << snapshot_error << "\n";
    return 1;
  }
  std::cout << "snapshot saved to " << (dir / "snapshot.json")
            << " and reloaded (generation " << reloaded->generation()
            << ", " << reloaded->co_count() << " COs)\n";

  for (const auto& [name, region] : reloaded->regions()) {
    const auto graph = region.regional();
    const auto accuracy = infer::compare_with_truth(graph, world.isp(0));
    std::cout << "region " << name << ": " << graph.cos.size() << " COs, "
              << graph.edge_count() << " edges";
    if (accuracy)
      std::cout << ", precision "
                << net::fmt_percent(accuracy->edge_precision())
                << ", recall " << net::fmt_percent(accuracy->edge_recall());
    std::cout << "\n";
    std::ofstream dot{dir / (name + ".dot")};
    infer::write_dot(dot, graph, reloaded->provenance());
    std::ofstream json{dir / (name + ".json")};
    infer::write_json(json, graph, reloaded->provenance());
  }
  std::cout << "wrote per-region .dot and .json files to " << dir << "\n";

  if (!explain_a.empty()) {
    std::cout << "\n" << reloaded->provenance()->explain(explain_a,
                                                         explain_b);
  }

  obs::RunManifest manifest{"offline_analysis"};
  manifest.set_config("p2p_len",
                      static_cast<std::int64_t>(infer::detect_p2p_len(addrs)));
  manifest.set_config("ingest.mode", std::string{infer::to_string(mode)});
  manifest.add_summary("corpus", "traces",
                       static_cast<std::uint64_t>(corpus->size()));
  manifest.add_summary("corpus", "skipped_traces",
                       static_cast<std::uint64_t>(
                           corpus_report.skipped_traces));
  manifest.add_summary("corpus", "skipped_lines",
                       static_cast<std::uint64_t>(
                           corpus_report.skipped_lines));
  manifest.add_summary("corpus", "responding_addresses",
                       static_cast<std::uint64_t>(addrs.size()));
  manifest.add_summary("graph", "regions",
                       static_cast<std::uint64_t>(pruned.regions.size()));
  manifest.add_summary("snapshot", "cos",
                       static_cast<std::uint64_t>(reloaded->co_count()));
  manifest.add_summary("snapshot", "edges",
                       static_cast<std::uint64_t>(reloaded->edge_count()));
  manifest.capture(metrics);
  manifest.capture_provenance(provenance);
  if (manifest.write_file((dir / "offline_analysis_manifest.json").string()))
    std::cout << "run manifest written to "
              << (dir / "offline_analysis_manifest.json") << "\n";
  if (!trace_out.empty()) {
    if (tracer.write_file(trace_out))
      std::cout << "chrome trace (" << tracer.event_count()
                << " events) written to " << trace_out << "\n";
    else
      std::cerr << "failed to write trace to " << trace_out << "\n";
  }
  return 0;
}
