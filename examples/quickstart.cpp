// Quickstart: generate a small cable ISP, measure it from distributed
// vantage points exactly as §5 prescribes, and print the inferred regional
// topologies next to their accuracy against the hidden ground truth.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--threads N] [--log-level debug|...|off]
#include <iostream>

#include "core/cable_pipeline.hpp"
#include "core/eval.hpp"
#include "core/render.hpp"
#include "dnssim/rdns.hpp"
#include "example_util.hpp"
#include "netbase/report.hpp"
#include "obs/resource.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger = examples::make_logger(argc, argv, out, "quickstart");

  // 1. A hidden ground truth: a small Comcast-like ISP with three regions.
  topo::CableProfile profile = topo::comcast_profile();
  profile.name = "demo-cable";
  profile.regions = {
      {"rockies", {"co"}, 18, {"denver,co", "dallas,tx"}, {}, false},
      {"desertsw", {"az", "nm"}, 26, {"phoenix,az", "dallas,tx"}, {}, false},
      {"pacificnw", {"wa", "or"}, 40, {"seattle,wa", "portland,or"}, {},
       false},
  };
  net::Rng rng{2024};
  auto isp = topo::generate_cable(profile, rng);

  sim::World world{7};
  const int cable = world.add_isp(std::move(isp));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 24, vp_rng);
  world.finalize();

  // 2. The observable side: reverse DNS with realistic staleness, plus an
  //    aged bulk snapshot.
  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(cable), {}, dns_rng);
  const auto snapshot = dns::age_snapshot(live, 0.02, dns_rng);
  const infer::RdnsSources rdns{&live, &snapshot};

  // 3. Run the §5 pipeline, with the world's probe primitives and the
  //    campaign feeding one shared metrics registry.
  obs::Registry metrics;
  obs::ResourceProfiler resources;
  metrics.set_logger(logger.get());
  metrics.set_resource_profiler(&resources);
  world.set_metrics(&metrics);
  infer::CablePipelineConfig config;
  config.campaign.metrics = &metrics;
  config.campaign.parallelism = examples::threads(argc, argv, 0);
  const infer::CablePipeline pipeline{world, cable, rdns, config};
  auto study = pipeline.run(vps);

  std::cout << "demo-cable study\n"
            << "  traceroutes collected : " << study.corpus().size() << "\n"
            << "  sweep targets         : " << study.sweep_targets << "\n"
            << "  rDNS targets          : " << study.rdns_targets << "\n"
            << "  p2p subnets detected  : /" << study.p2p_len << "\n"
            << "  addresses mapped to COs: " << study.mapping.map.size()
            << "\n\n";

  net::TextTable table{{"region", "COs", "AggCOs", "edges", "entries",
                        "type", "edge precision", "edge recall"}};
  for (const auto& [name, graph] : study.regions()) {
    const auto accuracy = infer::compare_with_truth(graph, world.isp(cable));
    table.add_row({
        name,
        std::to_string(graph.cos.size()),
        std::to_string(graph.agg_cos.size()),
        std::to_string(graph.edge_count()),
        std::to_string(graph.backbone_entries.size()),
        std::string{to_string(infer::classify_region(graph))},
        accuracy ? net::fmt_percent(accuracy->edge_precision()) : "n/a",
        accuracy ? net::fmt_percent(accuracy->edge_recall()) : "n/a",
    });
  }
  table.print(std::cout);

  std::cout << "\nCO-mapping refinement (Table 3 shape)\n"
            << "  initial    : " << study.mapping.stats.initial << "\n"
            << "  alias chg  : " << study.mapping.stats.alias_changed
            << "  add " << study.mapping.stats.alias_added << "  rm "
            << study.mapping.stats.alias_removed << "\n"
            << "  p2p chg    : " << study.mapping.stats.p2p_changed
            << "  add " << study.mapping.stats.p2p_added << "\n"
            << "  final      : " << study.mapping.stats.final_count << "\n";

  // A sample annotated traceroute, Fig 5 style.
  for (const auto& trace : study.corpus().traces) {
    if (!trace.reached || trace.hops.size() < 5) continue;
    int mapped = 0;
    for (const auto& hop : trace.hops)
      mapped += study.mapping.map.get(hop.addr) != nullptr;
    if (mapped < 3) continue;
    std::cout << "\nsample annotated traceroute (Fig 5 style)\n"
              << infer::render_trace(trace, rdns, &study.mapping.map);
    break;
  }

  const auto& ps = study.adjacency.stats;
  std::cout << "\nAdjacency pruning (Table 4 shape)\n"
            << "  IP adjacencies : " << ps.ip_adj_initial << " (backbone "
            << ps.ip_adj_backbone << ", cross-region "
            << ps.ip_adj_cross_region << ", single " << ps.ip_adj_single
            << ")\n"
            << "  CO adjacencies : " << ps.co_adj_initial << " (backbone "
            << ps.co_adj_backbone << ", cross-region "
            << ps.co_adj_cross_region << ", single " << ps.co_adj_single
            << ")\n";

  const auto manifest_path = (out / "quickstart_manifest.json").string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "\nrun manifest written to " << manifest_path << "\n";
  return 0;
}
