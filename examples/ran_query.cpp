// Tiny line-oriented client for `ran_serve`: sends each request line and
// prints the daemon's reply line — the protocol in its entirety.
//
//   ./build/examples/ran_query --port <p> ['{"op":"stats"}' ...]
//
// Requests come from the positional arguments when given, otherwise from
// stdin (one JSON object per line), so both
//   ./build/examples/ran_query --port 7000 '{"op":"ping"}'
//   echo '{"op":"ping"}' | ./build/examples/ran_query --port 7000
// work. Exit status is 1 when the connection fails or any reply carries
// "ok":false, which makes the client usable as a smoke-test probe.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "netbase/socket.hpp"

namespace {

/// Reads one newline-terminated reply from the stream into `line`.
bool read_reply(ran::net::TcpStream& stream, std::string& buffer,
                std::string& line) {
  using ReadResult = ran::net::TcpStream::ReadResult;
  for (;;) {
    const auto pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    std::size_t n = 0;
    const auto result = stream.read_some(chunk, sizeof(chunk), 10000, &n);
    if (result != ReadResult::kData) return false;
    buffer.append(chunk, n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ran;
  std::uint16_t port = 0;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
      ++i;
    } else {
      requests.emplace_back(argv[i]);
    }
  }
  if (port == 0) {
    std::cerr << "usage: ran_query --port <p> [request-line ...]\n";
    return 2;
  }
  auto stream = net::TcpStream::connect_local(port);
  if (!stream.valid()) {
    std::cerr << "cannot connect to 127.0.0.1:" << port << "\n";
    return 1;
  }
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line))
      if (!line.empty()) requests.push_back(line);
  }

  std::string buffer;
  bool all_ok = true;
  for (const auto& request : requests) {
    if (!stream.send_all(request + "\n")) {
      std::cerr << "send failed\n";
      return 1;
    }
    std::string reply;
    if (!read_reply(stream, buffer, reply)) {
      std::cerr << "connection lost before reply\n";
      return 1;
    }
    std::cout << reply << "\n";
    if (reply.find("\"ok\":false") != std::string::npos) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
