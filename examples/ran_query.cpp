// Tiny line-oriented client for `ran_serve`: sends each request line and
// prints the daemon's reply line — the protocol in its entirety.
//
//   ./build/examples/ran_query --port <p> [--repeat <n>]
//       [--interval-ms <ms>] ['{"op":"stats"}' ...]
//
// Requests come from the positional arguments when given, otherwise from
// stdin (one JSON object per line), so both
//   ./build/examples/ran_query --port 7000 '{"op":"ping"}'
//   echo '{"op":"ping"}' | ./build/examples/ran_query --port 7000
// work. Exit status is 1 when the connection fails or any reply carries
// "ok":false, which makes the client usable as a smoke-test probe.
//
// --repeat N replays the whole request list N times (with an optional
// --interval-ms pause between rounds) and prints a client-side latency
// summary (min/p50/p99/max microseconds, per round trip) to stderr when
// done — a one-binary load probe for eyeballing a live daemon. Replies
// are printed for the first round only; later rounds just measure.
// Failed replies are additionally counted per QueryReason slug (the
// daemon's stable error taxonomy), so a soak that degrades says *why* —
// "4973 ok, 27 error (timeout=25, no_snapshot=2)" instead of one
// undifferentiated error count.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "netbase/socket.hpp"

namespace {

/// Reads one newline-terminated reply from the stream into `line`.
bool read_reply(ran::net::TcpStream& stream, std::string& buffer,
                std::string& line) {
  using ReadResult = ran::net::TcpStream::ReadResult;
  for (;;) {
    const auto pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    std::size_t n = 0;
    const auto result = stream.read_some(chunk, sizeof(chunk), 10000, &n);
    if (result != ReadResult::kData) return false;
    buffer.append(chunk, n);
  }
}

/// The value at quantile q of a sorted sample (nearest-rank).
std::uint64_t quantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Extracts the QueryReason slug from a failed reply line
/// (`..."reason":"timeout"...`); "unknown" when the reply carries none
/// (connection-level failures fabricate no reason).
std::string reason_of(const std::string& reply) {
  const auto key = reply.find("\"reason\"");
  if (key == std::string::npos) return "unknown";
  auto pos = reply.find(':', key + 8);
  if (pos == std::string::npos) return "unknown";
  ++pos;
  while (pos < reply.size() &&
         (reply[pos] == ' ' || reply[pos] == '\t'))
    ++pos;
  if (pos >= reply.size() || reply[pos] != '"') return "unknown";
  const auto end = reply.find('"', pos + 1);
  if (end == std::string::npos) return "unknown";
  return reply.substr(pos + 1, end - pos - 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ran;
  using Clock = std::chrono::steady_clock;
  std::uint16_t port = 0;
  int repeat = 1;
  int interval_ms = 0;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max(1, std::atoi(argv[i + 1]));
      ++i;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::max(0, std::atoi(argv[i + 1]));
      ++i;
    } else {
      requests.emplace_back(argv[i]);
    }
  }
  if (port == 0) {
    std::cerr << "usage: ran_query --port <p> [--repeat <n>] "
                 "[--interval-ms <ms>] [request-line ...]\n";
    return 2;
  }
  auto stream = net::TcpStream::connect_local(port);
  if (!stream.valid()) {
    std::cerr << "cannot connect to 127.0.0.1:" << port << "\n";
    return 1;
  }
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line))
      if (!line.empty()) requests.push_back(line);
  }

  std::string buffer;
  bool all_ok = true;
  std::uint64_t ok_replies = 0;
  std::map<std::string, std::uint64_t> error_reasons;
  std::vector<std::uint64_t> latencies_us;
  latencies_us.reserve(requests.size() * static_cast<std::size_t>(repeat));
  for (int round = 0; round < repeat; ++round) {
    if (round > 0 && interval_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds{interval_ms});
    for (const auto& request : requests) {
      const auto begin = Clock::now();
      if (!stream.send_all(request + "\n")) {
        std::cerr << "send failed\n";
        return 1;
      }
      std::string reply;
      if (!read_reply(stream, buffer, reply)) {
        std::cerr << "connection lost before reply\n";
        return 1;
      }
      latencies_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - begin)
              .count()));
      if (round == 0) std::cout << reply << "\n";
      if (reply.find("\"ok\":false") != std::string::npos) {
        all_ok = false;
        ++error_reasons[reason_of(reply)];
      } else {
        ++ok_replies;
      }
    }
  }
  if (repeat > 1) {
    std::sort(latencies_us.begin(), latencies_us.end());
    std::cerr << "latency_us over " << latencies_us.size()
              << " round trips: min=" << latencies_us.front()
              << " p50=" << quantile(latencies_us, 0.5)
              << " p99=" << quantile(latencies_us, 0.99)
              << " max=" << latencies_us.back() << "\n";
    std::uint64_t errors = 0;
    for (const auto& [reason, count] : error_reasons) errors += count;
    std::cerr << "replies: " << ok_replies << " ok, " << errors
              << " error";
    if (!error_reasons.empty()) {
      std::cerr << " (";
      bool first = true;
      for (const auto& [reason, count] : error_reasons) {
        if (!first) std::cerr << ", ";
        first = false;
        std::cerr << reason << "=" << count;
      }
      std::cerr << ")";
    }
    std::cerr << "\n";
  }
  return all_ok ? 0 : 1;
}
