// The `ran_serve` daemon: maps a cable ISP (or loads a previously saved
// snapshot), publishes the result into a SnapshotHub, and answers
// concurrent topology queries over a loopback JSON-lines protocol until
// SIGINT / --duration expires.
//
//   ./build/examples/ran_serve [--port <p>] [--workers <n>]
//       [--snapshot <file>] [--save-snapshot <file>] [--fixture]
//       [--republish-every <seconds>] [--duration <seconds>]
//       [--port-file <file>] [--telemetry-every <seconds>]
//       [--recorder-capacity <n>] [--burst-threshold <n>]
//
// With --snapshot the daemon skips the measurement campaign entirely and
// serves the saved artifact — the collect-once / serve-forever split.
// --fixture serves a tiny built-in synthetic topology instead (starts in
// milliseconds; what the serve_obs_gate CI test runs against).
// With --republish-every N a background thread rebuilds the snapshot as
// a new generation every N seconds and atomically publishes it;
// in-flight queries keep the generation they started on (the SnapshotHub
// contract), so republishing is invisible except in `ping`'s generation.
//
// Live telemetry (the observability tentpole):
//   * --port-file writes the bound port once serving starts, so
//     scripted clients need no stdout parsing;
//   * --telemetry-every S atomically (temp file + rename) rewrites
//     <out>/ran_serve_telemetry.json (rolling manifest) and
//     <out>/ran_serve_metrics.prom (Prometheus exposition) every S
//     seconds — point a file-based scraper at either;
//   * every answered request lands in a FlightRecorder ring; SIGUSR1
//     dumps the last-N records to <out>/ran_serve_flight.jsonl, the
//     admin {"op":"dump"} reply carries them over the wire, and
//     --burst-threshold N auto-dumps to <out>/ran_serve_burst.jsonl
//     when more than N errors land within one second.
//
// On shutdown the run manifest records the serving metrics: request and
// per-reason error counters plus the per-op request latency histograms
// (count/mean/p50/p90/p99) under volatile.histograms.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "core/cable_pipeline.hpp"
#include "core/latency_study.hpp"
#include "core/snapshot.hpp"
#include "dnssim/rdns.hpp"
#include "example_util.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/manifest.hpp"
#include "obs/provenance.hpp"
#include "serve/server.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

namespace {

std::atomic<bool> g_interrupted{false};
std::atomic<bool> g_dump_requested{false};

void on_signal(int) { g_interrupted.store(true); }
void on_dump_signal(int) { g_dump_requested.store(true); }

/// Writes `body` to `path` atomically (temp file + rename): a concurrent
/// reader sees either the previous complete file or the new one, never a
/// half-written scrape.
bool write_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os{tmp, std::ios::trunc};
    if (!os) return false;
    os << body;
    if (!os.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// The built-in --fixture topology: two small regions with measured
/// RTTs and a provenance log — enough surface for every op, built in
/// microseconds. Deterministic, so gate runs are reproducible.
std::shared_ptr<const ran::infer::TopologySnapshot> fixture_snapshot() {
  using namespace ran;
  std::map<std::string, infer::RegionalGraph> regions;
  infer::RegionalGraph& spring = regions["springfield"];
  spring.region = "springfield";
  spring.add_edge("agg1", "edge1", 12);
  spring.add_edge("agg1", "edge2", 9);
  spring.add_edge("agg2", "edge2", 4);
  spring.add_edge("agg2", "edge3", 7);
  spring.agg_cos = {"agg1", "agg2"};
  infer::RegionalGraph& shelby = regions["shelbyville"];
  shelby.region = "shelbyville";
  shelby.add_edge("hub1", "leaf1", 5);
  shelby.add_edge("hub1", "leaf2", 3);
  shelby.agg_cos = {"hub1"};
  auto provenance = std::make_shared<obs::ProvenanceLog>();
  provenance->add_support("agg1", "edge1", 12, "(vp1,10.0.0.1)",
                          "(vp7,10.0.9.9)");
  provenance->record("agg1", "edge1", "adj.transit", true, "12 transits");
  return std::make_shared<const infer::TopologySnapshot>(
      infer::TopologySnapshot::build(
          "fixture", regions, std::move(provenance), 1,
          {{"agg1", 4.0}, {"edge1", 6.5}, {"hub1", 3.0}}));
}

/// Rebuilds `snap` verbatim as generation `gen` — what a real re-ingest
/// would produce when the underlying measurements did not change.
ran::infer::TopologySnapshot rebuild_with_generation(
    const ran::infer::TopologySnapshot& snap, std::uint64_t gen) {
  using namespace ran;
  std::map<std::string, infer::RegionalGraph> regions;
  std::map<std::string, double> rtts;
  for (const auto& [name, region] : snap.regions()) {
    regions.emplace(name, region.regional());
    for (const auto& [co, ms] : region.co_rtt_ms()) rtts[co] = ms;
  }
  std::shared_ptr<const obs::ProvenanceLog> provenance;
  if (snap.provenance() != nullptr)
    provenance = std::make_shared<obs::ProvenanceLog>(*snap.provenance());
  return infer::TopologySnapshot::build(snap.source(), regions,
                                        std::move(provenance), gen, rtts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ran;
  std::uint16_t port = 0;
  int workers = 4;
  std::string snapshot_path;
  std::string save_path;
  std::string port_file;
  int republish_every_s = 0;
  int duration_s = 0;
  int telemetry_every_s = 0;
  std::size_t recorder_capacity = 256;
  std::uint64_t burst_threshold = 0;
  bool use_fixture = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fixture") == 0) use_fixture = true;
    if (i + 1 >= argc) break;
    if (std::strcmp(argv[i], "--port") == 0)
      port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    else if (std::strcmp(argv[i], "--workers") == 0)
      workers = std::atoi(argv[i + 1]);
    else if (std::strcmp(argv[i], "--snapshot") == 0)
      snapshot_path = argv[i + 1];
    else if (std::strcmp(argv[i], "--save-snapshot") == 0)
      save_path = argv[i + 1];
    else if (std::strcmp(argv[i], "--port-file") == 0)
      port_file = argv[i + 1];
    else if (std::strcmp(argv[i], "--republish-every") == 0)
      republish_every_s = std::atoi(argv[i + 1]);
    else if (std::strcmp(argv[i], "--duration") == 0)
      duration_s = std::atoi(argv[i + 1]);
    else if (std::strcmp(argv[i], "--telemetry-every") == 0)
      telemetry_every_s = std::atoi(argv[i + 1]);
    else if (std::strcmp(argv[i], "--recorder-capacity") == 0)
      recorder_capacity =
          static_cast<std::size_t>(std::atoll(argv[i + 1]));
    else if (std::strcmp(argv[i], "--burst-threshold") == 0)
      burst_threshold = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
  }
  const auto out = examples::out_dir(argc, argv);
  const auto logger = examples::make_logger(argc, argv, out, "ran_serve");
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  obs::FlightRecorderConfig recorder_config;
  recorder_config.capacity = std::max<std::size_t>(1, recorder_capacity);
  recorder_config.burst_threshold = burst_threshold;
  recorder_config.burst_path = (out / "ran_serve_burst.jsonl").string();
  obs::FlightRecorder recorder{recorder_config};

  // ---- obtain a snapshot: fixture, load from disk, or map an ISP -------
  std::shared_ptr<const infer::TopologySnapshot> snapshot;
  if (use_fixture) {
    snapshot = fixture_snapshot();
    std::cout << "serving the built-in fixture topology ("
              << snapshot->co_count() << " COs, " << snapshot->edge_count()
              << " edges)\n";
  } else if (!snapshot_path.empty()) {
    std::ifstream is{snapshot_path};
    std::string error;
    auto loaded = infer::TopologySnapshot::load(is, &error);
    if (!loaded) {
      std::cerr << "failed to load " << snapshot_path << ": " << error
                << "\n";
      return 1;
    }
    snapshot =
        std::make_shared<const infer::TopologySnapshot>(std::move(*loaded));
    std::cout << "loaded snapshot generation " << snapshot->generation()
              << " (" << snapshot->co_count() << " COs, "
              << snapshot->edge_count() << " edges) from " << snapshot_path
              << "\n";
  } else {
    std::cout << "mapping a Comcast-like ISP (§5 pipeline)...\n";
    sim::World world{909090};
    net::Rng rng{909090};
    auto profile = topo::comcast_profile();
    auto gen_rng = rng.fork();
    const int isp = world.add_isp(topo::generate_cable(profile, gen_rng));
    auto vp_rng = rng.fork();
    const auto vps = vp::add_distributed_vps(world, 24, vp_rng);
    world.finalize();
    auto dns_rng = rng.fork();
    const auto live = dns::make_rdns(world.isp(isp), {}, dns_rng);
    const auto aged = dns::age_snapshot(live, 0.02, dns_rng);
    infer::CablePipelineConfig config;
    config.campaign.metrics = &metrics;
    config.campaign.parallelism = examples::threads(argc, argv, 0);
    const infer::CablePipeline pipeline{world, isp, {&live, &aged}, config};
    const auto study = pipeline.run(vps);
    snapshot = study.snapshot();
    std::cout << "study complete: " << snapshot->co_count() << " COs, "
              << snapshot->edge_count() << " edges across "
              << snapshot->regions().size() << " regions\n";
  }
  if (!save_path.empty()) {
    std::ofstream os{save_path};
    snapshot->save(os);
    std::cout << "snapshot saved to " << save_path << "\n";
  }

  // ---- publish and serve ----------------------------------------------
  infer::SnapshotHub hub;
  hub.attach_metrics(&metrics);
  hub.publish(snapshot);

  serve::ServerConfig server_config;
  server_config.port = port;
  server_config.worker_threads = workers;
  server_config.metrics = &metrics;
  server_config.log = logger.get();
  server_config.recorder = &recorder;
  serve::Server server{hub, server_config};
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "failed to start: " << error << "\n";
    return 1;
  }
  if (!port_file.empty() &&
      !write_atomic(port_file, std::to_string(server.port()) + "\n"))
    std::cerr << "warning: could not write " << port_file << "\n";
  std::cout << "serving on 127.0.0.1:" << server.port() << " with "
            << workers << " workers — try\n  echo '{\"op\":\"stats\"}' | "
            << "./build/examples/ran_query --port " << server.port()
            << "\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGUSR1, on_dump_signal);

  // Optional rolling telemetry: every S seconds scrape the registry and
  // atomically rewrite the manifest + exposition files. Scrapes are
  // delta-free (nothing is reset), so this thread and any wire scraper
  // never perturb each other.
  const auto telemetry_json = (out / "ran_serve_telemetry.json").string();
  const auto telemetry_prom = (out / "ran_serve_metrics.prom").string();
  std::atomic<bool> telemetry_stop{false};
  std::thread telemetry;
  if (telemetry_every_s > 0) {
    telemetry = std::thread{[&] {
      while (!telemetry_stop.load()) {
        for (int tick = 0; tick < telemetry_every_s * 10; ++tick) {
          if (telemetry_stop.load()) return;
          std::this_thread::sleep_for(std::chrono::milliseconds{100});
        }
        const auto scrape = metrics.scrape();
        write_atomic(telemetry_prom, obs::render_prometheus(scrape));
        obs::RunManifest rolling{"ran_serve"};
        rolling.add_summary("snapshot", "generation",
                            hub.get()->generation());
        rolling.add_summary("serve", "scrape_seq", scrape.scrape_seq);
        rolling.capture(metrics);
        write_atomic(telemetry_json,
                     rolling.to_json(obs::ManifestOptions{
                         .include_timings = true}) +
                         "\n");
      }
    }};
  }

  // Optional background re-ingest: rebuild + atomically publish a new
  // generation on a timer. Queries racing the publish are answered from
  // whichever generation they pinned first — never a torn mix.
  std::atomic<bool> republish_stop{false};
  std::thread republisher;
  if (republish_every_s > 0) {
    republisher = std::thread{[&] {
      std::uint64_t gen = snapshot->generation();
      while (!republish_stop.load()) {
        for (int tick = 0; tick < republish_every_s * 10; ++tick) {
          if (republish_stop.load()) return;
          std::this_thread::sleep_for(std::chrono::milliseconds{100});
        }
        auto next = std::make_shared<const infer::TopologySnapshot>(
            rebuild_with_generation(*hub.get(), ++gen));
        hub.publish(next);
        std::cout << "republished as generation " << gen << "\n";
      }
    }};
  }

  const auto flight_path = (out / "ran_serve_flight.jsonl").string();
  const auto started = std::chrono::steady_clock::now();
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
    if (g_dump_requested.exchange(false)) {
      if (recorder.dump_file(flight_path))
        std::cout << "flight record (" << recorder.record_count()
                  << " requests seen) dumped to " << flight_path << "\n";
      else
        std::cerr << "warning: could not write " << flight_path << "\n";
    }
    if (duration_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds{duration_s})
      break;
  }

  std::cout << "shutting down...\n";
  republish_stop.store(true);
  telemetry_stop.store(true);
  if (republisher.joinable()) republisher.join();
  if (telemetry.joinable()) telemetry.join();
  server.stop();

  obs::RunManifest manifest{"ran_serve"};
  manifest.set_config("workers", static_cast<std::int64_t>(workers));
  manifest.add_summary("snapshot", "generation", hub.get()->generation());
  manifest.add_summary("snapshot", "publishes", hub.publish_count());
  manifest.add_summary("snapshot", "cos",
                       static_cast<std::uint64_t>(hub.get()->co_count()));
  manifest.add_summary("serve", "flight_records", recorder.record_count());
  manifest.add_summary("serve", "burst_dumps", recorder.burst_dumps());
  manifest.add_summary("serve", "request_ids",
                       server.engine().request_ids_issued());
  manifest.capture(metrics);
  const auto manifest_path = (out / "ran_serve_manifest.json").string();
  // The serving metrics ARE the point of this manifest and they are all
  // volatile (request counts, latency histogram) — opt into them.
  if (manifest.write_file(manifest_path,
                          obs::ManifestOptions{.include_timings = true}))
    std::cout << "run manifest written to " << manifest_path << "\n";
  return 0;
}
