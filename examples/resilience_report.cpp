// Example application (§8 "Resiliency"): single-failure exposure of every
// inferred region of both cable ISPs — which COs are single points of
// failure and how large their blast radius is. The Charter-like ISP's
// thinner redundancy (§5.3) shows up directly as larger correlated
// outages, echoing the Christmas-2020 Nashville analysis of §6.3.
#include <iostream>

#include "core/cable_pipeline.hpp"
#include "core/resilience.hpp"
#include "core/snapshot.hpp"
#include "example_util.hpp"
#include "dnssim/rdns.hpp"
#include "netbase/report.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

namespace {

void report_isp(const char* label, const ran::infer::CableStudy& study,
                const std::filesystem::path& out) {
  using namespace ran;
  // The single-failure analysis is precomputed at snapshot build time —
  // the same numbers the `resilience` query of ran_serve returns.
  net::TextTable table{{"region", "EdgeCOs", "entries", "SPOFs",
                        "worst blast radius", "worst CO"}};
  double worst = 0;
  for (const auto& [name, region] : study.snapshot()->regions()) {
    const auto& report = region.resilience();
    table.add_row({name, std::to_string(report.edge_cos),
                   std::to_string(report.entries),
                   std::to_string(report.single_points_of_failure),
                   net::fmt_percent(report.worst_blast_radius),
                   report.impacts.empty() ? "-" : report.impacts[0].co});
    worst = std::max(worst, report.worst_blast_radius);
  }
  std::cout << "--- " << label << " ---\n";
  table.print(std::cout);
  std::cout << "worst single-CO blast radius anywhere: "
            << net::fmt_percent(worst) << "\n";
  const std::string manifest_path =
      (out / (std::string{"resilience_"} + label + "_manifest.json"))
          .string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "run manifest written to " << manifest_path << "\n";
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger =
      examples::make_logger(argc, argv, out, "resilience_report");
  sim::World world{424242};
  net::Rng rng{424242};
  auto comcast_rng = rng.fork();
  auto charter_rng = rng.fork();
  const int comcast = world.add_isp(
      topo::generate_cable(topo::comcast_profile(), comcast_rng));
  const int charter = world.add_isp(
      topo::generate_cable(topo::charter_profile(), charter_rng));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 47, vp_rng);
  world.finalize();

  auto dns_rng = rng.fork();
  const auto live_c = dns::make_rdns(world.isp(comcast), {}, dns_rng);
  const auto snap_c = dns::age_snapshot(live_c, 0.02, dns_rng);
  const auto live_h = dns::make_rdns(world.isp(charter), {}, dns_rng);
  const auto snap_h = dns::age_snapshot(live_h, 0.015, dns_rng);

  std::cout << "mapping both ISPs (§5 pipeline)...\n\n";
  // Each pipeline gets its own registry (their stage trees and manifests
  // must not interleave) but both share the example's logger.
  obs::Registry metrics_c;
  obs::Registry metrics_h;
  metrics_c.set_logger(logger.get());
  metrics_h.set_logger(logger.get());
  infer::CablePipelineConfig config_c;
  config_c.campaign.metrics = &metrics_c;
  config_c.campaign.parallelism = examples::threads(argc, argv, 0);
  infer::CablePipelineConfig config_h = config_c;
  config_h.campaign.metrics = &metrics_h;
  const infer::CablePipeline comcast_pipeline{world, comcast,
                                              {&live_c, &snap_c}, config_c};
  const infer::CablePipeline charter_pipeline{world, charter,
                                              {&live_h, &snap_h}, config_h};
  report_isp("comcast-like", comcast_pipeline.run(vps), out);
  report_isp("charter-like", charter_pipeline.run(vps), out);

  std::cout << "reading: a SPOF is a CO whose single failure strands at\n"
               "least one EdgeCO; the blast radius is the stranded share\n"
               "of the region's EdgeCOs. Regions with one AggCO or chained\n"
               "EdgeCOs dominate both columns (§5.3, B.4).\n";
  return 0;
}
