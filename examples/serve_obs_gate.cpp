// serve_obs_gate: the end-to-end CI gate over the live serving
// telemetry. It starts a real `ran_serve --fixture` child process, runs
// a known mixed burst of ok and error requests over the wire, scrapes
// the `metrics` op before and after, and fails (exit 1) unless
//
//   * both exposition payloads parse under the documented grammar,
//   * every counter is monotonic across the two scrapes and the deltas
//     equal the replies this gate provoked (it is the daemon's only
//     client, and a reply is only sent after its telemetry committed —
//     so the arithmetic is exact, not approximate),
//   * the per-op latency histogram counts add up to the request count,
//   * `health` reports the fixture generation, the worker pool, and the
//     burst's errors in its window,
//   * `dump` returns the flight records of exactly the requests sent.
//
// The two scrapes are also written to <out>/scrape1.prom and
// <out>/scrape2.prom so the ctest can chain `manifest_diff --metrics`
// over real artifacts.
//
//   serve_obs_gate <path-to-ran_serve> [--out-dir <dir>]
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "example_util.hpp"
#include "netbase/json.hpp"
#include "netbase/socket.hpp"
#include "obs/exposition.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  std::cerr << "FAIL: " << what << "\n";
  ++g_failures;
}

bool read_reply(ran::net::TcpStream& stream, std::string& buffer,
                std::string& line) {
  using ReadResult = ran::net::TcpStream::ReadResult;
  for (;;) {
    const auto pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    std::size_t n = 0;
    const auto result = stream.read_some(chunk, sizeof(chunk), 10000, &n);
    if (result != ReadResult::kData) return false;
    buffer.append(chunk, n);
  }
}

double counter(const std::map<std::string, double>& scrape,
               const std::string& name) {
  const auto it = scrape.find(name);
  return it == scrape.end() ? -1.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ran;
  const char* server_binary = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      server_binary = argv[i];
      break;
    }
    ++i;  // every option of example_util takes a value
  }
  if (server_binary == nullptr) {
    std::cerr << "usage: serve_obs_gate <path-to-ran_serve> [--out-dir d]\n";
    return 2;
  }
  const auto out = examples::out_dir(argc, argv, "serve_obs_gate_out");
  const auto port_path = (out / "port.txt").string();
  const auto server_out = (out / "server").string();
  std::remove(port_path.c_str());

  // ---- start the daemon ------------------------------------------------
  const pid_t pid = fork();
  if (pid < 0) {
    std::cerr << "fork failed\n";
    return 2;
  }
  if (pid == 0) {
    if (std::freopen("/dev/null", "w", stdout) == nullptr) _exit(127);
    execl(server_binary, server_binary, "--fixture", "--port-file",
          port_path.c_str(), "--out-dir", server_out.c_str(), "--workers",
          "4", "--duration", "120", "--log-level", "off",
          static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  const auto stop_server = [&] {
    kill(pid, SIGTERM);
    int status = 0;
    for (int tick = 0; tick < 100; ++tick) {
      if (waitpid(pid, &status, WNOHANG) == pid) return;
      std::this_thread::sleep_for(std::chrono::milliseconds{100});
    }
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
  };

  std::uint16_t port = 0;
  for (int tick = 0; tick < 150 && port == 0; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds{100});
    std::ifstream in{port_path};
    int value = 0;
    if (in >> value && value > 0) port = static_cast<std::uint16_t>(value);
  }
  if (port == 0) {
    std::cerr << "FAIL: daemon never wrote " << port_path << "\n";
    stop_server();
    return 1;
  }

  auto stream = net::TcpStream::connect_local(port);
  if (!stream.valid()) {
    std::cerr << "FAIL: cannot connect to 127.0.0.1:" << port << "\n";
    stop_server();
    return 1;
  }
  std::string buffer;
  std::uint64_t requests_sent = 0;
  const auto rpc = [&](const std::string& request) {
    std::string reply;
    if (!stream.send_all(request + "\n") ||
        !read_reply(stream, buffer, reply)) {
      std::cerr << "FAIL: no reply for " << request << "\n";
      ++g_failures;
      return std::optional<net::JsonValue>{};
    }
    ++requests_sent;
    std::string error;
    auto parsed = net::parse_json(reply, &error);
    if (!parsed) {
      std::cerr << "FAIL: unparseable reply " << reply << ": " << error
                << "\n";
      ++g_failures;
    }
    return parsed;
  };
  const auto scrape = [&](const std::string& save_as) {
    std::map<std::string, double> samples;
    const auto reply = rpc("{\"op\":\"metrics\"}");
    if (!reply) return samples;
    const auto* exposition = reply->find("exposition");
    check(exposition != nullptr && exposition->is_string(),
          "metrics reply carries an exposition string");
    if (exposition == nullptr || !exposition->is_string()) return samples;
    std::string error;
    auto parsed = obs::parse_exposition(exposition->str, &error);
    check(parsed.has_value(), "exposition parses: " + error);
    if (!save_as.empty())
      std::ofstream{(out / save_as).string()} << exposition->str;
    if (parsed) samples = std::move(*parsed);
    return samples;
  };

  // ---- scrape 1, burst, scrape 2 ---------------------------------------
  const auto scrape1 = scrape("scrape1.prom");
  check(!scrape1.empty(), "first scrape returned samples");

  // The mixed burst: per-op ok counts and per-reason error counts this
  // gate will demand back from the counters.
  const std::map<std::string, std::uint64_t> ok_burst = {
      {"ping", 5}, {"stats", 3}, {"path", 4},
      {"resilience", 2}, {"explain", 1}};
  std::uint64_t ok_sent = 0;
  const std::string ok_lines[] = {
      "{\"op\":\"ping\"}",
      "{\"op\":\"stats\"}",
      "{\"op\":\"path\",\"region\":\"springfield\",\"from\":\"edge1\","
      "\"to\":\"edge3\"}",
      "{\"op\":\"resilience\",\"region\":\"shelbyville\"}",
      "{\"op\":\"explain\",\"from\":\"agg1\",\"to\":\"edge1\"}"};
  const char* ok_ops[] = {"ping", "stats", "path", "resilience", "explain"};
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::uint64_t n = 0; n < ok_burst.at(ok_ops[i]); ++n) {
      const auto reply = rpc(ok_lines[i]);
      if (!reply) break;
      const auto* ok = reply->find("ok");
      check(ok != nullptr && ok->b, std::string{ok_ops[i]} + " reply is ok");
      ++ok_sent;
    }
  }
  const std::map<std::string, std::uint64_t> error_burst = {
      {"unknown_op", 3}, {"missing_field", 2}, {"unknown_region", 1}};
  std::uint64_t errors_sent = 0;
  const std::pair<const char*, const char*> error_lines[] = {
      {"unknown_op", "{\"op\":\"teleport\"}"},
      {"missing_field", "{\"op\":\"path\",\"region\":\"springfield\"}"},
      {"unknown_region",
       "{\"op\":\"resilience\",\"region\":\"atlantis\"}"}};
  for (const auto& [reason, line] : error_lines) {
    for (std::uint64_t n = 0; n < error_burst.at(reason); ++n) {
      const auto reply = rpc(line);
      if (!reply) break;
      const auto* found = reply->find("reason");
      check(found != nullptr && found->is_string() && found->str == reason,
            std::string{"error reply carries reason "} + reason);
      ++errors_sent;
    }
  }

  const auto scrape2 = scrape("scrape2.prom");
  check(!scrape2.empty(), "second scrape returned samples");

  // ---- exact cross-checks ----------------------------------------------
  // A reply is sent only after its counters committed, and a `metrics`
  // request scrapes before counting itself — so scrape2 sees the whole
  // burst plus exactly one metrics request (scrape1's own).
  if (!scrape1.empty() && !scrape2.empty()) {
    for (const auto& [key, before] : scrape1) {
      const auto it = scrape2.find(key);
      check(it != scrape2.end(), "series " + key + " survived");
      if (it == scrape2.end()) continue;
      if (key.find("_p5") == std::string::npos &&
          key.find("_p9") == std::string::npos)
        check(it->second >= before, "series " + key + " is monotonic");
    }
    const auto delta = [&](const std::string& name) {
      return counter(scrape2, name) - counter(scrape1, name);
    };
    check(delta("ran_serve_requests") ==
              static_cast<double>(ok_sent + errors_sent + 1),
          "serve.requests delta equals the burst plus one scrape");
    check(delta("ran_serve_ok") == static_cast<double>(ok_sent + 1),
          "serve.ok delta equals the ok burst plus one scrape");
    for (const auto& [reason, expected] : error_burst)
      check(delta("ran_serve_error_" + reason) ==
                static_cast<double>(expected),
            "serve.error." + reason + " delta equals the burst");
    // Failed requests observe latency under their resolved op ("other"
    // when none resolved): the missing_field burst used op "path", the
    // unknown_region burst op "resilience", the unknown_op burst none.
    std::map<std::string, std::uint64_t> histogram_burst = ok_burst;
    histogram_burst["path"] += error_burst.at("missing_field");
    histogram_burst["resilience"] += error_burst.at("unknown_region");
    histogram_burst["other"] = error_burst.at("unknown_op");
    for (const auto& [op, expected] : histogram_burst)
      check(delta("ran_serve_latency_us_" + op + "_count") ==
                static_cast<double>(expected),
            "latency histogram count for " + op + " equals the burst");
    check(counter(scrape2, "ran_scrape_seq") ==
              counter(scrape1, "ran_scrape_seq") + 1,
          "scrape_seq advanced by exactly one");
    // Per-op histogram counts partition the request count.
    double histogram_total = 0;
    for (const auto& [key, value] : scrape2)
      if (key.size() > 6 &&
          key.compare(0, 20, "ran_serve_latency_us") == 0 &&
          key.compare(key.size() - 6, 6, "_count") == 0)
        histogram_total += value;
    check(histogram_total == counter(scrape2, "ran_serve_requests"),
          "per-op histogram counts add up to serve.requests");
  }

  // ---- health ----------------------------------------------------------
  if (const auto reply = rpc("{\"op\":\"health\"}")) {
    const auto* ready = reply->find("ready");
    check(ready != nullptr && ready->b, "health reports ready");
    const auto* generation = reply->find("generation");
    check(generation != nullptr && generation->num == 1.0,
          "health reports the fixture generation");
    const auto* workers = reply->find("workers");
    check(workers != nullptr && workers->is_object(),
          "health reports the worker pool");
    if (workers != nullptr && workers->is_object()) {
      const auto* total = workers->find("total");
      check(total != nullptr && total->num == 4.0,
            "health reports 4 workers");
    }
    const auto* window = reply->find("error_window");
    check(window != nullptr && window->is_object(),
          "health reports the error window");
    if (window != nullptr && window->is_object()) {
      const auto* errors = window->find("errors");
      check(errors != nullptr &&
                errors->num >= static_cast<double>(errors_sent),
            "error window saw the burst's errors");
    }
  }

  // ---- flight recorder dump --------------------------------------------
  if (const auto reply = rpc("{\"op\":\"dump\"}")) {
    const auto* records = reply->find("records");
    check(records != nullptr && records->is_array(),
          "dump reply carries records");
    if (records != nullptr && records->is_array()) {
      // Everything this gate sent so far except the dump itself (a
      // request's record commits before its reply is sent).
      check(records->array.size() == requests_sent - 1,
            "dump holds one record per answered request");
      double last_rid = 0;
      bool ascending = true;
      for (const auto& record : records->array) {
        const auto* rid = record.find("rid");
        if (rid == nullptr || rid->num <= last_rid) ascending = false;
        if (rid != nullptr) last_rid = rid->num;
      }
      check(ascending, "dump records carry strictly ascending rids");
      check(last_rid == static_cast<double>(requests_sent - 1),
            "last dumped rid is the request before the dump");
    }
    const auto* total = reply->find("recorded_total");
    check(total != nullptr &&
              total->num == static_cast<double>(requests_sent - 1),
          "recorded_total counts every answered request");
  }

  stop_server();
  if (g_failures == 0) {
    std::cout << "serve_obs_gate: all checks passed (" << requests_sent
              << " requests)\n";
    return 0;
  }
  std::cerr << "serve_obs_gate: " << g_failures << " check(s) failed\n";
  return 1;
}
