// Example: a full ShipTraceroute study of one mobile carrier — run the
// parcel campaign, recover the IPv6 address plan from bit statistics,
// cluster the samples into regions, and print the per-region latency to a
// San Diego server (the §7 workflow end-to-end).
//
//   ./build/examples/ship_mobile [att|verizon|tmobile]
#include <cstring>
#include <iostream>

#include "core/mobile_pipeline.hpp"
#include "example_util.hpp"
#include "netbase/report.hpp"
#include "netbase/strings.hpp"
#include "simnet/mobile_core.hpp"
#include "topogen/profiles.hpp"
#include "vantage/ship.hpp"

int main(int argc, char** argv) {
  using namespace ran;
  const auto out = examples::out_dir(argc, argv);
  const auto logger = examples::make_logger(argc, argv, out, "ship_mobile");
  const std::string carrier =
      argc > 1 && argv[1][0] != '-' ? argv[1] : "verizon";
  topo::MobileProfile profile;
  if (carrier == "att") {
    profile = topo::att_mobile_profile();
  } else if (carrier == "tmobile") {
    profile = topo::tmobile_profile();
  } else {
    profile = topo::verizon_profile();
  }

  std::cout << "generating the " << profile.name << " packet core...\n";
  net::Rng rng{1234};
  auto gen_rng = rng.fork();
  const auto isp = topo::generate_mobile(profile, gen_rng);
  const sim::MobileCore core{isp, 777};

  std::cout << "shipping the phone to 12 destinations (hourly rounds)...\n";
  vp::ShipConfig config;
  auto ship_rng = rng.fork();
  const net::GeoPoint server{32.72, -117.16};  // CAIDA, San Diego
  const auto campaign = vp::run_ship_campaign(core, config, server, ship_rng);
  std::cout << "  rounds: " << campaign.rounds_succeeded << "/"
            << campaign.rounds_attempted << " succeeded; states: "
            << campaign.states_visited.size() << "; energy: "
            << net::fmt_double(campaign.energy_used_mah, 0) << " mAh\n\n";

  infer::MobileStudyConfig study_config;
  obs::Registry metrics;
  metrics.set_logger(logger.get());
  study_config.campaign.metrics = &metrics;
  study_config.campaign.parallelism = examples::threads(argc, argv, 0);
  const auto study = infer::analyze_mobile(campaign, profile.name,
                                           isp.asn(), study_config);

  std::cout << "inferred address plan (Fig 16 style)\n"
            << "  user prefix : " << study.user_prefix.to_string() << "\n";
  for (const auto& field : study.user_fields) {
    if (field.role == "prefix") continue;
    std::cout << "  user " << field.role << " bits " << field.first_bit
              << "-" << field.first_bit + field.width - 1 << " ("
              << field.distinct_values << " values)\n";
  }
  std::cout << "  infra prefix: " << study.infra_prefix.to_string() << "\n";
  for (const auto& field : study.infra_fields) {
    if (field.role == "prefix") continue;
    std::cout << "  infra " << field.role << " bits " << field.first_bit
              << "-" << field.first_bit + field.width - 1 << " ("
              << field.distinct_values << " values)\n";
  }

  std::cout << "\nper-region summary (Fig 18 style)\n";
  net::TextTable table{{"region", "samples", "PGWs", "backbones",
                        "median RTT to SD"}};
  std::map<int, std::vector<double>> rtts;
  for (std::size_t i = 0; i < campaign.samples.size(); ++i)
    if (study.region_of_sample[i] >= 0)
      rtts[study.region_of_sample[i]].push_back(
          campaign.samples[i].min_rtt_to_server_ms);
  for (const auto& [index, values] : rtts) {
    const auto& region = study.regions[static_cast<std::size_t>(index)];
    table.add_row({region.label, std::to_string(region.samples),
                   std::to_string(region.pgw_values.size()),
                   std::to_string(region.backbone_asns.size()),
                   net::fmt_double(net::median(values), 0) + " ms"});
  }
  table.print(std::cout);

  const std::string manifest_path =
      (out / ("ship_mobile_" + profile.name + "_manifest.json")).string();
  if (study.manifest().write_file(manifest_path))
    std::cout << "\nrun manifest written to " << manifest_path << "\n";
  return 0;
}
