// trace_analyze: the contention-observability CLI — turns the Chrome
// trace JSON the pipelines emit into attributed answers (per-stage
// self/total time, the critical path, per-thread utilization, lock sites
// ranked by total wait), and can drive its own thread-sweep campaign to
// produce a parallel-efficiency report.
//
//   ./build/examples/trace_analyze [mode] [trace.json ...]
//
// Modes (default --report):
//   --report            human-readable analysis of the given trace files
//   --json              the full deterministic JSON report
//   --canonical         the scheduling-invariant canonical JSON (byte-
//                       identical across analyzer runs and thread counts)
//   --top N             cap ranked tables at N rows (default 10)
//   --compare A.json B.json
//                       per-stage speedup/efficiency of B against A
//                       (typically a 1-thread vs an N-thread trace)
//   --scaling           run a small cable-pipeline campaign at a thread
//                       sweep (1,2,4,.. up to --max-threads, default 8),
//                       print the per-stage efficiency table, and flag
//                       stages below --efficiency-threshold (default 0.5)
//   --self-check        run one traced pipeline, then cross-validate the
//                       analysis against the run's own manifest (stage
//                       wall times must agree) and re-analyze for
//                       canonical byte-stability; exit 1 on any mismatch
//
// Traces analyzed here round-trip what obs::Tracer writes; --scaling and
// --self-check write their generated traces/manifests under --out-dir.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cable_pipeline.hpp"
#include "dnssim/rdns.hpp"
#include "example_util.hpp"
#include "netbase/json.hpp"
#include "netbase/report.hpp"
#include "obs/manifest.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "simnet/world.hpp"
#include "topogen/profiles.hpp"
#include "vantage/vps.hpp"

namespace {

using namespace ran;

/// One traced pipeline run at a fixed thread count over a freshly built
/// (seed-identical) small cable world — the workload behind --scaling
/// and --self-check.
struct TracedRun {
  std::string trace_json;
  std::string manifest_json;
};

TracedRun run_traced_pipeline(int threads) {
  topo::CableProfile profile = topo::comcast_profile();
  profile.name = "trace-analyze";
  profile.regions.resize(2);
  net::Rng rng{2024};
  sim::World world{7};
  const int cable = world.add_isp(topo::generate_cable(profile, rng));
  auto vp_rng = rng.fork();
  const auto vps = vp::add_distributed_vps(world, 12, vp_rng);
  world.finalize();
  auto dns_rng = rng.fork();
  const auto live = dns::make_rdns(world.isp(cable), {}, dns_rng);
  const auto aged = dns::age_snapshot(live, 0.02, dns_rng);

  obs::Registry metrics;
  obs::Tracer tracer;
  obs::ResourceProfiler resources;
  metrics.set_tracer(&tracer);
  metrics.set_resource_profiler(&resources);
  world.set_metrics(&metrics);
  infer::CablePipelineConfig config;
  config.campaign.metrics = &metrics;
  config.campaign.parallelism = threads;
  const infer::CablePipeline pipeline{world, cable, {&live, &aged}, config};
  auto study = pipeline.run(vps);

  TracedRun out;
  out.trace_json = tracer.to_chrome_json();
  // The pipeline captured the registry (and the profiler) into the study
  // manifest itself; include_timings turns on the wall_ms / volatile /
  // concurrency sections the analyses below cross-check.
  out.manifest_json =
      study.manifest().to_json(obs::ManifestOptions{.include_timings = true});
  return out;
}

bool write_text(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void print_comparison(
    const std::vector<obs::TraceAnalysis::StageComparison>& rows,
    int workers) {
  net::TextTable table{
      {"stage", "base_ms", "other_ms", "speedup", "efficiency"}};
  for (const auto& row : rows)
    table.add_row(
        {row.name,
         net::fmt_double(static_cast<double>(row.base_us) / 1000.0),
         net::fmt_double(static_cast<double>(row.other_us) / 1000.0),
         net::fmt_double(row.speedup), net::fmt_double(row.efficiency)});
  std::cout << "per-stage scaling (" << workers << " worker thread(s))\n"
            << table.to_string();
}

int run_scaling(const std::filesystem::path& out, int max_threads,
                double threshold, std::size_t top_n) {
  std::vector<int> sweep;
  for (int t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.empty() || sweep.back() != max_threads)
    sweep.push_back(max_threads);

  std::map<int, obs::TraceAnalysis> analyses;
  for (const int t : sweep) {
    std::cout << "running traced cable pipeline at " << t
              << " thread(s)...\n";
    const auto run = run_traced_pipeline(t);
    const auto trace_path =
        (out / ("trace_scaling_t" + std::to_string(t) + ".json")).string();
    if (!write_text(trace_path, run.trace_json + "\n"))
      std::cerr << "warning: could not write " << trace_path << "\n";
    std::string error;
    if (!analyses[t].load_json(run.trace_json, &error)) {
      std::cerr << "analysis failed at " << t << " threads: " << error
                << "\n";
      return 1;
    }
  }

  const auto& base = analyses.at(sweep.front());
  std::cout << "\nbaseline (" << sweep.front() << " thread)\n"
            << base.report_text(top_n);
  bool flagged = false;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const int t = sweep[i];
    const auto& other = analyses.at(t);
    const auto rows = obs::TraceAnalysis::compare(base, other);
    std::cout << "\n=== " << sweep.front() << " -> " << t
              << " thread(s) ===\n";
    print_comparison(rows, other.worker_thread_count());
    if (t == sweep.back()) {
      for (const auto& row : rows) {
        if (row.name == "[wall]" || row.efficiency >= threshold) continue;
        flagged = true;
        std::cout << "FLAG: stage " << row.name << " efficiency "
                  << net::fmt_double(row.efficiency) << " < "
                  << net::fmt_double(threshold) << " at " << t
                  << " threads\n";
      }
    }
  }
  if (!flagged)
    std::cout << "\nno stage below the efficiency threshold ("
              << net::fmt_double(threshold) << ")\n";
  return 0;
}

int run_self_check(const std::filesystem::path& out, int threads,
                   std::size_t top_n) {
  std::cout << "self-check: running one traced cable pipeline at "
            << threads << " thread(s)...\n";
  const auto run = run_traced_pipeline(threads);
  const auto trace_path = (out / "trace_self_check.json").string();
  const auto manifest_path = (out / "trace_self_check_manifest.json").string();
  write_text(trace_path, run.trace_json + "\n");
  write_text(manifest_path, run.manifest_json + "\n");

  // Re-analyzing the same bytes twice must reproduce the canonical
  // report byte-for-byte — the analyzer half of the determinism story.
  obs::TraceAnalysis first;
  obs::TraceAnalysis second;
  std::string error;
  if (!first.load_file(trace_path, &error) ||
      !second.load_file(trace_path, &error)) {
    std::cerr << "self-check: " << error << "\n";
    return 1;
  }
  if (first.canonical_json() != second.canonical_json()) {
    std::cerr << "self-check FAILED: canonical reports differ between "
                 "analyzer runs\n";
    return 1;
  }
  if (first.unmatched_ends() != 0 || first.unclosed_spans() != 0) {
    std::cerr << "self-check FAILED: " << first.unmatched_ends()
              << " unmatched ends, " << first.unclosed_spans()
              << " unclosed spans\n";
    return 1;
  }

  // Cross-validate against the manifest: a pipeline stage's traced span
  // and its stage-tree wall_ms are two clocks around the same scope, so
  // they must agree within slack (tracer overhead plus rounding).
  const auto manifest = net::parse_json(run.manifest_json);
  if (!manifest) {
    std::cerr << "self-check FAILED: cannot parse own manifest\n";
    return 1;
  }
  int checked = 0;
  bool ok = true;
  const auto* stages = manifest->find("stages");
  const auto* children =
      stages != nullptr ? stages->find("children") : nullptr;
  if (children != nullptr && children->is_array()) {
    for (const auto& stage : children->array) {
      const auto* name = stage.find("name");
      const auto* wall = stage.find("wall_ms");
      if (name == nullptr || !name->is_string() || wall == nullptr ||
          !wall->is_number())
        continue;
      const auto it = first.spans().find(name->str);
      if (it == first.spans().end()) {
        std::cerr << "self-check FAILED: manifest stage \"" << name->str
                  << "\" has no traced span\n";
        ok = false;
        continue;
      }
      const double span_ms =
          static_cast<double>(it->second.total_us) / 1000.0;
      const double slack = 30.0 + 0.25 * std::max(span_ms, wall->num);
      if (span_ms > wall->num + slack || wall->num > span_ms + slack) {
        std::cerr << "self-check FAILED: stage \"" << name->str
                  << "\" traced " << span_ms << " ms vs manifest "
                  << wall->num << " ms (slack " << slack << ")\n";
        ok = false;
      }
      ++checked;
    }
  }
  if (checked == 0) {
    std::cerr << "self-check FAILED: no manifest stages to validate\n";
    return 1;
  }
  if (!ok) return 1;
  std::cout << first.report_text(top_n) << "\nself-check passed: "
            << checked << " stage(s) cross-validated, canonical report "
            << "byte-stable (" << trace_path << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kReport, kJson, kCanonical, kCompare, kScaling,
                    kSelfCheck };
  Mode mode = Mode::kReport;
  std::size_t top_n = 10;
  double threshold = 0.5;
  int max_threads = 8;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--report") == 0) mode = Mode::kReport;
    else if (std::strcmp(arg, "--json") == 0) mode = Mode::kJson;
    else if (std::strcmp(arg, "--canonical") == 0) mode = Mode::kCanonical;
    else if (std::strcmp(arg, "--compare") == 0) mode = Mode::kCompare;
    else if (std::strcmp(arg, "--scaling") == 0) mode = Mode::kScaling;
    else if (std::strcmp(arg, "--self-check") == 0) mode = Mode::kSelfCheck;
    else if (std::strcmp(arg, "--top") == 0 && i + 1 < argc)
      top_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(arg, "--efficiency-threshold") == 0 && i + 1 < argc)
      threshold = std::atof(argv[++i]);
    else if (std::strcmp(arg, "--max-threads") == 0 && i + 1 < argc)
      max_threads = std::max(1, std::atoi(argv[++i]));
    else if (std::strcmp(arg, "--out-dir") == 0 ||
             std::strcmp(arg, "--log-level") == 0 ||
             std::strcmp(arg, "--log-file") == 0 ||
             std::strcmp(arg, "--threads") == 0)
      ++i;  // handled by example_util
    else if (arg[0] == '-' && arg[1] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else
      files.emplace_back(arg);
  }
  const auto out = ran::examples::out_dir(argc, argv);

  if (mode == Mode::kScaling)
    return run_scaling(out, max_threads, threshold, top_n);
  if (mode == Mode::kSelfCheck)
    return run_self_check(out, ran::examples::threads(argc, argv, 8),
                          top_n);

  if (mode == Mode::kCompare) {
    if (files.size() != 2) {
      std::cerr << "--compare needs exactly two trace files\n";
      return 2;
    }
    ran::obs::TraceAnalysis base;
    ran::obs::TraceAnalysis other;
    std::string error;
    if (!base.load_file(files[0], &error) ||
        !other.load_file(files[1], &error)) {
      std::cerr << error << "\n";
      return 1;
    }
    print_comparison(ran::obs::TraceAnalysis::compare(base, other),
                     other.worker_thread_count());
    return 0;
  }

  if (files.empty()) {
    std::cerr << "usage: trace_analyze [--report|--json|--canonical] "
                 "[--top N] trace.json ...\n"
                 "       trace_analyze --compare A.json B.json\n"
                 "       trace_analyze --scaling [--max-threads N] "
                 "[--efficiency-threshold F]\n"
                 "       trace_analyze --self-check [--threads N]\n";
    return 2;
  }
  ran::obs::TraceAnalysis analysis;
  for (const auto& file : files) {
    std::string error;
    if (!analysis.load_file(file, &error)) {
      std::cerr << error << "\n";
      return 1;
    }
  }
  if (mode == Mode::kJson)
    std::cout << analysis.report_json() << "\n";
  else if (mode == Mode::kCanonical)
    std::cout << analysis.canonical_json() << "\n";
  else
    std::cout << analysis.report_text(top_n);
  return 0;
}
