#include "alias_resolution.hpp"

#include <algorithm>
#include <numeric>

namespace ran::infer {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

RouterClusters::RouterClusters(
    std::span<const net::IPv4Address> addrs,
    const std::vector<std::pair<net::IPv4Address, net::IPv4Address>>&
        mercator_pairs,
    const probe::AliasGroups& midar_groups) {
  std::unordered_map<net::IPv4Address, std::size_t> index;
  std::vector<net::IPv4Address> universe;
  auto intern = [&](net::IPv4Address addr) {
    const auto [it, inserted] = index.emplace(addr, universe.size());
    if (inserted) universe.push_back(addr);
    return it->second;
  };
  for (const auto addr : addrs) intern(addr);
  for (const auto& [a, b] : mercator_pairs) {
    intern(a);
    intern(b);
  }
  for (const auto& group : midar_groups)
    for (const auto addr : group) intern(addr);

  UnionFind uf{universe.size()};
  for (const auto& [a, b] : mercator_pairs) uf.unite(index[a], index[b]);
  for (const auto& group : midar_groups)
    for (std::size_t i = 1; i < group.size(); ++i)
      uf.unite(index[group[0]], index[group[i]]);

  std::unordered_map<std::size_t, int> root_to_cluster;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const auto root = uf.find(i);
    const auto [it, inserted] =
        root_to_cluster.emplace(root, static_cast<int>(clusters_.size()));
    if (inserted) clusters_.emplace_back();
    clusters_[static_cast<std::size_t>(it->second)].push_back(universe[i]);
    id_of_.emplace(universe[i], it->second);
  }
  for (auto& cluster : clusters_) std::sort(cluster.begin(), cluster.end());
}

std::optional<int> RouterClusters::cluster_of(net::IPv4Address addr) const {
  const auto it = id_of_.find(addr);
  if (it == id_of_.end()) return std::nullopt;
  return it->second;
}

std::size_t RouterClusters::alias_cluster_count() const {
  std::size_t count = 0;
  for (const auto& cluster : clusters_)
    if (cluster.size() >= 2) ++count;
  return count;
}

RouterClusters resolve_aliases(const sim::World& world,
                               std::span<const net::IPv4Address> addrs) {
  const auto mercator = probe::mercator_resolve(world, addrs);
  const auto midar = probe::midar_resolve(world, addrs);
  return RouterClusters{addrs, mercator, midar};
}

}  // namespace ran::infer
