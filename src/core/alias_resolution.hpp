// Router clustering from alias-resolution probes (§5.1).
//
// Combines Mercator pairs and MIDAR groups into connected components;
// each component is one inferred router. Addresses that no probe paired
// remain singleton clusters.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "probe/alias.hpp"

namespace ran::infer {

class RouterClusters {
 public:
  RouterClusters() = default;

  /// Builds singleton clusters over `addrs`, then merges by the given
  /// alias evidence.
  RouterClusters(
      std::span<const net::IPv4Address> addrs,
      const std::vector<std::pair<net::IPv4Address, net::IPv4Address>>&
          mercator_pairs,
      const probe::AliasGroups& midar_groups);

  /// Cluster id of an address (stable, dense); nullopt for unknown addrs.
  [[nodiscard]] std::optional<int> cluster_of(net::IPv4Address addr) const;

  [[nodiscard]] const std::vector<std::vector<net::IPv4Address>>& clusters()
      const {
    return clusters_;
  }

  /// Number of multi-address clusters (actual alias discoveries).
  [[nodiscard]] std::size_t alias_cluster_count() const;

 private:
  std::unordered_map<net::IPv4Address, int> id_of_;
  std::vector<std::vector<net::IPv4Address>> clusters_;
};

/// Runs both alias-resolution techniques over `addrs` against the world
/// and builds clusters.
[[nodiscard]] RouterClusters resolve_aliases(
    const sim::World& world, std::span<const net::IPv4Address> addrs);

}  // namespace ran::infer
