#include "att_pipeline.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "corpus_io.hpp"
#include "dnssim/extract.hpp"
#include "footprint.hpp"
#include "netbase/clli.hpp"
#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "probe/campaign.hpp"
#include "snapshot.hpp"

namespace ran::infer {

namespace {

/// Classification of an address during the AT&T study.
enum class AttAddrClass { kBackbone, kEdge, kAgg, kLspgw, kOther };

}  // namespace

PathCoverage count_distinct_paths(const TraceCorpus& corpus) {
  PathCoverage out;
  out.traces = corpus.size();
  std::set<std::string> paths;
  for (const auto& trace : corpus.traces) {
    std::string key;
    bool first = true;
    for (const auto& hop : trace.hops) {
      if (first) {  // skip the first hop (the VP's own gateway)
        first = false;
        continue;
      }
      if (!hop.responded()) continue;
      key += hop.addr.to_string();
      key += '>';
    }
    if (!key.empty()) paths.insert(std::move(key));
  }
  out.distinct_paths = paths.size();
  return out;
}

AttPipeline::AttPipeline(const sim::World& world, int isp_index,
                         RdnsSources rdns, AttPipelineConfig config)
    : world_(world),
      isp_index_(isp_index),
      rdns_(rdns),
      config_(config) {
  RAN_EXPECTS(isp_index >= 0 && isp_index < world.isp_count());
}

std::map<std::string, std::vector<net::IPv4Address>>
AttPipeline::discover_lspgws() const {
  RAN_EXPECTS(rdns_.snapshot != nullptr);
  std::map<std::string, std::vector<net::IPv4Address>> out;
  for (const auto& [addr, name] : rdns_.snapshot->entries()) {
    const auto info = dns::extract_hostname(name);
    if (info.kind != dns::HostKind::kLightspeed) continue;
    out[info.metro_code].push_back(addr);
  }
  for (auto& [metro, addrs] : out) std::sort(addrs.begin(), addrs.end());
  return out;
}

AttRegionStudy AttPipeline::map_region(
    const std::string& metro,
    std::span<const std::pair<sim::ProbeSource, std::string>> vps) const {
  RAN_EXPECTS(!vps.empty());
  AttRegionStudy study;
  study.region = metro;
  // Every run is instrumented so the manifest is always complete; a
  // caller-provided registry simply aggregates across runs too.
  obs::Registry local_metrics;
  obs::Registry& metrics = config_.campaign.metrics != nullptr
                               ? *config_.campaign.metrics
                               : local_metrics;
  probe::CampaignConfig campaign = config_.campaign;
  campaign.metrics = &metrics;
  const probe::CampaignRunner runner{world_, campaign};
  obs::Log* log = metrics.logger();
  if (log != nullptr)
    log->info("att.run", "AT&T pipeline starting for metro " + metro);

  // ---- Step 1-2: bootstrap traceroutes to the region's lspgws ----------
  const auto regions = discover_lspgws();
  const auto it = regions.find(metro);
  RAN_EXPECTS(it != regions.end());
  std::vector<net::IPv4Address> lspgws = it->second;
  if (static_cast<int>(lspgws.size()) > config_.max_bootstrap_targets)
    lspgws.resize(static_cast<std::size_t>(config_.max_bootstrap_targets));

  TraceCorpus bootstrap;
  {
    obs::StageTimer stage{&metrics, "bootstrap"};
    stage.add_items(lspgws.size());
    std::vector<probe::ProbeTask> tasks;
    tasks.reserve(vps.size() * lspgws.size());
    for (const auto& [src, label] : vps)
      for (const auto target : lspgws)
        tasks.push_back({src, label, target, 0});
    bootstrap.traces = runner.run(tasks);
  }

  std::unordered_set<net::IPv4Address> lspgw_set{lspgws.begin(),
                                                 lspgws.end()};
  auto classify_rdns = [&](net::IPv4Address addr) {
    const auto name = rdns_.lookup(addr);
    if (!name) return AttAddrClass::kOther;
    const auto info = dns::extract_hostname(*name);
    if (info.kind == dns::HostKind::kBackboneRouter)
      return AttAddrClass::kBackbone;
    if (info.kind == dns::HostKind::kLightspeed)
      return AttAddrClass::kLspgw;
    return AttAddrClass::kOther;
  };

  // Region tag: the LAST backbone hop before entering the region on
  // traces that reached the metro's lspgws (majority vote).
  std::map<std::string, int> tag_votes;
  for (const auto& trace : bootstrap.traces) {
    if (!trace.reached) continue;
    std::string last_tag;
    for (const auto& hop : trace.hops) {
      if (!hop.responded()) continue;
      if (classify_rdns(hop.addr) != AttAddrClass::kBackbone) continue;
      const auto name = rdns_.lookup(hop.addr);
      last_tag = dns::extract_hostname(*name).region;
    }
    if (!last_tag.empty()) ++tag_votes[last_tag];
  }
  // Among well-supported tags, prefer the one whose decoded city sits
  // nearest the lightspeed metro (geographic sanity, App. C footnote):
  // per-interface rDNS gaps can otherwise split the vote between the
  // region's own tandem and the neighbour it is reached through.
  int max_votes = 0;
  for (const auto& [tag, votes] : tag_votes)
    max_votes = std::max(max_votes, votes);
  const auto* metro_city = net::clli6_lookup(metro);
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& [tag, votes] : tag_votes) {
    if (votes * 4 < max_votes) continue;  // noise tags
    const auto info = dns::extract_hostname("cr1." + tag + ".ip.att.net");
    double km = 1e17;  // undecodable tags lose to decodable ones
    if (info.city != nullptr && metro_city != nullptr)
      km = net::haversine_km(info.city->location, metro_city->location);
    if (km < best_km) {
      best_km = km;
      study.backbone_tag = tag;
    }
  }
  if (log != nullptr && study.backbone_tag.empty())
    log->warn("att.backbone_tag",
              "metro " + metro +
                  ": no backbone tag identified from bootstrap traces; "
                  "regional anchoring will miss backbone routers");

  // ---- Step 3: discover the region's router /24s ------------------------
  // A hop qualifies as a regional router interface only when it is
  // unnamed, inside the ISP's space, NOT the trace's final hop, and
  // adjacent to an anchor: a lightspeed hop of this metro, this region's
  // backbone router, or an address in an already-accepted /24. Requiring
  // two distinct addresses per /24, each seen at least twice, filters the
  // anomalous hops of §5.2.1 and keeps the sweep regional.
  const auto& isp = world_.isp(isp_index_);
  // Candidate router addresses with observation counts: an address must be
  // seen adjacent to an anchor at least twice (anomalous hops are one-off,
  // §5.2.1), and a /24 needs two such addresses before it is swept.
  std::map<net::IPv4Address, int> candidate_counts;
  auto harvest = [&](const TraceCorpus& corpus,
                     std::set<std::uint32_t>& slash24s) {
    for (const auto& trace : corpus.traces) {
      const auto& hops = trace.hops;
      int last_responding = -1;
      std::vector<bool> anchor(hops.size(), false);
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (!hops[i].responded()) continue;
        last_responding = static_cast<int>(i);
        const auto cls = classify_rdns(hops[i].addr);
        if (cls == AttAddrClass::kBackbone) {
          const auto name = rdns_.lookup(hops[i].addr);
          anchor[i] =
              dns::extract_hostname(*name).region == study.backbone_tag;
        } else if (cls == AttAddrClass::kLspgw) {
          const auto name = rdns_.lookup(hops[i].addr);
          anchor[i] = dns::extract_hostname(*name).metro_code == metro;
        } else if (slash24s.contains(hops[i].addr.value() >> 8)) {
          anchor[i] = true;
        }
      }
      for (int i = 0; i < last_responding; ++i) {
        const auto& hop = hops[static_cast<std::size_t>(i)];
        if (!hop.responded() || !isp.owns(hop.addr)) continue;
        if (lspgw_set.contains(hop.addr)) continue;
        const bool near_anchor =
            (i > 0 && anchor[static_cast<std::size_t>(i - 1)]) ||
            anchor[static_cast<std::size_t>(i + 1)];
        if (!near_anchor) continue;
        const auto cls = classify_rdns(hop.addr);
        if (cls == AttAddrClass::kBackbone || cls == AttAddrClass::kLspgw)
          continue;
        ++candidate_counts[hop.addr];
      }
    }
    std::map<std::uint32_t, int> corroborated;
    for (const auto& [addr, count] : candidate_counts)
      if (count >= 2) ++corroborated[addr.value() >> 8];
    std::size_t added = 0;
    for (const auto& [s24, addrs] : corroborated) {
      if (addrs < 2) continue;
      added += slash24s.insert(s24).second;
    }
    return added;
  };
  {
    obs::StageTimer stage{&metrics, "harvest"};
    stage.add_items(harvest(bootstrap, study.router_slash24s));
  }

  // ---- Step 4: Direct Path Revelation over the router prefixes ----------
  // Iterated: each round can expose a deeper layer whose own /24 (the
  // backbone-facing aggregation prefix) only becomes visible once DPR
  // reveals it (Table 5/6).
  study.traces = std::move(bootstrap);
  {
    obs::StageTimer stage{&metrics, "dpr"};
    std::set<std::uint32_t> swept;
    for (int round = 0; round < 3; ++round) {
      TraceCorpus dpr;
      // Target-major task order, matching the serial loops this replaces.
      std::vector<probe::ProbeTask> tasks;
      for (const auto s24 : study.router_slash24s) {
        if (!swept.insert(s24).second) continue;
        const net::IPv4Prefix prefix{net::IPv4Address{s24 << 8}, 24};
        for (std::uint64_t i = 0; i < prefix.size(); ++i) {
          const auto target = prefix.at(i);
          for (const auto& [src, label] : vps)
            tasks.push_back({src, label, target, 0});
        }
      }
      stage.add_items(tasks.size());
      dpr.traces = runner.run(tasks);
      const auto new_prefixes = harvest(dpr, study.router_slash24s);
      study.traces.merge(std::move(dpr));
      if (new_prefixes == 0) break;
    }
  }

  // Ingest boundary: validate the assembled corpus under the configured
  // policy and publish the ingest.* data-quality counters (see
  // CablePipeline::run for the rationale).
  {
    IngestConfig ingest = config_.ingest;
    ingest.metrics = &metrics;
    if (ingest.log == nullptr) ingest.log = log;
    const auto ingest_report = validate_corpus(study.traces, ingest);
    RAN_EXPECTS(ingest.mode == IngestMode::kLenient || ingest_report.ok());
  }

  // ---- Step 5: alias resolution + classification -------------------------
  std::vector<net::IPv4Address> router_addrs;
  for (const auto addr : study.traces.responding_addresses()) {
    if (lspgw_set.contains(addr)) continue;
    if (study.router_slash24s.contains(addr.value() >> 8) ||
        classify_rdns(addr) == AttAddrClass::kBackbone)
      router_addrs.push_back(addr);
  }
  std::sort(router_addrs.begin(), router_addrs.end());
  {
    obs::StageTimer stage{&metrics, "alias"};
    stage.add_items(router_addrs.size());
    study.routers = resolve_aliases(world_, router_addrs);
  }
  obs::StageTimer classify_stage{&metrics, "classify"};

  // Per-cluster classification: backbone by rDNS; edge by adjacency to a
  // lightspeed hop; agg otherwise.
  const auto n_clusters = study.routers.clusters().size();
  classify_stage.add_items(n_clusters);
  // Backbone clusters belong to this study only when their rDNS carries
  // the region's own tag (a nearby-region VP also reveals its own cr).
  std::vector<bool> is_backbone(n_clusters), is_edge(n_clusters);
  std::vector<bool> is_foreign_backbone(n_clusters);
  for (std::size_t c = 0; c < n_clusters; ++c) {
    for (const auto addr : study.routers.clusters()[c]) {
      if (classify_rdns(addr) != AttAddrClass::kBackbone) continue;
      const auto name = rdns_.lookup(addr);
      if (dns::extract_hostname(*name).region == study.backbone_tag)
        is_backbone[c] = true;
      else
        is_foreign_backbone[c] = true;
    }
  }
  for (std::size_t c = 0; c < n_clusters; ++c)
    if (is_backbone[c]) is_foreign_backbone[c] = false;

  // Edge detection + EdgeCO clustering: routers one hop from the same
  // last-mile device share a CO (§6.2). A (router, lspgw) adjacency must
  // recur before it counts — a single anomalous hop must not promote an
  // aggregation router to the edge (§5.2.1's noise discipline).
  std::map<std::pair<int, net::IPv4Address>, int> adjacency_counts;
  for (const auto& trace : study.traces.traces) {
    const auto& hops = trace.hops;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (!hops[i].responded() || !hops[i + 1].responded()) continue;
      const bool a_lspgw = lspgw_set.contains(hops[i].addr);
      const bool b_lspgw = lspgw_set.contains(hops[i + 1].addr);
      if (a_lspgw == b_lspgw) continue;
      const auto router_addr = a_lspgw ? hops[i + 1].addr : hops[i].addr;
      const auto lspgw_addr = a_lspgw ? hops[i].addr : hops[i + 1].addr;
      const auto cluster = study.routers.cluster_of(router_addr);
      if (!cluster) continue;
      ++adjacency_counts[{*cluster, lspgw_addr}];
    }
  }
  std::unordered_map<net::IPv4Address, std::set<int>> lspgw_neighbors;
  auto router_key = [](int cluster) {
    return net::format("router-%d", cluster);
  };
  for (const auto& [key, count] : adjacency_counts) {
    if (count < 2) {
      // One-off (router, lspgw) sightings stay out of the edge class;
      // record why so --explain can answer for AT&T edges too.
      study.edge_provenance.record(
          router_key(key.first), key.second.to_string(),
          "att.edge_adjacency", false,
          net::format("only %d observation(s) of this (router, lspgw) "
                      "adjacency (s5.2.1 noise discipline)",
                      count));
      continue;
    }
    study.edge_provenance.record(
        router_key(key.first), key.second.to_string(),
        "att.edge_adjacency", true,
        net::format("%d observations adjacent to a last-mile gateway "
                    "(s6.2)",
                    count));
    is_edge[static_cast<std::size_t>(key.first)] = true;
    lspgw_neighbors[key.second].insert(key.first);
  }
  // Union routers sharing a last-mile device into EdgeCOs.
  std::vector<int> co_parent(n_clusters);
  std::iota(co_parent.begin(), co_parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (co_parent[static_cast<std::size_t>(x)] != x) {
      x = co_parent[static_cast<std::size_t>(x)] =
          co_parent[static_cast<std::size_t>(
              co_parent[static_cast<std::size_t>(x)])];
    }
    return x;
  };
  for (const auto& [lspgw, routers] : lspgw_neighbors) {
    auto it2 = routers.begin();
    const int first = *it2;
    for (++it2; it2 != routers.end(); ++it2)
      co_parent[static_cast<std::size_t>(find(*it2))] = find(first);
  }
  std::map<int, int> routers_per_co;
  for (std::size_t c = 0; c < n_clusters; ++c) {
    if (!is_edge[c]) continue;
    ++routers_per_co[find(static_cast<int>(c))];
  }
  for (const auto& [root, count] : routers_per_co)
    study.routers_per_edge_co.push_back(count);
  std::sort(study.routers_per_edge_co.begin(),
            study.routers_per_edge_co.end());

  // Counts + adjacency structure.
  std::set<std::pair<int, int>> backbone_agg_pairs;
  std::map<int, std::set<int>> edge_to_agg;
  for (const auto& trace : study.traces.traces) {
    const auto& hops = trace.hops;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (!hops[i].responded() || !hops[i + 1].responded()) continue;
      const auto ca = study.routers.cluster_of(hops[i].addr);
      const auto cb = study.routers.cluster_of(hops[i + 1].addr);
      if (!ca || !cb || *ca == *cb) continue;
      auto kind = [&](int c) {
        if (is_foreign_backbone[static_cast<std::size_t>(c)])
          return AttAddrClass::kOther;
        if (is_backbone[static_cast<std::size_t>(c)])
          return AttAddrClass::kBackbone;
        if (is_edge[static_cast<std::size_t>(c)]) return AttAddrClass::kEdge;
        return AttAddrClass::kAgg;
      };
      const auto ka = kind(*ca);
      const auto kb = kind(*cb);
      if ((ka == AttAddrClass::kBackbone && kb == AttAddrClass::kAgg))
        backbone_agg_pairs.emplace(*ca, *cb);
      if ((kb == AttAddrClass::kBackbone && ka == AttAddrClass::kAgg))
        backbone_agg_pairs.emplace(*cb, *ca);
      if (ka == AttAddrClass::kAgg && kb == AttAddrClass::kEdge)
        edge_to_agg[*cb].insert(*ca);
      if (kb == AttAddrClass::kAgg && ka == AttAddrClass::kEdge)
        edge_to_agg[*ca].insert(*cb);
    }
  }
  study.backbone_agg_links = static_cast<int>(backbone_agg_pairs.size());
  for (const auto& [bb, agg] : backbone_agg_pairs)
    study.edge_provenance.record(
        router_key(bb), router_key(agg), "att.backbone_agg", true,
        "observed (backbone router, aggregation router) adjacency "
        "(s6.2 full-mesh check)");
  std::set<int> aggs;
  for (const auto& [bb, agg] : backbone_agg_pairs) aggs.insert(agg);
  for (const auto& [edge, agg_set] : edge_to_agg) {
    aggs.insert(agg_set.begin(), agg_set.end());
    study.agg_links_per_edge_router[edge] =
        static_cast<int>(agg_set.size());
  }
  for (std::size_t c = 0; c < n_clusters; ++c) {
    if (is_backbone[c]) ++study.backbone_routers;
    else if (is_edge[c]) ++study.edge_routers;
  }
  study.agg_routers = static_cast<int>(aggs.size());
  classify_stage.stop();

  // ---- Run manifest ------------------------------------------------------
  auto& manifest = study.run_manifest;
  manifest.set_name("att." + metro);
  manifest.set_config("trace.max_ttl",
                      static_cast<std::int64_t>(config_.campaign.trace.max_ttl));
  manifest.set_config(
      "trace.attempts",
      static_cast<std::int64_t>(config_.campaign.trace.attempts));
  manifest.set_config(
      "trace.gap_limit",
      static_cast<std::int64_t>(config_.campaign.trace.gap_limit));
  manifest.set_config(
      "max_bootstrap_targets",
      static_cast<std::int64_t>(config_.max_bootstrap_targets));
  manifest.set_config("ingest.mode",
                      std::string{to_string(config_.ingest.mode)});
  manifest.add_summary("campaign", "vps",
                       static_cast<std::uint64_t>(vps.size()));
  manifest.add_summary("campaign", "bootstrap_targets", lspgws.size());
  manifest.add_summary("corpus", "traces", study.traces.size());
  manifest.add_summary("corpus", "responding_addresses",
                       study.traces.responding_addresses().size());
  manifest.add_summary("clusters", "alias_clusters",
                       static_cast<std::uint64_t>(
                           study.routers.alias_cluster_count()));
  manifest.add_summary("graph", "backbone_tag", study.backbone_tag);
  manifest.add_summary(
      "graph", "backbone_routers",
      static_cast<std::uint64_t>(study.backbone_routers));
  manifest.add_summary("graph", "agg_routers",
                       static_cast<std::uint64_t>(study.agg_routers));
  manifest.add_summary("graph", "edge_routers",
                       static_cast<std::uint64_t>(study.edge_routers));
  manifest.add_summary("graph", "edge_cos",
                       static_cast<std::uint64_t>(study.edge_cos()));
  manifest.add_summary("graph", "router_slash24s",
                       study.router_slash24s.size());
  if (auto* profiler = metrics.resource_profiler(); profiler != nullptr) {
    profiler->set_structure_bytes("corpus", approx_bytes(study.traces));
    profiler->set_structure_bytes("alias_clusters",
                                  approx_bytes(study.routers));
    profiler->set_structure_bytes("provenance",
                                  approx_bytes(study.edge_provenance));
    manifest.capture_resources(*profiler);
  }
  // Freeze the router-level structure into the queryable snapshot: the
  // same (backbone router -> agg router -> edge router) adjacencies the
  // provenance log records, as one RegionalGraph keyed by the metro.
  // MPLS hides AT&T's CO boundaries (§6), so router clusters are the
  // honest node granularity here — nothing is invented for serving.
  {
    RegionalGraph graph;
    graph.region = metro;
    for (const auto& [bb, agg] : backbone_agg_pairs) {
      graph.add_edge(router_key(bb), router_key(agg), 1);
      graph.agg_cos.insert(router_key(bb));
      graph.agg_cos.insert(router_key(agg));
      graph.backbone_entries[router_key(bb)].insert(router_key(agg));
    }
    for (const auto& [edge, agg_set] : edge_to_agg)
      for (const auto agg : agg_set) {
        graph.add_edge(router_key(agg), router_key(edge), 1);
        graph.agg_cos.insert(router_key(agg));
      }
    std::map<std::string, RegionalGraph> regions;
    regions.emplace(metro, std::move(graph));
    study.topology =
        std::make_shared<const TopologySnapshot>(TopologySnapshot::build(
            "att", regions,
            std::make_shared<obs::ProvenanceLog>(study.edge_provenance),
            1));
  }

  manifest.capture(metrics);
  manifest.capture_provenance(study.edge_provenance);
  return study;
}

std::map<net::IPv4Address, double> AttPipeline::edge_co_latency(
    const sim::ProbeSource& cloud_vp,
    std::span<const net::IPv4Address> customer_hints,
    const std::string& backbone_tag, int pings) const {
  const probe::CampaignRunner runner{world_, config_.campaign};
  std::map<net::IPv4Address, double> best;
  std::vector<probe::ProbeTask> tasks;
  tasks.reserve(customer_hints.size());
  for (const auto customer : customer_hints)
    tasks.push_back({cloud_vp, "cloud", customer, 0});
  for (const auto& trace : runner.run(tasks)) {
    if (!trace.reached || trace.hops.size() < 2) continue;
    // Keep only traces entering via the region's BackboneCO (§6.3).
    bool via_backbone = false;
    for (const auto& hop : trace.hops) {
      if (!hop.responded()) continue;
      const auto name = rdns_.lookup(hop.addr);
      if (!name) continue;
      const auto info = dns::extract_hostname(*name);
      via_backbone |= info.kind == dns::HostKind::kBackboneRouter &&
                      info.region == backbone_tag;
    }
    if (!via_backbone) continue;
    // The device in the EdgeCO is the hop above the customer's last-mile
    // gateway; elicit replies with TTL-limited echo, keep the minimum RTT.
    int penultimate_ttl = -1;
    net::IPv4Address penultimate;
    int responding_seen = 0;
    for (std::size_t i = trace.hops.size() - 1; i-- > 0;) {
      if (!trace.hops[i].responded() || trace.hops[i].addr == trace.dst)
        continue;
      if (++responding_seen < 2) continue;  // skip the gateway itself
      penultimate_ttl = trace.hops[i].ttl;
      penultimate = trace.hops[i].addr;
      break;
    }
    if (penultimate_ttl < 0) continue;
    for (int p = 0; p < pings; ++p) {
      const auto reply = world_.ping_ttl(cloud_vp, trace.dst, penultimate_ttl,
                                         static_cast<std::uint64_t>(p));
      if (!reply.responded) continue;
      const auto it = best.find(penultimate);
      if (it == best.end() || reply.rtt_ms < it->second)
        best[penultimate] = reply.rtt_ms;
    }
  }
  return best;
}

}  // namespace ran::infer
