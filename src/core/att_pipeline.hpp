// The §6 / App. C methodology for opaque telco access networks (AT&T):
//
//  1. Bootstrap: mine the bulk rDNS snapshot for lightspeed lspgw names,
//     whose 6-char metro codes define the regions (37 found in the paper).
//  2. Trace to lspgws from internal and nearby-region VPs; the replies
//     reveal the BackboneCO router (named cr*.<tag>.ip.att.net) and the
//     unnamed EdgeCO routers, while MPLS hides the AggCOs.
//  3. Harvest the unnamed in-network hop addresses to discover the few
//     per-region /24s holding EdgeCO/AggCO router interfaces (Table 6).
//  4. Direct Path Revelation: trace to every address in those /24s,
//     exposing the aggregation layer (Table 5).
//  5. Alias-resolve, classify routers (backbone by rDNS; edge by
//     adjacency to lspgws; agg otherwise), and cluster EdgeCO routers by
//     the last-mile devices they share (§6.2).
//  6. Latency (§6.3 / Table 2): TTL-limited echo via customer addresses,
//     expiring at the penultimate (EdgeCO) hop.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "alias_resolution.hpp"
#include "observations.hpp"
#include "parse_report.hpp"
#include "probe/campaign.hpp"
#include "study.hpp"
#include "vantage/vps.hpp"

namespace ran::infer {

struct AttPipelineConfig {
  /// Campaign execution shared by all pipelines: per-trace options,
  /// parallelism, metrics sink.
  probe::CampaignConfig campaign;
  /// Corpus-boundary policy (see CablePipelineConfig::ingest).
  IngestConfig ingest;
  /// Cap on lspgw bootstrap targets per region (probing cost control).
  int max_bootstrap_targets = 400;
};

/// The inferred structure of one AT&T region (Fig 13). Corpus, clusters,
/// and manifest live in the shared StudyBase.
struct AttRegionStudy : StudyBase {
  std::string region;  ///< metro code, e.g. "sndgca"
  std::string backbone_tag;  ///< e.g. "sd2ca", from cr rDNS

  // Router-level inference (Fig 13a).
  int backbone_routers = 0;
  int agg_routers = 0;
  int edge_routers = 0;
  /// EdgeCOs from last-mile clustering, with their router counts (§6.2).
  std::vector<int> routers_per_edge_co;
  /// Aggregation-router connections per edge router (redundancy).
  std::map<int, int> agg_links_per_edge_router;
  /// Fully-connected check: distinct (backbone router, agg router) pairs.
  int backbone_agg_links = 0;

  // Table 6: the /24s holding the region's router interfaces.
  std::set<std::uint32_t> router_slash24s;

  [[nodiscard]] int edge_cos() const {
    return static_cast<int>(routers_per_edge_co.size());
  }
};

/// §6.1 path-coverage accounting (Ark/Atlas vs McTraceroute).
struct PathCoverage {
  std::size_t distinct_paths = 0;
  std::size_t traces = 0;
};

/// Distinct IP paths (responding-hop sequences from the second hop on).
[[nodiscard]] PathCoverage count_distinct_paths(const TraceCorpus& corpus);

class AttPipeline {
 public:
  AttPipeline(const sim::World& world, int isp_index, RdnsSources rdns,
              AttPipelineConfig config = {});

  /// Region discovery: metro code -> lspgw addresses (from the snapshot).
  [[nodiscard]] std::map<std::string, std::vector<net::IPv4Address>>
  discover_lspgws() const;

  /// Maps one region from the given internal vantage points.
  [[nodiscard]] AttRegionStudy map_region(
      const std::string& metro,
      std::span<const std::pair<sim::ProbeSource, std::string>> vps) const;

  /// §6.3: EdgeCO latency from a cloud VM via TTL-limited echo toward
  /// customer addresses (the M-Lab/NetAcuity-derived hints). Returns the
  /// min RTT per distinct penultimate (EdgeCO) address.
  [[nodiscard]] std::map<net::IPv4Address, double> edge_co_latency(
      const sim::ProbeSource& cloud_vp,
      std::span<const net::IPv4Address> customer_hints,
      const std::string& backbone_tag, int pings = 10) const;

 private:
  const sim::World& world_;
  int isp_index_;
  RdnsSources rdns_;
  AttPipelineConfig config_;
};

}  // namespace ran::infer
