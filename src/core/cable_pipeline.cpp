#include "cable_pipeline.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "corpus_index.hpp"
#include "corpus_io.hpp"
#include "footprint.hpp"
#include "latency_study.hpp"
#include "snapshot.hpp"
#include "netbase/contracts.hpp"
#include "obs/log.hpp"
#include "obs/resource.hpp"
#include "probe/campaign.hpp"

namespace ran::infer {

int detect_p2p_len(std::span<const net::IPv4Address> addrs) {
  std::unordered_set<net::IPv4Address> seen{addrs.begin(), addrs.end()};
  int evidence31 = 0;
  int evidence30 = 0;
  for (const auto addr : addrs) {
    const auto mate31 = net::p2p_mate(addr, 31);
    if (mate31 && *mate31 != addr && seen.contains(*mate31)) ++evidence31;
    const auto mate30 = net::p2p_mate(addr, 30);
    if (mate30 && seen.contains(*mate30)) ++evidence30;
  }
  // Every /30 mate pair is also a /31 pair only when addresses fall on
  // offsets 1/2 of blocks of four — which never form a /31 pair — so the
  // two signals are disjoint and directly comparable.
  return evidence31 > evidence30 ? 31 : 30;
}

CablePipeline::CablePipeline(const sim::World& world, int isp_index,
                             RdnsSources rdns, CablePipelineConfig config)
    : world_(world),
      isp_index_(isp_index),
      rdns_(rdns),
      config_(config) {
  RAN_EXPECTS(isp_index >= 0 && isp_index < world.isp_count());
  RAN_EXPECTS(config.followup_vps > 0);
}

std::vector<net::IPv4Address> CablePipeline::sweep_targets() const {
  // One address per /24 of the ISP's announced (BGP-visible) space.
  std::vector<net::IPv4Address> out;
  std::uint64_t total = 0;
  for (const auto& prefix : world_.isp(isp_index_).address_space())
    total += prefix.size() >> 8;
  out.reserve(total);
  for (const auto& prefix : world_.isp(isp_index_).address_space()) {
    RAN_EXPECTS(prefix.length() <= 24);
    const std::uint64_t slash24s = prefix.size() >> 8;
    for (std::uint64_t i = 0; i < slash24s; ++i)
      out.push_back(prefix.at(
          (i << 8) + static_cast<std::uint64_t>(config_.sweep_offset)));
  }
  return out;
}

std::vector<net::IPv4Address> CablePipeline::rdns_targets() const {
  // Every snapshot address whose name matches a CO regex and that falls
  // inside this ISP's announced space.
  std::vector<net::IPv4Address> out;
  RAN_EXPECTS(rdns_.snapshot != nullptr);
  const auto& isp = world_.isp(isp_index_);
  for (const auto& [addr, name] : rdns_.snapshot->entries()) {
    if (!isp.owns(addr)) continue;
    const auto info = dns::extract_hostname(name);
    if (info.kind == dns::HostKind::kRegionalRouter ||
        info.kind == dns::HostKind::kBackboneRouter)
      out.push_back(addr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CableStudy CablePipeline::run(std::span<const vp::ExternalVp> vps) const {
  RAN_EXPECTS(!vps.empty());
  CableStudy study;
  // Every run is instrumented so the manifest is always complete; a
  // caller-provided registry simply aggregates across runs too.
  obs::Registry local_metrics;
  obs::Registry& metrics = config_.campaign.metrics != nullptr
                               ? *config_.campaign.metrics
                               : local_metrics;
  probe::CampaignConfig campaign = config_.campaign;
  campaign.metrics = &metrics;
  const probe::CampaignRunner runner{world_, campaign};
  const auto& isp = world_.isp(isp_index_);
  obs::Log* log = metrics.logger();
  if (log != nullptr)
    log->info("cable.run",
              "cable pipeline starting for ISP " + isp.name());

  // ---- Phase 1(a): /24 sweep -------------------------------------------
  TraceCorpus sweep_corpus;
  {
    obs::StageTimer stage{&metrics, "sweep"};
    const auto sweep = sweep_targets();
    study.sweep_targets = sweep.size();
    stage.add_items(sweep.size());
    sweep_corpus.traces = runner.run(probe::grid_tasks(vps, sweep));
  }

  // ---- Phase 1(b): rDNS-matched interface targets -----------------------
  TraceCorpus rdns_corpus;
  const auto named = rdns_targets();
  {
    obs::StageTimer stage{&metrics, "rdns"};
    study.rdns_targets = named.size();
    stage.add_items(named.size());
    rdns_corpus.traces = runner.run(probe::grid_tasks(vps, named));
  }

  // ---- Phase 1(c): follow-up traceroutes to every intermediate ----------
  TraceCorpus combined;
  combined.merge(std::move(sweep_corpus));
  // Keep a cheap handle on sweep-only adjacencies for the §5.1 comparison.
  const auto sweep_pairs = consecutive_pairs(combined);
  combined.merge(std::move(rdns_corpus));

  std::vector<net::IPv4Address> intermediates;
  for (const auto addr : combined.responding_addresses())
    if (isp.owns(addr)) intermediates.push_back(addr);
  std::sort(intermediates.begin(), intermediates.end());
  study.followup_targets = intermediates.size();

  TraceCorpus followups;
  {
    obs::StageTimer stage{&metrics, "followup"};
    stage.add_items(intermediates.size());
    const int followup_vps =
        std::min<int>(config_.followup_vps, static_cast<int>(vps.size()));
    followups.traces = runner.run(probe::grid_tasks(
        vps.first(static_cast<std::size_t>(followup_vps)), intermediates));
  }

  const auto mpls_separated =
      config_.use_mpls_check
          ? separated_pairs(followups)
          : std::set<std::pair<net::IPv4Address, net::IPv4Address>>{};

  study.traces = std::move(combined);
  study.traces.merge(std::move(followups));

  // Ingest boundary: the assembled corpus passes the same invariants the
  // offline loader enforces, and the ingest.* counters land in the
  // manifest so it records the data quality of what was analyzed.
  {
    IngestConfig ingest = config_.ingest;
    ingest.metrics = &metrics;
    if (ingest.log == nullptr) ingest.log = log;
    const auto ingest_report = validate_corpus(study.traces, ingest);
    RAN_EXPECTS(ingest.mode == IngestMode::kLenient || ingest_report.ok());
  }

  // ---- Phase 1(d): alias resolution -------------------------------------
  std::vector<net::IPv4Address> alias_universe;
  alias_universe.reserve(intermediates.size() + named.size());
  alias_universe.insert(alias_universe.end(), intermediates.begin(),
                        intermediates.end());
  for (const auto addr : named) alias_universe.push_back(addr);
  std::sort(alias_universe.begin(), alias_universe.end());
  alias_universe.erase(
      std::unique(alias_universe.begin(), alias_universe.end()),
      alias_universe.end());
  if (config_.use_alias_resolution) {
    obs::StageTimer stage{&metrics, "alias"};
    stage.add_items(alias_universe.size());
    study.routers = resolve_aliases(world_, alias_universe);
  }

  // ---- Phase 2: CO mapping, pruning, refinement -------------------------
  study.p2p_len = config_.p2p_len != 0 ? config_.p2p_len
                                       : detect_p2p_len(alias_universe);
  // The CSR path reduces the corpus once (unique pairs + triplets) and
  // feeds every phase-2 kernel from that index; the legacy path rescans
  // raw hops per kernel. Outputs are byte-identical, so stage structure
  // and deterministic manifest content must stay identical too — the
  // index build lives inside the b1_mapping stage rather than getting a
  // stage of its own.
  CorpusIndex index;
  {
    obs::StageTimer stage{&metrics, "b1_mapping"};
    stage.add_items(alias_universe.size());
    if (config_.use_csr_kernels) {
      index = CorpusIndex::build(study.traces);
      // Point-to-point votes only make sense for addresses this ISP
      // routes (a transit hop preceding the ISP's entry must not inherit
      // a CO): one weighted vote per unique transit pair.
      std::vector<WeightedAdjacency> transit_pairs;
      if (config_.use_p2p_refinement) {
        for (const auto& record : index.pairs())
          if (record.transit_count > 0 && isp.owns(record.a))
            transit_pairs.push_back(
                {record.a, record.b,
                 static_cast<int>(record.transit_count),
                 record.last_transit_seq});
      }
      study.mapping =
          build_co_mapping(alias_universe, transit_pairs, study.p2p_len,
                           rdns_, study.routers, &study.edge_provenance,
                           log);
    } else {
      std::vector<std::pair<net::IPv4Address, net::IPv4Address>>
          transit_pairs;
      if (config_.use_p2p_refinement) {
        for (const auto& pair :
             consecutive_pairs(study.traces, /*transit_only=*/true))
          if (isp.owns(pair.first)) transit_pairs.push_back(pair);
      }
      study.mapping =
          build_co_mapping(alias_universe, transit_pairs, study.p2p_len,
                           rdns_, study.routers, &study.edge_provenance,
                           log);
    }
  }
  {
    obs::StageTimer stage{&metrics, "b2_prune"};
    if (config_.use_csr_kernels)
      study.adjacency = build_and_prune(
          study.traces, index, study.mapping.map, mpls_separated,
          &study.edge_provenance, log, config_.campaign.parallelism);
    else
      study.adjacency = build_and_prune(study.traces, study.mapping.map,
                                        mpls_separated,
                                        &study.edge_provenance, log);
    stage.add_items(study.adjacency.stats.ip_adj_initial);
  }
  {
    obs::StageTimer stage{&metrics, "refine"};
    const RefineOptions refine_options{
        .remove_edge_edges = config_.use_edge_edge_removal,
        .complete_rings = config_.use_ring_completion,
        .threads = config_.campaign.parallelism,
        .log = log};
    if (config_.use_csr_kernels)
      study.refine = refine_regions(study.adjacency.regions, index,
                                    study.mapping.map, refine_options,
                                    &study.edge_provenance);
    else
      study.refine = refine_regions(study.adjacency.regions, study.traces,
                                    study.mapping.map, refine_options,
                                    &study.edge_provenance);
    stage.add_items(study.adjacency.regions.size());
  }

  // §5.1 comparison: CO interconnections visible from the /24 sweep alone
  // versus the whole campaign, both judged by raw rDNS extraction (the
  // information available at observation time). Routers that answer sweep
  // probes from unnamed loopbacks hide their CO here; directly targeting
  // their interfaces recovers it.
  const auto add_raw_co_pair =
      [&](net::IPv4Address a, net::IPv4Address b,
          std::set<std::pair<std::string, std::string>>& out) {
        const auto name_a = rdns_.lookup(a);
        const auto name_b = rdns_.lookup(b);
        if (!name_a || !name_b) return;
        const auto info_a = dns::extract_hostname(*name_a);
        const auto info_b = dns::extract_hostname(*name_b);
        if (info_a.kind != dns::HostKind::kRegionalRouter ||
            info_b.kind != dns::HostKind::kRegionalRouter)
          return;
        if (info_a.co_key == info_b.co_key) return;
        out.emplace(info_a.co_key, info_b.co_key);
      };
  std::set<std::pair<std::string, std::string>> sweep_co_pairs;
  for (const auto& [a, b] : sweep_pairs)
    add_raw_co_pair(a, b, sweep_co_pairs);
  study.co_adjs_sweep_only = sweep_co_pairs.size();
  std::set<std::pair<std::string, std::string>> total_co_pairs;
  if (config_.use_csr_kernels) {
    // The index already dedups directed pairs, so feeding each record once
    // yields the same set as scanning every raw occurrence.
    for (const auto& record : index.pairs())
      add_raw_co_pair(record.a, record.b, total_co_pairs);
  } else {
    for (const auto& [a, b] : consecutive_pairs(study.traces))
      add_raw_co_pair(a, b, total_co_pairs);
  }
  study.co_adjs_total = total_co_pairs.size();

  // ---- Run manifest ------------------------------------------------------
  study.mapping.stats.publish(metrics, "cable.b1");
  study.adjacency.stats.publish(metrics, "cable.b2");
  study.refine.publish(metrics, "cable.refine");

  auto& manifest = study.run_manifest;
  manifest.set_name("cable." + isp.name());
  manifest.set_config("trace.max_ttl",
                      static_cast<std::int64_t>(config_.campaign.trace.max_ttl));
  manifest.set_config(
      "trace.attempts",
      static_cast<std::int64_t>(config_.campaign.trace.attempts));
  manifest.set_config(
      "trace.gap_limit",
      static_cast<std::int64_t>(config_.campaign.trace.gap_limit));
  manifest.set_config("use_alias_resolution", config_.use_alias_resolution);
  manifest.set_config("use_p2p_refinement", config_.use_p2p_refinement);
  manifest.set_config("use_mpls_check", config_.use_mpls_check);
  manifest.set_config("use_edge_edge_removal", config_.use_edge_edge_removal);
  manifest.set_config("use_ring_completion", config_.use_ring_completion);
  manifest.set_config("p2p_len", static_cast<std::int64_t>(config_.p2p_len));
  manifest.set_config("followup_vps",
                      static_cast<std::int64_t>(config_.followup_vps));
  manifest.set_config("sweep_offset",
                      static_cast<std::int64_t>(config_.sweep_offset));
  manifest.set_config("ingest.mode",
                      std::string{to_string(config_.ingest.mode)});

  manifest.add_summary("campaign", "vps",
                       static_cast<std::uint64_t>(vps.size()));
  manifest.add_summary("campaign", "sweep_targets", study.sweep_targets);
  manifest.add_summary("campaign", "rdns_targets", study.rdns_targets);
  manifest.add_summary("campaign", "followup_targets",
                       study.followup_targets);
  manifest.add_summary("campaign", "co_adjs_sweep_only",
                       study.co_adjs_sweep_only);
  manifest.add_summary("campaign", "co_adjs_total", study.co_adjs_total);
  manifest.add_summary("corpus", "traces", study.traces.size());
  manifest.add_summary("corpus", "responding_addresses",
                       study.traces.responding_addresses().size());
  manifest.add_summary("clusters", "alias_clusters",
                       static_cast<std::uint64_t>(
                           study.routers.alias_cluster_count()));
  manifest.add_summary("graph", "p2p_len",
                       static_cast<std::uint64_t>(study.p2p_len));
  manifest.add_summary("graph", "regions",
                       static_cast<std::uint64_t>(study.regions().size()));
  std::size_t cos = 0;
  std::size_t edges = 0;
  for (const auto& [region, graph] : study.regions()) {
    cos += graph.cos.size();
    edges += graph.edge_count();
  }
  manifest.add_summary("graph", "cos", cos);
  manifest.add_summary("graph", "edges", edges);
  if (auto* profiler = metrics.resource_profiler(); profiler != nullptr) {
    profiler->set_structure_bytes("corpus", approx_bytes(study.traces));
    profiler->set_structure_bytes("alias_clusters",
                                  approx_bytes(study.routers));
    profiler->set_structure_bytes("co_map",
                                  approx_bytes(study.mapping.map));
    std::uint64_t graph_bytes = 0;
    for (const auto& [region, graph] : study.adjacency.regions)
      graph_bytes += approx_bytes(graph);
    profiler->set_structure_bytes("regional_graphs", graph_bytes);
    profiler->set_structure_bytes("provenance",
                                  approx_bytes(study.edge_provenance));
    manifest.capture_resources(*profiler);
  }
  // Freeze the result into the queryable snapshot artifact (a fresh
  // pipeline run is generation 1). Built after every stage closed and
  // without a StageTimer of its own: the snapshot is a pure function of
  // the graphs and must not perturb the manifest's sections. The hop-
  // difference RTTs of §5.5 ride along so latency queries can answer in
  // milliseconds.
  study.topology =
      std::make_shared<const TopologySnapshot>(TopologySnapshot::build(
          "cable", study.regions(),
          std::make_shared<obs::ProvenanceLog>(study.edge_provenance), 1,
          agg_to_edge_rtts(study)));

  manifest.capture(metrics);
  manifest.capture_provenance(study.edge_provenance);
  return study;
}

}  // namespace ran::infer
