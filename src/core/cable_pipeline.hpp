// The end-to-end §5 methodology for rDNS-rich, externally probeable
// access ISPs (Comcast / Charter):
//
//   Phase 1 — build router-topology observations:
//     (a) traceroute to one address in every /24 of the ISP's announced
//         space, from every VP;
//     (b) traceroute to every address whose (Rapid7-snapshot) rDNS matches
//         the CO regexes;
//     (c) traceroute to every intermediate address observed, exposing MPLS
//         entry/exit pairs (Direct Path Revelation);
//     (d) alias-resolve all candidate addresses (Mercator + MIDAR).
//
//   Phase 2 — build CO-topology graphs:
//     map addresses to COs (B.1), extract and prune adjacencies (B.2),
//     identify AggCOs, repair the dual-star edges, and infer entry points
//     (§5.2.2-5.2.5).
#pragma once

#include <limits>
#include <span>

#include "observations.hpp"
#include "parse_report.hpp"
#include "probe/campaign.hpp"
#include "pruning.hpp"
#include "refine.hpp"
#include "study.hpp"
#include "vantage/vps.hpp"

namespace ran::infer {

/// "Use every available vantage point" for followup_vps (validated > 0;
/// values above the VP count clamp to it).
inline constexpr int kAllVps = std::numeric_limits<int>::max();

struct CablePipelineConfig {
  /// Campaign execution shared by all pipelines: per-trace options,
  /// parallelism, metrics sink.
  probe::CampaignConfig campaign;
  /// Corpus-boundary policy: every assembled corpus is validated under
  /// this mode and its `ingest.*` data-quality counters land in the run
  /// manifest. Strict (the default) treats a malformed record as a
  /// contract violation; lenient prunes-and-counts.
  IngestConfig ingest;
  /// Ablation switches (the bench_ablation_refinement experiment): turn
  /// individual methodology stages off to measure their contribution.
  bool use_alias_resolution = true;   ///< B.1 pass 2
  bool use_p2p_refinement = true;     ///< B.1 pass 3 (Fig 19)
  bool use_mpls_check = true;         ///< §5.1 false-link removal
  bool use_edge_edge_removal = true;  ///< §5.2.3
  bool use_ring_completion = true;    ///< §5.2.4
  /// Point-to-point subnet length; 0 = auto-detect from observed
  /// addresses (§B.1 observed /30s at Comcast and /31s at Charter).
  int p2p_len = 0;
  /// VPs used for the follow-up (intermediate-address) traceroutes; the
  /// MPLS separation check needs follow-ups from the same vantage points
  /// whose flows produced the initial adjacencies, so default to all.
  int followup_vps = kAllVps;
  /// Host offset probed within each /24 during the sweep.
  int sweep_offset = 9;
  /// Phase-2 kernel selection. True (the default) runs B.1/B.2/§5.2 on
  /// the one-pass CorpusIndex and CSR graph kernels, with the prune and
  /// refine stages parallelized across campaign.parallelism workers;
  /// false runs the original corpus-rescanning map-based kernels. Both
  /// paths produce byte-identical maps, graphs, stats, provenance, and
  /// manifests — this switch exists for the equivalence suite and as an
  /// escape hatch.
  bool use_csr_kernels = true;
};

/// Everything §5 produces for one ISP. Corpus (sweep+rDNS+follow-up
/// traceroutes), clusters, and manifest live in the shared StudyBase.
struct CableStudy : StudyBase {
  CoMappingResult mapping;      ///< B.1 output (Table 3)
  AdjacencyResult adjacency;    ///< pruned per-region graphs (Table 4)
  RefineStats refine;           ///< §5.2.2-5.2.4 accounting
  int p2p_len = 30;             ///< detected subnet length

  // Campaign counters (§5.1's "5.3x more CO interconnections" figure).
  std::size_t sweep_targets = 0;
  std::size_t rdns_targets = 0;
  std::size_t followup_targets = 0;
  std::size_t co_adjs_sweep_only = 0;
  std::size_t co_adjs_total = 0;

  [[nodiscard]] std::map<std::string, RegionalGraph>& regions() {
    return adjacency.regions;
  }
  [[nodiscard]] const std::map<std::string, RegionalGraph>& regions() const {
    return adjacency.regions;
  }
};

/// Infers the point-to-point subnet length from which observed addresses
/// pair up ( /31 mates differ in the last bit; /30 mates are the middle
/// hosts of aligned blocks of four).
[[nodiscard]] int detect_p2p_len(std::span<const net::IPv4Address> addrs);

class CablePipeline {
 public:
  CablePipeline(const sim::World& world, int isp_index, RdnsSources rdns,
                CablePipelineConfig config = {});

  /// Runs both phases from the given vantage points.
  [[nodiscard]] CableStudy run(std::span<const vp::ExternalVp> vps) const;

 private:
  [[nodiscard]] std::vector<net::IPv4Address> sweep_targets() const;
  [[nodiscard]] std::vector<net::IPv4Address> rdns_targets() const;

  const sim::World& world_;
  int isp_index_;
  RdnsSources rdns_;
  CablePipelineConfig config_;
};

}  // namespace ran::infer
