#include "co_mapping.hpp"

#include <algorithm>

#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"

namespace ran::infer {

void CoMappingStats::publish(obs::Registry& registry,
                             const std::string& prefix) const {
  registry.counter(prefix + ".initial").inc(initial);
  registry.counter(prefix + ".alias_changed").inc(alias_changed);
  registry.counter(prefix + ".alias_added").inc(alias_added);
  registry.counter(prefix + ".alias_removed").inc(alias_removed);
  registry.counter(prefix + ".after_alias").inc(after_alias);
  registry.counter(prefix + ".p2p_changed").inc(p2p_changed);
  registry.counter(prefix + ".p2p_added").inc(p2p_added);
  registry.counter(prefix + ".final_count").inc(final_count);
}

void CoMap::set(net::IPv4Address addr, CoAnnotation annotation) {
  RAN_EXPECTS(!annotation.co_key.empty());
  map_[addr] = std::move(annotation);
}

const CoAnnotation* CoMap::get(net::IPv4Address addr) const {
  const auto it = map_.find(addr);
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<std::pair<net::IPv4Address, net::IPv4Address>> consecutive_pairs(
    const TraceCorpus& corpus, bool transit_only) {
  std::vector<std::pair<net::IPv4Address, net::IPv4Address>> out;
  for (const auto& trace : corpus.traces) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& a = trace.hops[i];
      const auto& b = trace.hops[i + 1];
      if (!a.responded() || !b.responded() || a.addr == b.addr) continue;
      if (transit_only && trace.reached && b.addr == trace.dst) continue;
      out.emplace_back(a.addr, b.addr);
    }
  }
  return out;
}

namespace {

/// Extracts a CoAnnotation from rDNS; empty co_key when nothing matched.
CoAnnotation annotate(net::IPv4Address addr, const RdnsSources& rdns) {
  CoAnnotation out;
  const auto name = rdns.lookup(addr);
  if (!name) return out;
  const auto info = dns::extract_hostname(*name);
  if (info.kind != dns::HostKind::kRegionalRouter &&
      info.kind != dns::HostKind::kBackboneRouter)
    return out;
  out.co_key = info.co_key;
  out.region = info.region;
  out.backbone = info.kind == dns::HostKind::kBackboneRouter;
  out.from_rdns = true;
  out.city = info.city;
  out.building = info.building;
  return out;
}

/// The most frequent CO among annotations; empty on a tie or no votes.
template <typename GetKey>
std::string majority_key(const std::vector<const CoAnnotation*>& votes,
                         GetKey get_key) {
  std::map<std::string, int> counts;
  for (const auto* vote : votes) ++counts[get_key(*vote)];
  std::string best;
  int best_count = 0;
  bool tie = false;
  for (const auto& [key, count] : counts) {
    if (count > best_count) {
      best = key;
      best_count = count;
      tie = false;
    } else if (count == best_count) {
      tie = true;
    }
  }
  return tie ? std::string{} : best;
}

/// Passes 1 and 2 (rDNS + alias majority), shared by both overloads.
/// Returns the size of the considered address universe.
std::size_t initial_and_alias_passes(
    std::span<const net::IPv4Address> addrs, int p2p_len,
    const RdnsSources& rdns, const RouterClusters& clusters,
    obs::ProvenanceLog* provenance, obs::Log* log,
    CoMappingResult& result) {
  auto& map = result.map;
  auto& stats = result.stats;

  // --- pass 1: rDNS over observed addresses and their subnet mates -----
  std::vector<net::IPv4Address> universe;
  {
    std::unordered_map<net::IPv4Address, bool> seen;
    auto consider = [&](net::IPv4Address addr) {
      if (addr.is_unspecified() || !seen.emplace(addr, true).second) return;
      universe.push_back(addr);
    };
    for (const auto addr : addrs) {
      consider(addr);
      if (const auto mate = net::p2p_mate(addr, p2p_len)) consider(*mate);
    }
  }
  for (const auto addr : universe) {
    auto annotation = annotate(addr, rdns);
    if (annotation.co_key.empty()) continue;
    if (provenance != nullptr)
      provenance->note_mapping(annotation.co_key, "b1.rdns");
    map.set(addr, std::move(annotation));
  }
  stats.initial = map.size();

  // --- pass 2: majority vote within each inferred router ---------------
  for (const auto& cluster : clusters.clusters()) {
    if (cluster.size() < 2) continue;
    std::vector<const CoAnnotation*> votes;
    for (const auto addr : cluster)
      if (const auto* a = map.get(addr)) votes.push_back(a);
    if (votes.empty()) continue;
    const auto winner = majority_key(
        votes, [](const CoAnnotation& a) { return a.co_key; });
    if (winner.empty()) {
      // Tie: remove every mapping in the group (§5.1: "to avoid
      // inconclusive and potentially inaccurate mappings").
      std::size_t removed_here = 0;
      for (const auto addr : cluster) {
        if (const auto* current = map.get(addr); current != nullptr) {
          if (provenance != nullptr)
            provenance->note_mapping(current->co_key, "b1.alias_removed");
          map.erase(addr);
          ++stats.alias_removed;
          ++removed_here;
        }
      }
      if (log != nullptr && removed_here > 0)
        log->warn("b1.alias_tie",
                  net::format("alias majority tie: dropped %zu CO "
                              "mapping(s) in a %zu-address router cluster",
                              removed_here, cluster.size()));
      continue;
    }
    const CoAnnotation* exemplar = nullptr;
    for (const auto* vote : votes)
      if (vote->co_key == winner) exemplar = vote;
    RAN_ENSURES(exemplar != nullptr);
    CoAnnotation canonical = *exemplar;
    canonical.from_rdns = false;  // supplied by the group, not own rDNS
    for (const auto addr : cluster) {
      const auto* current = map.get(addr);
      if (current == nullptr) {
        map.set(addr, canonical);
        ++stats.alias_added;
        if (provenance != nullptr)
          provenance->note_mapping(winner, "b1.alias_added");
      } else if (current->co_key != winner) {
        map.set(addr, canonical);
        ++stats.alias_changed;
        if (provenance != nullptr)
          provenance->note_mapping(winner, "b1.alias_changed");
      }
    }
  }
  stats.after_alias = map.size();
  return universe.size();
}

void log_mapping_summary(std::size_t universe_size, const CoMap& map,
                         obs::Log* log) {
  if (log != nullptr && log->enabled(obs::LogLevel::kInfo))
    log->info("b1.mapping",
              net::format("mapped %zu of %zu candidate addresses to COs "
                          "(%zu left unmapped)",
                          map.size(), universe_size,
                          universe_size - map.size()));
}

}  // namespace

CoMappingResult build_co_mapping(
    std::span<const net::IPv4Address> addrs,
    const std::vector<std::pair<net::IPv4Address, net::IPv4Address>>&
        adjacencies,
    int p2p_len, const RdnsSources& rdns, const RouterClusters& clusters,
    obs::ProvenanceLog* provenance, obs::Log* log) {
  CoMappingResult result;
  auto& map = result.map;
  auto& stats = result.stats;
  const auto universe_size = initial_and_alias_passes(
      addrs, p2p_len, rdns, clusters, provenance, log, result);

  // --- pass 3: point-to-point subnet refinement (Fig 19) ---------------
  // For hop x followed by y, the mate y' of y's subnet most likely sits on
  // the same router as x; use the mates' mappings as votes for x.
  std::unordered_map<net::IPv4Address, std::vector<const CoAnnotation*>>
      mate_votes;
  for (const auto& [x, y] : adjacencies) {
    const auto mate = net::p2p_mate(y, p2p_len);
    if (!mate) continue;
    if (const auto* annotation = map.get(*mate))
      mate_votes[x].push_back(annotation);
  }
  for (auto& [x, votes] : mate_votes) {
    const auto winner = majority_key(
        votes, [](const CoAnnotation& a) { return a.co_key; });
    if (winner.empty()) continue;
    const CoAnnotation* exemplar = nullptr;
    for (const auto* vote : votes)
      if (vote->co_key == winner) exemplar = vote;
    const auto* current = map.get(x);
    CoAnnotation inferred = *exemplar;
    inferred.from_rdns = false;
    if (current == nullptr) {
      map.set(x, inferred);
      ++stats.p2p_added;
      if (provenance != nullptr)
        provenance->note_mapping(winner, "b1.p2p_added");
    } else if (current->co_key != winner) {
      // Require a strict majority of mate votes to overturn an existing
      // rDNS-derived mapping (Fig 19: two subnets vs one name).
      int agreeing = 0;
      for (const auto* vote : votes) agreeing += vote->co_key == winner;
      if (agreeing * 2 > static_cast<int>(votes.size()) &&
          agreeing >= 2) {
        map.set(x, inferred);
        ++stats.p2p_changed;
        if (provenance != nullptr)
          provenance->note_mapping(winner, "b1.p2p_changed");
      }
    }
  }
  stats.final_count = map.size();
  log_mapping_summary(universe_size, map, log);
  return result;
}

CoMappingResult build_co_mapping(
    std::span<const net::IPv4Address> addrs,
    const std::vector<WeightedAdjacency>& adjacencies, int p2p_len,
    const RdnsSources& rdns, const RouterClusters& clusters,
    obs::ProvenanceLog* provenance, obs::Log* log) {
  CoMappingResult result;
  auto& map = result.map;
  auto& stats = result.stats;
  const auto universe_size = initial_and_alias_passes(
      addrs, p2p_len, rdns, clusters, provenance, log, result);

  // --- pass 3: point-to-point subnet refinement (Fig 19) ---------------
  // One mate lookup and one vote per *unique* adjacency; counts weight
  // the votes, so every majority decision matches the per-occurrence
  // version (weighted sums == occurrence tallies).
  struct WeightedVote {
    const CoAnnotation* annotation;
    int count;
    std::uint32_t last_seq;
  };
  std::map<net::IPv4Address, std::vector<WeightedVote>> mate_votes;
  for (const auto& adj : adjacencies) {
    const auto mate = net::p2p_mate(adj.to, p2p_len);
    if (!mate) continue;
    if (const auto* annotation = map.get(*mate))
      mate_votes[adj.from].push_back({annotation, adj.count, adj.last_seq});
  }
  for (auto& [x, votes] : mate_votes) {
    std::map<std::string, int> counts;
    for (const auto& vote : votes)
      counts[vote.annotation->co_key] += vote.count;
    std::string winner;
    int best_count = 0;
    bool tie = false;
    for (const auto& [key, count] : counts) {
      if (count > best_count) {
        winner = key;
        best_count = count;
        tie = false;
      } else if (count == best_count) {
        tie = true;
      }
    }
    if (tie) continue;
    // The per-occurrence version keeps the *last* winning vote as its
    // exemplar; the last transit occurrence carries the highest sequence.
    const CoAnnotation* exemplar = nullptr;
    std::uint32_t exemplar_seq = 0;
    for (const auto& vote : votes) {
      if (vote.annotation->co_key == winner &&
          vote.last_seq >= exemplar_seq) {
        exemplar = vote.annotation;
        exemplar_seq = vote.last_seq;
      }
    }
    const auto* current = map.get(x);
    CoAnnotation inferred = *exemplar;
    inferred.from_rdns = false;
    if (current == nullptr) {
      map.set(x, inferred);
      ++stats.p2p_added;
      if (provenance != nullptr)
        provenance->note_mapping(winner, "b1.p2p_added");
    } else if (current->co_key != winner) {
      // Require a strict majority of mate votes to overturn an existing
      // rDNS-derived mapping (Fig 19: two subnets vs one name).
      const int agreeing = counts[winner];
      int total = 0;
      for (const auto& vote : votes) total += vote.count;
      if (agreeing * 2 > total && agreeing >= 2) {
        map.set(x, inferred);
        ++stats.p2p_changed;
        if (provenance != nullptr)
          provenance->note_mapping(winner, "b1.p2p_changed");
      }
    }
  }
  stats.final_count = map.size();
  log_mapping_summary(universe_size, map, log);
  return result;
}

}  // namespace ran::infer
