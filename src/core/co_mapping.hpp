// Mapping IP addresses to Central Offices (App. B.1, Fig 19, Table 3).
//
// Three passes:
//  1. Initial: reverse-lookup every observed address *and every address in
//     its point-to-point subnet*, extract CO tags with the hostname
//     grammars.
//  2. Alias refinement: within each inferred router, remap all addresses
//     to the majority CO; ties drop the mapping entirely.
//  3. Point-to-point refinement: the far end of the subnet of a successor
//     hop usually sits on the same router as the current hop; use those
//     mates' mappings to correct or fill the current hop's CO.
#pragma once

#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "alias_resolution.hpp"
#include "dnssim/extract.hpp"
#include "observations.hpp"

namespace ran::obs {
class Log;
class ProvenanceLog;
class Registry;
}  // namespace ran::obs

namespace ran::infer {

/// What the pipeline knows about one CO key.
struct CoAnnotation {
  std::string co_key;
  std::string region;  ///< regional tag; empty for backbone COs
  bool backbone = false;
  /// True when this mapping came from the address's own rDNS name (pass
  /// 1); false when alias resolution or the point-to-point pass supplied
  /// it. Unnamed addresses behave differently in traceroute (loopback
  /// replies), which the MPLS matcher must account for.
  bool from_rdns = false;
  const net::City* city = nullptr;  ///< decoded location (may be null)
  int building = 0;
};

/// Refinement accounting in the shape of Table 3.
struct CoMappingStats {
  std::size_t initial = 0;
  std::size_t alias_changed = 0;
  std::size_t alias_added = 0;
  std::size_t alias_removed = 0;
  std::size_t after_alias = 0;
  std::size_t p2p_changed = 0;
  std::size_t p2p_added = 0;
  std::size_t final_count = 0;

  /// Mirrors the per-pass accounting into `registry` as counters named
  /// `<prefix>.initial`, `<prefix>.alias_changed`, ...
  void publish(obs::Registry& registry, const std::string& prefix) const;
};

/// The finished address -> CO map.
class CoMap {
 public:
  void set(net::IPv4Address addr, CoAnnotation annotation);
  void erase(net::IPv4Address addr) { map_.erase(addr); }
  [[nodiscard]] const CoAnnotation* get(net::IPv4Address addr) const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const std::unordered_map<net::IPv4Address, CoAnnotation>&
  entries() const {
    return map_;
  }

 private:
  std::unordered_map<net::IPv4Address, CoAnnotation> map_;
};

struct CoMappingResult {
  CoMap map;
  CoMappingStats stats;
};

/// Runs the three-pass mapping. `adjacencies` are consecutive responding
/// hop pairs from the traceroute corpus (needed by the point-to-point
/// pass); `p2p_len` is the ISP's inferred point-to-point subnet length.
/// A provenance log (optional) accumulates bounded per-CO support
/// counters — how many addresses each pass mapped into the CO (b1.rdns,
/// b1.alias_*, b1.p2p_*) — which explain() appends to edge transcripts.
/// A logger (optional) receives warnings for mapping anomalies (alias
/// majority ties dropping mappings) and a coverage summary.
[[nodiscard]] CoMappingResult build_co_mapping(
    std::span<const net::IPv4Address> addrs,
    const std::vector<std::pair<net::IPv4Address, net::IPv4Address>>&
        adjacencies,
    int p2p_len, const RdnsSources& rdns, const RouterClusters& clusters,
    obs::ProvenanceLog* provenance = nullptr, obs::Log* log = nullptr);

/// Consecutive responding-hop pairs of a corpus, with multiplicity.
/// When `transit_only` is set, pairs whose second hop is the trace's
/// destination echo are skipped: a destination replies with the probed
/// address rather than its inbound interface, which would poison the
/// point-to-point mate heuristic (Fig 19).
[[nodiscard]] std::vector<std::pair<net::IPv4Address, net::IPv4Address>>
consecutive_pairs(const TraceCorpus& corpus, bool transit_only = false);

/// One unique consecutive-hop adjacency with its occurrence count — the
/// deduplicated form of the `adjacencies` vector above, typically taken
/// from a CorpusIndex pair table.
struct WeightedAdjacency {
  net::IPv4Address from;
  net::IPv4Address to;
  int count = 0;
  /// Corpus-order sequence number of the last qualifying occurrence;
  /// replays legacy last-vote-wins exemplar selection (see
  /// PairRecord::last_transit_seq).
  std::uint32_t last_seq = 0;
};

/// As above, but the point-to-point pass consumes *unique* weighted
/// adjacencies: one mate lookup and one vote per unique pair, with the
/// count as the vote's weight. Majority and strict-majority outcomes
/// equal the per-occurrence version's (weights are the occurrence sums),
/// so the resulting map, stats, and provenance are byte-identical.
[[nodiscard]] CoMappingResult build_co_mapping(
    std::span<const net::IPv4Address> addrs,
    const std::vector<WeightedAdjacency>& adjacencies, int p2p_len,
    const RdnsSources& rdns, const RouterClusters& clusters,
    obs::ProvenanceLog* provenance = nullptr, obs::Log* log = nullptr);

}  // namespace ran::infer
