#include "corpus_index.hpp"

#include <algorithm>

namespace ran::infer {

namespace {

/// Fibonacci-style mix of a packed key into a table index.
inline std::size_t mix(std::uint64_t key, int shift) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift);
}

/// Open-addressing table for unique directed pairs, keyed by
/// (a << 32) | b. Responding hop addresses are never unspecified, so a
/// zero key marks an empty slot.
class PairTable {
 public:
  explicit PairTable(int capacity_log2)
      : log2_(capacity_log2), slots_(std::size_t{1} << capacity_log2) {}

  void upsert(std::uint64_t key, std::uint32_t trace, bool transit,
              std::uint32_t seq) {
    Slot* slot = probe(key);
    if (slot->key == 0) {
      if ((used_ + 1) * 16 > slots_.size() * 10) {
        grow();
        slot = probe(key);
      }
      ++used_;
      slot->key = key;
      slot->first_trace = trace;
    }
    ++slot->count;
    if (transit) {
      ++slot->transit_count;
      slot->last_transit_seq = seq;
    }
    slot->last_trace = trace;
  }

  [[nodiscard]] std::vector<PairRecord> extract() const {
    std::vector<PairRecord> out;
    out.reserve(used_);
    for (const auto& slot : slots_) {
      if (slot.key == 0) continue;
      PairRecord record;
      record.a = net::IPv4Address{
          static_cast<std::uint32_t>(slot.key >> 32)};
      record.b = net::IPv4Address{
          static_cast<std::uint32_t>(slot.key & 0xFFFFFFFFull)};
      record.count = slot.count;
      record.transit_count = slot.transit_count;
      record.first_trace = slot.first_trace;
      record.last_trace = slot.last_trace;
      record.last_transit_seq = slot.last_transit_seq;
      out.push_back(record);
    }
    std::sort(out.begin(), out.end(),
              [](const PairRecord& x, const PairRecord& y) {
                return std::pair{x.a, x.b} < std::pair{y.a, y.b};
              });
    return out;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t count = 0;
    std::uint32_t transit_count = 0;
    std::uint32_t first_trace = 0;
    std::uint32_t last_trace = 0;
    std::uint32_t last_transit_seq = 0;
  };

  Slot* probe(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key, 64 - log2_) & mask;
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask;
    return &slots_[i];
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    ++log2_;
    slots_.assign(std::size_t{1} << log2_, Slot{});
    for (const auto& slot : old) {
      if (slot.key == 0) continue;
      *probe(slot.key) = slot;
    }
  }

  int log2_;
  std::size_t used_ = 0;
  std::vector<Slot> slots_;
};

/// Open-addressing table for unique triplets, keyed by ((a << 32) | b)
/// plus c in a separate word. The first word is never zero for valid
/// entries (a responds), so it doubles as the empty marker.
class TripletTable {
 public:
  explicit TripletTable(int capacity_log2)
      : log2_(capacity_log2), slots_(std::size_t{1} << capacity_log2) {}

  void upsert(std::uint64_t ab, std::uint32_t c, std::uint32_t seq) {
    Slot* slot = probe(ab, c);
    if (slot->ab == 0) {
      if ((used_ + 1) * 16 > slots_.size() * 10) {
        grow();
        slot = probe(ab, c);
      }
      ++used_;
      slot->ab = ab;
      slot->c = c;
    }
    ++slot->count;
    slot->last_seq = seq;
  }

  [[nodiscard]] std::vector<TripletRecord> extract() const {
    std::vector<TripletRecord> out;
    out.reserve(used_);
    for (const auto& slot : slots_) {
      if (slot.ab == 0) continue;
      TripletRecord record;
      record.a = net::IPv4Address{static_cast<std::uint32_t>(slot.ab >> 32)};
      record.b = net::IPv4Address{
          static_cast<std::uint32_t>(slot.ab & 0xFFFFFFFFull)};
      record.c = net::IPv4Address{slot.c};
      record.count = slot.count;
      record.last_seq = slot.last_seq;
      out.push_back(record);
    }
    std::sort(out.begin(), out.end(),
              [](const TripletRecord& x, const TripletRecord& y) {
                return std::tuple{x.a, x.b, x.c} < std::tuple{y.a, y.b, y.c};
              });
    return out;
  }

 private:
  struct Slot {
    std::uint64_t ab = 0;
    std::uint32_t c = 0;
    std::uint32_t count = 0;
    std::uint32_t last_seq = 0;
  };

  Slot* probe(std::uint64_t ab, std::uint32_t c) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(ab ^ (std::uint64_t{c} * 0xC2B2AE3D27D4EB4Full),
                        64 - log2_) &
                    mask;
    while (slots_[i].ab != 0 && (slots_[i].ab != ab || slots_[i].c != c))
      i = (i + 1) & mask;
    return &slots_[i];
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    ++log2_;
    slots_.assign(std::size_t{1} << log2_, Slot{});
    for (const auto& slot : old) {
      if (slot.ab == 0) continue;
      *probe(slot.ab, slot.c) = slot;
    }
  }

  int log2_;
  std::size_t used_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace

CorpusIndex CorpusIndex::build(const TraceCorpus& corpus) {
  CorpusIndex index;
  index.trace_count_ = corpus.traces.size();
  PairTable pairs{15};
  TripletTable triplets{16};
  std::uint32_t pair_seq = 0;
  std::uint32_t triplet_seq = 0;
  for (std::size_t t = 0; t < corpus.traces.size(); ++t) {
    const auto& trace = corpus.traces[t];
    const auto& hops = trace.hops;
    index.hop_count_ += hops.size();
    const auto trace_id = static_cast<std::uint32_t>(t);
    bool r_prev2 = false;
    bool r_prev = !hops.empty() && hops[0].responded();
    for (std::size_t i = 1; i < hops.size(); ++i) {
      const bool r_cur = hops[i].responded();
      if (r_prev && r_cur) {
        const auto a = hops[i - 1].addr;
        const auto b = hops[i].addr;
        if (a != b) {
          const bool transit = !(trace.reached && b == trace.dst);
          pairs.upsert((std::uint64_t{a.value()} << 32) | b.value(),
                       trace_id, transit, ++pair_seq);
          ++index.pair_occurrences_;
        }
      }
      if (r_prev2 && r_prev && r_cur)
        triplets.upsert(
            (std::uint64_t{hops[i - 2].addr.value()} << 32) |
                hops[i - 1].addr.value(),
            hops[i].addr.value(), ++triplet_seq);
      r_prev2 = r_prev;
      r_prev = r_cur;
    }
  }
  index.pairs_ = pairs.extract();
  index.triplets_ = triplets.extract();
  return index;
}

}  // namespace ran::infer
