// One-pass trace-corpus index shared by the inference kernels.
//
// The legacy kernels each rescanned the raw corpus — consecutive_pairs()
// for B.1's point-to-point votes (twice), build_and_prune() for B.2's
// adjacency extraction, infer_entry_points() for §5.2.5's triplets —
// four O(total hops) passes, each paying per-occurrence map/hash costs
// on ~2M hop pairs. This index makes that a single pass that reduces the
// corpus to its *unique* observations:
//
//   * pairs():    unique directed responding hop pairs (x != y) with
//                 occurrence counts, transit-only counts (terminal
//                 destination echoes excluded, see consecutive_pairs),
//                 and first/last supporting trace indices — everything
//                 B.1 pass 3 and B.2 need;
//   * triplets(): unique consecutive responding hop triplets with
//                 occurrence counts — everything §5.2.5 needs.
//
// Both tables are open-addressing hash tables during the scan (packed
// integer keys, linear probing) and are exported as vectors sorted by
// address key — the same order the legacy std::map-based kernels
// iterated in, which is what keeps stats, provenance, and exports
// byte-identical across the two code paths.
#pragma once

#include <cstdint>
#include <vector>

#include "observations.hpp"

namespace ran::infer {

/// One unique directed responding hop pair of the corpus.
struct PairRecord {
  net::IPv4Address a;
  net::IPv4Address b;
  std::uint32_t count = 0;          ///< occurrences (all)
  std::uint32_t transit_count = 0;  ///< occurrences excluding destination
                                    ///< echoes (reached && b == dst)
  std::uint32_t first_trace = 0;    ///< corpus index of first occurrence
  std::uint32_t last_trace = 0;     ///< corpus index of last occurrence
  /// Corpus-order sequence number (1-based) of the last *transit*
  /// occurrence; 0 when every occurrence was a destination echo. Lets
  /// consumers replay legacy last-writer-wins aggregation exactly.
  std::uint32_t last_transit_seq = 0;
};

/// One unique consecutive responding hop triplet of the corpus.
struct TripletRecord {
  net::IPv4Address a;
  net::IPv4Address b;
  net::IPv4Address c;
  std::uint32_t count = 0;
  /// Corpus-order sequence number (1-based) of the *last* occurrence —
  /// lets consumers replay legacy last-writer-wins aggregation exactly.
  std::uint32_t last_seq = 0;
};

class CorpusIndex {
 public:
  /// Scans the corpus once and builds both tables.
  [[nodiscard]] static CorpusIndex build(const TraceCorpus& corpus);

  /// Unique pairs, sorted by (a, b) — legacy adjacency-map order.
  [[nodiscard]] const std::vector<PairRecord>& pairs() const {
    return pairs_;
  }
  /// Unique triplets, sorted by (a, b, c).
  [[nodiscard]] const std::vector<TripletRecord>& triplets() const {
    return triplets_;
  }

  [[nodiscard]] std::size_t trace_count() const { return trace_count_; }
  [[nodiscard]] std::size_t hop_count() const { return hop_count_; }
  /// Total responding-pair occurrences folded into pairs().
  [[nodiscard]] std::uint64_t pair_occurrences() const {
    return pair_occurrences_;
  }

 private:
  std::vector<PairRecord> pairs_;
  std::vector<TripletRecord> triplets_;
  std::size_t trace_count_ = 0;
  std::size_t hop_count_ = 0;
  std::uint64_t pair_occurrences_ = 0;
};

}  // namespace ran::infer
