#include "corpus_io.hpp"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace ran::infer {

namespace {

/// Shared ingest epilogue: counters into the registry, data-quality
/// messages into the logger ("dropped N malformed trace blocks" and the
/// per-reason breakdown come from ParseReport::summary()).
void publish_ingest(const IngestConfig& config, const ParseReport& report,
                    const char* site, bool aborted) {
  // Counters publish on completed loads only (strict aborts return
  // nothing, so there is no "data actually analyzed" to account for).
  if (!aborted && config.metrics != nullptr) report.publish(*config.metrics);
  if (config.log == nullptr) return;
  if (aborted)
    config.log->error(site, report.errors.empty()
                                ? std::string{"ingest aborted"}
                                : report.errors.front().to_string());
  else if (!report.ok())
    config.log->warn(site, report.summary());
  else if (config.log->enabled(obs::LogLevel::kDebug))
    config.log->debug(site, report.summary());
}

/// VP labels may contain anything except whitespace/newlines; generators
/// keep them token-safe, and the writer enforces it.
std::string sanitize(const std::string& label) {
  std::string out = label;
  for (auto& c : out)
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  return out;
}

/// Measurement files written on Windows hosts (or piped through tools
/// that normalize line endings) carry CRLF and stray trailing blanks;
/// they must parse identically to clean LF files.
std::string_view trim_line(std::string_view line) {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
    line.remove_suffix(1);
  return line;
}

/// The offending token as stored in a ParseError: long garbage lines are
/// capped so reports stay readable.
std::string error_field(std::string_view token) {
  constexpr std::size_t kMax = 64;
  if (token.size() <= kMax) return std::string{token};
  return std::string{token.substr(0, kMax)} + "...";
}

/// Full-token integer parse: rejects trailing junk ("3x"), empty fields,
/// and overflow — all of which std::atoi-style parsing accepts silently.
bool parse_int_field(std::string_view text, int& out) {
  const auto* begin = text.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + text.size(), out);
  return ec == std::errc{} && ptr == begin + text.size();
}

/// Full-token double parse; the RTT-specific finite / non-negative checks
/// live at the call site so they get their own reason.
bool parse_double_field(std::string_view text, double& out) {
  const auto* begin = text.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + text.size(), out);
  return ec == std::errc{} && ptr == begin + text.size();
}

bool ttl_in_range(int ttl) { return ttl >= 0 && ttl <= 255; }

/// Shared state of one corpus read: buffers the open trace so a bad line
/// anywhere in a trace block drops the whole trace (lenient) instead of
/// leaving a partial record whose missing hop would fabricate a false
/// adjacency downstream.
struct CorpusReader {
  const IngestConfig& config;
  ParseReport& report;
  TraceCorpus corpus;

  probe::TraceRecord open_trace;
  bool trace_open = false;
  std::size_t open_lines = 0;  ///< header + hop lines buffered so far
  bool skipping = false;       ///< lenient: discarding until the next T
  std::set<std::string> seen_headers;
  bool failed = false;  ///< strict: aborted

  explicit CorpusReader(const IngestConfig& config_, ParseReport& report_)
      : config(config_), report(report_) {}

  void commit_open_trace() {
    if (!trace_open) return;
    report.traces_accepted += 1;
    report.hops_accepted += open_trace.hops.size();
    corpus.add(std::move(open_trace));
    open_trace = {};
    trace_open = false;
    open_lines = 0;
  }

  /// Handles one malformed line. Strict: record and abort. Lenient: drop
  /// the open trace (if any) plus this line, then discard until the next
  /// header. `drops_block` marks failures that kill a whole trace block
  /// even though no trace is open yet (bad headers, duplicates).
  void fail(int line_number, std::string_view token, ParseReason reason,
            bool drops_block = false) {
    report.add(line_number, error_field(token), reason);
    if (config.mode == IngestMode::kStrict) {
      failed = true;
      return;
    }
    if (trace_open) {
      report.skipped_traces += 1;
      report.skipped_lines += open_lines;
      open_trace = {};
      trace_open = false;
      open_lines = 0;
    } else if (drops_block) {
      report.skipped_traces += 1;
    }
    skipping = true;
    report.skipped_lines += 1;
  }

  void line(int line_number, std::string_view text) {
    const auto fields = net::split(text, ' ');
    if (fields[0] == "T") {
      header(line_number, text, fields);
      return;
    }
    if (fields[0] == "H") {
      hop(line_number, text, fields);
      return;
    }
    fail(line_number, text,
         fields[0].empty() ? ParseReason::kMalformedRecord
                           : ParseReason::kUnknownRecordType);
  }

  void header(int line_number, std::string_view text,
              const std::vector<std::string_view>& fields) {
    commit_open_trace();
    skipping = false;
    if (fields.size() != 4 || fields[1].empty()) {
      fail(line_number, text, ParseReason::kMalformedRecord,
           /*drops_block=*/true);
      return;
    }
    probe::TraceRecord record;
    record.vp = std::string{fields[1]};
    const auto dst = net::IPv4Address::parse(fields[2]);
    if (!dst) {
      fail(line_number, fields[2], ParseReason::kBadAddress,
           /*drops_block=*/true);
      return;
    }
    record.dst = *dst;
    if (fields[3] != "0" && fields[3] != "1") {
      fail(line_number, fields[3], ParseReason::kBadFlag,
           /*drops_block=*/true);
      return;
    }
    record.reached = fields[3] == "1";
    if (config.reject_duplicate_traces) {
      std::string key = record.vp;
      key += '\n';
      key += fields[2];
      if (!seen_headers.insert(std::move(key)).second) {
        fail(line_number, text, ParseReason::kDuplicateTrace,
             /*drops_block=*/true);
        return;
      }
    }
    open_trace = std::move(record);
    trace_open = true;
    open_lines = 1;
  }

  void hop(int line_number, std::string_view text,
           const std::vector<std::string_view>& fields) {
    if (skipping) {  // collateral of an already-counted dropped trace
      report.skipped_lines += 1;
      return;
    }
    if (!trace_open) {
      fail(line_number, text, ParseReason::kHopOutsideTrace);
      return;
    }
    if (fields.size() != 5) {
      fail(line_number, text, ParseReason::kMalformedRecord);
      return;
    }
    sim::Hop hop;
    if (!parse_int_field(fields[1], hop.ttl)) {
      fail(line_number, fields[1], ParseReason::kBadTtl);
      return;
    }
    if (!ttl_in_range(hop.ttl)) {
      fail(line_number, fields[1], ParseReason::kTtlOutOfRange);
      return;
    }
    if (fields[2] != "*") {
      const auto addr = net::IPv4Address::parse(fields[2]);
      if (!addr) {
        fail(line_number, fields[2], ParseReason::kBadAddress);
        return;
      }
      hop.addr = *addr;
    }
    if (!parse_double_field(fields[3], hop.rtt_ms) ||
        !std::isfinite(hop.rtt_ms) || hop.rtt_ms < 0.0) {
      fail(line_number, fields[3], ParseReason::kBadRtt);
      return;
    }
    if (!parse_int_field(fields[4], hop.reply_ttl)) {
      fail(line_number, fields[4], ParseReason::kBadTtl);
      return;
    }
    if (!ttl_in_range(hop.reply_ttl)) {
      fail(line_number, fields[4], ParseReason::kTtlOutOfRange);
      return;
    }
    open_trace.hops.push_back(hop);
    open_lines += 1;
  }
};

}  // namespace

void write_corpus(std::ostream& os, const TraceCorpus& corpus) {
  for (const auto& trace : corpus.traces) {
    os << "T " << sanitize(trace.vp) << ' ' << trace.dst.to_string() << ' '
       << (trace.reached ? 1 : 0) << '\n';
    for (const auto& hop : trace.hops) {
      os << "H " << hop.ttl << ' '
         << (hop.responded() ? hop.addr.to_string() : std::string{"*"})
         << ' ' << net::format("%.4f", hop.rtt_ms) << ' ' << hop.reply_ttl
         << '\n';
    }
  }
}

std::optional<TraceCorpus> read_corpus(std::istream& is,
                                       const IngestConfig& config,
                                       ParseReport* report) {
  ParseReport local;
  ParseReport& rep = report != nullptr ? *report : local;
  CorpusReader reader{config, rep};
  std::string raw;
  int line_number = 0;
  while (std::getline(is, raw)) {
    ++line_number;
    const auto line = trim_line(raw);
    if (line.empty()) continue;
    rep.lines += 1;
    reader.line(line_number, line);
    if (reader.failed) {
      publish_ingest(config, rep, "ingest.corpus", /*aborted=*/true);
      return std::nullopt;
    }
  }
  if (is.bad()) {  // I/O failure mid-stream: fatal in either mode
    rep.add(line_number, "", ParseReason::kTruncated);
    publish_ingest(config, rep, "ingest.corpus", /*aborted=*/true);
    return std::nullopt;
  }
  reader.commit_open_trace();
  publish_ingest(config, rep, "ingest.corpus", /*aborted=*/false);
  return std::move(reader.corpus);
}

std::optional<TraceCorpus> read_corpus(std::istream& is,
                                       std::string* error) {
  ParseReport report;
  auto corpus = read_corpus(is, IngestConfig{}, &report);
  if (!corpus && error != nullptr && !report.errors.empty())
    *error = report.errors.front().to_string();
  return corpus;
}

void write_rdns(std::ostream& os, const dns::RdnsDb& db) {
  for (const auto& [addr, name] : db.entries())
    os << "R " << addr.to_string() << ' ' << name << '\n';
}

std::optional<dns::RdnsDb> read_rdns(std::istream& is,
                                     const IngestConfig& config,
                                     ParseReport* report) {
  ParseReport local;
  ParseReport& rep = report != nullptr ? *report : local;
  dns::RdnsDb db;
  std::string raw;
  int line_number = 0;
  auto fail = [&](std::string_view token, ParseReason reason) {
    rep.add(line_number, error_field(token), reason);
    if (config.mode == IngestMode::kStrict) {
      publish_ingest(config, rep, "ingest.rdns", /*aborted=*/true);
      return true;
    }
    rep.skipped_lines += 1;
    return false;
  };
  while (std::getline(is, raw)) {
    ++line_number;
    const auto line = trim_line(raw);
    if (line.empty()) continue;
    rep.lines += 1;
    const auto fields = net::split(line, ' ');
    if (fields[0] != "R") {
      if (fail(line, ParseReason::kUnknownRecordType)) return std::nullopt;
      continue;
    }
    if (fields.size() != 3 || fields[2].empty()) {
      if (fail(line, ParseReason::kMalformedRecord)) return std::nullopt;
      continue;
    }
    const auto addr = net::IPv4Address::parse(fields[1]);
    if (!addr) {
      if (fail(fields[1], ParseReason::kBadAddress)) return std::nullopt;
      continue;
    }
    db.add(*addr, std::string{fields[2]});
    rep.traces_accepted += 1;  // one record per line for rDNS tables
  }
  publish_ingest(config, rep, "ingest.rdns", /*aborted=*/false);
  return db;
}

std::optional<dns::RdnsDb> read_rdns(std::istream& is, std::string* error) {
  ParseReport report;
  auto db = read_rdns(is, IngestConfig{}, &report);
  if (!db && error != nullptr && !report.errors.empty())
    *error = report.errors.front().to_string();
  return db;
}

ParseReport validate_corpus(TraceCorpus& corpus, const IngestConfig& config) {
  ParseReport report;
  auto trace_ok = [&](const probe::TraceRecord& trace, int index) {
    if (trace.vp.empty()) {
      report.add(index, "", ParseReason::kMalformedRecord);
      return false;
    }
    for (const auto& hop : trace.hops) {
      if (!ttl_in_range(hop.ttl) || !ttl_in_range(hop.reply_ttl)) {
        report.add(index, net::format("ttl %d/%d", hop.ttl, hop.reply_ttl),
                   ParseReason::kTtlOutOfRange);
        return false;
      }
      if (!std::isfinite(hop.rtt_ms) || hop.rtt_ms < 0.0) {
        report.add(index, net::format("rtt %g", hop.rtt_ms),
                   ParseReason::kBadRtt);
        return false;
      }
    }
    return true;
  };

  std::size_t keep = 0;
  for (std::size_t i = 0; i < corpus.traces.size(); ++i) {
    auto& trace = corpus.traces[i];
    report.lines += 1 + trace.hops.size();
    if (trace_ok(trace, static_cast<int>(i) + 1)) {
      report.traces_accepted += 1;
      report.hops_accepted += trace.hops.size();
      if (config.mode == IngestMode::kLenient && keep != i)
        corpus.traces[keep] = std::move(trace);
      ++keep;
    } else if (config.mode == IngestMode::kLenient) {
      report.skipped_traces += 1;
      report.skipped_lines += 1 + trace.hops.size();
    } else {
      ++keep;  // strict: report only, leave the corpus untouched
    }
  }
  if (config.mode == IngestMode::kLenient)
    corpus.traces.resize(keep);
  publish_ingest(config, report, "ingest.validate", /*aborted=*/false);
  return report;
}

}  // namespace ran::infer
