#include "corpus_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "netbase/strings.hpp"

namespace ran::infer {

namespace {

/// VP labels may contain anything except whitespace/newlines; generators
/// keep them token-safe, and the writer enforces it.
std::string sanitize(const std::string& label) {
  std::string out = label;
  for (auto& c : out)
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  return out;
}

bool set_error(std::string* error, int line, const char* what) {
  if (error != nullptr)
    *error = net::format("line %d: %s", line, what);
  return false;
}

}  // namespace

void write_corpus(std::ostream& os, const TraceCorpus& corpus) {
  for (const auto& trace : corpus.traces) {
    os << "T " << sanitize(trace.vp) << ' ' << trace.dst.to_string() << ' '
       << (trace.reached ? 1 : 0) << '\n';
    for (const auto& hop : trace.hops) {
      os << "H " << hop.ttl << ' '
         << (hop.responded() ? hop.addr.to_string() : std::string{"*"})
         << ' ' << net::format("%.4f", hop.rtt_ms) << ' ' << hop.reply_ttl
         << '\n';
    }
  }
}

std::optional<TraceCorpus> read_corpus(std::istream& is,
                                       std::string* error) {
  TraceCorpus corpus;
  std::string line;
  int line_number = 0;
  bool in_trace = false;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = net::split(line, ' ');
    if (fields[0] == "T") {
      if (fields.size() != 4) {
        set_error(error, line_number, "malformed trace header");
        return std::nullopt;
      }
      probe::TraceRecord record;
      record.vp = std::string{fields[1]};
      const auto dst = net::IPv4Address::parse(fields[2]);
      if (!dst) {
        set_error(error, line_number, "bad destination address");
        return std::nullopt;
      }
      record.dst = *dst;
      record.reached = fields[3] == "1";
      corpus.add(std::move(record));
      in_trace = true;
      continue;
    }
    if (fields[0] == "H") {
      if (!in_trace || fields.size() != 5) {
        set_error(error, line_number, "hop outside a trace or malformed");
        return std::nullopt;
      }
      sim::Hop hop;
      auto parse_int = [](std::string_view text, int& out) {
        const auto* begin = text.data();
        const auto [ptr, ec] =
            std::from_chars(begin, begin + text.size(), out);
        return ec == std::errc{} && ptr == begin + text.size();
      };
      if (!parse_int(fields[1], hop.ttl)) {
        set_error(error, line_number, "bad ttl");
        return std::nullopt;
      }
      if (fields[2] != "*") {
        const auto addr = net::IPv4Address::parse(fields[2]);
        if (!addr) {
          set_error(error, line_number, "bad hop address");
          return std::nullopt;
        }
        hop.addr = *addr;
      }
      try {
        hop.rtt_ms = std::stod(std::string{fields[3]});
      } catch (const std::exception&) {
        set_error(error, line_number, "bad rtt");
        return std::nullopt;
      }
      if (!parse_int(fields[4], hop.reply_ttl)) {
        set_error(error, line_number, "bad reply ttl");
        return std::nullopt;
      }
      corpus.traces.back().hops.push_back(hop);
      continue;
    }
    set_error(error, line_number, "unknown record type");
    return std::nullopt;
  }
  return corpus;
}

void write_rdns(std::ostream& os, const dns::RdnsDb& db) {
  for (const auto& [addr, name] : db.entries())
    os << "R " << addr.to_string() << ' ' << name << '\n';
}

std::optional<dns::RdnsDb> read_rdns(std::istream& is, std::string* error) {
  dns::RdnsDb db;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = net::split(line, ' ');
    if (fields.size() != 3 || fields[0] != "R") {
      set_error(error, line_number, "malformed rdns record");
      return std::nullopt;
    }
    const auto addr = net::IPv4Address::parse(fields[1]);
    if (!addr) {
      set_error(error, line_number, "bad address");
      return std::nullopt;
    }
    db.add(*addr, std::string{fields[2]});
  }
  return db;
}

}  // namespace ran::infer
