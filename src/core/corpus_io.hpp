// Persistence for measurement artifacts: traceroute corpora and rDNS
// tables, in a line-oriented text format. The paper's workflow separates
// collection (weeks of probing) from analysis (repeated offline runs);
// these functions let a campaign be captured once and re-analyzed without
// the simulator.
//
// Formats (one record per line, space-separated):
//   corpus:  T <vp> <dst> <reached 0|1>      — starts a trace
//            H <ttl> <addr|*> <rtt_ms> <reply_ttl>
//   rdns:    R <addr> <hostname>
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "dnssim/rdns.hpp"
#include "observations.hpp"

namespace ran::infer {

void write_corpus(std::ostream& os, const TraceCorpus& corpus);
/// Parses a corpus; nullopt on any malformed record (with the bad line
/// number in `error` when provided).
[[nodiscard]] std::optional<TraceCorpus> read_corpus(
    std::istream& is, std::string* error = nullptr);

void write_rdns(std::ostream& os, const dns::RdnsDb& db);
[[nodiscard]] std::optional<dns::RdnsDb> read_rdns(
    std::istream& is, std::string* error = nullptr);

}  // namespace ran::infer
