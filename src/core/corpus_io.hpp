// Persistence for measurement artifacts: traceroute corpora and rDNS
// tables, in a line-oriented text format. The paper's workflow separates
// collection (weeks of probing) from analysis (repeated offline runs);
// these functions let a campaign be captured once and re-analyzed without
// the simulator.
//
// Formats (one record per line, space-separated):
//   corpus:  T <vp> <dst> <reached 0|1>      — starts a trace
//            H <ttl> <addr|*> <rtt_ms> <reply_ttl>
//   rdns:    R <addr> <hostname>
//
// Robustness contract (ISSUE 3): the readers tolerate CRLF line endings
// and trailing whitespace, validate every field (TTLs in [0, 255], RTTs
// finite and non-negative, full-token numeric parses), and never garble a
// record silently. In strict mode the first malformed record aborts the
// load with a structured ParseReport error; in lenient mode the whole
// containing trace is dropped and counted, so the resulting corpus is
// exactly the input with the corrupt records pruned. Round trip holds:
// write_corpus(read_corpus(x)) == x for any file write_corpus produced
// (the golden-corpus test in tests/test_fault_ingest.cpp).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "dnssim/rdns.hpp"
#include "observations.hpp"
#include "parse_report.hpp"

namespace ran::infer {

void write_corpus(std::ostream& os, const TraceCorpus& corpus);

/// Parses a corpus under `config`. Strict mode returns nullopt on the
/// first malformed record; lenient mode always returns a corpus equal to
/// the input with every trace containing a malformed line removed. The
/// report (optional) carries per-reason accounting either way, and
/// `config.metrics` receives the `ingest.*` counters.
[[nodiscard]] std::optional<TraceCorpus> read_corpus(
    std::istream& is, const IngestConfig& config,
    ParseReport* report = nullptr);

/// Strict-mode shorthand; `error` receives the first error's rendering.
[[nodiscard]] std::optional<TraceCorpus> read_corpus(
    std::istream& is, std::string* error = nullptr);

void write_rdns(std::ostream& os, const dns::RdnsDb& db);

/// Parses an rDNS table under `config` (lenient mode skips-and-counts
/// individual malformed lines; there is no multi-line record to prune).
[[nodiscard]] std::optional<dns::RdnsDb> read_rdns(
    std::istream& is, const IngestConfig& config,
    ParseReport* report = nullptr);

/// Strict-mode shorthand; `error` receives the first error's rendering.
[[nodiscard]] std::optional<dns::RdnsDb> read_rdns(
    std::istream& is, std::string* error = nullptr);

/// Applies the loader's per-record invariants to an in-memory corpus (as
/// the pipelines do before analysis): TTLs in range, RTTs finite and
/// non-negative, non-empty VP labels. ParseError::line holds the 1-based
/// trace index. Lenient mode prunes offending traces in place; strict
/// mode leaves the corpus untouched and only reports. The report is also
/// published to `config.metrics` when set.
ParseReport validate_corpus(TraceCorpus& corpus, const IngestConfig& config);

}  // namespace ran::infer
