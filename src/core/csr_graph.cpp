#include "csr_graph.hpp"

namespace ran::infer {

CsrGraph CsrGraph::from_regional(const RegionalGraph& graph) {
  CsrGraph csr;
  csr.region_ = graph.region;
  // Interning the sorted cos set keeps node id order == key order.
  for (const auto& co : graph.cos) csr.interner_.intern(co);
  const auto n = csr.interner_.size();
  csr.agg_.assign(n, 0);
  for (const auto& co : graph.agg_cos) {
    const auto id = csr.interner_.find(co);
    if (id != kInvalid) csr.agg_[id] = 1;
  }

  csr.fwd_offsets_.assign(n + 1, 0);
  std::size_t edges = 0;
  for (const auto& [from, tos] : graph.out) edges += tos.size();
  csr.fwd_to_.reserve(edges);
  csr.fwd_count_.reserve(edges);
  std::uint32_t next = 0;
  for (const auto& [from, tos] : graph.out) {
    const auto u = csr.interner_.find(from);
    // graph.out iterates sorted; fill offset gaps for edge-less nodes.
    while (next <= u) csr.fwd_offsets_[next++] =
        static_cast<std::uint32_t>(csr.fwd_to_.size());
    for (const auto& [to, count] : tos) {
      csr.fwd_to_.push_back(csr.interner_.find(to));
      csr.fwd_count_.push_back(count);
    }
  }
  while (next <= n) csr.fwd_offsets_[next++] =
      static_cast<std::uint32_t>(csr.fwd_to_.size());
  csr.fwd_dead_.assign(csr.fwd_to_.size(), 0);

  // Reverse index by counting sort over targets: reverse rows list the
  // forward-edge indices pointing at each node, sources ascending
  // (forward edges are emitted in (from, to) order).
  csr.rev_offsets_.assign(n + 1, 0);
  for (const auto to : csr.fwd_to_) ++csr.rev_offsets_[to + 1];
  for (std::size_t v = 1; v <= n; ++v)
    csr.rev_offsets_[v] += csr.rev_offsets_[v - 1];
  csr.rev_edge_.resize(csr.fwd_to_.size());
  csr.rev_from_.resize(csr.fwd_to_.size());
  std::vector<std::uint32_t> cursor{csr.rev_offsets_};
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t e = csr.fwd_offsets_[u]; e < csr.fwd_offsets_[u + 1];
         ++e) {
      const auto slot = cursor[csr.fwd_to_[e]]++;
      csr.rev_edge_[slot] = e;
      csr.rev_from_[slot] = u;
    }
  }
  return csr;
}

RegionalGraph CsrGraph::to_regional() const {
  RegionalGraph graph;
  graph.region = region_;
  const auto n = static_cast<std::uint32_t>(node_count());
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t e = fwd_offsets_[u]; e < fwd_offsets_[u + 1]; ++e) {
      if (fwd_dead_[e] != 0) continue;
      graph.add_edge(std::string{key(u)}, std::string{key(fwd_to_[e])},
                     fwd_count_[e]);
    }
  }
  for (const auto& added : added_)
    graph.add_edge(std::string{key(added.from)}, std::string{key(added.to)},
                   added.count);
  for (std::uint32_t u = 0; u < n; ++u)
    if (agg_[u] != 0 && graph.cos.contains(std::string{key(u)}))
      graph.agg_cos.insert(std::string{key(u)});
  return graph;
}

int CsrGraph::out_degree(std::uint32_t u) const {
  int degree = 0;
  for (std::uint32_t e = fwd_offsets_[u]; e < fwd_offsets_[u + 1]; ++e)
    degree += fwd_dead_[e] == 0;
  for (const auto& added : added_) degree += added.from == u;
  return degree;
}

int CsrGraph::in_degree(std::uint32_t v) const {
  int degree = 0;
  for (std::uint32_t i = rev_offsets_[v]; i < rev_offsets_[v + 1]; ++i)
    degree += fwd_dead_[rev_edge_[i]] == 0;
  for (const auto& added : added_) degree += added.to == v;
  return degree;
}

bool CsrGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  const auto begin = fwd_to_.begin() + fwd_offsets_[u];
  const auto end = fwd_to_.begin() + fwd_offsets_[u + 1];
  const auto it = std::lower_bound(begin, end, v);
  if (it != end && *it == v &&
      fwd_dead_[static_cast<std::size_t>(it - fwd_to_.begin())] == 0)
    return true;
  return added_lookup_.contains({u, v});
}

void CsrGraph::add_edge(std::uint32_t u, std::uint32_t v, int count) {
  if (added_lookup_.emplace(u, v).second) added_.push_back({u, v, count});
}

std::vector<std::uint32_t> CsrGraph::parents_of(std::uint32_t v) const {
  std::vector<std::uint32_t> parents;
  for (std::uint32_t i = rev_offsets_[v]; i < rev_offsets_[v + 1]; ++i)
    if (fwd_dead_[rev_edge_[i]] == 0) parents.push_back(rev_from_[i]);
  for (const auto& added : added_)
    if (added.to == v) parents.push_back(added.from);
  // Reverse rows ascend by source already; side additions may not.
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

}  // namespace ran::infer
