// Arena-backed CSR (compressed sparse row) form of a RegionalGraph.
//
// Nodes are CO keys interned to dense uint32 ids in *sorted key order*,
// so iterating ids 0..n-1 visits COs exactly as the legacy
// std::map/std::set facade does — which is what keeps provenance
// transcripts byte-identical between the two representations. Edges live
// in parallel arrays (target, observation count, tombstone flag) with
// both forward and reverse offset tables, so:
//   * out/in degree and adjacency tests are array scans, not map walks;
//   * pruning/refinement removals are in-place tombstones (no erases);
//   * parents_of() — an O(V*E) full-graph scan on the facade — is one
//     reverse-row lookup.
// Ring-completion additions go to a side list (the CSR arrays are
// immutable after build) and are folded back by to_regional().
//
// The facade RegionalGraph remains the interchange type: exports, eval,
// and resilience reports consume it unchanged. from_regional() /
// to_regional() convert losslessly, with to_regional() dropping nodes
// that tombstoning fully isolated — the same orphan rule
// RegionalGraph::remove_edge applies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "graph.hpp"
#include "interner.hpp"

namespace ran::infer {

class CsrGraph {
 public:
  static constexpr std::uint32_t kInvalid = core::Interner::kInvalidId;

  /// Builds the CSR form. Node ids follow sorted CO-key order (so id
  /// order == facade iteration order); each forward row lists targets
  /// with ids ascending.
  [[nodiscard]] static CsrGraph from_regional(const RegionalGraph& graph);

  /// Converts back to a facade graph holding region, cos, out, and
  /// agg_cos: live forward edges plus side-list additions. Nodes with no
  /// remaining incident edge are dropped (the facade's orphan rule).
  /// Entry maps are the caller's to carry over.
  [[nodiscard]] RegionalGraph to_regional() const;

  [[nodiscard]] std::size_t node_count() const { return interner_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return fwd_to_.size(); }
  [[nodiscard]] std::string_view key(std::uint32_t id) const {
    return interner_.view(id);
  }
  [[nodiscard]] std::uint32_t id_of(std::string_view key) const {
    return interner_.find(key);
  }

  [[nodiscard]] bool is_agg(std::uint32_t id) const { return agg_[id] != 0; }
  void set_agg(std::uint32_t id, bool agg) { agg_[id] = agg ? 1 : 0; }
  void clear_agg() { std::fill(agg_.begin(), agg_.end(), 0); }

  // Forward rows: edge indices [fwd_begin(u), fwd_end(u)) belong to u.
  [[nodiscard]] std::uint32_t fwd_begin(std::uint32_t u) const {
    return fwd_offsets_[u];
  }
  [[nodiscard]] std::uint32_t fwd_end(std::uint32_t u) const {
    return fwd_offsets_[u + 1];
  }
  [[nodiscard]] std::uint32_t edge_to(std::uint32_t e) const {
    return fwd_to_[e];
  }
  [[nodiscard]] int edge_traces(std::uint32_t e) const {
    return fwd_count_[e];
  }
  [[nodiscard]] bool edge_dead(std::uint32_t e) const {
    return fwd_dead_[e] != 0;
  }
  /// Tombstones a forward edge in place.
  void remove_edge(std::uint32_t e) { fwd_dead_[e] = 1; }

  /// Live out-degree of u (tombstoned edges excluded, side additions
  /// included).
  [[nodiscard]] int out_degree(std::uint32_t u) const;
  /// Live in-degree of v.
  [[nodiscard]] int in_degree(std::uint32_t v) const;
  /// True when a live (or side-added) edge u -> v exists.
  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const;
  /// Appends u -> v with `count` observations to the side list.
  void add_edge(std::uint32_t u, std::uint32_t v, int count);

  // Reverse rows: entries [rev_begin(v), rev_end(v)) are indices of the
  // forward edges pointing at v; rev_from(i) is the source node.
  [[nodiscard]] std::uint32_t rev_begin(std::uint32_t v) const {
    return rev_offsets_[v];
  }
  [[nodiscard]] std::uint32_t rev_end(std::uint32_t v) const {
    return rev_offsets_[v + 1];
  }
  [[nodiscard]] std::uint32_t rev_edge(std::uint32_t i) const {
    return rev_edge_[i];
  }
  [[nodiscard]] std::uint32_t rev_from(std::uint32_t i) const {
    return rev_from_[i];
  }
  /// Live upstream ids of v, ascending (the reverse-CSR parents_of).
  [[nodiscard]] std::vector<std::uint32_t> parents_of(std::uint32_t v) const;

  [[nodiscard]] const std::string& region() const { return region_; }

 private:
  core::Interner interner_;  ///< node id == intern id (sorted key order)
  std::string region_;

  std::vector<std::uint32_t> fwd_offsets_;
  std::vector<std::uint32_t> fwd_to_;
  std::vector<int> fwd_count_;
  std::vector<std::uint8_t> fwd_dead_;
  std::vector<std::uint32_t> rev_offsets_;
  std::vector<std::uint32_t> rev_edge_;
  std::vector<std::uint32_t> rev_from_;
  std::vector<std::uint8_t> agg_;

  struct AddedEdge {
    std::uint32_t from;
    std::uint32_t to;
    int count;
  };
  std::vector<AddedEdge> added_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> added_lookup_;
};

}  // namespace ran::infer
