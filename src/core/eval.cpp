#include "eval.hpp"

#include <algorithm>
#include <set>

#include "csr_graph.hpp"
#include "dnssim/extract.hpp"
#include "netbase/contracts.hpp"

namespace ran::infer {

std::string_view to_string(AggregationType type) {
  switch (type) {
    case AggregationType::kSingleAgg: return "single-aggco";
    case AggregationType::kTwoAggs: return "two-aggcos";
    case AggregationType::kMultiLevel: return "multi-level";
  }
  return "?";
}

AggregationType classify_region(const RegionalGraph& graph) {
  if (graph.agg_cos.size() <= 1) return AggregationType::kSingleAgg;
  // Multi-level: some AggCO feeds another AggCO.
  for (const auto& from : graph.agg_cos) {
    const auto it = graph.out.find(from);
    if (it == graph.out.end()) continue;
    for (const auto& [to, count] : it->second)
      if (graph.agg_cos.contains(to)) return AggregationType::kMultiLevel;
  }
  return graph.agg_cos.size() == 2 ? AggregationType::kTwoAggs
                                   : AggregationType::kMultiLevel;
}

RedundancyStats redundancy_of(const RegionalGraph& graph) {
  RedundancyStats stats;
  stats.agg_cos = static_cast<int>(graph.agg_cos.size());
  // One CSR build turns the facade's per-CO O(V*E) parents_of scans into
  // reverse-row lookups.
  const auto csr = CsrGraph::from_regional(graph);
  for (const auto& co : graph.edge_cos()) {
    ++stats.edge_cos;
    const auto parents = csr.parents_of(csr.id_of(co));
    if (parents.size() == 1) {
      ++stats.single_upstream;
      if (!csr.is_agg(parents.front())) ++stats.single_via_edge;
    }
  }
  return stats;
}

RegionSizeSeries region_sizes(
    const std::map<std::string, RegionalGraph>& regions) {
  RegionSizeSeries series;
  for (const auto& [name, graph] : regions) {
    series.total_cos.push_back(static_cast<double>(graph.cos.size()));
    // §5.3 counts any CO with outgoing edges as an AggCO.
    int aggs = 0;
    for (const auto& co : graph.cos) aggs += graph.out_degree(co) > 0;
    series.agg_cos.push_back(static_cast<double>(aggs));
  }
  return series;
}

std::string truth_co_key(const topo::CentralOffice& co) {
  RAN_EXPECTS(co.city != nullptr);
  return dns::co_key_for(*co.city, co.building);
}

std::optional<GraphAccuracy> compare_with_truth(const RegionalGraph& graph,
                                                const topo::Isp& isp) {
  // Find the ground-truth region carrying this rDNS tag.
  const topo::Region* region = nullptr;
  for (const auto& candidate : isp.regions())
    if (candidate.name == graph.region) region = &candidate;
  if (region == nullptr) return std::nullopt;

  // True intra-region CO adjacency set (undirected, keyed like inference).
  std::set<std::pair<std::string, std::string>> truth;
  std::map<std::string, bool> truth_is_agg;
  std::set<topo::CoId> region_cos{region->cos.begin(), region->cos.end()};
  for (const auto& link : isp.links()) {
    const auto& ra = isp.router(isp.iface(link.a).router);
    const auto& rb = isp.router(isp.iface(link.b).router);
    if (ra.co == rb.co) continue;
    if (!region_cos.contains(ra.co) || !region_cos.contains(rb.co)) continue;
    auto ka = truth_co_key(isp.co(ra.co));
    auto kb = truth_co_key(isp.co(rb.co));
    if (kb < ka) std::swap(ka, kb);
    truth.emplace(ka, kb);
  }
  for (const auto co_id : region->cos) {
    const auto& co = isp.co(co_id);
    if (co.role == topo::CoRole::kBackbone) continue;
    truth_is_agg[truth_co_key(co)] = co.role == topo::CoRole::kAgg;
  }

  GraphAccuracy accuracy;
  accuracy.true_edges = truth.size();
  std::set<std::pair<std::string, std::string>> inferred;
  for (const auto& [from, tos] : graph.out) {
    for (const auto& [to, count] : tos) {
      auto a = from;
      auto b = to;
      if (b < a) std::swap(a, b);
      inferred.emplace(a, b);
    }
  }
  accuracy.inferred_edges = inferred.size();
  for (const auto& edge : inferred)
    accuracy.correct_edges += truth.contains(edge);

  std::set<std::string> true_aggs;
  for (const auto& [key, is_agg] : truth_is_agg)
    if (is_agg) true_aggs.insert(key);
  for (const auto& co : graph.agg_cos) {
    if (true_aggs.contains(co))
      ++accuracy.agg_true_positive;
    else
      ++accuracy.agg_false_positive;
  }
  for (const auto& agg : true_aggs)
    if (!graph.agg_cos.contains(agg)) ++accuracy.agg_false_negative;
  return accuracy;
}

}  // namespace ran::infer
