// Evaluation and analysis of inferred regional graphs.
//
// Two kinds of consumers:
//  * paper-shaped analyses that need only the inferred graphs —
//    aggregation-type classification (Table 1), redundancy statistics
//    (§5.3 / B.4), CO counts per region (Fig 7);
//  * ground-truth comparison (precision/recall of CO adjacencies, AggCO
//    classification accuracy) — the one component allowed to look at
//    ran::topo objects, standing in for the operator interviews of §5.4.
#pragma once

#include <map>
#include <string>

#include "graph.hpp"
#include "topogen/model.hpp"

namespace ran::infer {

/// The three regional archetypes of Fig 8 / Table 1.
enum class AggregationType { kSingleAgg, kTwoAggs, kMultiLevel };

[[nodiscard]] std::string_view to_string(AggregationType type);

/// Classifies a refined regional graph: one AggCO; a flat set of AggCOs
/// all fed from entries; or aggregation layered on aggregation.
[[nodiscard]] AggregationType classify_region(const RegionalGraph& graph);

/// §5.3 / B.4 redundancy accounting over one region.
struct RedundancyStats {
  int edge_cos = 0;
  int single_upstream = 0;       ///< EdgeCOs with exactly one upstream CO
  int single_via_edge = 0;       ///< ...whose upstream is another EdgeCO
  int agg_cos = 0;
};

[[nodiscard]] RedundancyStats redundancy_of(const RegionalGraph& graph);

/// Accumulated Fig 7 series: total COs and AggCOs per region.
struct RegionSizeSeries {
  std::vector<double> total_cos;
  std::vector<double> agg_cos;
};

[[nodiscard]] RegionSizeSeries region_sizes(
    const std::map<std::string, RegionalGraph>& regions);

// ---------------------------------------------------------------------
// Ground-truth comparison
// ---------------------------------------------------------------------

/// Edge-level accuracy of one inferred region against the generated ISP.
struct GraphAccuracy {
  std::size_t true_edges = 0;      ///< intra-region CO adjacencies in truth
  std::size_t inferred_edges = 0;
  std::size_t correct_edges = 0;   ///< inferred & true (undirected match)
  int agg_true_positive = 0;       ///< inferred AggCOs that really are Agg
  int agg_false_positive = 0;
  int agg_false_negative = 0;

  [[nodiscard]] double edge_precision() const {
    return inferred_edges == 0
               ? 0.0
               : static_cast<double>(correct_edges) /
                     static_cast<double>(inferred_edges);
  }
  [[nodiscard]] double edge_recall() const {
    return true_edges == 0
               ? 0.0
               : static_cast<double>(correct_edges) /
                     static_cast<double>(true_edges);
  }
};

/// Canonical key of a ground-truth CO (matches the extractor's co_key for
/// decodable hostnames), so inferred and true COs compare directly.
[[nodiscard]] std::string truth_co_key(const topo::CentralOffice& co);

/// Compares one inferred regional graph with the ground-truth region of
/// the same rDNS tag. Returns nullopt when the region name is unknown.
[[nodiscard]] std::optional<GraphAccuracy> compare_with_truth(
    const RegionalGraph& graph, const topo::Isp& isp);

}  // namespace ran::infer
