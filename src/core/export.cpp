#include "export.hpp"

#include <ostream>
#include <sstream>

#include "obs/provenance.hpp"

namespace ran::infer {

namespace {

/// Escapes a CO key for DOT/JSON string literals.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// The rule id of the last decision recorded for an edge; empty when the
/// log knows nothing about it (e.g. ring completions before PR'd rules).
const obs::EdgeProvenance* edge_record(const obs::ProvenanceLog* provenance,
                                       const std::string& from,
                                       const std::string& to) {
  return provenance == nullptr ? nullptr : provenance->find(from, to);
}

}  // namespace

void write_dot(std::ostream& os, const RegionalGraph& graph,
               const obs::ProvenanceLog* provenance) {
  os << "digraph \"" << escape(graph.region) << "\" {\n"
     << "  rankdir=TB;\n  node [fontsize=10];\n";
  for (const auto& co : graph.cos) {
    const char* shape = graph.agg_cos.contains(co) ? "box" : "ellipse";
    os << "  \"" << escape(co) << "\" [shape=" << shape << "];\n";
  }
  for (const auto& [entry, reached] : graph.backbone_entries) {
    os << "  \"" << escape(entry) << "\" [shape=diamond,style=filled,"
       << "fillcolor=lightgray];\n";
    for (const auto& co : reached)
      os << "  \"" << escape(entry) << "\" -> \"" << escape(co) << "\";\n";
  }
  for (const auto& [entry, info] : graph.region_entries) {
    os << "  \"" << escape(entry) << "\" [shape=diamond,style=dashed];\n";
    for (const auto& co : info.second)
      os << "  \"" << escape(entry) << "\" -> \"" << escape(co)
         << "\" [style=dashed];\n";
  }
  for (const auto& [from, tos] : graph.out) {
    for (const auto& [to, count] : tos) {
      os << "  \"" << escape(from) << "\" -> \"" << escape(to)
         << "\" [label=\"" << count << '"';
      if (const auto* record = edge_record(provenance, from, to);
          record != nullptr && !record->decisions.empty()) {
        os << ",tooltip=\"" << escape(record->decisions.back().rule)
           << ": " << record->observations << " traces";
        if (!record->first_trace.empty())
          os << ", " << escape(record->first_trace) << " .. "
             << escape(record->last_trace);
        os << '"';
      }
      os << "];\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const RegionalGraph& graph,
                   const obs::ProvenanceLog* provenance) {
  std::ostringstream os;
  write_dot(os, graph, provenance);
  return os.str();
}

void write_json(std::ostream& os, const RegionalGraph& graph,
                const obs::ProvenanceLog* provenance) {
  os << "{\"region\":\"" << escape(graph.region) << "\",\"cos\":[";
  bool first = true;
  for (const auto& co : graph.cos) {
    if (!first) os << ',';
    first = false;
    os << '"' << escape(co) << '"';
  }
  os << "],\"agg_cos\":[";
  first = true;
  for (const auto& co : graph.agg_cos) {
    if (!first) os << ',';
    first = false;
    os << '"' << escape(co) << '"';
  }
  os << "],\"edges\":[";
  first = true;
  for (const auto& [from, tos] : graph.out) {
    for (const auto& [to, count] : tos) {
      if (!first) os << ',';
      first = false;
      os << "{\"from\":\"" << escape(from) << "\",\"to\":\"" << escape(to)
         << "\",\"traces\":" << count;
      if (const auto* record = edge_record(provenance, from, to);
          record != nullptr && !record->decisions.empty()) {
        os << ",\"rule\":\"" << escape(record->decisions.back().rule)
           << "\",\"observations\":" << record->observations
           << ",\"first_support\":\"" << escape(record->first_trace)
           << "\",\"last_support\":\"" << escape(record->last_trace)
           << '"';
      }
      os << '}';
    }
  }
  os << "],\"backbone_entries\":[";
  first = true;
  for (const auto& [entry, reached] : graph.backbone_entries) {
    if (!first) os << ',';
    first = false;
    os << '"' << escape(entry) << '"';
  }
  os << "],\"region_entries\":[";
  first = true;
  for (const auto& [entry, info] : graph.region_entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"co\":\"" << escape(entry) << "\",\"from_region\":\""
       << escape(info.first) << "\"}";
  }
  os << "]}";
}

std::string to_json(const RegionalGraph& graph,
                    const obs::ProvenanceLog* provenance) {
  std::ostringstream os;
  write_json(os, graph, provenance);
  return os.str();
}

}  // namespace ran::infer
