// Export of inferred regional graphs for downstream tooling:
// Graphviz DOT (visual inspection, the style of Fig 6/13) and a
// line-oriented JSON for programmatic consumers.
#pragma once

#include <iosfwd>
#include <string>

#include "graph.hpp"

namespace ran::obs {
class ProvenanceLog;
}  // namespace ran::obs

namespace ran::infer {

/// Graphviz DOT: AggCOs as boxes, EdgeCOs as ellipses, entries as
/// diamonds; edge labels carry observation counts. With a provenance
/// log, each edge gains a tooltip naming the rule that created/kept it
/// and its supporting-trace window.
void write_dot(std::ostream& os, const RegionalGraph& graph,
               const obs::ProvenanceLog* provenance = nullptr);
[[nodiscard]] std::string to_dot(
    const RegionalGraph& graph,
    const obs::ProvenanceLog* provenance = nullptr);

/// Compact JSON object: {"region":..., "cos":[...], "agg_cos":[...],
/// "edges":[{"from":...,"to":...,"traces":n}...], "backbone_entries":...}.
/// With a provenance log, each edge object additionally carries "rule",
/// "observations", "first_support" and "last_support".
void write_json(std::ostream& os, const RegionalGraph& graph,
                const obs::ProvenanceLog* provenance = nullptr);
[[nodiscard]] std::string to_json(
    const RegionalGraph& graph,
    const obs::ProvenanceLog* provenance = nullptr);

}  // namespace ran::infer
