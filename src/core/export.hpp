// Export of inferred regional graphs for downstream tooling:
// Graphviz DOT (visual inspection, the style of Fig 6/13) and a
// line-oriented JSON for programmatic consumers.
#pragma once

#include <iosfwd>
#include <string>

#include "graph.hpp"

namespace ran::infer {

/// Graphviz DOT: AggCOs as boxes, EdgeCOs as ellipses, entries as
/// diamonds; edge labels carry observation counts.
void write_dot(std::ostream& os, const RegionalGraph& graph);
[[nodiscard]] std::string to_dot(const RegionalGraph& graph);

/// Compact JSON object: {"region":..., "cos":[...], "agg_cos":[...],
/// "edges":[{"from":...,"to":...,"traces":n}...], "backbone_entries":...}.
void write_json(std::ostream& os, const RegionalGraph& graph);
[[nodiscard]] std::string to_json(const RegionalGraph& graph);

}  // namespace ran::infer
