#include "footprint.hpp"

#include "obs/provenance.hpp"

namespace ran::infer {

namespace {

std::uint64_t string_bytes(const std::string& s) {
  // Small strings live inline in the object; only spilled capacity is
  // extra heap.
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

}  // namespace

std::uint64_t approx_bytes(const TraceCorpus& corpus) {
  std::uint64_t total = corpus.traces.capacity() *
                        sizeof(probe::TraceRecord);
  for (const auto& trace : corpus.traces) {
    total += string_bytes(trace.vp);
    total += trace.hops.capacity() * sizeof(trace.hops[0]);
  }
  return total;
}

std::uint64_t approx_bytes(const RouterClusters& clusters) {
  std::uint64_t total = 0;
  for (const auto& cluster : clusters.clusters())
    total += sizeof(cluster) + cluster.capacity() * sizeof(cluster[0]);
  // The address -> cluster index plus hash-table node overhead.
  std::uint64_t addresses = 0;
  for (const auto& cluster : clusters.clusters())
    addresses += cluster.size();
  total += addresses * (sizeof(net::IPv4Address) + sizeof(int) +
                        2 * sizeof(void*));
  return total;
}

std::uint64_t approx_bytes(const CoMap& map) {
  std::uint64_t total = 0;
  for (const auto& [addr, annotation] : map.entries()) {
    total += sizeof(addr) + sizeof(annotation) + 2 * sizeof(void*);
    total += string_bytes(annotation.co_key);
    total += string_bytes(annotation.region);
  }
  return total;
}

std::uint64_t approx_bytes(const RegionalGraph& graph) {
  // Node-based maps/sets: payload plus three pointers and a colour per
  // red-black node.
  constexpr std::uint64_t kNode = 4 * sizeof(void*);
  std::uint64_t total = 0;
  for (const auto& co : graph.cos)
    total += kNode + sizeof(co) + string_bytes(co);
  for (const auto& [from, tos] : graph.out) {
    total += kNode + sizeof(from) + string_bytes(from);
    for (const auto& [to, count] : tos)
      total += kNode + sizeof(to) + string_bytes(to) + sizeof(count);
  }
  for (const auto& co : graph.agg_cos)
    total += kNode + sizeof(co) + string_bytes(co);
  for (const auto& [co, reached] : graph.backbone_entries) {
    total += kNode + sizeof(co) + string_bytes(co);
    for (const auto& r : reached)
      total += kNode + sizeof(r) + string_bytes(r);
  }
  for (const auto& [co, entry] : graph.region_entries) {
    total += kNode + sizeof(co) + string_bytes(co);
    total += sizeof(entry.first) + string_bytes(entry.first);
    for (const auto& r : entry.second)
      total += kNode + sizeof(r) + string_bytes(r);
  }
  return total;
}

std::uint64_t approx_bytes(const obs::ProvenanceLog& log) {
  constexpr std::uint64_t kNode = 4 * sizeof(void*);
  std::uint64_t total = 0;
  for (const auto& [key, edge] : log.edges()) {
    total += kNode + sizeof(key) + sizeof(edge);
    total += string_bytes(key.first) + string_bytes(key.second);
    total += string_bytes(edge.first_trace) + string_bytes(edge.last_trace);
    total += edge.decisions.capacity() * sizeof(obs::EdgeDecision);
    for (const auto& decision : edge.decisions)
      total += string_bytes(decision.rule) + string_bytes(decision.detail);
  }
  for (const auto& [rule, counts] : log.rule_counts())
    total += kNode + sizeof(rule) + string_bytes(rule) + sizeof(counts);
  for (const auto& [co, rules] : log.mapping_support()) {
    total += kNode + sizeof(co) + string_bytes(co);
    for (const auto& [rule, count] : rules)
      total += kNode + sizeof(rule) + string_bytes(rule) + sizeof(count);
  }
  return total;
}

}  // namespace ran::infer
