// Approximate heap footprints of the big inference structures, reported
// into the ResourceProfiler's structure accounting next to the
// /proc-based RSS samples. Estimates count element payloads and string
// capacities, not allocator metadata — good enough to answer "which
// structure dominates memory" in a manifest's resources section, and
// cheap enough to compute once per pipeline run.
#pragma once

#include <cstdint>

#include "alias_resolution.hpp"
#include "co_mapping.hpp"
#include "graph.hpp"
#include "observations.hpp"

namespace ran::obs {
class ProvenanceLog;
}  // namespace ran::obs

namespace ran::infer {

[[nodiscard]] std::uint64_t approx_bytes(const TraceCorpus& corpus);
[[nodiscard]] std::uint64_t approx_bytes(const RouterClusters& clusters);
[[nodiscard]] std::uint64_t approx_bytes(const CoMap& map);
[[nodiscard]] std::uint64_t approx_bytes(const RegionalGraph& graph);
[[nodiscard]] std::uint64_t approx_bytes(const obs::ProvenanceLog& log);

}  // namespace ran::infer
