// Inferred CO-level topology graphs (§5.2).
#pragma once

#include <map>
#include <set>
#include <string>

#include "co_mapping.hpp"

namespace ran::infer {

/// The inferred graph of one regional access network. Nodes are CO keys;
/// edges are directed in traceroute order (toward the last mile), with
/// observation counts.
struct RegionalGraph {
  std::string region;  ///< regional rDNS tag
  std::set<std::string> cos;
  /// Directed adjacency: upstream CO -> downstream CO -> trace count.
  std::map<std::string, std::map<std::string, int>> out;
  /// COs inferred to aggregate others (§5.2.2). Populated by refinement.
  std::set<std::string> agg_cos;
  /// Backbone entry points (§5.2.5): backbone CO key -> region COs reached.
  std::map<std::string, std::set<std::string>> backbone_entries;
  /// Entries from other regions: foreign CO key -> (its region, reached).
  std::map<std::string, std::pair<std::string, std::set<std::string>>>
      region_entries;

  [[nodiscard]] bool has_edge(const std::string& from,
                              const std::string& to) const {
    const auto it = out.find(from);
    return it != out.end() && it->second.contains(to);
  }
  void add_edge(const std::string& from, const std::string& to, int count) {
    cos.insert(from);
    cos.insert(to);
    out[from][to] += count;
  }
  void remove_edge(const std::string& from, const std::string& to) {
    const auto it = out.find(from);
    if (it == out.end()) return;
    if (it->second.erase(to) == 0) return;
    if (it->second.empty()) out.erase(from);
    drop_if_isolated(from);
    drop_if_isolated(to);
  }
  /// Drops a CO from the node sets once no edge touches it anymore —
  /// pruning must not leave phantom nodes behind in cos/agg_cos.
  void drop_if_isolated(const std::string& co) {
    if (out.contains(co)) return;
    for (const auto& [from, tos] : out)
      if (tos.contains(co)) return;
    cos.erase(co);
    agg_cos.erase(co);
  }
  [[nodiscard]] int out_degree(const std::string& co) const {
    const auto it = out.find(co);
    return it == out.end() ? 0 : static_cast<int>(it->second.size());
  }
  [[nodiscard]] std::size_t edge_count() const {
    std::size_t n = 0;
    for (const auto& [from, tos] : out) n += tos.size();
    return n;
  }
  /// COs with no outgoing edges plus non-agg COs: the EdgeCOs under the
  /// paper's working definition ("any CO with outgoing edges" is an
  /// AggCO in §5.3's accounting).
  [[nodiscard]] std::set<std::string> edge_cos() const {
    std::set<std::string> result;
    for (const auto& co : cos)
      if (!agg_cos.contains(co)) result.insert(co);
    return result;
  }
  /// Upstream COs of a CO (predecessors in the directed graph).
  [[nodiscard]] std::set<std::string> parents_of(const std::string& co) const {
    std::set<std::string> result;
    for (const auto& [from, tos] : out)
      if (tos.contains(co)) result.insert(from);
    return result;
  }
};

}  // namespace ran::infer
