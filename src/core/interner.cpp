#include "interner.hpp"

#include <algorithm>

#include "netbase/contracts.hpp"

namespace ran::core {

std::uint32_t Interner::intern(std::string_view key) {
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  RAN_EXPECTS(views_.size() < kInvalidId);
  const auto id = static_cast<std::uint32_t>(views_.size());
  const auto stored = store(key);
  views_.push_back(stored);
  index_.emplace(stored, id);
  return id;
}

std::uint32_t Interner::find(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? kInvalidId : it->second;
}

std::string_view Interner::store(std::string_view key) {
  if (blocks_.empty() ||
      blocks_.back().capacity() - blocks_.back().size() < key.size()) {
    blocks_.emplace_back();
    blocks_.back().reserve(std::max(kBlockSize, key.size()));
  }
  auto& block = blocks_.back();
  const auto offset = block.size();
  block.insert(block.end(), key.begin(), key.end());
  arena_bytes_ += key.size();
  return {block.data() + offset, key.size()};
}

}  // namespace ran::core
