// String interning for the dense graph kernels: CO keys (and any other
// repeated analysis string) map to dense uint32 ids, with the bytes held
// in an append-only arena. A CsrGraph indexes by these ids instead of
// std::string nodes, so adjacency scans touch 4-byte ids rather than
// heap-allocated keys, and id -> key resolution is a single array load.
//
// Determinism contract: ids are assigned in first-intern order, so two
// runs that intern the same keys in the same order agree on every id.
// The graph kernels intern in sorted-CO-key order per region, which is
// what keeps CSR row order equal to the legacy std::map iteration order.
// Interner is NOT thread-safe; each analysis shard owns its own (or
// interns before fanning out).
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ran::core {

class Interner {
 public:
  static constexpr std::uint32_t kInvalidId =
      std::numeric_limits<std::uint32_t>::max();

  /// Returns the id of `key`, interning a copy into the arena on first
  /// sight. Ids are dense: 0, 1, 2, ... in first-intern order.
  std::uint32_t intern(std::string_view key);

  /// The id of `key` if already interned, kInvalidId otherwise.
  [[nodiscard]] std::uint32_t find(std::string_view key) const;

  /// The interned bytes of an id. Valid for the interner's lifetime.
  [[nodiscard]] std::string_view view(std::uint32_t id) const {
    return views_[id];
  }

  [[nodiscard]] std::size_t size() const { return views_.size(); }
  [[nodiscard]] bool empty() const { return views_.empty(); }

  /// Arena bytes held (for resource accounting).
  [[nodiscard]] std::uint64_t arena_bytes() const { return arena_bytes_; }

 private:
  /// Copies `key` into the arena and returns a stable view of the copy.
  std::string_view store(std::string_view key);

  static constexpr std::size_t kBlockSize = 1 << 14;
  std::vector<std::vector<char>> blocks_;
  std::uint64_t arena_bytes_ = 0;
  std::vector<std::string_view> views_;  ///< id -> arena bytes
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace ran::core
