#include "latency_study.hpp"

#include <algorithm>

#include "netbase/stats.hpp"

namespace ran::infer {

std::vector<EdgeCoTarget> edge_co_targets(const CableStudy& study) {
  // One representative mapped address per inferred EdgeCO.
  std::map<std::string, EdgeCoTarget> chosen;
  for (const auto& [name, graph] : study.regions()) {
    const auto edges = graph.edge_cos();
    for (const auto& [addr, annotation] : study.mapping.map.entries()) {
      if (annotation.region != name) continue;
      if (!edges.contains(annotation.co_key)) continue;
      auto& slot = chosen[annotation.co_key];
      if (!slot.addr.is_unspecified()) continue;
      slot.co_key = annotation.co_key;
      slot.region = name;
      if (annotation.city != nullptr)
        slot.state = std::string{annotation.city->state};
      slot.addr = addr;
    }
  }
  std::vector<EdgeCoTarget> out;
  out.reserve(chosen.size());
  for (auto& [key, target] : chosen)
    if (!target.addr.is_unspecified()) out.push_back(std::move(target));
  return out;
}

double EdgeCoCloudRtt::nearest() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [provider, rtt] : best_by_provider)
    best = std::min(best, rtt);
  return best;
}

std::vector<EdgeCoCloudRtt> cloud_latency_campaign(
    const sim::World& world, std::span<const vp::ExternalVp> cloud_vms,
    std::span<const EdgeCoTarget> targets, int pings) {
  std::vector<EdgeCoCloudRtt> out;
  out.reserve(targets.size());
  for (const auto& target : targets) {
    EdgeCoCloudRtt row;
    row.target = target;
    for (const auto& vm : cloud_vms) {
      const auto slash = vm.name.find('/');
      const std::string provider = vm.name.substr(0, slash);
      const auto rtt = world.min_rtt(vm.source(), target.addr, pings);
      if (!rtt) continue;
      const auto it = row.best_by_provider.find(provider);
      if (it == row.best_by_provider.end() || *rtt < it->second)
        row.best_by_provider[provider] = *rtt;
    }
    if (!row.best_by_provider.empty()) out.push_back(std::move(row));
  }
  return out;
}

std::map<std::string, std::map<std::string, double>> state_medians(
    std::span<const EdgeCoCloudRtt> rtts,
    std::span<const std::string> states) {
  std::map<std::string, std::map<std::string, std::vector<double>>> samples;
  for (const auto& row : rtts) {
    if (std::find(states.begin(), states.end(), row.target.state) ==
        states.end())
      continue;
    for (const auto& [provider, rtt] : row.best_by_provider)
      samples[provider][row.target.state].push_back(rtt);
  }
  std::map<std::string, std::map<std::string, double>> out;
  for (const auto& [provider, by_state] : samples)
    for (const auto& [state, values] : by_state)
      out[provider][state] = net::median(values);
  return out;
}

std::map<std::string, double> agg_to_edge_rtts(const CableStudy& study) {
  std::map<std::string, double> best;
  for (const auto& trace : study.corpus().traces) {
    // Annotated responding hops in order.
    std::vector<std::pair<const CoAnnotation*, double>> hops;
    for (const auto& hop : trace.hops) {
      if (!hop.responded()) continue;
      const auto* annotation = study.mapping.map.get(hop.addr);
      if (annotation != nullptr) hops.emplace_back(annotation, hop.rtt_ms);
    }
    for (std::size_t i = 0; i < hops.size(); ++i) {
      const auto* agg = hops[i].first;
      const auto region_it = study.regions().find(agg->region);
      if (region_it == study.regions().end()) continue;
      if (!region_it->second.agg_cos.contains(agg->co_key)) continue;
      for (std::size_t j = i + 1; j < hops.size(); ++j) {
        const auto* edge = hops[j].first;
        if (edge->region != agg->region) continue;
        if (region_it->second.agg_cos.contains(edge->co_key)) continue;
        const double diff = hops[j].second - hops[i].second;
        if (diff <= 0) continue;
        const auto it = best.find(edge->co_key);
        if (it == best.end() || diff < it->second)
          best[edge->co_key] = diff;
      }
    }
  }
  return best;
}

}  // namespace ran::infer
