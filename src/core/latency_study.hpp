// Latency analyses over inferred topologies (§5.5, Figs 9 and 10).
//
// All measurements are ping campaigns from cloud VMs to addresses the
// pipeline mapped to EdgeCOs, plus RTT differences read off traceroute
// hops for the AggCO->EdgeCO distances — no ground-truth access.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cable_pipeline.hpp"
#include "vantage/vps.hpp"

namespace ran::infer {

/// One probeable address per inferred EdgeCO of a study (the "EdgeCO IP
/// addresses included in our graphs" of §5.5).
struct EdgeCoTarget {
  std::string co_key;
  std::string region;
  std::string state;  ///< decoded from the CO's hostname; may be empty
  net::IPv4Address addr;
};

[[nodiscard]] std::vector<EdgeCoTarget> edge_co_targets(
    const CableStudy& study);

/// Minimum RTT to an EdgeCO from its best cloud region of each provider.
struct EdgeCoCloudRtt {
  EdgeCoTarget target;
  /// provider ("aws"/"azure"/"gcp") -> best min-RTT from that provider.
  std::map<std::string, double> best_by_provider;

  /// Overall nearest-cloud RTT.
  [[nodiscard]] double nearest() const;
};

/// Pings every target from every cloud VM (`pings` each), keeping the
/// per-provider minimum (§5.5's methodology).
[[nodiscard]] std::vector<EdgeCoCloudRtt> cloud_latency_campaign(
    const sim::World& world, std::span<const vp::ExternalVp> cloud_vms,
    std::span<const EdgeCoTarget> targets, int pings = 10);

/// Fig 9 rows: median per-state nearest-cloud RTT, one series per
/// provider. Returns provider -> state -> median RTT.
[[nodiscard]] std::map<std::string, std::map<std::string, double>>
state_medians(std::span<const EdgeCoCloudRtt> rtts,
              std::span<const std::string> states);

/// Fig 10b: per-EdgeCO RTT from its nearest inferred AggCO, derived from
/// hop RTT differences inside the study's traceroutes.
[[nodiscard]] std::map<std::string, double> agg_to_edge_rtts(
    const CableStudy& study);

}  // namespace ran::infer
