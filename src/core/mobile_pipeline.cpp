#include "mobile_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "probe/campaign.hpp"
#include "snapshot.hpp"

namespace ran::infer {

namespace {

/// Sample pairs used for per-bit statistics: (i, j, near?) with i < j and
/// different airplane cycles. Capped for large corpora.
struct PairSets {
  std::vector<std::pair<std::size_t, std::size_t>> near;
  std::vector<std::pair<std::size_t, std::size_t>> far;
};

PairSets build_pairs(const std::vector<vp::ShipSample>& samples,
                     const MobileStudyConfig& config) {
  PairSets pairs;
  constexpr std::size_t kCap = 60000;
  const std::size_t stride =
      std::max<std::size_t>(1, samples.size() * samples.size() / (2 * kCap));
  std::size_t counter = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      if (counter++ % stride != 0) continue;
      if (samples[i].cycle == samples[j].cycle) continue;
      const double km = net::haversine_km(samples[i].cell_location,
                                          samples[j].cell_location);
      if (km < config.near_km)
        pairs.near.emplace_back(i, j);
      else if (km > config.far_km)
        pairs.far.emplace_back(i, j);
    }
  }
  return pairs;
}

/// Ship-sample counterpart of infer::validate_corpus: same taxonomy and
/// ingest.* counters, with ParseError::line holding the 1-based sample
/// index. Lenient prunes in place; strict only reports.
ParseReport validate_samples(std::vector<vp::ShipSample>& samples,
                             const IngestConfig& config,
                             obs::Registry& metrics) {
  ParseReport report;
  auto sample_ok = [&](const vp::ShipSample& sample, int index) {
    if (!std::isfinite(sample.cell_location.lat) ||
        !std::isfinite(sample.cell_location.lon) ||
        !std::isfinite(sample.true_location.lat) ||
        !std::isfinite(sample.true_location.lon)) {
      report.add(index, "location", ParseReason::kMalformedRecord);
      return false;
    }
    if (!std::isfinite(sample.min_rtt_to_server_ms) ||
        sample.min_rtt_to_server_ms < 0.0) {
      report.add(index, "min_rtt_to_server_ms", ParseReason::kBadRtt);
      return false;
    }
    if (sample.user_prefix.is_unspecified()) {
      report.add(index, "user_prefix", ParseReason::kBadAddress);
      return false;
    }
    return true;
  };
  std::size_t keep = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    report.lines += 1;
    if (sample_ok(samples[i], static_cast<int>(i) + 1)) {
      report.traces_accepted += 1;
      if (config.mode == IngestMode::kLenient && keep != i)
        samples[keep] = std::move(samples[i]);
      ++keep;
    } else if (config.mode == IngestMode::kLenient) {
      report.skipped_traces += 1;
      report.skipped_lines += 1;
    } else {
      ++keep;  // strict: report only, leave the corpus untouched
    }
  }
  if (config.mode == IngestMode::kLenient) samples.resize(keep);
  report.publish(metrics);
  return report;
}

enum class BitClass { kConstant, kGeographic, kAttachment };

/// Classifies one address bit from its flip rates over near/far pairs.
BitClass classify_bit(const std::vector<net::IPv6Address>& addrs,
                      const PairSets& pairs, int bit) {
  bool varies = false;
  const auto first = addrs.front().bits(bit, 1);
  for (const auto& addr : addrs) varies = varies || addr.bits(bit, 1) != first;
  if (!varies) return BitClass::kConstant;
  auto flip_rate = [&](const auto& set) {
    if (set.empty()) return 0.0;
    std::size_t flips = 0;
    for (const auto& [i, j] : set)
      flips += addrs[i].bits(bit, 1) != addrs[j].bits(bit, 1);
    return static_cast<double>(flips) / static_cast<double>(set.size());
  };
  const double near = flip_rate(pairs.near);
  // Stable at a location across re-attachments, varying across the
  // country: a geographic code. Anything that flips locally is attachment
  // churn (PGW selection or subscriber entropy). Near pairs straddling a
  // region boundary can push a geographic bit over this threshold; the
  // caller compensates by re-running with boundary pairs filtered out.
  if (near < 0.06) return BitClass::kGeographic;
  return BitClass::kAttachment;
}

int round_down_nibble(int bit) { return bit / 4 * 4; }

/// Distinct values of addr bits [first, first+width).
int distinct_values(const std::vector<net::IPv6Address>& addrs, int first,
                    int width) {
  std::set<std::uint64_t> values;
  for (const auto& addr : addrs) values.insert(addr.bits(first, width));
  return static_cast<int>(values.size());
}

/// Grows the attachment (PGW) field nibble by nibble from `start`:
/// each extension must keep the field's value set small relative to both
/// its previous size (rules out fresh entropy, whose values multiply by
/// ~16 per nibble) and the corpus (rules out saturation). When the
/// address carries a geographic field, the values must also repeat within
/// each region — a gateway pool is small, subscriber entropy is not.
InferredField grow_attachment_field(const std::vector<net::IPv6Address>& addrs,
                                    int start, int max_end, int geo_start,
                                    int geo_width) {
  InferredField field;
  field.role = "pgw";
  const int n = static_cast<int>(addrs.size());
  // Skip leading constant nibbles (padding between fields).
  while (start + 4 <= max_end && distinct_values(addrs, start, 4) == 1)
    start += 4;
  field.first_bit = start;

  auto reuses_within_regions = [&](int width) {
    if (geo_width <= 0) return true;
    std::map<std::uint64_t, std::pair<int, std::set<std::uint64_t>>> groups;
    for (const auto& addr : addrs) {
      auto& [count, values] = groups[addr.bits(geo_start, geo_width)];
      ++count;
      values.insert(addr.bits(start, width));
    }
    for (const auto& [key, group] : groups) {
      const auto& [count, values] = group;
      if (count < 6) continue;
      if (static_cast<int>(values.size()) > std::max(2, count / 2))
        return false;
    }
    return true;
  };

  int prev_distinct = 1;
  int width = 0;
  while (start + width + 4 <= max_end && width < 24) {
    const int d = distinct_values(addrs, start, width + 4);
    if (d > 12 * prev_distinct || d > n / 4) break;
    if (!reuses_within_regions(width + 4)) break;
    width += 4;
    prev_distinct = d;
  }
  // Trim trailing constant nibbles and demand a real value set.
  while (width >= 4 &&
         distinct_values(addrs, start + width - 4, 4) == 1)
    width -= 4;
  field.width = width;
  field.distinct_values =
      width == 0 ? 0 : distinct_values(addrs, start, width);
  if (field.distinct_values < 2) {
    field.width = 0;
    field.distinct_values = 0;
  }
  return field;
}

/// The rDNS site label of a sample's backbone hop, if any.
std::string backbone_site(const vp::ShipSample& sample) {
  for (const auto& hop : sample.hops)
    if (!hop.rdns.empty()) return hop.rdns;
  return {};
}

/// Splits a geographic field into (region, edgeco) using the backbone-hop
/// rDNS: the region subfield is the shortest nibble-aligned prefix whose
/// values map one-to-one onto backbone sites (§7.2.2).
std::vector<InferredField> split_geo_field(
    const std::vector<vp::ShipSample>& samples,
    const std::vector<net::IPv6Address>& addrs, int first, int width) {
  std::vector<InferredField> out;
  // Collect (geo bits, site) for samples with a named backbone hop.
  std::vector<std::pair<std::size_t, std::string>> sited;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto site = backbone_site(samples[i]);
    if (!site.empty()) sited.emplace_back(i, std::move(site));
  }
  int split = 0;
  if (sited.size() >= 10) {
    for (int w = 4; w < width; w += 4) {
      std::map<std::uint64_t, std::string> value_site;
      bool consistent = true;
      for (const auto& [i, site] : sited) {
        const auto value = addrs[i].bits(first, w);
        const auto [it, inserted] = value_site.emplace(value, site);
        if (!inserted && it->second != site) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        split = w;
        break;
      }
    }
  }
  if (split > 0 && split < width) {
    out.push_back({"region", first, split,
                   distinct_values(addrs, first, split)});
    out.push_back({"edgeco", first + split, width - split,
                   distinct_values(addrs, first + split, width - split)});
  } else {
    out.push_back({"region", first, width,
                   distinct_values(addrs, first, width)});
  }
  return out;
}

/// Full field analysis of one address stream (user /64s or infra hops).
struct FieldAnalysis {
  net::IPv6Prefix prefix;
  std::vector<InferredField> fields;
};

FieldAnalysis analyze_addresses(const std::vector<vp::ShipSample>& samples,
                                const std::vector<net::IPv6Address>& addrs,
                                const PairSets& pairs, int scan_bits,
                                int parallelism) {
  RAN_EXPECTS(!addrs.empty());
  FieldAnalysis out;

  // A near pair straddling a region boundary makes geographic bits look
  // like attachment churn. Iterate: classify, take the geographic span
  // found so far, drop near pairs that disagree on it (cross-boundary
  // pairs), and re-classify until the span stabilizes.
  int prefix_len = 0;
  int geo_start = 0;
  int geo_end = 0;
  PairSets working = pairs;
  for (int round = 0; round < 3; ++round) {
    // Each bit's flip statistics are independent; classify them across
    // the worker pool, each result landing in its own slot.
    std::vector<BitClass> classes(static_cast<std::size_t>(scan_bits));
    probe::parallel_for(
        static_cast<std::size_t>(scan_bits), parallelism, [&](std::size_t bit) {
          classes[bit] = classify_bit(addrs, working, static_cast<int>(bit));
        });

    prefix_len = 0;
    while (prefix_len < scan_bits &&
           classes[static_cast<std::size_t>(prefix_len)] ==
               BitClass::kConstant)
      ++prefix_len;
    prefix_len = round_down_nibble(prefix_len);

    geo_start = prefix_len;
    int new_geo_end = geo_start;
    for (int bit = geo_start; bit < scan_bits; ++bit) {
      const auto cls = classes[static_cast<std::size_t>(bit)];
      if (cls == BitClass::kAttachment) break;
      if (cls == BitClass::kGeographic) new_geo_end = bit + 1;
    }
    new_geo_end = std::min(scan_bits, (new_geo_end + 3) / 4 * 4);
    const bool stable = new_geo_end == geo_end;
    geo_end = new_geo_end;
    if (stable || geo_end <= geo_start) break;
    PairSets filtered;
    filtered.far = pairs.far;
    const int width = geo_end - geo_start;
    for (const auto& [i, j] : pairs.near)
      if (addrs[i].bits(geo_start, width) == addrs[j].bits(geo_start, width))
        filtered.near.push_back({i, j});
    working = std::move(filtered);
  }
  out.prefix = net::IPv6Prefix{addrs.front(), prefix_len};
  out.fields.push_back({"prefix", 0, prefix_len, 1});
  if (geo_end > geo_start) {
    const auto split =
        split_geo_field(samples, addrs, geo_start, geo_end - geo_start);
    out.fields.insert(out.fields.end(), split.begin(), split.end());
  } else {
    geo_end = geo_start;
  }

  // Attachment (PGW) field after the geography.
  auto pgw = grow_attachment_field(addrs, geo_end, scan_bits, geo_start,
                                   geo_end - geo_start);
  if (pgw.width > 0) out.fields.push_back(pgw);
  return out;
}

}  // namespace

const InferredField* MobileStudy::user_field(std::string_view role) const {
  for (const auto& field : user_fields)
    if (field.role == role) return &field;
  return nullptr;
}

const InferredField* MobileStudy::infra_field(std::string_view role) const {
  for (const auto& field : infra_fields)
    if (field.role == role) return &field;
  return nullptr;
}

MobileStudy analyze_mobile(const vp::ShipCampaignResult& corpus,
                           std::string carrier_name, int carrier_asn,
                           const MobileStudyConfig& config) {
  RAN_EXPECTS(!corpus.samples.empty());
  MobileStudy study;
  study.carrier = std::move(carrier_name);
  study.samples = corpus;
  // Every run is instrumented so the manifest is always complete; a
  // caller-provided registry simply aggregates across runs too.
  obs::Registry local_metrics;
  obs::Registry& metrics = config.campaign.metrics != nullptr
                               ? *config.campaign.metrics
                               : local_metrics;
  const int parallelism = config.campaign.parallelism;

  // Ingest boundary: GPS glitches and radio dropouts yield samples with
  // non-finite coordinates/RTTs (or no delegated prefix at all); one such
  // sample poisons every pairwise distance. Lenient mode prunes-and-counts
  // them; strict treats them as a contract violation.
  const auto ingest_report =
      validate_samples(study.samples.samples, config.ingest, metrics);
  RAN_EXPECTS(config.ingest.mode == IngestMode::kLenient ||
              ingest_report.ok());
  RAN_EXPECTS(!study.samples.samples.empty());
  const auto& samples = study.samples.samples;
  obs::StageTimer pairs_stage{&metrics, "pairs"};
  const auto pairs = build_pairs(samples, config);
  pairs_stage.add_items(pairs.near.size() + pairs.far.size());
  pairs_stage.stop();

  // ---- user /64 analysis ------------------------------------------------
  obs::StageTimer user_stage{&metrics, "user_fields"};
  std::vector<net::IPv6Address> user_addrs;
  user_addrs.reserve(samples.size());
  for (const auto& sample : samples)
    user_addrs.push_back(sample.user_prefix);
  const auto user =
      analyze_addresses(samples, user_addrs, pairs, 64, parallelism);
  study.user_prefix = user.prefix;
  study.user_fields = user.fields;
  user_stage.add_items(user_addrs.size());
  user_stage.stop();

  // ---- infrastructure hop analysis --------------------------------------
  // Representative infra address per sample: the last in-carrier
  // responding hop outside the user prefix.
  obs::StageTimer infra_stage{&metrics, "infra_fields"};
  std::vector<net::IPv6Address> infra_addrs;
  std::vector<vp::ShipSample> infra_samples;
  for (const auto& sample : samples) {
    net::IPv6Address chosen;
    for (const auto& hop : sample.hops) {
      if (!hop.responded() || hop.asn != carrier_asn) continue;
      if (study.user_prefix.contains(hop.addr)) continue;
      chosen = hop.addr;
    }
    if (!chosen.is_unspecified()) {
      infra_addrs.push_back(chosen);
      infra_samples.push_back(sample);
    }
  }
  if (infra_addrs.size() >= 20) {
    const auto infra_pairs = build_pairs(infra_samples, config);
    const auto infra = analyze_addresses(infra_samples, infra_addrs,
                                         infra_pairs, 96, parallelism);
    study.infra_prefix = infra.prefix;
    study.infra_fields = infra.fields;
  }
  infra_stage.add_items(infra_addrs.size());
  infra_stage.stop();

  // ---- region clustering -------------------------------------------------
  obs::StageTimer regions_stage{&metrics, "regions"};
  // Combined geographic bits of the user address, or pure geographic
  // clustering when the plan encodes none (T-Mobile).
  const auto* region_field = study.user_field("region");
  const auto* edge_field = study.user_field("edgeco");
  auto geo_key = [&](const net::IPv6Address& addr) -> std::uint64_t {
    std::uint64_t key = 0;
    if (region_field != nullptr)
      key = addr.bits(region_field->first_bit, region_field->width);
    if (edge_field != nullptr)
      key = (key << edge_field->width) |
            addr.bits(edge_field->first_bit, edge_field->width);
    return key;
  };
  study.region_of_sample.assign(samples.size(), -1);
  std::map<std::uint64_t, int> region_index;
  if (region_field != nullptr) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto key = geo_key(user_addrs[i]);
      const auto [it, inserted] = region_index.emplace(
          key, static_cast<int>(study.regions.size()));
      if (inserted) {
        MobileRegionInference region;
        region.geo_value = key;
        region.label = net::format("%llx",
                                   static_cast<unsigned long long>(key));
        study.regions.push_back(std::move(region));
      }
      study.region_of_sample[i] = it->second;
    }
  } else {
    // Greedy geographic clustering.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      int best = -1;
      double best_km = config.cluster_km;
      for (std::size_t r = 0; r < study.regions.size(); ++r) {
        const double km = net::haversine_km(samples[i].cell_location,
                                            study.regions[r].centroid);
        if (km < best_km) {
          best_km = km;
          best = static_cast<int>(r);
        }
      }
      if (best < 0) {
        MobileRegionInference region;
        region.centroid = samples[i].cell_location;
        region.label = net::format("cluster-%zu", study.regions.size());
        best = static_cast<int>(study.regions.size());
        study.regions.push_back(std::move(region));
      }
      study.region_of_sample[i] = best;
    }
  }

  // Populate per-region aggregates. PGW values come from whichever side
  // of the plan exposes them (user first, else infrastructure).
  const auto* user_pgw = study.user_field("pgw");
  const auto* infra_pgw = study.infra_field("pgw");
  std::unordered_map<std::uint64_t, net::IPv6Address> infra_by_cycle;
  for (std::size_t i = 0; i < infra_samples.size(); ++i)
    infra_by_cycle[infra_samples[i].cycle] = infra_addrs[i];

  std::map<int, std::vector<net::GeoPoint>> points;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const int r = study.region_of_sample[i];
    if (r < 0) continue;
    auto& region = study.regions[static_cast<std::size_t>(r)];
    ++region.samples;
    points[r].push_back(samples[i].cell_location);
    region.backbone_asns.insert(samples[i].backbone_asn);
    if (user_pgw != nullptr) {
      region.pgw_values.insert(
          user_addrs[i].bits(user_pgw->first_bit, user_pgw->width));
    } else if (infra_pgw != nullptr) {
      const auto it = infra_by_cycle.find(samples[i].cycle);
      if (it != infra_by_cycle.end())
        region.pgw_values.insert(
            it->second.bits(infra_pgw->first_bit, infra_pgw->width));
    }
  }
  for (auto& [r, locs] : points) {
    double lat = 0, lon = 0;
    for (const auto& p : locs) {
      lat += p.lat;
      lon += p.lon;
    }
    auto& region = study.regions[static_cast<std::size_t>(r)];
    region.centroid = {lat / static_cast<double>(locs.size()),
                       lon / static_cast<double>(locs.size())};
  }
  regions_stage.add_items(study.regions.size());
  regions_stage.stop();

  metrics.counter("mobile.samples").inc(samples.size());
  metrics.counter("mobile.infra_samples").inc(infra_samples.size());
  metrics.counter("mobile.regions").inc(study.regions.size());

  // Provenance accounting: one mobile.field per accepted address field
  // (user and infrastructure sides), one mobile.region per recovered
  // region cluster. The per-field records make explain()-style audits
  // possible on the mobile study even though its units are bit fields and
  // clusters rather than CO edges.
  for (const auto& field : study.user_fields)
    study.edge_provenance.record(
        "user." + field.role, study.carrier, "mobile.field", true,
        net::format("bits [%d, %d) of the user /64 classified as %s",
                    field.first_bit, field.first_bit + field.width,
                    field.role.c_str()));
  for (const auto& field : study.infra_fields)
    study.edge_provenance.record(
        "infra." + field.role, study.carrier, "mobile.field", true,
        net::format("bits [%d, %d) of the infrastructure address "
                    "classified as %s",
                    field.first_bit, field.first_bit + field.width,
                    field.role.c_str()));
  for (const auto& region : study.regions)
    study.edge_provenance.record(
        "region." + region.label, study.carrier, "mobile.region", true,
        net::format("%d sample(s) clustered into this region",
                    region.samples));

  auto& manifest = study.run_manifest;
  manifest.set_name("mobile." + study.carrier);
  manifest.set_config("near_km", config.near_km);
  manifest.set_config("far_km", config.far_km);
  manifest.set_config("cluster_km", config.cluster_km);
  manifest.set_config("carrier_asn", static_cast<std::int64_t>(carrier_asn));
  manifest.set_config("ingest.mode",
                      std::string{to_string(config.ingest.mode)});
  manifest.add_summary("corpus", "samples",
                       static_cast<std::uint64_t>(samples.size()));
  manifest.add_summary("corpus", "skipped_samples",
                       static_cast<std::uint64_t>(
                           ingest_report.skipped_traces));
  manifest.add_summary("corpus", "infra_samples",
                       static_cast<std::uint64_t>(infra_samples.size()));
  manifest.add_summary("clusters", "regions",
                       static_cast<std::uint64_t>(study.regions.size()));
  manifest.add_summary("fields", "user_fields",
                       static_cast<std::uint64_t>(study.user_fields.size()));
  manifest.add_summary("fields", "infra_fields",
                       static_cast<std::uint64_t>(study.infra_fields.size()));
  // Freeze the carrier's inferred structure into the queryable snapshot:
  // a star from the packet core to every recovered region, weighted by
  // sample support — the honest CO-level reading of a mobile topology
  // where the packet gateways are the only aggregation layer observed
  // (Fig 17). Node names match the provenance records, so explain
  // queries answer for mobile edges too.
  {
    RegionalGraph graph;
    graph.region = study.carrier;
    const std::string core = study.carrier;
    for (const auto& region : study.regions) {
      graph.add_edge(core, "region." + region.label, region.samples);
      graph.agg_cos.insert(core);
    }
    std::map<std::string, RegionalGraph> regions;
    regions.emplace(study.carrier, std::move(graph));
    study.topology =
        std::make_shared<const TopologySnapshot>(TopologySnapshot::build(
            "mobile", regions,
            std::make_shared<obs::ProvenanceLog>(study.edge_provenance),
            1));
  }

  manifest.capture(metrics);
  manifest.capture_provenance(study.edge_provenance);
  return study;
}

}  // namespace ran::infer
