// Mobile-carrier topology inference from ShipTraceroute corpora (§7.2).
//
// The only signals are the geo-tagged samples themselves: the device's
// delegated /64, the IPv6 hops through the packet core, the backbone
// provider of each attachment, and RTTs to a fixed server. From bit-level
// statistics over these samples the pipeline recovers the carrier's
// address plan (Fig 16):
//   * the constant user/infrastructure prefixes;
//   * "geographic" bits — stable at a location across airplane cycles but
//     different across distant locations (region / EdgeCO codes);
//   * "attachment" bits — cycling through a small value set at one
//     location as the device re-attaches (packet gateway codes);
//   * everything after — per-subscriber entropy.
// Geographic values then become region clusters, whose attachment-value
// counts reproduce Tables 7/8 and whose backbone-provider sets separate
// the three architectures of Fig 17.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "parse_report.hpp"
#include "probe/campaign.hpp"
#include "study.hpp"
#include "vantage/ship.hpp"

namespace ran::infer {

/// One recovered address field.
struct InferredField {
  std::string role;  ///< "prefix", "region", "edgeco", "pgw"
  int first_bit = 0;
  int width = 0;
  int distinct_values = 0;
};

/// A mobile region recovered from the geographic bits.
struct MobileRegionInference {
  std::uint64_t geo_value = 0;  ///< value of the geographic field(s)
  std::string label;            ///< hex rendering of geo_value
  net::GeoPoint centroid;
  int samples = 0;
  std::set<std::uint64_t> pgw_values;
  std::set<int> backbone_asns;
};

struct MobileStudyConfig {
  /// Samples closer than this are "the same place" for bit statistics.
  double near_km = 60.0;
  /// Distances beyond this count as "far" (different markets).
  double far_km = 800.0;
  /// Geographic clustering radius when the carrier encodes no geography
  /// in user addresses (T-Mobile).
  double cluster_km = 320.0;
  /// Campaign execution shared by all pipelines. The mobile analysis runs
  /// over an already-collected ship corpus, so only `parallelism` (per-bit
  /// classification workers) and `metrics` apply; `trace` is unused.
  probe::CampaignConfig campaign;
  /// Corpus-boundary policy for the ship samples: lenient prunes-and-
  /// counts samples with non-finite coordinates/RTTs or unspecified user
  /// prefixes; strict (default) treats them as a contract violation. The
  /// ingest.* counters land in the run manifest either way.
  IngestConfig ingest;
};

/// The mobile study shares StudyArtifacts with the traceroute pipelines
/// (manifest, provenance — mobile.field per accepted address field,
/// mobile.region per recovered region cluster — and the published
/// topology snapshot); only the corpus/cluster types differ.
struct MobileStudy : StudyArtifacts {
  std::string carrier;
  /// The analyzed ship campaign, retained for downstream consumers.
  vp::ShipCampaignResult samples;
  /// Inferred constant user prefix (nibble-aligned).
  net::IPv6Prefix user_prefix;
  std::vector<InferredField> user_fields;
  /// Principal infrastructure prefix (from packet-core hops) + fields.
  net::IPv6Prefix infra_prefix;
  std::vector<InferredField> infra_fields;
  std::vector<MobileRegionInference> regions;
  /// Region index (into `regions`) per campaign sample; -1 = unassigned.
  std::vector<int> region_of_sample;

  [[nodiscard]] const InferredField* user_field(std::string_view role) const;
  [[nodiscard]] const InferredField* infra_field(std::string_view role) const;

  // The common study surface (infer::StudyLike): the mobile corpus is a
  // ship campaign and its clusters are the inferred regions.
  [[nodiscard]] const vp::ShipCampaignResult& corpus() const {
    return samples;
  }
  [[nodiscard]] const std::vector<MobileRegionInference>& clusters() const {
    return regions;
  }
};

/// Runs the full §7.2 analysis over a shipping campaign.
[[nodiscard]] MobileStudy analyze_mobile(const vp::ShipCampaignResult& corpus,
                                         std::string carrier_name,
                                         int carrier_asn,
                                         const MobileStudyConfig& config = {});

}  // namespace ran::infer
