#include "observations.hpp"

namespace ran::infer {

std::vector<net::IPv4Address> TraceCorpus::responding_addresses() const {
  std::unordered_set<net::IPv4Address> seen;
  for (const auto& trace : traces)
    for (const auto& hop : trace.hops)
      if (hop.responded()) seen.insert(hop.addr);
  return {seen.begin(), seen.end()};
}

}  // namespace ran::infer
