// Shared observation types for the inference pipelines.
//
// Everything in ran::infer consumes only these measurement artifacts —
// traceroute corpora, rDNS tables, alias-probe output — never ground-truth
// topology objects. The evaluation component (eval.hpp) is the single
// exception, by design.
#pragma once

#include <set>
#include <unordered_set>
#include <vector>

#include "dnssim/rdns.hpp"
#include "probe/traceroute.hpp"

namespace ran::infer {

/// A collected body of traceroutes.
struct TraceCorpus {
  std::vector<probe::TraceRecord> traces;

  void add(probe::TraceRecord record) { traces.push_back(std::move(record)); }
  void merge(TraceCorpus other) {
    traces.reserve(traces.size() + other.traces.size());
    traces.insert(traces.end(),
                  std::make_move_iterator(other.traces.begin()),
                  std::make_move_iterator(other.traces.end()));
  }
  [[nodiscard]] std::size_t size() const { return traces.size(); }

  /// Every distinct responding hop address in the corpus.
  [[nodiscard]] std::vector<net::IPv4Address> responding_addresses() const;
};

/// The rDNS sources available to the measurer: live dig lookups plus an
/// aged bulk snapshot (Rapid7-style). Lookups prefer the live source
/// (§B.1: "prioritizing the dig names to reduce potentially stale names").
struct RdnsSources {
  const dns::RdnsDb* live = nullptr;
  const dns::RdnsDb* snapshot = nullptr;

  [[nodiscard]] std::optional<std::string> lookup(
      net::IPv4Address addr) const {
    if (live != nullptr)
      if (auto name = live->lookup(addr)) return name;
    if (snapshot != nullptr)
      if (auto name = snapshot->lookup(addr)) return name;
    return std::nullopt;
  }
};

}  // namespace ran::infer
