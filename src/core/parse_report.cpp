#include "parse_report.hpp"

#include "netbase/strings.hpp"
#include "obs/metrics.hpp"

namespace ran::infer {

std::string_view to_string(ParseReason reason) {
  switch (reason) {
    case ParseReason::kMalformedRecord: return "malformed_record";
    case ParseReason::kUnknownRecordType: return "unknown_record_type";
    case ParseReason::kHopOutsideTrace: return "hop_outside_trace";
    case ParseReason::kBadAddress: return "bad_address";
    case ParseReason::kBadTtl: return "bad_ttl";
    case ParseReason::kTtlOutOfRange: return "ttl_out_of_range";
    case ParseReason::kBadRtt: return "bad_rtt";
    case ParseReason::kBadFlag: return "bad_flag";
    case ParseReason::kDuplicateTrace: return "duplicate_trace";
    case ParseReason::kTruncated: return "truncated";
  }
  return "?";
}

std::string_view to_string(IngestMode mode) {
  return mode == IngestMode::kStrict ? "strict" : "lenient";
}

std::string ParseError::to_string() const {
  return net::format("line %d: %s (\"%s\")", line,
                     std::string{infer::to_string(reason)}.c_str(),
                     field.c_str());
}

void ParseReport::add(int line, std::string_view field, ParseReason reason) {
  ++by_reason[static_cast<std::size_t>(reason)];
  if (errors.size() < kMaxRecordedErrors)
    errors.push_back({line, std::string{field}, reason});
}

std::string ParseReport::summary() const {
  if (ok())
    return net::format("accepted %zu traces (%zu hops) from %zu lines",
                       traces_accepted, hops_accepted, lines);
  std::string reasons;
  for (std::size_t r = 0; r < kParseReasonCount; ++r) {
    if (by_reason[r] == 0) continue;
    if (!reasons.empty()) reasons += ", ";
    reasons += net::format(
        "%s:%zu",
        std::string{to_string(static_cast<ParseReason>(r))}.c_str(),
        by_reason[r]);
  }
  if (skipped_traces == 0 && !errors.empty())
    return net::format("rejected at %s", errors.front().to_string().c_str());
  return net::format(
      "accepted %zu traces (%zu hops), skipped %zu traces / %zu lines (%s)",
      traces_accepted, hops_accepted, skipped_traces, skipped_lines,
      reasons.c_str());
}

void ParseReport::publish(obs::Registry& registry) const {
  registry.counter("ingest.lines").inc(lines);
  registry.counter("ingest.traces").inc(traces_accepted);
  registry.counter("ingest.hops").inc(hops_accepted);
  registry.counter("ingest.skipped_lines").inc(skipped_lines);
  registry.counter("ingest.skipped_traces").inc(skipped_traces);
  for (std::size_t r = 0; r < kParseReasonCount; ++r) {
    if (by_reason[r] == 0) continue;
    registry
        .counter("ingest.reason." +
                 std::string{to_string(static_cast<ParseReason>(r))})
        .inc(by_reason[r]);
  }
}

}  // namespace ran::infer
