// Structured error taxonomy for the corpus/ingest boundary.
//
// The pipelines consume large measurement corpora that — on the real
// Internet — arrive noisy, truncated, and occasionally mangled. Parsers
// must never garble a graph silently: every rejected record is classified
// by a ParseReason, located by line, and either aborts the load (strict
// mode) or is skipped-and-counted (lenient mode) so run manifests record
// the data quality of what was actually analyzed.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {
class Log;
class Registry;
}  // namespace ran::obs

namespace ran::infer {

/// Why a record was rejected. Keep in sync with kParseReasonCount and
/// to_string(); counters are published as `ingest.reason.<name>`.
enum class ParseReason {
  kMalformedRecord,   ///< wrong field count / empty field
  kUnknownRecordType, ///< line tag is not one the format defines
  kHopOutsideTrace,   ///< H line before any T header
  kBadAddress,        ///< unparseable IP address field
  kBadTtl,            ///< unparseable TTL field
  kTtlOutOfRange,     ///< TTL / reply TTL outside [0, 255]
  kBadRtt,            ///< unparseable, negative, or non-finite RTT
  kBadFlag,           ///< reached flag not "0"/"1"
  kDuplicateTrace,    ///< repeated (vp, dst) header when rejection is on
  kTruncated,         ///< stream ended inside a record
};
inline constexpr std::size_t kParseReasonCount = 10;

[[nodiscard]] std::string_view to_string(ParseReason reason);

/// One rejected record: where, what token, and why.
struct ParseError {
  int line = 0;        ///< 1-based input line (or record index for
                       ///< in-memory validation)
  std::string field;   ///< the offending token, for the error message
  ParseReason reason = ParseReason::kMalformedRecord;

  [[nodiscard]] std::string to_string() const;
};

/// Full accounting of one ingest pass. Strict loads carry exactly the
/// aborting error; lenient loads carry per-reason totals plus a capped
/// sample of individual errors.
struct ParseReport {
  /// Individual errors, capped at kMaxRecordedErrors (totals keep exact
  /// counts beyond the cap).
  static constexpr std::size_t kMaxRecordedErrors = 32;

  std::size_t lines = 0;            ///< non-empty input lines examined
  std::size_t traces_accepted = 0;  ///< traces in the returned corpus
  std::size_t hops_accepted = 0;    ///< hops in the returned corpus
  std::size_t skipped_lines = 0;    ///< lenient: lines dropped
  std::size_t skipped_traces = 0;   ///< lenient: whole traces dropped
  std::array<std::size_t, kParseReasonCount> by_reason{};
  std::vector<ParseError> errors;

  /// True when nothing was rejected or skipped.
  [[nodiscard]] bool ok() const {
    return errors.empty() && skipped_lines == 0 && skipped_traces == 0;
  }
  /// Records one rejection (capped error sample + exact reason totals).
  void add(int line, std::string_view field, ParseReason reason);
  [[nodiscard]] std::size_t reason_count(ParseReason reason) const {
    return by_reason[static_cast<std::size_t>(reason)];
  }
  /// One-line human summary ("accepted 120 traces, skipped 3 (bad_ttl:2,
  /// bad_rtt:1)"); the first recorded error when strict parsing aborted.
  [[nodiscard]] std::string summary() const;

  /// Publishes the `ingest.*` counter namespace: lines/traces/hops
  /// accepted, skipped_lines/skipped_traces, and per-reason counters, so
  /// manifests capture data quality alongside the stage tree.
  void publish(obs::Registry& registry) const;
};

/// How the loader reacts to malformed records.
enum class IngestMode {
  kStrict,   ///< abort on the first malformed record
  kLenient,  ///< skip the whole containing trace and count it
};

[[nodiscard]] std::string_view to_string(IngestMode mode);

/// Ingest policy threaded from pipeline configs down to the parsers.
struct IngestConfig {
  IngestMode mode = IngestMode::kStrict;
  /// Reject a second trace with an identical (vp, dst) header. Off by
  /// default: merged multi-phase campaigns legitimately revisit targets.
  bool reject_duplicate_traces = false;
  /// Optional sink for the `ingest.*` counters.
  obs::Registry* metrics = nullptr;
  /// Optional structured logger: lenient loads that dropped anything warn
  /// with the report summary ("accepted N traces, skipped M (...)");
  /// strict aborts log the fatal error. Null costs one pointer test.
  obs::Log* log = nullptr;
};

}  // namespace ran::infer
