#include "pruning.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "corpus_index.hpp"
#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "probe/campaign.hpp"

namespace ran::infer {

void PruningStats::publish(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + ".ip_adj.initial").inc(ip_adj_initial);
  registry.counter(prefix + ".ip_adj.mpls").inc(ip_adj_mpls);
  registry.counter(prefix + ".ip_adj.backbone").inc(ip_adj_backbone);
  registry.counter(prefix + ".ip_adj.cross_region").inc(ip_adj_cross_region);
  registry.counter(prefix + ".ip_adj.single").inc(ip_adj_single);
  registry.counter(prefix + ".co_adj.initial").inc(co_adj_initial);
  registry.counter(prefix + ".co_adj.mpls").inc(co_adj_mpls);
  registry.counter(prefix + ".co_adj.backbone").inc(co_adj_backbone);
  registry.counter(prefix + ".co_adj.cross_region").inc(co_adj_cross_region);
  registry.counter(prefix + ".co_adj.single").inc(co_adj_single);
}

std::set<std::pair<net::IPv4Address, net::IPv4Address>> separated_pairs(
    const TraceCorpus& followups) {
  std::set<std::pair<net::IPv4Address, net::IPv4Address>> out;
  for (const auto& trace : followups.traces) {
    // Responding hops in order.
    std::vector<net::IPv4Address> hops;
    for (const auto& hop : trace.hops)
      if (hop.responded()) hops.push_back(hop.addr);
    for (std::size_t i = 0; i < hops.size(); ++i)
      for (std::size_t j = i + 2; j < hops.size(); ++j)
        if (hops[i] != hops[j]) out.emplace(hops[i], hops[j]);
  }
  return out;
}

namespace {

constexpr auto kNoTrace = std::numeric_limits<std::size_t>::max();

/// One CO adjacency aggregated from its address-level observations.
struct CoAdj {
  int traces = 0;  ///< total observations
  bool backbone = false;
  bool cross_region = false;
  bool mpls = false;
  std::string region;
  std::size_t first_trace = kNoTrace;  ///< earliest non-tunnel support
  std::size_t last_trace = kNoTrace;   ///< latest non-tunnel support
};

/// Address-level MPLS separation evidence plus the CO-level relaxation
/// for endpoints whose mapping did NOT come from their own rDNS (§5.1):
/// loopback/LAN repliers never reappear in follow-up traces, so their
/// separation evidence is lifted to (CO, exact far-end address).
struct MplsSeparation {
  const std::set<std::pair<net::IPv4Address, net::IPv4Address>>* raw;
  std::set<std::pair<std::string, net::IPv4Address>> from_co;
  std::set<std::pair<net::IPv4Address, std::string>> to_co;

  [[nodiscard]] bool separated(
      const std::pair<net::IPv4Address, net::IPv4Address>& pair,
      const CoAnnotation& a, const CoAnnotation& b) const {
    if (raw->contains(pair)) return true;
    if (!a.from_rdns && from_co.contains({a.co_key, pair.second}))
      return true;
    if (!b.from_rdns && to_co.contains({pair.first, b.co_key})) return true;
    return false;
  }
};

[[nodiscard]] MplsSeparation lift_separations(
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    const CoMap& co_map) {
  MplsSeparation sep;
  sep.raw = &mpls_separated;
  for (const auto& pair : mpls_separated) {
    if (const auto* ca = co_map.get(pair.first))
      sep.from_co.emplace(ca->co_key, pair.second);
    if (const auto* cb = co_map.get(pair.second))
      sep.to_co.emplace(pair.first, cb->co_key);
  }
  return sep;
}

[[nodiscard]] std::string trace_id_of(const TraceCorpus& corpus,
                                      std::size_t index) {
  if (index == kNoTrace) return {};
  const auto& trace = corpus.traces[index];
  return "(" + trace.vp + "," + trace.dst.to_string() + ")";
}

/// Classifies one CO adjacency: provenance support + decision record,
/// per-rule stats, and — when kept — the edge in its region's graph.
/// Both the legacy and the index-based pipelines funnel through this, so
/// their transcripts agree by construction.
void classify_co_adj(const std::pair<std::string, std::string>& pair,
                     const CoAdj& adj, const TraceCorpus& corpus,
                     PruningStats& stats, obs::ProvenanceLog* provenance,
                     std::map<std::string, RegionalGraph>& regions) {
  if (provenance != nullptr)
    provenance->add_support(pair.first, pair.second,
                            static_cast<std::uint64_t>(adj.traces),
                            trace_id_of(corpus, adj.first_trace),
                            trace_id_of(corpus, adj.last_trace));
  if (adj.mpls) {
    ++stats.co_adj_mpls;
    if (provenance != nullptr)
      provenance->record(pair.first, pair.second, "prune.mpls", false,
                         "every address-level adjacency spans an MPLS "
                         "tunnel (follow-up traces separate the pair)");
    return;
  }
  if (adj.backbone) {
    ++stats.co_adj_backbone;
    if (provenance != nullptr)
      provenance->record(pair.first, pair.second, "prune.backbone",
                         false,
                         "an endpoint sits in the backbone mesh; "
                         "re-added as an entry in s5.2.5");
    return;  // re-added as entries in §5.2.5
  }
  if (adj.cross_region) {
    ++stats.co_adj_cross_region;
    if (provenance != nullptr)
      provenance->record(pair.first, pair.second, "prune.cross_region",
                         false,
                         "endpoints map to different regions (likely "
                         "stale rDNS, B.2)");
    return;  // likely stale rDNS (B.2); entries come back in §5.2.5
  }
  if (adj.traces <= 1) {
    ++stats.co_adj_single;  // anomalous single-trace edge
    if (provenance != nullptr)
      provenance->record(
          pair.first, pair.second, "prune.single", false,
          net::format("only %d observation(s); anomalous hop discipline "
                      "of s5.2.1",
                      adj.traces));
    return;
  }
  if (provenance != nullptr)
    provenance->record(
        pair.first, pair.second, "prune.kept", true,
        net::format("%d observations, intra-region (%s)", adj.traces,
                    adj.region.c_str()));
  auto& graph = regions[adj.region];
  graph.region = adj.region;
  graph.add_edge(pair.first, pair.second, adj.traces);
}

void log_prune_summary(const PruningStats& stats, std::size_t region_count,
                       obs::Log* log) {
  if (log == nullptr) return;
  const std::size_t pruned = stats.co_adj_mpls + stats.co_adj_backbone +
                             stats.co_adj_cross_region +
                             stats.co_adj_single;
  if (stats.co_adj_initial > 0 && pruned == stats.co_adj_initial)
    log->warn("b2.prune",
              net::format("pruning removed all %zu CO adjacencies; no "
                          "regional graph survives",
                          stats.co_adj_initial));
  else if (log->enabled(obs::LogLevel::kInfo))
    log->info("b2.prune",
              net::format("pruned %zu of %zu CO adjacencies "
                          "(mpls %zu, backbone %zu, cross-region %zu, "
                          "single %zu); %zu region(s) survive",
                          pruned, stats.co_adj_initial, stats.co_adj_mpls,
                          stats.co_adj_backbone, stats.co_adj_cross_region,
                          stats.co_adj_single, region_count));
}

}  // namespace

AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    obs::ProvenanceLog* provenance, obs::Log* log) {
  AdjacencyResult result;
  auto& stats = result.stats;

  // Unique IP adjacencies with trace counts, where both endpoints map to
  // a CO (the paper's accounting universe). The first/last supporting
  // trace indices follow corpus order, which is deterministic at any
  // campaign thread count, so provenance trace ids are byte-stable.
  struct AdjInfo {
    int count = 0;
    const CoAnnotation* a = nullptr;
    const CoAnnotation* b = nullptr;
    std::size_t first_trace = kNoTrace;
    std::size_t last_trace = kNoTrace;
  };
  std::map<std::pair<net::IPv4Address, net::IPv4Address>, AdjInfo> ip_adjs;
  for (std::size_t t = 0; t < corpus.traces.size(); ++t) {
    const auto& trace = corpus.traces[t];
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& x = trace.hops[i];
      const auto& y = trace.hops[i + 1];
      if (!x.responded() || !y.responded() || x.addr == y.addr) continue;
      const auto* ca = co_map.get(x.addr);
      const auto* cb = co_map.get(y.addr);
      if (ca == nullptr || cb == nullptr) continue;
      auto& info = ip_adjs[{x.addr, y.addr}];
      ++info.count;
      info.a = ca;
      info.b = cb;
      if (info.first_trace == kNoTrace) info.first_trace = t;
      info.last_trace = t;
    }
  }
  stats.ip_adj_initial = ip_adjs.size();

  const auto sep = lift_separations(mpls_separated, co_map);

  // Aggregate to CO adjacencies while classifying.
  std::map<std::pair<std::string, std::string>, CoAdj> co_adjs;
  for (const auto& [pair, info] : ip_adjs) {
    if (info.a->co_key == info.b->co_key) continue;  // intra-CO hop
    const bool mpls = sep.separated(pair, *info.a, *info.b);
    const bool backbone = info.a->backbone || info.b->backbone;
    const bool cross_region =
        !backbone && info.a->region != info.b->region;
    if (mpls) ++stats.ip_adj_mpls;
    else if (backbone) ++stats.ip_adj_backbone;
    else if (cross_region) ++stats.ip_adj_cross_region;

    auto& co = co_adjs[{info.a->co_key, info.b->co_key}];
    if (!mpls) {
      co.traces += info.count;
      co.first_trace = std::min(co.first_trace, info.first_trace);
      if (co.last_trace == kNoTrace || info.last_trace > co.last_trace)
        co.last_trace = info.last_trace;
    }
    // The CO pair is false only when every address-level adjacency
    // between the COs is tunnel-spanning.
    co.mpls = (co.mpls || mpls) && co.traces == 0;
    co.backbone = co.backbone || backbone;
    co.cross_region = co.cross_region || cross_region;
    if (!info.a->backbone) co.region = info.a->region;
    else if (!info.b->backbone) co.region = info.b->region;
  }
  stats.co_adj_initial = co_adjs.size();

  for (const auto& [pair, adj] : co_adjs)
    classify_co_adj(pair, adj, corpus, stats, provenance, result.regions);

  // Count single-observation IP adjacencies for the Table 4 IP column.
  for (const auto& [pair, info] : ip_adjs) {
    if (info.count != 1) continue;
    if (sep.separated(pair, *info.a, *info.b)) continue;
    if (info.a->backbone || info.b->backbone) continue;
    if (info.a->region != info.b->region) continue;
    ++stats.ip_adj_single;
  }

  log_prune_summary(stats, result.regions.size(), log);
  return result;
}

AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CorpusIndex& index, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    obs::ProvenanceLog* provenance, obs::Log* log, int threads) {
  AdjacencyResult result;
  auto& stats = result.stats;
  const auto sep = lift_separations(mpls_separated, co_map);

  // One linear pass over the corpus's unique pairs (already sorted in the
  // legacy adjacency-map order) replaces the per-occurrence map walk: two
  // CoMap lookups per *unique* pair instead of two per hop pair.
  std::map<std::pair<std::string, std::string>, CoAdj> co_adjs;
  for (const auto& record : index.pairs()) {
    const auto* ca = co_map.get(record.a);
    if (ca == nullptr) continue;
    const auto* cb = co_map.get(record.b);
    if (cb == nullptr) continue;
    ++stats.ip_adj_initial;
    const std::pair<net::IPv4Address, net::IPv4Address> pair{record.a,
                                                             record.b};
    const bool mpls = sep.separated(pair, *ca, *cb);
    const bool backbone = ca->backbone || cb->backbone;
    // Table 4 IP column: single-observation adjacencies (the legacy
    // second pass, folded into the same scan).
    if (record.count == 1 && !mpls && !backbone &&
        ca->region == cb->region)
      ++stats.ip_adj_single;
    if (ca->co_key == cb->co_key) continue;  // intra-CO hop
    const bool cross_region = !backbone && ca->region != cb->region;
    if (mpls) ++stats.ip_adj_mpls;
    else if (backbone) ++stats.ip_adj_backbone;
    else if (cross_region) ++stats.ip_adj_cross_region;

    auto& co = co_adjs[{ca->co_key, cb->co_key}];
    if (!mpls) {
      co.traces += static_cast<int>(record.count);
      co.first_trace = std::min(co.first_trace,
                                std::size_t{record.first_trace});
      if (co.last_trace == kNoTrace || record.last_trace > co.last_trace)
        co.last_trace = record.last_trace;
    }
    // The CO pair is false only when every address-level adjacency
    // between the COs is tunnel-spanning.
    co.mpls = (co.mpls || mpls) && co.traces == 0;
    co.backbone = co.backbone || backbone;
    co.cross_region = co.cross_region || cross_region;
    if (!ca->backbone) co.region = ca->region;
    else if (!cb->backbone) co.region = cb->region;
  }
  stats.co_adj_initial = co_adjs.size();

  threads = probe::resolve_threads(threads);
  if (threads <= 1) {
    for (const auto& [pair, adj] : co_adjs)
      classify_co_adj(pair, adj, corpus, stats, provenance, result.regions);
  } else {
    // Partition by region and classify per region in parallel. Every CO
    // pair appears exactly once in co_adjs, so the shards' provenance
    // edge keys are disjoint and merging them in sorted region order
    // reproduces the serial transcript byte for byte (ProvenanceLog
    // serializes its maps by key, not insertion order).
    using Entry = std::pair<const std::pair<std::string, std::string>,
                            CoAdj>;
    std::map<std::string, std::vector<const Entry*>> by_region;
    for (const auto& entry : co_adjs)
      by_region[entry.second.region].push_back(&entry);
    std::vector<const std::vector<const Entry*>*> partitions;
    partitions.reserve(by_region.size());
    for (const auto& [region, entries] : by_region)
      partitions.push_back(&entries);

    struct Shard {
      PruningStats stats;
      obs::ProvenanceLog provenance;
      std::map<std::string, RegionalGraph> regions;
    };
    std::vector<Shard> shards(partitions.size());
    probe::parallel_for(partitions.size(), threads, [&](std::size_t p) {
      auto& shard = shards[p];
      auto* shard_provenance =
          provenance != nullptr ? &shard.provenance : nullptr;
      for (const auto* entry : *partitions[p])
        classify_co_adj(entry->first, entry->second, corpus, shard.stats,
                        shard_provenance, shard.regions);
    });
    for (auto& shard : shards) {
      stats.co_adj_mpls += shard.stats.co_adj_mpls;
      stats.co_adj_backbone += shard.stats.co_adj_backbone;
      stats.co_adj_cross_region += shard.stats.co_adj_cross_region;
      stats.co_adj_single += shard.stats.co_adj_single;
      if (provenance != nullptr) provenance->merge(shard.provenance);
      for (auto& [region, graph] : shard.regions)
        result.regions[region] = std::move(graph);
    }
  }

  log_prune_summary(stats, result.regions.size(), log);
  return result;
}

}  // namespace ran::infer
