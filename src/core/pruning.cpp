#include "pruning.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace ran::infer {

void PruningStats::publish(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + ".ip_adj.initial").inc(ip_adj_initial);
  registry.counter(prefix + ".ip_adj.mpls").inc(ip_adj_mpls);
  registry.counter(prefix + ".ip_adj.backbone").inc(ip_adj_backbone);
  registry.counter(prefix + ".ip_adj.cross_region").inc(ip_adj_cross_region);
  registry.counter(prefix + ".ip_adj.single").inc(ip_adj_single);
  registry.counter(prefix + ".co_adj.initial").inc(co_adj_initial);
  registry.counter(prefix + ".co_adj.mpls").inc(co_adj_mpls);
  registry.counter(prefix + ".co_adj.backbone").inc(co_adj_backbone);
  registry.counter(prefix + ".co_adj.cross_region").inc(co_adj_cross_region);
  registry.counter(prefix + ".co_adj.single").inc(co_adj_single);
}

std::set<std::pair<net::IPv4Address, net::IPv4Address>> separated_pairs(
    const TraceCorpus& followups) {
  std::set<std::pair<net::IPv4Address, net::IPv4Address>> out;
  for (const auto& trace : followups.traces) {
    // Responding hops in order.
    std::vector<net::IPv4Address> hops;
    for (const auto& hop : trace.hops)
      if (hop.responded()) hops.push_back(hop.addr);
    for (std::size_t i = 0; i < hops.size(); ++i)
      for (std::size_t j = i + 2; j < hops.size(); ++j)
        if (hops[i] != hops[j]) out.emplace(hops[i], hops[j]);
  }
  return out;
}

AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated) {
  AdjacencyResult result;
  auto& stats = result.stats;

  // Unique IP adjacencies with trace counts, where both endpoints map to
  // a CO (the paper's accounting universe).
  struct AdjInfo {
    int count = 0;
    const CoAnnotation* a = nullptr;
    const CoAnnotation* b = nullptr;
  };
  std::map<std::pair<net::IPv4Address, net::IPv4Address>, AdjInfo> ip_adjs;
  for (const auto& trace : corpus.traces) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& x = trace.hops[i];
      const auto& y = trace.hops[i + 1];
      if (!x.responded() || !y.responded() || x.addr == y.addr) continue;
      const auto* ca = co_map.get(x.addr);
      const auto* cb = co_map.get(y.addr);
      if (ca == nullptr || cb == nullptr) continue;
      auto& info = ip_adjs[{x.addr, y.addr}];
      ++info.count;
      info.a = ca;
      info.b = cb;
    }
  }
  stats.ip_adj_initial = ip_adjs.size();

  // MPLS separation matches at the address level (full CO-level lifting
  // would let one stale rDNS mapping disqualify a genuine CO adjacency),
  // with one relaxation: when an endpoint's mapping did NOT come from its
  // own rDNS — loopback/LAN repliers — the follow-up traces can never
  // contain the same address pair (targeted probes elicit the inbound
  // interface instead), so separation evidence is lifted to (CO, exact
  // far-end address) for that side only.
  std::set<std::pair<std::string, net::IPv4Address>> separated_from_co;
  std::set<std::pair<net::IPv4Address, std::string>> separated_to_co;
  for (const auto& pair : mpls_separated) {
    if (const auto* ca = co_map.get(pair.first))
      separated_from_co.emplace(ca->co_key, pair.second);
    if (const auto* cb = co_map.get(pair.second))
      separated_to_co.emplace(pair.first, cb->co_key);
  }
  auto is_separated = [&](const std::pair<net::IPv4Address,
                                          net::IPv4Address>& pair,
                          const CoAnnotation& a, const CoAnnotation& b) {
    if (mpls_separated.contains(pair)) return true;
    if (!a.from_rdns &&
        separated_from_co.contains({a.co_key, pair.second}))
      return true;
    if (!b.from_rdns && separated_to_co.contains({pair.first, b.co_key}))
      return true;
    return false;
  };

  // Aggregate to CO adjacencies while classifying.
  struct CoAdj {
    int traces = 0;        ///< total observations
    bool backbone = false;
    bool cross_region = false;
    bool mpls = false;
    std::string region;
  };
  std::map<std::pair<std::string, std::string>, CoAdj> co_adjs;
  for (const auto& [pair, info] : ip_adjs) {
    if (info.a->co_key == info.b->co_key) continue;  // intra-CO hop
    const bool mpls = is_separated(pair, *info.a, *info.b);
    const bool backbone = info.a->backbone || info.b->backbone;
    const bool cross_region =
        !backbone && info.a->region != info.b->region;
    if (mpls) ++stats.ip_adj_mpls;
    else if (backbone) ++stats.ip_adj_backbone;
    else if (cross_region) ++stats.ip_adj_cross_region;

    auto& co = co_adjs[{info.a->co_key, info.b->co_key}];
    if (!mpls) co.traces += info.count;
    // The CO pair is false only when every address-level adjacency
    // between the COs is tunnel-spanning.
    co.mpls = (co.mpls || mpls) && co.traces == 0;
    co.backbone = co.backbone || backbone;
    co.cross_region = co.cross_region || cross_region;
    if (!info.a->backbone) co.region = info.a->region;
    else if (!info.b->backbone) co.region = info.b->region;
  }
  stats.co_adj_initial = co_adjs.size();

  for (const auto& [pair, adj] : co_adjs) {
    if (adj.mpls) {
      ++stats.co_adj_mpls;
      continue;
    }
    if (adj.backbone) {
      ++stats.co_adj_backbone;
      continue;  // re-added as entries in §5.2.5
    }
    if (adj.cross_region) {
      ++stats.co_adj_cross_region;
      continue;  // likely stale rDNS (B.2); entries come back in §5.2.5
    }
    if (adj.traces <= 1) {
      ++stats.co_adj_single;  // anomalous single-trace edge
      continue;
    }
    auto& graph = result.regions[adj.region];
    graph.region = adj.region;
    graph.add_edge(pair.first, pair.second, adj.traces);
  }

  // Count single-observation IP adjacencies for the Table 4 IP column.
  for (const auto& [pair, info] : ip_adjs) {
    if (info.count != 1) continue;
    if (is_separated(pair, *info.a, *info.b)) continue;
    if (info.a->backbone || info.b->backbone) continue;
    if (info.a->region != info.b->region) continue;
    ++stats.ip_adj_single;
  }
  return result;
}

}  // namespace ran::infer
