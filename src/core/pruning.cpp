#include "pruning.hpp"

#include <algorithm>
#include <limits>

#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"

namespace ran::infer {

void PruningStats::publish(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + ".ip_adj.initial").inc(ip_adj_initial);
  registry.counter(prefix + ".ip_adj.mpls").inc(ip_adj_mpls);
  registry.counter(prefix + ".ip_adj.backbone").inc(ip_adj_backbone);
  registry.counter(prefix + ".ip_adj.cross_region").inc(ip_adj_cross_region);
  registry.counter(prefix + ".ip_adj.single").inc(ip_adj_single);
  registry.counter(prefix + ".co_adj.initial").inc(co_adj_initial);
  registry.counter(prefix + ".co_adj.mpls").inc(co_adj_mpls);
  registry.counter(prefix + ".co_adj.backbone").inc(co_adj_backbone);
  registry.counter(prefix + ".co_adj.cross_region").inc(co_adj_cross_region);
  registry.counter(prefix + ".co_adj.single").inc(co_adj_single);
}

std::set<std::pair<net::IPv4Address, net::IPv4Address>> separated_pairs(
    const TraceCorpus& followups) {
  std::set<std::pair<net::IPv4Address, net::IPv4Address>> out;
  for (const auto& trace : followups.traces) {
    // Responding hops in order.
    std::vector<net::IPv4Address> hops;
    for (const auto& hop : trace.hops)
      if (hop.responded()) hops.push_back(hop.addr);
    for (std::size_t i = 0; i < hops.size(); ++i)
      for (std::size_t j = i + 2; j < hops.size(); ++j)
        if (hops[i] != hops[j]) out.emplace(hops[i], hops[j]);
  }
  return out;
}

AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    obs::ProvenanceLog* provenance, obs::Log* log) {
  AdjacencyResult result;
  auto& stats = result.stats;
  constexpr auto kNoTrace = std::numeric_limits<std::size_t>::max();

  // Unique IP adjacencies with trace counts, where both endpoints map to
  // a CO (the paper's accounting universe). The first/last supporting
  // trace indices follow corpus order, which is deterministic at any
  // campaign thread count, so provenance trace ids are byte-stable.
  struct AdjInfo {
    int count = 0;
    const CoAnnotation* a = nullptr;
    const CoAnnotation* b = nullptr;
    std::size_t first_trace = kNoTrace;
    std::size_t last_trace = kNoTrace;
  };
  std::map<std::pair<net::IPv4Address, net::IPv4Address>, AdjInfo> ip_adjs;
  for (std::size_t t = 0; t < corpus.traces.size(); ++t) {
    const auto& trace = corpus.traces[t];
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& x = trace.hops[i];
      const auto& y = trace.hops[i + 1];
      if (!x.responded() || !y.responded() || x.addr == y.addr) continue;
      const auto* ca = co_map.get(x.addr);
      const auto* cb = co_map.get(y.addr);
      if (ca == nullptr || cb == nullptr) continue;
      auto& info = ip_adjs[{x.addr, y.addr}];
      ++info.count;
      info.a = ca;
      info.b = cb;
      if (info.first_trace == kNoTrace) info.first_trace = t;
      info.last_trace = t;
    }
  }
  stats.ip_adj_initial = ip_adjs.size();

  // MPLS separation matches at the address level (full CO-level lifting
  // would let one stale rDNS mapping disqualify a genuine CO adjacency),
  // with one relaxation: when an endpoint's mapping did NOT come from its
  // own rDNS — loopback/LAN repliers — the follow-up traces can never
  // contain the same address pair (targeted probes elicit the inbound
  // interface instead), so separation evidence is lifted to (CO, exact
  // far-end address) for that side only.
  std::set<std::pair<std::string, net::IPv4Address>> separated_from_co;
  std::set<std::pair<net::IPv4Address, std::string>> separated_to_co;
  for (const auto& pair : mpls_separated) {
    if (const auto* ca = co_map.get(pair.first))
      separated_from_co.emplace(ca->co_key, pair.second);
    if (const auto* cb = co_map.get(pair.second))
      separated_to_co.emplace(pair.first, cb->co_key);
  }
  auto is_separated = [&](const std::pair<net::IPv4Address,
                                          net::IPv4Address>& pair,
                          const CoAnnotation& a, const CoAnnotation& b) {
    if (mpls_separated.contains(pair)) return true;
    if (!a.from_rdns &&
        separated_from_co.contains({a.co_key, pair.second}))
      return true;
    if (!b.from_rdns && separated_to_co.contains({pair.first, b.co_key}))
      return true;
    return false;
  };

  // Aggregate to CO adjacencies while classifying.
  struct CoAdj {
    int traces = 0;        ///< total observations
    bool backbone = false;
    bool cross_region = false;
    bool mpls = false;
    std::string region;
    std::size_t first_trace = kNoTrace;  ///< earliest non-tunnel support
    std::size_t last_trace = kNoTrace;   ///< latest non-tunnel support
  };
  std::map<std::pair<std::string, std::string>, CoAdj> co_adjs;
  for (const auto& [pair, info] : ip_adjs) {
    if (info.a->co_key == info.b->co_key) continue;  // intra-CO hop
    const bool mpls = is_separated(pair, *info.a, *info.b);
    const bool backbone = info.a->backbone || info.b->backbone;
    const bool cross_region =
        !backbone && info.a->region != info.b->region;
    if (mpls) ++stats.ip_adj_mpls;
    else if (backbone) ++stats.ip_adj_backbone;
    else if (cross_region) ++stats.ip_adj_cross_region;

    auto& co = co_adjs[{info.a->co_key, info.b->co_key}];
    if (!mpls) {
      co.traces += info.count;
      co.first_trace = std::min(co.first_trace, info.first_trace);
      if (co.last_trace == kNoTrace || info.last_trace > co.last_trace)
        co.last_trace = info.last_trace;
    }
    // The CO pair is false only when every address-level adjacency
    // between the COs is tunnel-spanning.
    co.mpls = (co.mpls || mpls) && co.traces == 0;
    co.backbone = co.backbone || backbone;
    co.cross_region = co.cross_region || cross_region;
    if (!info.a->backbone) co.region = info.a->region;
    else if (!info.b->backbone) co.region = info.b->region;
  }
  stats.co_adj_initial = co_adjs.size();

  const auto trace_id = [&corpus](std::size_t index) -> std::string {
    if (index == std::numeric_limits<std::size_t>::max()) return {};
    const auto& trace = corpus.traces[index];
    return "(" + trace.vp + "," + trace.dst.to_string() + ")";
  };
  for (const auto& [pair, adj] : co_adjs) {
    if (provenance != nullptr)
      provenance->add_support(pair.first, pair.second,
                              static_cast<std::uint64_t>(adj.traces),
                              trace_id(adj.first_trace),
                              trace_id(adj.last_trace));
    if (adj.mpls) {
      ++stats.co_adj_mpls;
      if (provenance != nullptr)
        provenance->record(pair.first, pair.second, "prune.mpls", false,
                           "every address-level adjacency spans an MPLS "
                           "tunnel (follow-up traces separate the pair)");
      continue;
    }
    if (adj.backbone) {
      ++stats.co_adj_backbone;
      if (provenance != nullptr)
        provenance->record(pair.first, pair.second, "prune.backbone",
                           false,
                           "an endpoint sits in the backbone mesh; "
                           "re-added as an entry in s5.2.5");
      continue;  // re-added as entries in §5.2.5
    }
    if (adj.cross_region) {
      ++stats.co_adj_cross_region;
      if (provenance != nullptr)
        provenance->record(pair.first, pair.second, "prune.cross_region",
                           false,
                           "endpoints map to different regions (likely "
                           "stale rDNS, B.2)");
      continue;  // likely stale rDNS (B.2); entries come back in §5.2.5
    }
    if (adj.traces <= 1) {
      ++stats.co_adj_single;  // anomalous single-trace edge
      if (provenance != nullptr)
        provenance->record(
            pair.first, pair.second, "prune.single", false,
            net::format("only %d observation(s); anomalous hop discipline "
                        "of s5.2.1",
                        adj.traces));
      continue;
    }
    if (provenance != nullptr)
      provenance->record(
          pair.first, pair.second, "prune.kept", true,
          net::format("%d observations, intra-region (%s)", adj.traces,
                      adj.region.c_str()));
    auto& graph = result.regions[adj.region];
    graph.region = adj.region;
    graph.add_edge(pair.first, pair.second, adj.traces);
  }

  // Count single-observation IP adjacencies for the Table 4 IP column.
  for (const auto& [pair, info] : ip_adjs) {
    if (info.count != 1) continue;
    if (is_separated(pair, *info.a, *info.b)) continue;
    if (info.a->backbone || info.b->backbone) continue;
    if (info.a->region != info.b->region) continue;
    ++stats.ip_adj_single;
  }

  if (log != nullptr) {
    const std::size_t pruned = stats.co_adj_mpls + stats.co_adj_backbone +
                               stats.co_adj_cross_region +
                               stats.co_adj_single;
    if (stats.co_adj_initial > 0 && pruned == stats.co_adj_initial)
      log->warn("b2.prune",
                net::format("pruning removed all %zu CO adjacencies; no "
                            "regional graph survives",
                            stats.co_adj_initial));
    else if (log->enabled(obs::LogLevel::kInfo))
      log->info("b2.prune",
                net::format("pruned %zu of %zu CO adjacencies "
                            "(mpls %zu, backbone %zu, cross-region %zu, "
                            "single %zu); %zu region(s) survive",
                            pruned, stats.co_adj_initial, stats.co_adj_mpls,
                            stats.co_adj_backbone,
                            stats.co_adj_cross_region, stats.co_adj_single,
                            result.regions.size()));
  }
  return result;
}

}  // namespace ran::infer
