// Adjacency extraction and pruning (App. B.2, Table 4) plus the MPLS
// false-link check of §5.1.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph.hpp"
#include "observations.hpp"

namespace ran::obs {
class Log;
class ProvenanceLog;
class Registry;
}  // namespace ran::obs

namespace ran::infer {

/// Accounting in the shape of Table 4 (counts; the benches print both
/// counts and the paper's percentages).
struct PruningStats {
  std::size_t ip_adj_initial = 0;
  std::size_t ip_adj_mpls = 0;
  std::size_t ip_adj_backbone = 0;
  std::size_t ip_adj_cross_region = 0;
  std::size_t ip_adj_single = 0;
  std::size_t co_adj_initial = 0;
  std::size_t co_adj_mpls = 0;
  std::size_t co_adj_backbone = 0;
  std::size_t co_adj_cross_region = 0;
  std::size_t co_adj_single = 0;

  /// Mirrors the per-rule accounting into `registry` as counters named
  /// `<prefix>.ip_adj.initial`, `<prefix>.co_adj.mpls`, ... so run
  /// manifests carry Table 4 alongside the stage tree.
  void publish(obs::Registry& registry, const std::string& prefix) const;
};

/// Address pairs that follow-up (Direct Path Revelation) traceroutes show
/// separated by at least one intervening responding hop: the signature of
/// an MPLS tunnel whose initial adjacency was false (§5.1, [72]).
[[nodiscard]] std::set<std::pair<net::IPv4Address, net::IPv4Address>>
separated_pairs(const TraceCorpus& followups);

struct AdjacencyResult {
  /// Per-region graphs built from the surviving intra-region adjacencies.
  std::map<std::string, RegionalGraph> regions;
  PruningStats stats;
};

/// Extracts CO adjacencies from the corpus, prunes MPLS/backbone/
/// cross-region/single-observation ones, and assembles per-region graphs.
/// When `provenance` is non-null, every CO adjacency examined gains an
/// EdgeProvenance record: its supporting observation count, first/last
/// supporting (vp,dst) trace ids (corpus order), and a prune.* decision
/// whose per-rule totals equal the co_adj_* fields of PruningStats.
/// A logger (optional) receives a per-rule pruning summary and a warning
/// when pruning removes every CO adjacency.
[[nodiscard]] AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    obs::ProvenanceLog* provenance = nullptr, obs::Log* log = nullptr);

class CorpusIndex;

/// Index-based kernel: consumes the corpus's unique-pair table instead of
/// rescanning raw hops — two CoMap lookups per unique pair rather than
/// per occurrence — and, with threads > 1, classifies CO adjacencies per
/// region in parallel. Stats, provenance, graphs, and log output are
/// byte-identical to the corpus-based overload at any thread count (the
/// corpus is still needed for provenance trace ids).
[[nodiscard]] AdjacencyResult build_and_prune(
    const TraceCorpus& corpus, const CorpusIndex& index, const CoMap& co_map,
    const std::set<std::pair<net::IPv4Address, net::IPv4Address>>&
        mpls_separated,
    obs::ProvenanceLog* provenance = nullptr, obs::Log* log = nullptr,
    int threads = 1);

}  // namespace ran::infer
