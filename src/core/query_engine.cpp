#include "query_engine.hpp"

#include <algorithm>

#include "netbase/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"

namespace ran::infer {

std::string_view to_string(QueryReason reason) {
  switch (reason) {
    case QueryReason::kMalformedJson: return "malformed_json";
    case QueryReason::kTooLarge: return "too_large";
    case QueryReason::kMissingField: return "missing_field";
    case QueryReason::kUnknownOp: return "unknown_op";
    case QueryReason::kUnknownRegion: return "unknown_region";
    case QueryReason::kUnknownCo: return "unknown_co";
    case QueryReason::kNoSnapshot: return "no_snapshot";
    case QueryReason::kNoProvenance: return "no_provenance";
    case QueryReason::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

/// How many per-CO failure impacts a resilience reply lists. The full
/// vector is per-CO in region size; a protocol line wants the headline.
constexpr std::size_t kMaxImpactsInReply = 5;

void ok_prefix(net::LineJsonWriter& w, std::string_view op) {
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value(op);
}

std::string path_reply(const RegionSnapshot& region, std::string_view op,
                       std::string_view from_key, std::string_view to_key,
                       std::uint32_t from, std::uint32_t to,
                       bool with_latency) {
  const auto path = region.path(from, to);
  net::LineJsonWriter w;
  ok_prefix(w, op);
  w.key("from").value(from_key);
  if (!path.empty() && with_latency)
    w.key("latency_ms").value(region.path_latency_ms(path));
  w.key("path").begin_array();
  for (const auto id : path) w.value(region.graph().key(id));
  w.end_array();
  if (!path.empty())
    w.key("path_hops").value(static_cast<std::uint64_t>(path.size() - 1));
  w.key("reachable").value(!path.empty());
  w.key("region").value(region.region());
  w.key("to").value(to_key);
  w.end_object();
  return w.take();
}

std::string resilience_reply(const RegionSnapshot& region) {
  const auto& report = region.resilience();
  net::LineJsonWriter w;
  ok_prefix(w, "resilience");
  w.key("edge_cos").value(report.edge_cos);
  w.key("entries").value(report.entries);
  w.key("impacts").begin_array();
  const std::size_t shown =
      std::min(kMaxImpactsInReply, report.impacts.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& impact = report.impacts[i];
    w.begin_object();
    w.key("co").value(impact.co);
    w.key("edge_cos_disconnected").value(impact.edge_cos_disconnected);
    w.key("is_agg").value(impact.is_agg);
    w.end_object();
  }
  w.end_array();
  w.key("impacts_total").value(
      static_cast<std::uint64_t>(report.impacts.size()));
  w.key("region").value(report.region);
  w.key("single_failure_coverage").value(report.single_failure_coverage);
  w.key("single_points_of_failure").value(report.single_points_of_failure);
  w.key("worst_blast_radius").value(report.worst_blast_radius);
  w.end_object();
  return w.take();
}

std::string stats_reply(const TopologySnapshot& snapshot) {
  net::LineJsonWriter w;
  ok_prefix(w, "stats");
  w.key("approx_bytes").value(snapshot.approx_bytes());
  w.key("cos").value(static_cast<std::uint64_t>(snapshot.co_count()));
  w.key("edges").value(static_cast<std::uint64_t>(snapshot.edge_count()));
  w.key("generation").value(snapshot.generation());
  w.key("has_provenance").value(snapshot.provenance() != nullptr);
  w.key("regions").begin_object();
  for (const auto& [tag, region] : snapshot.regions()) {
    w.key(tag).begin_object();
    w.key("agg_cos").value(static_cast<std::uint64_t>(region.agg_co_count()));
    w.key("aggregation").value(to_string(region.aggregation_type()));
    w.key("cos").value(static_cast<std::uint64_t>(region.co_count()));
    w.key("edge_cos").value(
        static_cast<std::uint64_t>(region.edge_co_count()));
    w.key("edges").value(static_cast<std::uint64_t>(region.edge_count()));
    w.key("single_upstream").value(region.redundancy().single_upstream);
    w.end_object();
  }
  w.end_object();
  w.key("source").value(snapshot.source());
  w.end_object();
  return w.take();
}

std::string explain_reply(const TopologySnapshot& snapshot,
                          std::string_view from, std::string_view to) {
  net::LineJsonWriter w;
  ok_prefix(w, "explain");
  w.key("from").value(from);
  w.key("text").value(
      snapshot.provenance()->explain(std::string{from}, std::string{to}));
  w.key("to").value(to);
  w.end_object();
  return w.take();
}

std::string ping_reply(const TopologySnapshot* snapshot) {
  net::LineJsonWriter w;
  ok_prefix(w, "ping");
  w.key("generation")
      .value(snapshot == nullptr ? std::uint64_t{0} : snapshot->generation());
  w.key("ready").value(snapshot != nullptr);
  w.end_object();
  return w.take();
}

}  // namespace

QueryEngine::QueryEngine(const SnapshotHub& hub, QueryEngineConfig config)
    : hub_(hub), config_(config) {
  if (config_.metrics == nullptr) return;
  // Resolve every counter up front: registry lookups lock a mutex, and
  // the answer path is the hot loop of a 1M-queries/s daemon.
  requests_ = &config_.metrics->volatile_counter("serve.requests");
  ok_ = &config_.metrics->volatile_counter("serve.ok");
  for (std::size_t i = 0; i < kReasonCount; ++i)
    errors_[i] = &config_.metrics->volatile_counter(
        std::string{"serve.error."} +
        std::string{to_string(static_cast<QueryReason>(i))});
}

std::string QueryEngine::error_reply(QueryReason reason,
                                     std::string_view message) const {
  if (requests_ != nullptr) {
    requests_->inc();
    errors_[static_cast<std::size_t>(reason)]->inc();
  }
  net::LineJsonWriter w;
  w.begin_object();
  w.key("error").value(message);
  w.key("ok").value(false);
  w.key("reason").value(to_string(reason));
  w.end_object();
  return w.take();
}

std::string QueryEngine::answer(std::string_view request_line) const {
  if (request_line.size() > config_.max_request_bytes)
    return error_reply(QueryReason::kTooLarge,
                       "request exceeds the size bound");
  net::FlatRequest request;
  std::string parse_error;
  if (!request.parse(request_line, &parse_error))
    return error_reply(QueryReason::kMalformedJson, parse_error);
  const auto op = request.get("op");
  if (!request.has("op"))
    return error_reply(QueryReason::kMissingField,
                       "request has no \"op\" field");

  // One shared_ptr copy pins the generation for the whole request; a
  // concurrent republish cannot tear this reply.
  const auto snapshot = hub_.get();

  std::string reply;
  if (op == "ping") {
    reply = ping_reply(snapshot.get());
  } else if (snapshot == nullptr) {
    return error_reply(QueryReason::kNoSnapshot,
                       "no topology snapshot published yet");
  } else if (op == "stats") {
    reply = stats_reply(*snapshot);
  } else if (op == "path" || op == "latency") {
    for (const auto field : {"region", "from", "to"})
      if (!request.has(field))
        return error_reply(QueryReason::kMissingField,
                           "\"" + std::string{op} +
                               "\" requires region, from, and to");
    const auto* region =
        snapshot->find_region(request.get("region"));
    if (region == nullptr)
      return error_reply(QueryReason::kUnknownRegion,
                         "region \"" + std::string{request.get("region")} +
                             "\" is not in this snapshot");
    const auto from = region->graph().id_of(request.get("from"));
    const auto to = region->graph().id_of(request.get("to"));
    if (from == CsrGraph::kInvalid || to == CsrGraph::kInvalid) {
      const auto unknown =
          from == CsrGraph::kInvalid ? request.get("from") : request.get("to");
      return error_reply(QueryReason::kUnknownCo,
                         "CO \"" + std::string{unknown} +
                             "\" is not in region \"" + region->region() +
                             "\"");
    }
    reply = path_reply(*region, op, request.get("from"), request.get("to"),
                       from, to, op == "latency");
  } else if (op == "resilience") {
    if (!request.has("region"))
      return error_reply(QueryReason::kMissingField,
                         "\"resilience\" requires a region");
    const auto* region =
        snapshot->find_region(request.get("region"));
    if (region == nullptr)
      return error_reply(QueryReason::kUnknownRegion,
                         "region \"" + std::string{request.get("region")} +
                             "\" is not in this snapshot");
    reply = resilience_reply(*region);
  } else if (op == "explain") {
    for (const auto field : {"from", "to"})
      if (!request.has(field))
        return error_reply(QueryReason::kMissingField,
                           "\"explain\" requires from and to");
    if (snapshot->provenance() == nullptr)
      return error_reply(QueryReason::kNoProvenance,
                         "this snapshot carries no provenance log");
    reply = explain_reply(*snapshot, request.get("from"), request.get("to"));
  } else {
    return error_reply(QueryReason::kUnknownOp,
                       "unknown op \"" + std::string{op} + "\"");
  }

  if (requests_ != nullptr) {
    requests_->inc();
    ok_->inc();
  }
  return reply;
}

}  // namespace ran::infer
