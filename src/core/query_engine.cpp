#include "query_engine.hpp"

#include <algorithm>

#include "netbase/protocol.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"

namespace ran::infer {

std::string_view to_string(QueryReason reason) {
  switch (reason) {
    case QueryReason::kMalformedJson: return "malformed_json";
    case QueryReason::kTooLarge: return "too_large";
    case QueryReason::kMissingField: return "missing_field";
    case QueryReason::kUnknownOp: return "unknown_op";
    case QueryReason::kUnknownRegion: return "unknown_region";
    case QueryReason::kUnknownCo: return "unknown_co";
    case QueryReason::kNoSnapshot: return "no_snapshot";
    case QueryReason::kNoProvenance: return "no_provenance";
    case QueryReason::kTimeout: return "timeout";
    case QueryReason::kNoTelemetry: return "no_telemetry";
  }
  return "?";
}

ReplyRateWindow::ReplyRateWindow(int window_s)
    : window_s_(std::clamp(window_s, 1, static_cast<int>(kSlots) - 1)) {}

void ReplyRateWindow::count(bool ok, std::uint64_t now_s) {
  Slot& slot = slots_[now_s % kSlots];
  std::uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
  if (epoch != now_s) {
    // First reply of this second claims the slot and clears the stale
    // counts; a racing loser just counts into the freshly-claimed slot.
    if (slot.epoch.compare_exchange_strong(epoch, now_s,
                                           std::memory_order_relaxed)) {
      slot.ok.store(0, std::memory_order_relaxed);
      slot.errors.store(0, std::memory_order_relaxed);
    }
  }
  (ok ? slot.ok : slot.errors).fetch_add(1, std::memory_order_relaxed);
}

ReplyRateWindow::Totals ReplyRateWindow::read(std::uint64_t now_s) const {
  Totals totals;
  for (int back = 0; back <= window_s_; ++back) {
    if (now_s < static_cast<std::uint64_t>(back)) break;
    const std::uint64_t second = now_s - static_cast<std::uint64_t>(back);
    const Slot& slot = slots_[second % kSlots];
    if (slot.epoch.load(std::memory_order_relaxed) != second) continue;
    totals.ok += slot.ok.load(std::memory_order_relaxed);
    totals.errors += slot.errors.load(std::memory_order_relaxed);
  }
  return totals;
}

namespace {

/// How many per-CO failure impacts a resilience reply lists. The full
/// vector is per-CO in region size; a protocol line wants the headline.
constexpr std::size_t kMaxImpactsInReply = 5;

/// Histogram-slot order; the last entry catches requests that fail
/// before an op resolves.
constexpr std::array<std::string_view, 10> kOpSlugs = {
    "ping",    "stats",   "path", "latency", "resilience",
    "explain", "metrics", "health", "dump",  "other"};
constexpr std::size_t kOtherOp = kOpSlugs.size() - 1;

std::size_t op_index(std::string_view op) {
  for (std::size_t i = 0; i + 1 < kOpSlugs.size(); ++i)
    if (kOpSlugs[i] == op) return i;
  return kOtherOp;
}

/// The reply prefix: "ok","op" and — when telemetry stamped an id — the
/// per-request "rid". Remaining keys follow in sorted order.
void ok_prefix(net::LineJsonWriter& w, std::string_view op,
               std::uint64_t rid) {
  w.begin_object();
  w.key("ok").value(true);
  w.key("op").value(op);
  if (rid > 0) w.key("rid").value(rid);
}

std::string fail_reply(QueryReason reason, std::string_view message,
                       std::uint64_t rid) {
  net::LineJsonWriter w;
  w.begin_object();
  w.key("error").value(message);
  w.key("ok").value(false);
  w.key("reason").value(to_string(reason));
  if (rid > 0) w.key("rid").value(rid);
  w.end_object();
  return w.take();
}

std::string path_reply(const RegionSnapshot& region, std::string_view op,
                       std::string_view from_key, std::string_view to_key,
                       std::uint32_t from, std::uint32_t to,
                       bool with_latency, std::uint64_t rid) {
  const auto path = region.path(from, to);
  net::LineJsonWriter w;
  ok_prefix(w, op, rid);
  w.key("from").value(from_key);
  if (!path.empty() && with_latency)
    w.key("latency_ms").value(region.path_latency_ms(path));
  w.key("path").begin_array();
  for (const auto id : path) w.value(region.graph().key(id));
  w.end_array();
  if (!path.empty())
    w.key("path_hops").value(static_cast<std::uint64_t>(path.size() - 1));
  w.key("reachable").value(!path.empty());
  w.key("region").value(region.region());
  w.key("to").value(to_key);
  w.end_object();
  return w.take();
}

std::string resilience_reply(const RegionSnapshot& region,
                             std::uint64_t rid) {
  const auto& report = region.resilience();
  net::LineJsonWriter w;
  ok_prefix(w, "resilience", rid);
  w.key("edge_cos").value(report.edge_cos);
  w.key("entries").value(report.entries);
  w.key("impacts").begin_array();
  const std::size_t shown =
      std::min(kMaxImpactsInReply, report.impacts.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& impact = report.impacts[i];
    w.begin_object();
    w.key("co").value(impact.co);
    w.key("edge_cos_disconnected").value(impact.edge_cos_disconnected);
    w.key("is_agg").value(impact.is_agg);
    w.end_object();
  }
  w.end_array();
  w.key("impacts_total").value(
      static_cast<std::uint64_t>(report.impacts.size()));
  w.key("region").value(report.region);
  w.key("single_failure_coverage").value(report.single_failure_coverage);
  w.key("single_points_of_failure").value(report.single_points_of_failure);
  w.key("worst_blast_radius").value(report.worst_blast_radius);
  w.end_object();
  return w.take();
}

std::string stats_reply(const TopologySnapshot& snapshot, std::uint64_t rid) {
  net::LineJsonWriter w;
  ok_prefix(w, "stats", rid);
  w.key("approx_bytes").value(snapshot.approx_bytes());
  w.key("cos").value(static_cast<std::uint64_t>(snapshot.co_count()));
  w.key("edges").value(static_cast<std::uint64_t>(snapshot.edge_count()));
  w.key("generation").value(snapshot.generation());
  w.key("has_provenance").value(snapshot.provenance() != nullptr);
  w.key("regions").begin_object();
  for (const auto& [tag, region] : snapshot.regions()) {
    w.key(tag).begin_object();
    w.key("agg_cos").value(static_cast<std::uint64_t>(region.agg_co_count()));
    w.key("aggregation").value(to_string(region.aggregation_type()));
    w.key("cos").value(static_cast<std::uint64_t>(region.co_count()));
    w.key("edge_cos").value(
        static_cast<std::uint64_t>(region.edge_co_count()));
    w.key("edges").value(static_cast<std::uint64_t>(region.edge_count()));
    w.key("single_upstream").value(region.redundancy().single_upstream);
    w.end_object();
  }
  w.end_object();
  w.key("source").value(snapshot.source());
  w.end_object();
  return w.take();
}

std::string explain_reply(const TopologySnapshot& snapshot,
                          std::string_view from, std::string_view to,
                          std::uint64_t rid) {
  net::LineJsonWriter w;
  ok_prefix(w, "explain", rid);
  w.key("from").value(from);
  w.key("text").value(
      snapshot.provenance()->explain(std::string{from}, std::string{to}));
  w.key("to").value(to);
  w.end_object();
  return w.take();
}

std::string ping_reply(const TopologySnapshot* snapshot, std::uint64_t rid) {
  net::LineJsonWriter w;
  ok_prefix(w, "ping", rid);
  w.key("generation")
      .value(snapshot == nullptr ? std::uint64_t{0} : snapshot->generation());
  w.key("ready").value(snapshot != nullptr);
  w.end_object();
  return w.take();
}

void histogram_json(net::LineJsonWriter& w,
                    const obs::MetricsSnapshot::HistogramData& data) {
  w.begin_object();
  w.key("count").value(data.count);
  w.key("mean").value(data.mean());
  w.key("p50").value(data.percentile(0.5));
  w.key("p90").value(data.percentile(0.9));
  w.key("p99").value(data.percentile(0.99));
  w.key("sum").value(data.sum);
  w.end_object();
}

/// The manifest-style metrics section as one reply line — the JSON twin
/// of the Prometheus exposition.
std::string metrics_json_reply(const obs::MetricsSnapshot& snapshot,
                               std::uint64_t rid) {
  net::LineJsonWriter w;
  ok_prefix(w, "metrics", rid);
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters)
    w.key(name).value(value);
  w.end_object();
  w.key("format").value("json");
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, data] : snapshot.histograms) {
    w.key(name);
    histogram_json(w, data);
  }
  w.end_object();
  w.key("scrape_seq").value(snapshot.scrape_seq);
  w.key("volatile_counters").begin_object();
  for (const auto& [name, value] : snapshot.volatile_counters)
    w.key(name).value(value);
  w.end_object();
  w.key("volatile_gauges").begin_object();
  for (const auto& [name, value] : snapshot.volatile_gauges)
    w.key(name).value(value);
  w.end_object();
  w.key("volatile_histograms").begin_object();
  for (const auto& [name, data] : snapshot.volatile_histograms) {
    w.key(name);
    histogram_json(w, data);
  }
  w.end_object();
  w.end_object();
  return w.take();
}

std::string metrics_text_reply(const obs::MetricsSnapshot& snapshot,
                               std::uint64_t rid) {
  net::LineJsonWriter w;
  ok_prefix(w, "metrics", rid);
  w.key("exposition").value(obs::render_prometheus(snapshot));
  w.key("format").value("prometheus");
  w.key("scrape_seq").value(snapshot.scrape_seq);
  w.end_object();
  return w.take();
}

}  // namespace

/// Everything finish() needs to account one answered request.
struct QueryEngine::Outcome {
  std::string reply;
  std::size_t op = kOtherOp;       ///< histogram slot
  std::string_view op_slug = "";   ///< resolved op for the flight record
  QueryReason reason = QueryReason::kUnknownOp;  ///< valid when !ok
  bool ok = true;
};

QueryEngine::QueryEngine(const SnapshotHub& hub, QueryEngineConfig config)
    : hub_(hub),
      config_(config),
      start_(std::chrono::steady_clock::now()),
      window_(config.error_window_s) {
  if (config_.metrics == nullptr) return;
  // Resolve every counter and histogram up front: registry lookups lock
  // a mutex, and the answer path is the hot loop of a 1M-queries/s
  // daemon.
  requests_ = &config_.metrics->volatile_counter("serve.requests");
  ok_ = &config_.metrics->volatile_counter("serve.ok");
  for (std::size_t i = 0; i < kReasonCount; ++i)
    errors_[i] = &config_.metrics->volatile_counter(
        std::string{"serve.error."} +
        std::string{to_string(static_cast<QueryReason>(i))});
  for (std::size_t i = 0; i < kOpCount; ++i)
    op_latency_[i] = &config_.metrics->volatile_histogram(
        std::string{"serve.latency_us."} + std::string{kOpSlugs[i]});
}

std::uint64_t QueryEngine::uptime_s() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void QueryEngine::finish(const Outcome& outcome,
                         std::string_view request_line, std::uint64_t rid,
                         std::uint64_t latency_us) const {
  if (requests_ != nullptr) {
    requests_->inc();
    if (outcome.ok)
      ok_->inc();
    else
      errors_[static_cast<std::size_t>(outcome.reason)]->inc();
    op_latency_[outcome.op]->observe(latency_us);
    window_.count(outcome.ok, uptime_s());
  }
  if (config_.recorder != nullptr)
    config_.recorder->record(rid, request_line, outcome.op_slug,
                             outcome.ok ? std::string_view{"ok"}
                                        : to_string(outcome.reason),
                             latency_us, !outcome.ok);
  if (config_.metrics != nullptr) {
    if (obs::Log* log = config_.metrics->logger(); log != nullptr) {
      if (!outcome.ok && log->enabled(obs::LogLevel::kInfo)) {
        std::string message = "rid=" + std::to_string(rid) + " reason=";
        message += to_string(outcome.reason);
        if (!outcome.op_slug.empty()) {
          message += " op=";
          message += outcome.op_slug;
        }
        log->info("serve.error", message);
      } else if (outcome.ok && log->enabled(obs::LogLevel::kDebug)) {
        std::string message = "rid=" + std::to_string(rid) + " op=";
        message += outcome.op_slug;
        message += " latency_us=" + std::to_string(latency_us);
        log->debug("serve.request", message);
      }
    }
  }
}

std::string QueryEngine::error_reply(QueryReason reason,
                                     std::string_view message,
                                     std::string_view request_line) const {
  const bool instrumented =
      requests_ != nullptr || config_.recorder != nullptr;
  const std::uint64_t rid =
      instrumented ? next_rid_.fetch_add(1, std::memory_order_relaxed) + 1
                   : 0;
  Outcome outcome;
  outcome.ok = false;
  outcome.reason = reason;
  outcome.reply = fail_reply(reason, message, rid);
  // Server-detected failures never ran a query; they observe latency 0
  // under "other" so serve.requests still equals the histogram totals.
  if (instrumented) finish(outcome, request_line, rid, 0);
  return std::move(outcome.reply);
}

std::string QueryEngine::answer(std::string_view request_line) const {
  using Clock = std::chrono::steady_clock;
  const bool instrumented =
      requests_ != nullptr || config_.recorder != nullptr;
  if (!instrumented) return std::move(dispatch(request_line, 0).reply);

  const auto begin = Clock::now();
  const std::uint64_t rid =
      next_rid_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::Tracer* tracer =
      config_.metrics != nullptr ? config_.metrics->tracer() : nullptr;
  std::string span_name;
  if (tracer != nullptr) {
    span_name = "serve.req." + std::to_string(rid);
    tracer->begin(span_name, "serve");
  }
  Outcome outcome = dispatch(request_line, rid);
  if (tracer != nullptr) tracer->end(span_name);
  const auto latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            begin)
          .count());
  finish(outcome, request_line, rid, latency_us);
  return std::move(outcome.reply);
}

QueryEngine::Outcome QueryEngine::dispatch(std::string_view request_line,
                                           std::uint64_t rid) const {
  Outcome outcome;
  const auto fail = [&](QueryReason reason, std::string_view message) {
    Outcome failed = std::move(outcome);  // keep any resolved op slot
    failed.ok = false;
    failed.reason = reason;
    failed.reply = fail_reply(reason, message, rid);
    return failed;
  };

  if (request_line.size() > config_.max_request_bytes)
    return fail(QueryReason::kTooLarge, "request exceeds the size bound");
  net::FlatRequest request;
  std::string parse_error;
  if (!request.parse(request_line, &parse_error))
    return fail(QueryReason::kMalformedJson, parse_error);
  const auto op = request.get("op");
  if (!request.has("op"))
    return fail(QueryReason::kMissingField, "request has no \"op\" field");
  outcome.op = op_index(op);
  if (outcome.op != kOtherOp) outcome.op_slug = kOpSlugs[outcome.op];

  // One shared_ptr copy pins the generation for the whole request; a
  // concurrent republish cannot tear this reply.
  const auto snapshot = hub_.get();

  if (op == "ping") {
    outcome.reply = ping_reply(snapshot.get(), rid);
    return outcome;
  }
  if (op == "metrics") {
    if (config_.metrics == nullptr)
      return fail(QueryReason::kNoTelemetry,
                  "this engine exposes no metrics registry");
    const auto scraped = config_.metrics->scrape();
    outcome.reply = request.get("format") == "json"
                        ? metrics_json_reply(scraped, rid)
                        : metrics_text_reply(scraped, rid);
    return outcome;
  }
  if (op == "health") {
    net::LineJsonWriter w;
    ok_prefix(w, "health", rid);
    const auto totals = window_.read(uptime_s());
    w.key("error_window").begin_object();
    w.key("errors").value(totals.errors);
    w.key("ok").value(totals.ok);
    w.key("window_s").value(window_.window_s());
    w.end_object();
    w.key("generation").value(
        snapshot == nullptr ? std::uint64_t{0} : snapshot->generation());
    w.key("ready").value(snapshot != nullptr);
    w.key("snapshot_age_s").value(static_cast<std::int64_t>(
        hub_.seconds_since_publish()));
    w.key("uptime_s").value(uptime_s());
    if (config_.health != nullptr) {
      const auto busy =
          config_.health->busy_workers.load(std::memory_order_relaxed);
      w.key("workers").begin_object();
      w.key("busy").value(static_cast<std::uint64_t>(busy));
      w.key("queue").value(static_cast<std::uint64_t>(
          config_.health->queue_depth.load(std::memory_order_relaxed)));
      w.key("saturation")
          .value(config_.health->total_workers == 0
                     ? 0.0
                     : static_cast<double>(busy) /
                           static_cast<double>(config_.health->total_workers));
      w.key("total").value(
          static_cast<std::uint64_t>(config_.health->total_workers));
      w.end_object();
    }
    w.end_object();
    outcome.reply = w.take();
    return outcome;
  }
  if (op == "dump") {
    if (config_.recorder == nullptr)
      return fail(QueryReason::kNoTelemetry,
                  "this engine has no flight recorder");
    const bool include_volatile = request.get("volatile") == "1" ||
                                  request.get("volatile") == "true";
    const auto records = config_.recorder->last_records();
    net::LineJsonWriter w;
    ok_prefix(w, "dump", rid);
    w.key("recorded_total").value(config_.recorder->record_count());
    w.key("records").begin_array();
    for (const auto& record : records) {
      w.begin_object();
      if (include_volatile) w.key("latency_us").value(record.latency_us);
      w.key("op").value(record.op);
      w.key("reason").value(record.reason);
      w.key("request").value(record.request);
      w.key("rid").value(record.rid);
      if (include_volatile) {
        w.key("tid").value(static_cast<std::uint64_t>(record.tid));
        w.key("ts_us").value(record.ts_us);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    outcome.reply = w.take();
    return outcome;
  }

  if (snapshot == nullptr)
    return fail(QueryReason::kNoSnapshot,
                "no topology snapshot published yet");
  if (op == "stats") {
    outcome.reply = stats_reply(*snapshot, rid);
  } else if (op == "path" || op == "latency") {
    for (const auto field : {"region", "from", "to"})
      if (!request.has(field))
        return fail(QueryReason::kMissingField,
                    "\"" + std::string{op} +
                        "\" requires region, from, and to");
    const auto* region = snapshot->find_region(request.get("region"));
    if (region == nullptr)
      return fail(QueryReason::kUnknownRegion,
                  "region \"" + std::string{request.get("region")} +
                      "\" is not in this snapshot");
    const auto from = region->graph().id_of(request.get("from"));
    const auto to = region->graph().id_of(request.get("to"));
    if (from == CsrGraph::kInvalid || to == CsrGraph::kInvalid) {
      const auto unknown =
          from == CsrGraph::kInvalid ? request.get("from") : request.get("to");
      return fail(QueryReason::kUnknownCo,
                  "CO \"" + std::string{unknown} + "\" is not in region \"" +
                      region->region() + "\"");
    }
    outcome.reply = path_reply(*region, op, request.get("from"),
                               request.get("to"), from, to, op == "latency",
                               rid);
  } else if (op == "resilience") {
    if (!request.has("region"))
      return fail(QueryReason::kMissingField,
                  "\"resilience\" requires a region");
    const auto* region = snapshot->find_region(request.get("region"));
    if (region == nullptr)
      return fail(QueryReason::kUnknownRegion,
                  "region \"" + std::string{request.get("region")} +
                      "\" is not in this snapshot");
    outcome.reply = resilience_reply(*region, rid);
  } else if (op == "explain") {
    for (const auto field : {"from", "to"})
      if (!request.has(field))
        return fail(QueryReason::kMissingField,
                    "\"explain\" requires from and to");
    if (snapshot->provenance() == nullptr)
      return fail(QueryReason::kNoProvenance,
                  "this snapshot carries no provenance log");
    outcome.reply =
        explain_reply(*snapshot, request.get("from"), request.get("to"), rid);
  } else {
    return fail(QueryReason::kUnknownOp,
                "unknown op \"" + std::string{op} + "\"");
  }
  return outcome;
}

}  // namespace ran::infer
