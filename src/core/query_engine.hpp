// QueryEngine: the transport-independent heart of ran_serve. One engine
// instance answers protocol request lines against whatever snapshot
// generation its SnapshotHub currently publishes; the TCP server, the
// bench load generator, and the tests all drive the same answer() entry
// point, so a reply is a pure function of (request line, snapshot
// generation) — the property the byte-identical pre/post-reload test
// leans on.
//
// Failure discipline mirrors the ingest layer's ParseReason taxonomy:
// every malformed or unanswerable request yields a one-line
// `{"ok":false,"reason":"<slug>","error":...}` reply with a stable
// QueryReason slug, a per-slug volatile counter bump, and no other
// effect. The engine never throws on request bytes — a daemon must not
// be crashable from the wire.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

#include "snapshot.hpp"

namespace ran::obs {
class Counter;
class Registry;
}

namespace ran::infer {

/// Stable failure slugs for protocol error replies.
enum class QueryReason {
  kMalformedJson,   ///< line failed to parse as a flat request object
  kTooLarge,        ///< request line exceeded max_request_bytes
  kMissingField,    ///< a required field is absent
  kUnknownOp,       ///< "op" names no known query type
  kUnknownRegion,   ///< "region" names no region in the snapshot
  kUnknownCo,       ///< "from"/"to" names no CO in the region
  kNoSnapshot,      ///< no snapshot generation published yet
  kNoProvenance,    ///< snapshot carries no provenance log
  kTimeout,         ///< server-side per-request deadline expired
};

[[nodiscard]] std::string_view to_string(QueryReason reason);

struct QueryEngineConfig {
  /// Longest accepted request line; longer lines answer `too_large`.
  std::size_t max_request_bytes = 4096;
  /// Optional: per-op and per-reason volatile counters land here.
  obs::Registry* metrics = nullptr;
};

class QueryEngine {
 public:
  explicit QueryEngine(const SnapshotHub& hub, QueryEngineConfig config = {});

  /// Answers one request line (no trailing newline) with one reply line
  /// (no trailing newline). Never throws on request content.
  [[nodiscard]] std::string answer(std::string_view request_line) const;

  /// The error reply the server sends for conditions it detects itself
  /// (oversized buffered line, per-request deadline). Also counts the
  /// reason, so server-side failures surface in the same counters.
  [[nodiscard]] std::string error_reply(QueryReason reason,
                                        std::string_view message) const;

 private:
  static constexpr std::size_t kReasonCount =
      static_cast<std::size_t>(QueryReason::kTimeout) + 1;

  const SnapshotHub& hub_;
  QueryEngineConfig config_;
  /// Counters resolved once at construction (registry lookups take a
  /// mutex; the answer path must not). Null without a registry.
  obs::Counter* requests_ = nullptr;
  obs::Counter* ok_ = nullptr;
  std::array<obs::Counter*, kReasonCount> errors_{};
};

}  // namespace ran::infer
