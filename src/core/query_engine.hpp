// QueryEngine: the transport-independent heart of ran_serve. One engine
// instance answers protocol request lines against whatever snapshot
// generation its SnapshotHub currently publishes; the TCP server, the
// bench load generator, and the tests all drive the same answer() entry
// point. Without telemetry attached (no registry, no flight recorder) a
// reply is a pure function of (request line, snapshot generation) — the
// property the byte-identical pre/post-reload test leans on. With a
// registry attached, every reply is additionally stamped with a
// monotonic per-engine request id ("rid", emitted right after the
// "ok"/"op" prefix) that also appears in the engine's structured-log
// lines, its per-request tracer span (`serve.req.<rid>`), and its
// flight-recorder record — one id follows one request from socket
// accept to reply.
//
// Failure discipline mirrors the ingest layer's ParseReason taxonomy:
// every malformed or unanswerable request yields a one-line
// `{"ok":false,"reason":"<slug>","error":...}` reply with a stable
// QueryReason slug, a per-slug volatile counter bump, and no other
// effect. The engine never throws on request bytes — a daemon must not
// be crashable from the wire.
//
// Telemetry ops (the live observability surface):
//   {"op":"metrics"}                  -> Prometheus-style exposition text
//   {"op":"metrics","format":"json"}  -> the manifest-style metrics JSON
//   {"op":"health"}                   -> generation, snapshot age, uptime,
//                                        worker saturation, error window
//   {"op":"dump"}                     -> flight-recorder last-N records
//                                        (canonical; "volatile":"1" adds
//                                        timings/thread ids)
// Latency lands in per-op `serve.latency_us.<op>` histograms; requests
// that fail before an op resolves observe `serve.latency_us.other`.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "snapshot.hpp"

namespace ran::obs {
class Counter;
class FlightRecorder;
class Histogram;
class Registry;
}

namespace ran::infer {

/// Stable failure slugs for protocol error replies.
enum class QueryReason {
  kMalformedJson,   ///< line failed to parse as a flat request object
  kTooLarge,        ///< request line exceeded max_request_bytes
  kMissingField,    ///< a required field is absent
  kUnknownOp,       ///< "op" names no known query type
  kUnknownRegion,   ///< "region" names no region in the snapshot
  kUnknownCo,       ///< "from"/"to" names no CO in the region
  kNoSnapshot,      ///< no snapshot generation published yet
  kNoProvenance,    ///< snapshot carries no provenance log
  kTimeout,         ///< server-side per-request deadline expired
  kNoTelemetry,     ///< metrics/dump op on an engine without telemetry
};

[[nodiscard]] std::string_view to_string(QueryReason reason);

/// Live worker-pool state the `health` op reports: owned by the
/// transport (serve::Server), read by the engine. Relaxed atomics — the
/// numbers are an operator's saturation gauge, not a synchronization
/// point.
struct ServeHealth {
  std::atomic<std::uint32_t> busy_workers{0};  ///< workers owning a connection
  std::atomic<std::uint32_t> queue_depth{0};   ///< accepted, not yet picked up
  std::uint32_t total_workers = 0;             ///< set before serving starts
};

/// Sliding (ok, error) reply counts over the last `window_s` seconds,
/// kept in per-second epoch-tagged slots so counting is a few relaxed
/// atomic ops and reading needs no lock. Counts near the moving window
/// edge are approximate by design; the exact totals live in the
/// `serve.*` counters.
class ReplyRateWindow {
 public:
  static constexpr std::size_t kSlots = 64;

  explicit ReplyRateWindow(int window_s = 60);

  /// Records one reply at `now_s` (seconds since an arbitrary epoch).
  void count(bool ok, std::uint64_t now_s);

  struct Totals {
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
  };
  [[nodiscard]] Totals read(std::uint64_t now_s) const;
  [[nodiscard]] int window_s() const { return window_s_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{~std::uint64_t{0}};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> errors{0};
  };

  int window_s_;
  std::array<Slot, kSlots> slots_;
};

struct QueryEngineConfig {
  /// Longest accepted request line; longer lines answer `too_large`.
  std::size_t max_request_bytes = 4096;
  /// Optional: per-op and per-reason volatile counters plus the
  /// `serve.latency_us.<op>` histograms land here; also the source of
  /// the logger/tracer the per-request instrumentation uses.
  obs::Registry* metrics = nullptr;
  /// Optional: every answered request leaves a flight record.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional: worker-pool numbers for the `health` op.
  const ServeHealth* health = nullptr;
  /// The `health` error window width (clamped to ReplyRateWindow::kSlots).
  int error_window_s = 60;
};

class QueryEngine {
 public:
  explicit QueryEngine(const SnapshotHub& hub, QueryEngineConfig config = {});

  /// Answers one request line (no trailing newline) with one reply line
  /// (no trailing newline). Never throws on request content.
  [[nodiscard]] std::string answer(std::string_view request_line) const;

  /// The error reply the server sends for conditions it detects itself
  /// (oversized buffered line, per-request deadline). Also counts the
  /// reason and leaves a flight record, so server-side failures surface
  /// in the same telemetry. `request_line` (what the server buffered so
  /// far, possibly truncated) feeds the flight record only.
  [[nodiscard]] std::string error_reply(QueryReason reason,
                                        std::string_view message,
                                        std::string_view request_line = {}) const;

  /// Request ids handed out so far (equals the last stamped rid).
  [[nodiscard]] std::uint64_t request_ids_issued() const {
    return next_rid_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kReasonCount =
      static_cast<std::size_t>(QueryReason::kNoTelemetry) + 1;
  /// Per-op latency histogram slots: the eight named ops plus "other"
  /// for requests that fail before an op resolves.
  static constexpr std::size_t kOpCount = 10;

  struct Outcome;

  [[nodiscard]] Outcome dispatch(std::string_view request_line,
                                 std::uint64_t rid) const;
  /// Counters, latency histogram, flight record, log line — everything
  /// that happens after the reply bytes exist.
  void finish(const Outcome& outcome, std::string_view request_line,
              std::uint64_t rid, std::uint64_t latency_us) const;
  [[nodiscard]] std::uint64_t uptime_s() const;

  const SnapshotHub& hub_;
  QueryEngineConfig config_;
  std::chrono::steady_clock::time_point start_;
  /// Counters resolved once at construction (registry lookups take a
  /// mutex; the answer path must not). Null without a registry.
  obs::Counter* requests_ = nullptr;
  obs::Counter* ok_ = nullptr;
  std::array<obs::Counter*, kReasonCount> errors_{};
  std::array<obs::Histogram*, kOpCount> op_latency_{};
  mutable std::atomic<std::uint64_t> next_rid_{0};
  mutable ReplyRateWindow window_;
};

}  // namespace ran::infer
