#include "refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "corpus_index.hpp"
#include "csr_graph.hpp"
#include "netbase/stats.hpp"
#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "probe/campaign.hpp"

namespace ran::infer {

void RefineStats::publish(obs::Registry& registry,
                          const std::string& prefix) const {
  registry.counter(prefix + ".edge_edges_removed").inc(edge_edges_removed);
  registry.counter(prefix + ".ring_edges_added").inc(ring_edges_added);
  registry.counter(prefix + ".small_aggs_kept").inc(small_aggs_kept);
}

void identify_agg_cos(RegionalGraph& graph) {
  graph.agg_cos.clear();
  if (graph.cos.empty()) return;
  std::vector<double> degrees;
  degrees.reserve(graph.cos.size());
  for (const auto& co : graph.cos)
    degrees.push_back(static_cast<double>(graph.out_degree(co)));
  const double threshold = net::mean(degrees) + net::stddev(degrees);
  for (const auto& co : graph.cos) {
    if (static_cast<double>(graph.out_degree(co)) > threshold &&
        graph.out_degree(co) >= 2)
      graph.agg_cos.insert(co);
  }
  // Degenerate case: a tiny region where one CO clearly feeds the rest.
  if (graph.agg_cos.empty()) {
    std::string best;
    int best_degree = 0;
    for (const auto& co : graph.cos) {
      if (graph.out_degree(co) > best_degree) {
        best = co;
        best_degree = graph.out_degree(co);
      }
    }
    if (best_degree >= 1) graph.agg_cos.insert(best);
  }
}

void identify_agg_cos(CsrGraph& graph) {
  graph.clear_agg();
  const auto n = static_cast<std::uint32_t>(graph.node_count());
  if (n == 0) return;
  // Node ids follow sorted key order, so this accumulates the mean and
  // stddev in the exact floating-point order of the facade version.
  std::vector<double> degrees;
  degrees.reserve(n);
  std::vector<int> degree(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    degree[u] = graph.out_degree(u);
    degrees.push_back(static_cast<double>(degree[u]));
  }
  const double threshold = net::mean(degrees) + net::stddev(degrees);
  bool any = false;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (static_cast<double>(degree[u]) > threshold && degree[u] >= 2) {
      graph.set_agg(u, true);
      any = true;
    }
  }
  // Degenerate case: a tiny region where one CO clearly feeds the rest.
  if (!any) {
    std::uint32_t best = CsrGraph::kInvalid;
    int best_degree = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (degree[u] > best_degree) {
        best = u;
        best_degree = degree[u];
      }
    }
    if (best_degree >= 1) graph.set_agg(best, true);
  }
}

void remove_edge_to_edge(RegionalGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance) {
  // An EdgeCO keeps its outgoing edges only when it aggregates several COs
  // that no AggCO serves (a genuine small aggregator, B.3); every other
  // EdgeCO->EdgeCO edge is presumed stale rDNS (§5.2.3).
  std::vector<std::pair<std::string, std::string>> to_remove;
  for (const auto& [from, tos] : graph.out) {
    if (graph.agg_cos.contains(from)) continue;
    // Downstream EdgeCOs of `from` that no AggCO also serves.
    int orphans = 0;
    for (const auto& [to, count] : tos) {
      if (graph.agg_cos.contains(to)) continue;
      bool agg_serves = false;
      for (const auto& agg : graph.agg_cos)
        agg_serves = agg_serves || graph.has_edge(agg, to);
      if (!agg_serves) ++orphans;
    }
    if (orphans >= 2) {
      ++stats.small_aggs_kept;
      if (provenance != nullptr) {
        // The stat's unit is the source CO, so the rule total counts it
        // once; the per-edge chain still gains an (uncounted) entry.
        provenance->count_rule("refine.small_agg", true);
        for (const auto& [to, count] : tos) {
          if (graph.agg_cos.contains(to)) continue;
          provenance->record_uncounted(
              from, to, "refine.small_agg", true,
              net::format("source aggregates %d CO(s) no AggCO serves "
                          "(B.3 small-AggCO exception)",
                          orphans));
        }
      }
      continue;
    }
    for (const auto& [to, count] : tos) {
      if (!graph.agg_cos.contains(to))
        to_remove.emplace_back(from, to);
    }
  }
  for (const auto& [from, to] : to_remove) {
    graph.remove_edge(from, to);
    ++stats.edge_edges_removed;
    if (provenance != nullptr)
      provenance->record(from, to, "refine.edge_edge", false,
                         "EdgeCO->EdgeCO with no orphan downstream: "
                         "presumed stale rDNS (s5.2.3)");
  }
}

void remove_edge_to_edge(CsrGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance) {
  const auto n = static_cast<std::uint32_t>(graph.node_count());
  // One reverse-row sweep replaces the facade's per-target scan over all
  // AggCOs: agg_served[v] holds "some AggCO has a live edge to v".
  std::vector<std::uint8_t> agg_served(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (auto i = graph.rev_begin(v); i < graph.rev_end(v); ++i) {
      if (graph.edge_dead(graph.rev_edge(i))) continue;
      if (graph.is_agg(graph.rev_from(i))) {
        agg_served[v] = 1;
        break;
      }
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> to_remove;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (graph.is_agg(u)) continue;
    int orphans = 0;
    for (auto e = graph.fwd_begin(u); e < graph.fwd_end(u); ++e) {
      if (graph.edge_dead(e)) continue;
      const auto v = graph.edge_to(e);
      if (graph.is_agg(v)) continue;
      if (agg_served[v] == 0) ++orphans;
    }
    if (orphans >= 2) {
      ++stats.small_aggs_kept;
      if (provenance != nullptr) {
        provenance->count_rule("refine.small_agg", true);
        for (auto e = graph.fwd_begin(u); e < graph.fwd_end(u); ++e) {
          if (graph.edge_dead(e)) continue;
          const auto v = graph.edge_to(e);
          if (graph.is_agg(v)) continue;
          provenance->record_uncounted(
              std::string{graph.key(u)}, std::string{graph.key(v)},
              "refine.small_agg", true,
              net::format("source aggregates %d CO(s) no AggCO serves "
                          "(B.3 small-AggCO exception)",
                          orphans));
        }
      }
      continue;
    }
    for (auto e = graph.fwd_begin(u); e < graph.fwd_end(u); ++e) {
      if (graph.edge_dead(e)) continue;
      if (!graph.is_agg(graph.edge_to(e))) to_remove.emplace_back(u, e);
    }
  }
  for (const auto& [u, e] : to_remove) {
    graph.remove_edge(e);
    ++stats.edge_edges_removed;
    if (provenance != nullptr)
      provenance->record(std::string{graph.key(u)},
                         std::string{graph.key(graph.edge_to(e))},
                         "refine.edge_edge", false,
                         "EdgeCO->EdgeCO with no orphan downstream: "
                         "presumed stale rDNS (s5.2.3)");
  }
}

namespace {

/// Downstream EdgeCOs (non-agg successors) of an AggCO.
std::set<std::string> downstream_edges(const RegionalGraph& graph,
                                       const std::string& agg) {
  std::set<std::string> out;
  const auto it = graph.out.find(agg);
  if (it == graph.out.end()) return out;
  for (const auto& [to, count] : it->second)
    if (!graph.agg_cos.contains(to)) out.insert(to);
  return out;
}

std::size_t overlap_size(const std::set<std::string>& a,
                         const std::set<std::string>& b) {
  std::size_t n = 0;
  for (const auto& x : a) n += b.contains(x);
  return n;
}

/// Sorted-range overlap for the CSR variant (children rows ascend).
std::size_t overlap_size(const std::vector<std::uint32_t>& a,
                         const std::vector<std::uint32_t>& b) {
  std::size_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) ++ia;
    else if (*ib < *ia) ++ib;
    else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

}  // namespace

void complete_ring_pairs(RegionalGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance) {
  const std::vector<std::string> aggs{graph.agg_cos.begin(),
                                      graph.agg_cos.end()};
  std::map<std::string, std::set<std::string>> children;
  for (const auto& agg : aggs) children[agg] = downstream_edges(graph, agg);

  // Relation rule (B.3): AGGx ~ AGGy when >= 3/4 of AGGx's EdgeCOs overlap
  // AGGy's and the overlap covers >= 1/2 of AGGy's; a relaxed 3/4 rule
  // applies when neither CO found any partner.
  std::map<std::string, std::set<std::string>> related;
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    for (std::size_t j = i + 1; j < aggs.size(); ++j) {
      const auto& x = children[aggs[i]];
      const auto& y = children[aggs[j]];
      if (x.empty() || y.empty()) continue;
      const auto common = overlap_size(x, y);
      const bool forward = 4 * common >= 3 * x.size() &&
                           2 * common >= y.size();
      const bool backward = 4 * common >= 3 * y.size() &&
                            2 * common >= x.size();
      if (forward || backward) {
        related[aggs[i]].insert(aggs[j]);
        related[aggs[j]].insert(aggs[i]);
      }
    }
  }
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    for (std::size_t j = i + 1; j < aggs.size(); ++j) {
      if (!related[aggs[i]].empty() || !related[aggs[j]].empty()) continue;
      const auto& x = children[aggs[i]];
      const auto& y = children[aggs[j]];
      if (x.empty() || y.empty()) continue;
      const auto common = overlap_size(x, y);
      if (4 * common >= 3 * std::min(x.size(), y.size())) {
        related[aggs[i]].insert(aggs[j]);
        related[aggs[j]].insert(aggs[i]);
      }
    }
  }

  // Completion: all related AggCOs serve the union of their EdgeCOs.
  for (const auto& [agg, partners] : related) {
    std::set<std::string> target = children[agg];
    for (const auto& partner : partners)
      target.insert(children[partner].begin(), children[partner].end());
    for (const auto& edge : target) {
      if (!graph.has_edge(agg, edge)) {
        graph.add_edge(agg, edge, 0);
        ++stats.ring_edges_added;
        if (provenance != nullptr) {
          std::string detail =
              "dual-star completion (s5.2.4): ring partner(s)";
          for (const auto& partner : partners) {
            detail += ' ';
            detail += partner;
          }
          detail += " already serve this EdgeCO";
          provenance->record(agg, edge, "refine.ring", true,
                             std::move(detail));
        }
      }
    }
  }
}

void complete_ring_pairs(CsrGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance) {
  const auto n = static_cast<std::uint32_t>(graph.node_count());
  std::vector<std::uint32_t> aggs;
  for (std::uint32_t u = 0; u < n; ++u)
    if (graph.is_agg(u)) aggs.push_back(u);
  // Live non-agg successors per AggCO; forward rows ascend, so these are
  // sorted — id order == key order, matching the facade's string sets.
  std::vector<std::vector<std::uint32_t>> children(aggs.size());
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    for (auto e = graph.fwd_begin(aggs[i]); e < graph.fwd_end(aggs[i]); ++e) {
      if (graph.edge_dead(e)) continue;
      if (!graph.is_agg(graph.edge_to(e)))
        children[i].push_back(graph.edge_to(e));
    }
  }

  std::vector<std::set<std::size_t>> related(aggs.size());
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    for (std::size_t j = i + 1; j < aggs.size(); ++j) {
      const auto& x = children[i];
      const auto& y = children[j];
      if (x.empty() || y.empty()) continue;
      const auto common = overlap_size(x, y);
      const bool forward = 4 * common >= 3 * x.size() &&
                           2 * common >= y.size();
      const bool backward = 4 * common >= 3 * y.size() &&
                            2 * common >= x.size();
      if (forward || backward) {
        related[i].insert(j);
        related[j].insert(i);
      }
    }
  }
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    for (std::size_t j = i + 1; j < aggs.size(); ++j) {
      if (!related[i].empty() || !related[j].empty()) continue;
      const auto& x = children[i];
      const auto& y = children[j];
      if (x.empty() || y.empty()) continue;
      const auto common = overlap_size(x, y);
      if (4 * common >= 3 * std::min(x.size(), y.size())) {
        related[i].insert(j);
        related[j].insert(i);
      }
    }
  }

  for (std::size_t i = 0; i < aggs.size(); ++i) {
    std::set<std::uint32_t> target{children[i].begin(), children[i].end()};
    for (const auto j : related[i])
      target.insert(children[j].begin(), children[j].end());
    for (const auto edge : target) {
      if (!graph.has_edge(aggs[i], edge)) {
        graph.add_edge(aggs[i], edge, 0);
        ++stats.ring_edges_added;
        if (provenance != nullptr) {
          std::string detail =
              "dual-star completion (s5.2.4): ring partner(s)";
          for (const auto j : related[i]) {
            detail += ' ';
            detail += graph.key(aggs[j]);
          }
          detail += " already serve this EdgeCO";
          provenance->record(std::string{graph.key(aggs[i])},
                             std::string{graph.key(edge)}, "refine.ring",
                             true, std::move(detail));
        }
      }
    }
  }
}

namespace {

/// Candidate entries: (co_i, r1) -> (co_j, r2) -> (co_k, r2) triplets.
struct EntryCandidate {
  std::string from_region;  ///< empty for backbone COs
  /// Directly-adjacent region COs with observation counts; anomalous
  /// single-trace adjacencies must not fabricate entries (§5.2.1/5.2.5).
  std::map<std::string, int> adjacent_counts;
  /// All region COs observed downstream of the entry.
  std::set<std::string> downstream;
  /// Sequence number of the last observation backing from_region (index
  /// path only; replays the legacy last-writer-wins assignment).
  std::uint32_t last_seq = 0;

  [[nodiscard]] std::set<std::string> adjacent() const {
    std::set<std::string> out;
    for (const auto& [co, count] : adjacent_counts)
      if (count >= 2) out.insert(co);
    return out;
  }
};

using EntryCandidates =
    std::map<std::pair<std::string, std::string>, EntryCandidate>;

/// The corroboration pass shared by both entry-inference variants.
void apply_entry_candidates(const EntryCandidates& candidates,
                            std::map<std::string, RegionalGraph>& regions,
                            obs::ProvenanceLog* provenance) {
  for (const auto& [key, candidate] : candidates) {
    const auto& [entry_co, region_name] = key;
    const char* rule =
        candidate.from_region.empty() ? "entry.backbone" : "entry.region";
    // Corroboration (§5.2.5): a repeatedly-observed direct adjacency that
    // leads on to at least two distinct COs of the region.
    const auto reached = candidate.adjacent();
    if (reached.empty() || candidate.downstream.size() < 2) {
      if (provenance != nullptr)
        provenance->record(
            entry_co, region_name, rule, false,
            net::format("uncorroborated: %zu repeat adjacencies, %zu "
                        "downstream CO(s) (need >= 1 and >= 2, s5.2.5)",
                        reached.size(), candidate.downstream.size()));
      continue;
    }
    const auto it = regions.find(region_name);
    if (it == regions.end()) {
      if (provenance != nullptr)
        provenance->record(entry_co, region_name, rule, false,
                          "target region has no surviving graph");
      continue;
    }
    auto& graph = it->second;
    if (provenance != nullptr) {
      provenance->count_rule(rule, true);
      for (const auto& co : reached)
        provenance->record_uncounted(
            entry_co, co, rule, true,
            net::format("corroborated entry into region %s (%zu "
                        "downstream COs)",
                        region_name.c_str(),
                        candidate.downstream.size()));
    }
    // Only keep entries that appear to feed the region's aggregation
    // heads (an entry into leaf COs is stale-rDNS noise).
    if (candidate.from_region.empty()) {
      graph.backbone_entries[entry_co] = reached;
    } else {
      graph.region_entries[entry_co] = {candidate.from_region, reached};
    }
  }
}

}  // namespace

void infer_entry_points(const TraceCorpus& corpus, const CoMap& co_map,
                        std::map<std::string, RegionalGraph>& regions,
                        obs::ProvenanceLog* provenance) {
  EntryCandidates candidates;
  for (const auto& trace : corpus.traces) {
    // Annotated hops at strictly consecutive positions; a silent hop in
    // between means the two COs need not be adjacent (a missed backbone
    // hop would otherwise fabricate an entry from its mesh neighbour).
    std::vector<const CoAnnotation*> annotations(trace.hops.size(), nullptr);
    for (std::size_t i = 0; i < trace.hops.size(); ++i)
      if (trace.hops[i].responded())
        annotations[i] = co_map.get(trace.hops[i].addr);
    for (std::size_t i = 0; i + 2 < annotations.size(); ++i) {
      const auto* ci = annotations[i];
      const auto* cj = annotations[i + 1];
      const auto* ck = annotations[i + 2];
      if (ci == nullptr || cj == nullptr || ck == nullptr) continue;
      if (cj->backbone || ck->backbone) continue;
      if (cj->region != ck->region || cj->co_key == ck->co_key) continue;
      const bool backbone_entry = ci->backbone;
      const bool foreign_entry =
          !ci->backbone && ci->region != cj->region;
      if (!backbone_entry && !foreign_entry) continue;
      auto& candidate = candidates[{ci->co_key, cj->region}];
      candidate.from_region = backbone_entry ? std::string{} : ci->region;
      ++candidate.adjacent_counts[cj->co_key];
      candidate.downstream.insert(cj->co_key);
      candidate.downstream.insert(ck->co_key);
    }
  }
  apply_entry_candidates(candidates, regions, provenance);
}

void infer_entry_points(const CorpusIndex& index, const CoMap& co_map,
                        std::map<std::string, RegionalGraph>& regions,
                        obs::ProvenanceLog* provenance) {
  // The unique-triplet table stands in for the per-trace scan: counts
  // weight the adjacency votes (sums match per-occurrence increments) and
  // last_seq replays the legacy last-writer-wins from_region assignment.
  EntryCandidates candidates;
  for (const auto& triplet : index.triplets()) {
    const auto* ci = co_map.get(triplet.a);
    if (ci == nullptr) continue;
    const auto* cj = co_map.get(triplet.b);
    if (cj == nullptr) continue;
    const auto* ck = co_map.get(triplet.c);
    if (ck == nullptr) continue;
    if (cj->backbone || ck->backbone) continue;
    if (cj->region != ck->region || cj->co_key == ck->co_key) continue;
    const bool backbone_entry = ci->backbone;
    const bool foreign_entry = !ci->backbone && ci->region != cj->region;
    if (!backbone_entry && !foreign_entry) continue;
    auto& candidate = candidates[{ci->co_key, cj->region}];
    if (triplet.last_seq > candidate.last_seq) {
      candidate.from_region =
          backbone_entry ? std::string{} : ci->region;
      candidate.last_seq = triplet.last_seq;
    }
    candidate.adjacent_counts[cj->co_key] +=
        static_cast<int>(triplet.count);
    candidate.downstream.insert(cj->co_key);
    candidate.downstream.insert(ck->co_key);
  }
  apply_entry_candidates(candidates, regions, provenance);
}

RefineStats refine_regions(std::map<std::string, RegionalGraph>& regions,
                           const TraceCorpus& corpus, const CoMap& co_map,
                           const RefineOptions& options,
                           obs::ProvenanceLog* provenance) {
  RefineStats stats;
  auto* log = options.log;
  for (auto& [name, graph] : regions) {
    identify_agg_cos(graph);
    if (log != nullptr && graph.agg_cos.empty())
      log->warn("refine.no_agg",
                net::format("region %s: no AggCO identified among %zu "
                            "COs; refinement heuristics cannot apply",
                            name.c_str(), graph.cos.size()));
    if (options.remove_edge_edges)
      remove_edge_to_edge(graph, stats, provenance);
    if (options.complete_rings) {
      if (log != nullptr && graph.agg_cos.size() == 1)
        log->warn("refine.ring",
                  net::format("region %s: ring completion found no "
                              "second AggCO to pair with",
                              name.c_str()));
      complete_ring_pairs(graph, stats, provenance);
    }
  }
  infer_entry_points(corpus, co_map, regions, provenance);
  if (log != nullptr && log->enabled(obs::LogLevel::kInfo))
    log->info("refine.summary",
              net::format("refined %zu region(s): removed %zu "
                          "EdgeCO->EdgeCO edge(s), added %zu ring "
                          "edge(s), kept %zu small AggCO(s)",
                          regions.size(), stats.edge_edges_removed,
                          stats.ring_edges_added, stats.small_aggs_kept));
  return stats;
}

RefineStats refine_regions(std::map<std::string, RegionalGraph>& regions,
                           const CorpusIndex& index, const CoMap& co_map,
                           const RefineOptions& options,
                           obs::ProvenanceLog* provenance) {
  RefineStats stats;
  auto* log = options.log;
  const int threads = probe::resolve_threads(options.threads);

  std::vector<std::string> names;
  names.reserve(regions.size());
  for (const auto& [name, graph] : regions) names.push_back(name);

  // Regions are independent: each worker refines its region on a private
  // CSR graph with private stats/provenance/warning buffers, and the
  // shards merge in sorted region order — the serial emission order — so
  // counters, provenance, and log output are byte-identical at any
  // thread count.
  struct Shard {
    RefineStats stats;
    obs::ProvenanceLog provenance;
    std::vector<std::pair<const char*, std::string>> warnings;
  };
  std::vector<Shard> shards(names.size());
  probe::parallel_for(names.size(), threads, [&](std::size_t i) {
    auto& graph = regions.at(names[i]);
    auto& shard = shards[i];
    auto* shard_provenance =
        provenance != nullptr ? &shard.provenance : nullptr;
    CsrGraph csr = CsrGraph::from_regional(graph);
    identify_agg_cos(csr);
    std::size_t agg_count = 0;
    for (std::uint32_t u = 0;
         u < static_cast<std::uint32_t>(csr.node_count()); ++u)
      agg_count += csr.is_agg(u) ? 1u : 0u;
    if (log != nullptr && agg_count == 0)
      shard.warnings.emplace_back(
          "refine.no_agg",
          net::format("region %s: no AggCO identified among %zu "
                      "COs; refinement heuristics cannot apply",
                      names[i].c_str(), csr.node_count()));
    if (options.remove_edge_edges)
      remove_edge_to_edge(csr, shard.stats, shard_provenance);
    if (options.complete_rings) {
      if (log != nullptr && agg_count == 1)
        shard.warnings.emplace_back(
            "refine.ring",
            net::format("region %s: ring completion found no "
                        "second AggCO to pair with",
                        names[i].c_str()));
      complete_ring_pairs(csr, shard.stats, shard_provenance);
    }
    auto rebuilt = csr.to_regional();
    rebuilt.backbone_entries = std::move(graph.backbone_entries);
    rebuilt.region_entries = std::move(graph.region_entries);
    graph = std::move(rebuilt);
  });
  for (auto& shard : shards) {
    stats.edge_edges_removed += shard.stats.edge_edges_removed;
    stats.ring_edges_added += shard.stats.ring_edges_added;
    stats.small_aggs_kept += shard.stats.small_aggs_kept;
    for (const auto& [topic, message] : shard.warnings)
      log->warn(topic, message);
    if (provenance != nullptr) provenance->merge(shard.provenance);
  }

  infer_entry_points(index, co_map, regions, provenance);
  if (log != nullptr && log->enabled(obs::LogLevel::kInfo))
    log->info("refine.summary",
              net::format("refined %zu region(s): removed %zu "
                          "EdgeCO->EdgeCO edge(s), added %zu ring "
                          "edge(s), kept %zu small AggCO(s)",
                          regions.size(), stats.edge_edges_removed,
                          stats.ring_edges_added, stats.small_aggs_kept));
  return stats;
}

}  // namespace ran::infer
