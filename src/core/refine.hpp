// Regional-graph refinement (§5.2.2-5.2.5, App. B.3):
//   * identify AggCOs by out-degree (mean + one standard deviation);
//   * remove false EdgeCO-EdgeCO edges (stale rDNS), keeping genuine
//     small aggregators;
//   * pair AggCOs that share a fiber ring (75 % / 50 % downstream overlap)
//     and complete the dual-star edges rDNS missed;
//   * infer backbone and inter-region entry points from traceroute
//     triplets, requiring corroboration from two or more COs.
#pragma once

#include <map>
#include <string>

#include "graph.hpp"
#include "observations.hpp"
#include "pruning.hpp"

namespace ran::obs {
class Log;
}  // namespace ran::obs

namespace ran::infer {

class CsrGraph;

struct RefineStats {
  std::size_t edge_edges_removed = 0;  ///< EdgeCO->EdgeCO prunes (§5.2.3)
  std::size_t ring_edges_added = 0;    ///< dual-star completions (§5.2.4)
  std::size_t small_aggs_kept = 0;     ///< EdgeCOs promoted to small AggCOs

  /// Mirrors the per-heuristic edge accounting into `registry` as
  /// counters named `<prefix>.edge_edges_removed`, ...
  void publish(obs::Registry& registry, const std::string& prefix) const;
};

/// Identifies AggCOs in a graph: out-degree above the regional mean plus
/// one standard deviation (§5.2.2). Populates graph.agg_cos.
void identify_agg_cos(RegionalGraph& graph);

/// CSR variant: sets the graph's agg flags. Node ids follow sorted key
/// order, so the float accumulation and tie-breaks match the facade
/// version exactly.
void identify_agg_cos(CsrGraph& graph);

/// Removes EdgeCO->EdgeCO edges unless the source aggregates several COs
/// that nothing else serves (App. B.3's small-AggCO exception). With a
/// provenance log, each removal records refine.edge_edge and each spared
/// source CO counts once under refine.small_agg (matching the stats).
void remove_edge_to_edge(RegionalGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance = nullptr);

/// CSR variant: one reverse-row sweep precomputes which EdgeCOs an AggCO
/// serves; removals are in-place tombstones. Same stats and provenance.
void remove_edge_to_edge(CsrGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance = nullptr);

/// Pairs ring-sharing AggCOs and adds the missing edges so related AggCOs
/// reach identical EdgeCO sets (§5.2.4 / B.3). Completed edges record a
/// refine.ring provenance decision naming the contributing partner set.
void complete_ring_pairs(RegionalGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance = nullptr);

/// CSR variant: sorted-range overlaps over the live forward rows;
/// completed edges go to the graph's side list. Same stats, provenance.
void complete_ring_pairs(CsrGraph& graph, RefineStats& stats,
                         obs::ProvenanceLog* provenance = nullptr);

/// Infers entry points (§5.2.5) from the corpus: triplets
/// (co_i, r1) -> (co_j, r2) -> (co_k, r2) where co_i leads to >= 2 COs of
/// region r2. Fills backbone_entries / region_entries of each graph.
/// Accepted and rejected candidates count under entry.backbone /
/// entry.region; accepted ones also record per-(entry, reached CO)
/// decision details.
void infer_entry_points(const TraceCorpus& corpus, const CoMap& co_map,
                        std::map<std::string, RegionalGraph>& regions,
                        obs::ProvenanceLog* provenance = nullptr);

/// Index-based variant: consumes the corpus's unique-triplet table
/// instead of rescanning raw hops (three CoMap lookups per unique
/// triplet rather than per hop). Byte-identical output.
void infer_entry_points(const CorpusIndex& index, const CoMap& co_map,
                        std::map<std::string, RegionalGraph>& regions,
                        obs::ProvenanceLog* provenance = nullptr);

/// Stage switches for ablation experiments.
struct RefineOptions {
  bool remove_edge_edges = true;
  bool complete_rings = true;
  /// Worker threads for the per-region heuristics (index-based overload
  /// only; 0 = hardware concurrency, 1 = serial). Output is identical at
  /// any thread count.
  int threads = 1;
  /// Optional sink for refinement diagnostics: per-region warnings when a
  /// heuristic cannot apply ("ring completion found no second AggCO") and
  /// a run summary. Null is free apart from one pointer test.
  obs::Log* log = nullptr;
};

/// The full §5.2 refinement applied to every region. The optional
/// provenance log receives one refine.*/entry.* decision per edge (or
/// entry candidate) each heuristic touches; per-rule totals cross-check
/// RefineStats.
[[nodiscard]] RefineStats refine_regions(
    std::map<std::string, RegionalGraph>& regions, const TraceCorpus& corpus,
    const CoMap& co_map, const RefineOptions& options = {},
    obs::ProvenanceLog* provenance = nullptr);

/// Index-based refinement: each region runs the CSR heuristic kernels on
/// options.threads workers with private stats/provenance/warning shards
/// merged in sorted region order, then the triplet table drives entry
/// inference. Byte-identical to the corpus-based overload at any thread
/// count.
[[nodiscard]] RefineStats refine_regions(
    std::map<std::string, RegionalGraph>& regions, const CorpusIndex& index,
    const CoMap& co_map, const RefineOptions& options = {},
    obs::ProvenanceLog* provenance = nullptr);

}  // namespace ran::infer
