#include "render.hpp"

#include <ostream>
#include <sstream>

#include "netbase/strings.hpp"

namespace ran::infer {

void render_trace(std::ostream& os, const probe::TraceRecord& trace,
                  const RdnsSources& rdns, const CoMap* co_map) {
  os << "traceroute to " << trace.dst.to_string() << " from " << trace.vp
     << (trace.reached ? "" : " (unreached)") << "\n";
  for (const auto& hop : trace.hops) {
    if (!hop.responded()) {
      os << net::format("%3d  *\n", hop.ttl);
      continue;
    }
    os << net::format("%3d  %-16s", hop.ttl, hop.addr.to_string().c_str());
    if (const auto name = rdns.lookup(hop.addr)) os << "  " << *name;
    if (co_map != nullptr) {
      if (const auto* annotation = co_map->get(hop.addr)) {
        os << "  [" << (annotation->backbone ? "backbone:" : "co:")
           << annotation->co_key;
        if (!annotation->region.empty()) os << " @" << annotation->region;
        os << "]";
      }
    }
    os << net::format("  %.2fms", hop.rtt_ms);
    os << "\n";
  }
}

std::string render_trace(const probe::TraceRecord& trace,
                         const RdnsSources& rdns, const CoMap* co_map) {
  std::ostringstream os;
  render_trace(os, trace, rdns, co_map);
  return os.str();
}

}  // namespace ran::infer
