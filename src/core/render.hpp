// Paper-style rendering of traceroute output (Figs 5, 12, 20): hop
// number, address, rDNS name, and the CO annotation the pipeline assigns
// — the primary debugging view for measurement work.
#pragma once

#include <iosfwd>
#include <string>

#include "co_mapping.hpp"
#include "observations.hpp"

namespace ran::infer {

/// Prints one trace with its rDNS names and (optionally) CO annotations.
void render_trace(std::ostream& os, const probe::TraceRecord& trace,
                  const RdnsSources& rdns, const CoMap* co_map = nullptr);

[[nodiscard]] std::string render_trace(const probe::TraceRecord& trace,
                                       const RdnsSources& rdns,
                                       const CoMap* co_map = nullptr);

}  // namespace ran::infer
