#include "resilience.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "csr_graph.hpp"

namespace ran::infer {

namespace {

/// Roots of the reachability analysis: COs fed by the inferred entries,
/// falling back to parentless AggCOs (the aggregation heads).
std::set<std::string> root_cos(const RegionalGraph& graph) {
  std::set<std::string> roots;
  for (const auto& [entry, reached] : graph.backbone_entries)
    roots.insert(reached.begin(), reached.end());
  for (const auto& [entry, info] : graph.region_entries)
    roots.insert(info.second.begin(), info.second.end());
  if (!roots.empty()) return roots;
  // Parentless AggCOs via reverse-CSR rows instead of the facade's
  // O(V*E) parents_of scan per AggCO.
  const auto csr = CsrGraph::from_regional(graph);
  for (const auto& agg : graph.agg_cos) {
    const auto id = csr.id_of(agg);
    if (id == CsrGraph::kInvalid || csr.in_degree(id) == 0)
      roots.insert(agg);
  }
  if (roots.empty()) roots = graph.agg_cos;
  return roots;
}

/// EdgeCOs reachable from the roots when `failed` is removed.
int reachable_edges(const RegionalGraph& graph,
                    const std::set<std::string>& roots,
                    const std::string& failed) {
  std::set<std::string> visited;
  std::queue<std::string> queue;
  for (const auto& root : roots) {
    if (root == failed) continue;
    if (visited.insert(root).second) queue.push(root);
  }
  while (!queue.empty()) {
    const auto co = std::move(queue.front());
    queue.pop();
    const auto it = graph.out.find(co);
    if (it == graph.out.end()) continue;
    for (const auto& [to, count] : it->second) {
      if (to == failed) continue;
      if (visited.insert(to).second) queue.push(to);
    }
  }
  int edges = 0;
  for (const auto& co : graph.edge_cos())
    edges += visited.contains(co);
  return edges;
}

}  // namespace

ResilienceReport analyze_resilience(const RegionalGraph& graph) {
  ResilienceReport report;
  report.region = graph.region;
  const auto edge_cos = graph.edge_cos();
  report.edge_cos = static_cast<int>(edge_cos.size());
  report.entries = static_cast<int>(graph.backbone_entries.size() +
                                    graph.region_entries.size());
  const auto roots = root_cos(graph);
  const int baseline = reachable_edges(graph, roots, "");

  int never_lost = baseline;
  for (const auto& co : graph.cos) {
    const int reachable = reachable_edges(graph, roots, co);
    const int lost = baseline - reachable;
    FailureImpact impact;
    impact.co = co;
    impact.is_agg = graph.agg_cos.contains(co);
    // A failed EdgeCO trivially "loses" itself; count only the EdgeCOs it
    // strands downstream.
    impact.edge_cos_disconnected =
        std::max(0, lost - (edge_cos.contains(co) ? 1 : 0));
    if (impact.edge_cos_disconnected > 0) {
      ++report.single_points_of_failure;
      report.impacts.push_back(impact);
    }
    if (report.edge_cos > 0)
      report.worst_blast_radius =
          std::max(report.worst_blast_radius,
                   static_cast<double>(impact.edge_cos_disconnected) /
                       report.edge_cos);
    never_lost = std::min(never_lost, reachable);
  }
  std::sort(report.impacts.begin(), report.impacts.end(),
            [](const FailureImpact& a, const FailureImpact& b) {
              return a.edge_cos_disconnected > b.edge_cos_disconnected;
            });
  report.single_failure_coverage =
      report.edge_cos == 0
          ? 1.0
          : 1.0 - report.worst_blast_radius;
  return report;
}

std::map<std::string, ResilienceReport> analyze_resilience(
    const std::map<std::string, RegionalGraph>& regions) {
  std::map<std::string, ResilienceReport> out;
  for (const auto& [name, graph] : regions)
    out.emplace(name, analyze_resilience(graph));
  return out;
}

}  // namespace ran::infer
