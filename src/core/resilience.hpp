// Resilience analysis over inferred regional topologies (§8 "Future
// work — Resiliency", implemented here as an extension).
//
// Given an inferred RegionalGraph, quantify how exposed the region's
// EdgeCOs are to single failures:
//   * blast radius of each AggCO / entry failure — the share of EdgeCOs
//     that lose all upstream connectivity;
//   * single points of failure — COs whose loss disconnects >= 1 EdgeCO;
//   * the region-level summary the paper gestures at in §5.3 (fewer
//     entries + less redundancy => larger correlated outages).
// Everything operates on the inferred graph only, mirroring how a
// third-party analyst would have to reason about critical infrastructure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph.hpp"

namespace ran::infer {

/// Impact of removing one CO from the region.
struct FailureImpact {
  std::string co;
  bool is_agg = false;
  /// EdgeCOs with no remaining path toward any entry point.
  int edge_cos_disconnected = 0;
};

/// Region-level resilience summary.
struct ResilienceReport {
  std::string region;
  int edge_cos = 0;
  int entries = 0;
  /// Per-CO single-failure impacts, worst first.
  std::vector<FailureImpact> impacts;
  /// COs whose single failure disconnects at least one EdgeCO.
  int single_points_of_failure = 0;
  /// Worst-case share of EdgeCOs lost to one CO failure.
  double worst_blast_radius = 0.0;
  /// EdgeCOs that survive any single non-entry CO failure.
  double single_failure_coverage = 0.0;
};

/// Analyzes one region. Entry COs are the graph's inferred backbone and
/// region entries; when none were inferred, the AggCOs with no parents
/// act as the roots.
[[nodiscard]] ResilienceReport analyze_resilience(const RegionalGraph& graph);

/// Convenience: reports for every region, keyed by region tag.
[[nodiscard]] std::map<std::string, ResilienceReport> analyze_resilience(
    const std::map<std::string, RegionalGraph>& regions);

}  // namespace ran::infer
