#include "snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "netbase/contracts.hpp"
#include "netbase/json.hpp"
#include "obs/provenance.hpp"

namespace ran::infer {

// ---------------------------------------------------------------------
// RegionSnapshot
// ---------------------------------------------------------------------

void RegionSnapshot::build_from(const RegionalGraph& graph,
                                const std::map<std::string, double>& co_rtt_ms) {
  graph_ = CsrGraph::from_regional(graph);
  agg_co_count_ = graph.agg_cos.size();
  backbone_entries_ = graph.backbone_entries;
  region_entries_ = graph.region_entries;
  for (const auto& co : graph.cos) {
    const auto it = co_rtt_ms.find(co);
    if (it != co_rtt_ms.end()) co_rtt_ms_.emplace(co, it->second);
  }
  rtt_by_id_.assign(graph_.node_count(), kNoRtt);
  for (const auto& [co, rtt] : co_rtt_ms_) {
    const auto id = graph_.id_of(co);
    if (id != CsrGraph::kInvalid) rtt_by_id_[id] = rtt;
  }
  resilience_ = analyze_resilience(graph);
  redundancy_ = redundancy_of(graph);
  agg_type_ = classify_region(graph);

  // Undirected adjacency: per node, the union of forward targets and
  // reverse sources, ascending and deduplicated. A fresh CSR build has
  // no tombstones or side additions, so the rows are the whole story.
  const std::size_t n = graph_.node_count();
  std::vector<std::vector<std::uint32_t>> nbrs(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    auto& row = nbrs[u];
    for (std::uint32_t e = graph_.fwd_begin(u); e < graph_.fwd_end(u); ++e)
      if (!graph_.edge_dead(e) && graph_.edge_to(e) != u)
        row.push_back(graph_.edge_to(e));
    for (std::uint32_t i = graph_.rev_begin(u); i < graph_.rev_end(u); ++i)
      if (!graph_.edge_dead(graph_.rev_edge(i)) && graph_.rev_from(i) != u)
        row.push_back(graph_.rev_from(i));
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  und_offsets_.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u)
    und_offsets_[u + 1] =
        und_offsets_[u] + static_cast<std::uint32_t>(nbrs[u].size());
  und_to_.clear();
  und_to_.reserve(und_offsets_[n]);
  for (const auto& row : nbrs)
    und_to_.insert(und_to_.end(), row.begin(), row.end());

  // Dense all-pairs index for small regions: one BFS row per source.
  hop_dist_.clear();
  if (n > 0 && n <= kDenseIndexMaxNodes) {
    hop_dist_.resize(n * n, kUnreachable);
    std::vector<std::uint16_t> row;
    for (std::uint32_t s = 0; s < n; ++s) {
      bfs_from(s, row);
      std::copy(row.begin(), row.end(),
                hop_dist_.begin() + static_cast<std::ptrdiff_t>(s * n));
    }
  }
}

void RegionSnapshot::bfs_from(std::uint32_t src,
                              std::vector<std::uint16_t>& dist) const {
  const std::size_t n = graph_.node_count();
  dist.assign(n, kUnreachable);
  RAN_EXPECTS(src < n);
  dist[src] = 0;
  std::deque<std::uint32_t> queue{src};
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    const auto next = static_cast<std::uint16_t>(dist[u] + 1);
    for (std::uint32_t i = und_offsets_[u]; i < und_offsets_[u + 1]; ++i) {
      const std::uint32_t v = und_to_[i];
      if (dist[v] != kUnreachable) continue;
      dist[v] = next;
      queue.push_back(v);
    }
  }
}

void RegionSnapshot::dist_to(std::uint32_t to,
                             std::vector<std::uint16_t>& dist) const {
  const std::size_t n = graph_.node_count();
  if (!hop_dist_.empty()) {
    // Row `to` of the dense index is exactly distance-to-`to` for every
    // node: the adjacency is undirected, so d(to, v) == d(v, to).
    dist.assign(hop_dist_.begin() + static_cast<std::ptrdiff_t>(to * n),
                hop_dist_.begin() + static_cast<std::ptrdiff_t>((to + 1) * n));
    return;
  }
  bfs_from(to, dist);
}

std::vector<std::uint32_t> RegionSnapshot::path(std::uint32_t from,
                                                std::uint32_t to) const {
  const std::size_t n = graph_.node_count();
  RAN_EXPECTS(from < n && to < n);
  if (from == to) return {from};
  // In dense mode read the index row in place — the query hot path
  // must not copy (or allocate) a distance row per request.
  std::vector<std::uint16_t> scratch;
  const std::uint16_t* dist;
  if (!hop_dist_.empty()) {
    dist = hop_dist_.data() + static_cast<std::ptrdiff_t>(to * n);
  } else {
    bfs_from(to, scratch);
    dist = scratch.data();
  }
  if (dist[from] == kUnreachable) return {};
  // Greedy descent: at every hop take the smallest-id neighbor one step
  // closer to `to`. Of all shortest paths this yields the
  // lexicographically smallest id sequence, independent of whether the
  // distances came from the dense index or a fresh BFS.
  std::vector<std::uint32_t> result{from};
  std::uint32_t u = from;
  while (u != to) {
    const auto want = static_cast<std::uint16_t>(dist[u] - 1);
    std::uint32_t next = CsrGraph::kInvalid;
    for (std::uint32_t i = und_offsets_[u]; i < und_offsets_[u + 1]; ++i) {
      const std::uint32_t v = und_to_[i];
      if (dist[v] == want) {
        next = v;  // neighbors ascend, so the first hit is the smallest
        break;
      }
    }
    RAN_ENSURES(next != CsrGraph::kInvalid);
    result.push_back(next);
    u = next;
  }
  return result;
}

std::uint16_t RegionSnapshot::hop_distance(std::uint32_t from,
                                           std::uint32_t to) const {
  const std::size_t n = graph_.node_count();
  RAN_EXPECTS(from < n && to < n);
  if (!hop_dist_.empty()) return hop_dist_[from * n + to];
  std::vector<std::uint16_t> dist;
  bfs_from(from, dist);
  return dist[to];
}

double RegionSnapshot::path_latency_ms(
    const std::vector<std::uint32_t>& path) const {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double a = rtt_by_id_[path[i - 1]];
    const double b = rtt_by_id_[path[i]];
    if (a != kNoRtt && b != kNoRtt)
      total += std::abs(a - b);
    else
      total += kDefaultHopMs;
  }
  return total;
}

RegionalGraph RegionSnapshot::regional() const {
  RegionalGraph graph = graph_.to_regional();
  // to_regional() drops orphans; a snapshot region must round-trip even
  // COs no edge touches, so reinstate every interned node.
  for (std::uint32_t id = 0; id < graph_.node_count(); ++id) {
    graph.cos.insert(std::string{graph_.key(id)});
    if (graph_.is_agg(id)) graph.agg_cos.insert(std::string{graph_.key(id)});
  }
  graph.backbone_entries = backbone_entries_;
  graph.region_entries = region_entries_;
  return graph;
}

std::uint64_t RegionSnapshot::approx_bytes() const {
  std::uint64_t total = 0;
  total += und_offsets_.capacity() * sizeof(std::uint32_t);
  total += und_to_.capacity() * sizeof(std::uint32_t);
  total += hop_dist_.capacity() * sizeof(std::uint16_t);
  total += graph_.edge_count() *
           (2 * sizeof(std::uint32_t) + sizeof(int) + 1);
  for (std::uint32_t id = 0; id < graph_.node_count(); ++id)
    total += graph_.key(id).size() + sizeof(std::uint32_t);
  for (const auto& [co, rtt] : co_rtt_ms_) total += co.size() + sizeof(rtt);
  total += rtt_by_id_.capacity() * sizeof(double);
  return total;
}

// ---------------------------------------------------------------------
// TopologySnapshot: build
// ---------------------------------------------------------------------

TopologySnapshot TopologySnapshot::build(
    std::string source, const std::map<std::string, RegionalGraph>& regions,
    std::shared_ptr<const obs::ProvenanceLog> provenance,
    std::uint64_t generation, const std::map<std::string, double>& co_rtt_ms) {
  TopologySnapshot snapshot;
  snapshot.generation_ = generation;
  snapshot.source_ = std::move(source);
  snapshot.provenance_ = std::move(provenance);
  for (const auto& [tag, graph] : regions) {
    RegionSnapshot region;
    region.build_from(graph, co_rtt_ms);
    snapshot.co_count_ += region.co_count();
    snapshot.edge_count_ += region.edge_count();
    snapshot.regions_.emplace(tag, std::move(region));
  }
  return snapshot;
}

const RegionSnapshot* TopologySnapshot::find_region(
    std::string_view name) const {
  const auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

std::uint64_t TopologySnapshot::approx_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [tag, region] : regions_)
    total += tag.size() + region.approx_bytes();
  return total;
}

// ---------------------------------------------------------------------
// TopologySnapshot: save
// ---------------------------------------------------------------------

namespace {

constexpr std::string_view kFormatTag = "ran.topology_snapshot.v1";

void write_string_array(net::JsonWriter& w, const std::set<std::string>& set) {
  w.begin_array();
  for (const auto& s : set) w.value(s);
  w.end_array();
}

void write_provenance(net::JsonWriter& w, const obs::ProvenanceLog& log) {
  w.begin_object();
  w.key("decision_cap").value(static_cast<std::uint64_t>(log.decision_cap()));
  w.key("edges").begin_array();
  for (const auto& [key, edge] : log.edges()) {
    w.begin_object();
    w.key("decisions").begin_array();
    for (const auto& decision : edge.decisions) {
      w.begin_object();
      w.key("detail").value(decision.detail);
      w.key("kept").value(decision.kept);
      w.key("rule").value(decision.rule);
      w.end_object();
    }
    w.end_array();
    w.key("dropped").value(edge.dropped_decisions);
    w.key("first_trace").value(edge.first_trace);
    w.key("from").value(key.first);
    w.key("last_trace").value(edge.last_trace);
    w.key("observations").value(edge.observations);
    w.key("to").value(key.second);
    w.end_object();
  }
  w.end_array();
  w.key("mappings").begin_object();
  for (const auto& [co, rules] : log.mapping_support()) {
    w.key(co).begin_object();
    for (const auto& [rule, count] : rules) w.key(rule).value(count);
    w.end_object();
  }
  w.end_object();
  w.key("rules").begin_object();
  for (const auto& [rule, counts] : log.rule_counts()) {
    w.key(rule).begin_object();
    w.key("kept").value(counts.kept);
    w.key("removed").value(counts.removed);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_region(net::JsonWriter& w, const RegionSnapshot& region) {
  const RegionalGraph graph = region.regional();
  w.begin_object();
  w.key("agg_cos");
  write_string_array(w, graph.agg_cos);
  w.key("backbone_entries").begin_object();
  for (const auto& [co, reached] : graph.backbone_entries) {
    w.key(co);
    write_string_array(w, reached);
  }
  w.end_object();
  w.key("co_rtt_ms").begin_object();
  for (const auto& [co, rtt] : region.co_rtt_ms()) w.key(co).value(rtt);
  w.end_object();
  w.key("cos");
  write_string_array(w, graph.cos);
  w.key("edges").begin_array();
  for (const auto& [from, tos] : graph.out)
    for (const auto& [to, count] : tos) {
      w.begin_array();
      w.value(from);
      w.value(to);
      w.value(count);
      w.end_array();
    }
  w.end_array();
  w.key("region_entries").begin_object();
  for (const auto& [co, entry] : graph.region_entries) {
    w.key(co).begin_object();
    w.key("reached");
    write_string_array(w, entry.second);
    w.key("region").value(entry.first);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

std::string TopologySnapshot::to_json() const {
  net::JsonWriter w;
  w.begin_object();
  w.key("format").value(kFormatTag);
  w.key("generation").value(generation_);
  w.key("provenance");
  if (provenance_ == nullptr) {
    w.begin_object();
    w.end_object();
  } else {
    write_provenance(w, *provenance_);
  }
  w.key("regions").begin_object();
  for (const auto& [tag, region] : regions_) {
    w.key(tag);
    write_region(w, region);
  }
  w.end_object();
  w.key("source").value(source_);
  w.end_object();
  return w.str();
}

void TopologySnapshot::save(std::ostream& os) const {
  os << to_json() << '\n';
}

// ---------------------------------------------------------------------
// TopologySnapshot: load
// ---------------------------------------------------------------------

namespace {

/// Accumulates the first schema violation; load bails out once set.
struct LoadContext {
  std::string error;
  [[nodiscard]] bool failed() const { return !error.empty(); }
  void fail(std::string message) {
    if (error.empty()) error = std::move(message);
  }
};

const net::JsonValue* require(const net::JsonValue& object,
                              std::string_view key,
                              net::JsonValue::Kind kind, LoadContext& ctx,
                              std::string_view where) {
  const auto* value = object.find(key);
  if (value == nullptr || value->kind != kind) {
    ctx.fail("snapshot: missing or mistyped \"" + std::string{key} +
             "\" in " + std::string{where});
    return nullptr;
  }
  return value;
}

std::set<std::string> read_string_set(const net::JsonValue& array,
                                      LoadContext& ctx,
                                      std::string_view where) {
  std::set<std::string> result;
  for (const auto& item : array.array) {
    if (!item.is_string()) {
      ctx.fail("snapshot: non-string element in " + std::string{where});
      return result;
    }
    result.insert(item.str);
  }
  return result;
}

std::optional<RegionalGraph> read_region(const std::string& tag,
                                         const net::JsonValue& object,
                                         std::map<std::string, double>& co_rtt,
                                         LoadContext& ctx) {
  using Kind = net::JsonValue::Kind;
  RegionalGraph graph;
  graph.region = tag;
  const auto* cos = require(object, "cos", Kind::kArray, ctx, tag);
  const auto* aggs = require(object, "agg_cos", Kind::kArray, ctx, tag);
  const auto* edges = require(object, "edges", Kind::kArray, ctx, tag);
  const auto* backbone =
      require(object, "backbone_entries", Kind::kObject, ctx, tag);
  const auto* entries =
      require(object, "region_entries", Kind::kObject, ctx, tag);
  const auto* rtts = require(object, "co_rtt_ms", Kind::kObject, ctx, tag);
  if (ctx.failed()) return std::nullopt;
  graph.cos = read_string_set(*cos, ctx, tag + ".cos");
  graph.agg_cos = read_string_set(*aggs, ctx, tag + ".agg_cos");
  for (const auto& edge : edges->array) {
    if (!edge.is_array() || edge.array.size() != 3 ||
        !edge.array[0].is_string() || !edge.array[1].is_string() ||
        !edge.array[2].is_number()) {
      ctx.fail("snapshot: malformed edge triple in " + tag);
      return std::nullopt;
    }
    graph.out[edge.array[0].str][edge.array[1].str] =
        static_cast<int>(edge.array[2].num);
  }
  for (const auto& [co, reached] : backbone->object) {
    if (!reached.is_array()) {
      ctx.fail("snapshot: malformed backbone entry in " + tag);
      return std::nullopt;
    }
    graph.backbone_entries[co] =
        read_string_set(reached, ctx, tag + ".backbone_entries");
  }
  for (const auto& [co, entry] : entries->object) {
    if (!entry.is_object()) {
      ctx.fail("snapshot: malformed region entry in " + tag);
      return std::nullopt;
    }
    const auto* region =
        require(entry, "region", Kind::kString, ctx, tag + ".region_entries");
    const auto* reached =
        require(entry, "reached", Kind::kArray, ctx, tag + ".region_entries");
    if (ctx.failed()) return std::nullopt;
    graph.region_entries[co] = {
        region->str, read_string_set(*reached, ctx, tag + ".region_entries")};
  }
  for (const auto& [co, rtt] : rtts->object) {
    if (!rtt.is_number()) {
      ctx.fail("snapshot: non-numeric co_rtt_ms in " + tag);
      return std::nullopt;
    }
    co_rtt[co] = rtt.num;
  }
  if (ctx.failed()) return std::nullopt;
  return graph;
}

std::shared_ptr<const obs::ProvenanceLog> read_provenance(
    const net::JsonValue& object, LoadContext& ctx) {
  using Kind = net::JsonValue::Kind;
  if (object.object.empty()) return nullptr;  // saved without provenance
  auto log = std::make_shared<obs::ProvenanceLog>();
  const auto* cap =
      require(object, "decision_cap", Kind::kNumber, ctx, "provenance");
  const auto* edges = require(object, "edges", Kind::kArray, ctx, "provenance");
  const auto* mappings =
      require(object, "mappings", Kind::kObject, ctx, "provenance");
  const auto* rules =
      require(object, "rules", Kind::kObject, ctx, "provenance");
  if (ctx.failed()) return nullptr;
  log->set_decision_cap(static_cast<std::size_t>(cap->num));
  for (const auto& entry : edges->array) {
    if (!entry.is_object()) {
      ctx.fail("snapshot: malformed provenance edge");
      return nullptr;
    }
    const auto* from = require(entry, "from", Kind::kString, ctx, "provenance");
    const auto* to = require(entry, "to", Kind::kString, ctx, "provenance");
    const auto* observations =
        require(entry, "observations", Kind::kNumber, ctx, "provenance");
    const auto* dropped =
        require(entry, "dropped", Kind::kNumber, ctx, "provenance");
    const auto* first =
        require(entry, "first_trace", Kind::kString, ctx, "provenance");
    const auto* last =
        require(entry, "last_trace", Kind::kString, ctx, "provenance");
    const auto* decisions =
        require(entry, "decisions", Kind::kArray, ctx, "provenance");
    if (ctx.failed()) return nullptr;
    obs::EdgeProvenance edge;
    edge.observations = static_cast<std::uint64_t>(observations->num);
    edge.dropped_decisions = static_cast<std::uint64_t>(dropped->num);
    edge.first_trace = first->str;
    edge.last_trace = last->str;
    for (const auto& d : decisions->array) {
      if (!d.is_object()) {
        ctx.fail("snapshot: malformed provenance decision");
        return nullptr;
      }
      const auto* rule = require(d, "rule", Kind::kString, ctx, "decision");
      const auto* kept = require(d, "kept", Kind::kBool, ctx, "decision");
      const auto* detail = require(d, "detail", Kind::kString, ctx, "decision");
      if (ctx.failed()) return nullptr;
      edge.decisions.push_back({rule->str, kept->b, detail->str});
    }
    log->restore_edge(from->str, to->str, std::move(edge));
  }
  for (const auto& [co, per_rule] : mappings->object) {
    if (!per_rule.is_object()) {
      ctx.fail("snapshot: malformed provenance mapping");
      return nullptr;
    }
    for (const auto& [rule, count] : per_rule.object) {
      if (!count.is_number()) {
        ctx.fail("snapshot: malformed provenance mapping count");
        return nullptr;
      }
      log->restore_mapping(co, rule,
                           static_cast<std::uint64_t>(count.num));
    }
  }
  for (const auto& [rule, counts] : rules->object) {
    if (!counts.is_object()) {
      ctx.fail("snapshot: malformed provenance rule counts");
      return nullptr;
    }
    const auto* kept = require(counts, "kept", Kind::kNumber, ctx, "rules");
    const auto* removed =
        require(counts, "removed", Kind::kNumber, ctx, "rules");
    if (ctx.failed()) return nullptr;
    log->restore_rule(rule,
                      {static_cast<std::uint64_t>(kept->num),
                       static_cast<std::uint64_t>(removed->num)});
  }
  return log;
}

}  // namespace

std::optional<TopologySnapshot> TopologySnapshot::from_json(
    std::string_view text, std::string* error) {
  using Kind = net::JsonValue::Kind;
  std::string parse_error;
  const auto doc = net::parse_json(text, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = "snapshot: " + parse_error;
    return std::nullopt;
  }
  LoadContext ctx;
  if (!doc->is_object()) ctx.fail("snapshot: document is not an object");
  if (!ctx.failed()) {
    const auto* format =
        require(*doc, "format", Kind::kString, ctx, "document");
    if (format != nullptr && format->str != kFormatTag)
      ctx.fail("snapshot: unsupported format \"" + format->str + "\"");
  }
  const net::JsonValue* generation = nullptr;
  const net::JsonValue* source = nullptr;
  const net::JsonValue* regions = nullptr;
  const net::JsonValue* provenance = nullptr;
  if (!ctx.failed()) {
    generation = require(*doc, "generation", Kind::kNumber, ctx, "document");
    source = require(*doc, "source", Kind::kString, ctx, "document");
    regions = require(*doc, "regions", Kind::kObject, ctx, "document");
    provenance = require(*doc, "provenance", Kind::kObject, ctx, "document");
  }
  std::map<std::string, RegionalGraph> graphs;
  std::map<std::string, double> co_rtt;
  if (!ctx.failed()) {
    for (const auto& [tag, value] : regions->object) {
      if (!value.is_object()) {
        ctx.fail("snapshot: region \"" + tag + "\" is not an object");
        break;
      }
      auto graph = read_region(tag, value, co_rtt, ctx);
      if (!graph.has_value()) break;
      graphs.emplace(tag, std::move(*graph));
    }
  }
  std::shared_ptr<const obs::ProvenanceLog> log;
  if (!ctx.failed()) log = read_provenance(*provenance, ctx);
  if (ctx.failed()) {
    if (error != nullptr) *error = ctx.error;
    return std::nullopt;
  }
  return build(source->str, graphs, std::move(log),
               static_cast<std::uint64_t>(generation->num), co_rtt);
}

std::optional<TopologySnapshot> TopologySnapshot::load(std::istream& is,
                                                       std::string* error) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_json(buffer.str(), error);
}

}  // namespace ran::infer
