// TopologySnapshot: the immutable, versioned query artifact every
// pipeline publishes and every downstream consumer — the `ran_serve`
// daemon, offline analyses, resilience reports, placement planners —
// reads. One snapshot freezes the CO-level result of a study:
//
//   * per region, the inferred graph in CSR form (interned uint32 ids,
//     forward + reverse rows) plus the entry maps the CSR build leaves
//     to its caller;
//   * a precomputed undirected all-pairs path index (BFS next-hop +
//     hop-distance tables) so path/latency queries are O(path length);
//   * the eval and resilience summaries of §5.3/§8 (aggregation type,
//     redundancy accounting, single-failure exposure);
//   * optionally, measured per-CO RTTs (the §5.5 hop-difference
//     technique) so latency answers can carry milliseconds, not only
//     hop counts;
//   * a shared handle on the edge-provenance log, so `explain` replies
//     keep answering after the study object is gone ("Misleading
//     Stars": an answer must say what was actually measured).
//
// Snapshots are deeply immutable after build() — concurrent readers
// need no synchronization — and serialize to a single deterministic
// JSON document. save()/load() round-trip exactly: a reloaded snapshot
// re-exports byte-identical DOT/JSON per region and byte-identical
// explain() transcripts (tests/test_snapshot.cpp).
//
// SnapshotHub is the one concurrency primitive of the serving layer:
// readers copy the current shared_ptr once per query under a brief
// shared lock; publishers swap in a new generation under an exclusive
// lock. A reader holding a generation keeps it alive for as long as it
// needs — republishing never invalidates in-flight queries (the PR-1
// route-cache pattern, now shared by World and the serve path).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "csr_graph.hpp"
#include "eval.hpp"
#include "obs/timed_mutex.hpp"
#include "resilience.hpp"

namespace ran::obs {
class ProvenanceLog;
}

namespace ran::infer {

/// One region of a snapshot: CSR graph + query indexes + summaries.
/// Build through TopologySnapshot::build(); immutable afterwards.
class RegionSnapshot {
 public:
  static constexpr std::uint16_t kUnreachable = 0xffff;
  /// Regions up to this many COs carry the dense all-pairs next-hop
  /// index; larger ones answer path queries with an on-demand BFS.
  static constexpr std::size_t kDenseIndexMaxNodes = 1024;
  /// Per-hop latency charged when no measured RTTs bracket an edge.
  static constexpr double kDefaultHopMs = 0.5;

  [[nodiscard]] const CsrGraph& graph() const { return graph_; }
  [[nodiscard]] const std::string& region() const { return graph_.region(); }
  [[nodiscard]] std::size_t co_count() const { return graph_.node_count(); }
  [[nodiscard]] std::size_t edge_count() const { return graph_.edge_count(); }
  [[nodiscard]] std::size_t agg_co_count() const { return agg_co_count_; }
  [[nodiscard]] std::size_t edge_co_count() const {
    return co_count() - agg_co_count_;
  }

  [[nodiscard]] const ResilienceReport& resilience() const {
    return resilience_;
  }
  [[nodiscard]] const RedundancyStats& redundancy() const {
    return redundancy_;
  }
  [[nodiscard]] AggregationType aggregation_type() const { return agg_type_; }

  /// Measured per-CO RTT (ms) when the study carried one; empty map
  /// otherwise.
  [[nodiscard]] const std::map<std::string, double>& co_rtt_ms() const {
    return co_rtt_ms_;
  }

  /// Undirected shortest CO path from `from` to `to` (both interned
  /// ids), inclusive of the endpoints. Empty when disconnected;
  /// {from} when from == to. Deterministic: of all shortest paths the
  /// lexicographically smallest id sequence is returned (at every hop
  /// the smallest-id neighbor one step closer to `to` is taken), and
  /// the dense and on-demand modes agree by construction.
  [[nodiscard]] std::vector<std::uint32_t> path(std::uint32_t from,
                                                std::uint32_t to) const;
  /// Hop count of path(from, to); kUnreachable when disconnected.
  [[nodiscard]] std::uint16_t hop_distance(std::uint32_t from,
                                           std::uint32_t to) const;

  /// Latency estimate along a path: per consecutive pair, the absolute
  /// difference of the endpoints' measured RTTs when both are known
  /// (the §5.5 hop-difference reading), kDefaultHopMs otherwise.
  [[nodiscard]] double path_latency_ms(
      const std::vector<std::uint32_t>& path) const;

  /// Rebuilds the facade RegionalGraph (CSR edges + the entry maps the
  /// snapshot carried over) — the interchange type every exporter and
  /// analysis consumes. Lossless: exports of the rebuilt graph are
  /// byte-identical to exports of the graph the snapshot was built from.
  [[nodiscard]] RegionalGraph regional() const;

  /// Approximate heap footprint, for the resource profiler.
  [[nodiscard]] std::uint64_t approx_bytes() const;

 private:
  friend class TopologySnapshot;

  void build_from(const RegionalGraph& graph,
                  const std::map<std::string, double>& co_rtt_ms);
  /// BFS from `src` over the undirected adjacency; fills `dist` (size
  /// node_count()) with hop counts, kUnreachable where disconnected.
  void bfs_from(std::uint32_t src, std::vector<std::uint16_t>& dist) const;
  /// Hop distances from every node to `to` — the dense row when the
  /// index exists, a fresh BFS otherwise (BFS is symmetric here: the
  /// adjacency is undirected).
  void dist_to(std::uint32_t to, std::vector<std::uint16_t>& dist) const;

  CsrGraph graph_;
  std::size_t agg_co_count_ = 0;
  /// Undirected adjacency (union of forward targets and reverse
  /// sources, deduplicated, ascending): the BFS ground truth.
  std::vector<std::uint32_t> und_offsets_;
  std::vector<std::uint32_t> und_to_;
  /// Dense all-pairs hop distances (node-major rows, hop_dist_[s*n+t]);
  /// empty when n > kDenseIndexMaxNodes. Paths are reconstructed from
  /// distances alone: greedy descent toward the target.
  std::vector<std::uint16_t> hop_dist_;
  /// Entry maps are not part of the CSR form; carried verbatim.
  std::map<std::string, std::set<std::string>> backbone_entries_;
  std::map<std::string, std::pair<std::string, std::set<std::string>>>
      region_entries_;
  std::map<std::string, double> co_rtt_ms_;
  /// co_rtt_ms_ re-keyed by interned id (kNoRtt where unmeasured) so
  /// the latency hot path is array reads, not string map lookups.
  std::vector<double> rtt_by_id_;
  static constexpr double kNoRtt = -1.0;
  ResilienceReport resilience_;
  RedundancyStats redundancy_;
  AggregationType agg_type_ = AggregationType::kSingleAgg;
};

class TopologySnapshot {
 public:
  /// Freezes `regions` (plus optional measured CO RTTs keyed by CO key)
  /// into an immutable snapshot. `provenance` may be null — explain
  /// queries then answer with a structured "no provenance" error.
  [[nodiscard]] static TopologySnapshot build(
      std::string source, const std::map<std::string, RegionalGraph>& regions,
      std::shared_ptr<const obs::ProvenanceLog> provenance,
      std::uint64_t generation,
      const std::map<std::string, double>& co_rtt_ms = {});

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const std::string& source() const { return source_; }
  [[nodiscard]] const std::map<std::string, RegionSnapshot, std::less<>>&
  regions() const {
    return regions_;
  }
  /// Takes a string_view so the query hot path looks up the region
  /// straight from the request buffer, with no temporary std::string.
  [[nodiscard]] const RegionSnapshot* find_region(std::string_view name) const;
  [[nodiscard]] const obs::ProvenanceLog* provenance() const {
    return provenance_.get();
  }

  [[nodiscard]] std::size_t co_count() const { return co_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] std::uint64_t approx_bytes() const;

  /// Serializes the snapshot as one deterministic JSON document
  /// (sorted keys, fixed formatting) plus a trailing newline.
  void save(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Parses a document save() produced and rebuilds the snapshot —
  /// summaries and path indexes are recomputed (they are pure functions
  /// of the graphs, so the reload is exact). Returns nullopt and an
  /// explanation on malformed input; never throws on bad bytes.
  [[nodiscard]] static std::optional<TopologySnapshot> load(
      std::istream& is, std::string* error = nullptr);
  [[nodiscard]] static std::optional<TopologySnapshot> from_json(
      std::string_view text, std::string* error = nullptr);

 private:
  TopologySnapshot() = default;

  std::uint64_t generation_ = 0;
  std::string source_;
  std::map<std::string, RegionSnapshot, std::less<>> regions_;
  std::shared_ptr<const obs::ProvenanceLog> provenance_;
  std::size_t co_count_ = 0;
  std::size_t edge_count_ = 0;
};

/// The serving layer's publication point: lock-free-in-spirit reads (one
/// shared_ptr copy under a briefly-held shared lock — never held across
/// a lookup or a query), exclusive-lock writes. Readers keep whatever
/// generation they copied for as long as they hold the pointer.
class SnapshotHub {
 public:
  /// Publishes the hub's lock accounting as `lock.snapshot_hub.*` in
  /// `registry`'s volatile namespace (null detaches): how often readers
  /// actually contend with a publish, and for how long — measured, not
  /// assumed. Attach before the serving threads start.
  void attach_metrics(obs::Registry* registry) {
    mutex_.attach(registry, "snapshot_hub");
  }

  /// The current snapshot; null before the first publish.
  [[nodiscard]] std::shared_ptr<const TopologySnapshot> get() const {
    std::shared_lock lock{mutex_};
    return current_;
  }

  /// Atomically replaces the served snapshot. In-flight readers keep
  /// the generation they already copied; new reads see `next`.
  void publish(std::shared_ptr<const TopologySnapshot> next) {
    std::unique_lock lock{mutex_};
    current_ = std::move(next);
    ++publishes_;
    last_publish_ = std::chrono::steady_clock::now();
  }

  [[nodiscard]] std::uint64_t publish_count() const {
    std::shared_lock lock{mutex_};
    return publishes_;
  }

  /// Seconds since the last publish — the staleness the paper's §5.2
  /// pruning heuristics exist for, now measurable on the serving side.
  /// Negative (-1) before the first publish.
  [[nodiscard]] double seconds_since_publish() const {
    std::shared_lock lock{mutex_};
    if (publishes_ == 0) return -1.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         last_publish_)
        .count();
  }

 private:
  mutable obs::TimedSharedMutex mutex_;
  std::shared_ptr<const TopologySnapshot> current_;
  std::uint64_t publishes_ = 0;
  std::chrono::steady_clock::time_point last_publish_{};
};

}  // namespace ran::infer
