// The unified read surface shared by every pipeline study. Each of the
// three methodologies (cable §5, AT&T §6, mobile §7.2) produces different
// aggregates, but downstream consumers — examples, benches, offline
// analyses — only ever need three things: the measurement corpus, the
// inferred clusters, and the run manifest documenting how they were made.
// StudyBase carries that surface for the traceroute pipelines; MobileStudy
// (a ship-campaign corpus, not a TraceCorpus) satisfies the same concept
// with its own accessor types.
#pragma once

#include <concepts>
#include <memory>

#include "alias_resolution.hpp"
#include "obs/manifest.hpp"
#include "observations.hpp"

namespace ran::infer {

class TopologySnapshot;

/// The artifacts every methodology produces regardless of corpus type:
/// the run manifest, the edge-provenance log, and — since the serving
/// layer — the immutable TopologySnapshot the pipeline published. One
/// base, one set of accessors; the per-study accessor copies that used
/// to live on each study class are gone.
struct StudyArtifacts {
  obs::RunManifest run_manifest;
  /// Why every CO-level edge exists (or was removed): supporting trace
  /// ids plus the ordered rule-decision chain. Deterministic — a pure
  /// function of the corpus, byte-stable at any campaign thread count.
  obs::ProvenanceLog edge_provenance;
  /// The frozen, queryable form of this study's result; what ran_serve
  /// and the snapshot-consuming examples read. Null until the pipeline
  /// publishes it at the end of run()/analyze.
  std::shared_ptr<const TopologySnapshot> topology;

  [[nodiscard]] obs::RunManifest& manifest() { return run_manifest; }
  [[nodiscard]] const obs::RunManifest& manifest() const {
    return run_manifest;
  }
  [[nodiscard]] obs::ProvenanceLog& provenance() { return edge_provenance; }
  [[nodiscard]] const obs::ProvenanceLog& provenance() const {
    return edge_provenance;
  }
  [[nodiscard]] const std::shared_ptr<const TopologySnapshot>& snapshot()
      const {
    return topology;
  }
};

struct StudyBase : StudyArtifacts {
  TraceCorpus traces;        ///< every traceroute the pipeline collected
  RouterClusters routers;    ///< inferred routers (alias resolution)

  [[nodiscard]] TraceCorpus& corpus() { return traces; }
  [[nodiscard]] const TraceCorpus& corpus() const { return traces; }
  [[nodiscard]] RouterClusters& clusters() { return routers; }
  [[nodiscard]] const RouterClusters& clusters() const { return routers; }
};

/// Anything exposing the common study surface. The corpus and cluster
/// types differ per methodology; the manifest is always a RunManifest.
template <typename S>
concept StudyLike = requires(const S& s) {
  s.corpus();
  s.clusters();
  { s.manifest() } -> std::convertible_to<const obs::RunManifest&>;
};

}  // namespace ran::infer
