// The unified read surface shared by every pipeline study. Each of the
// three methodologies (cable §5, AT&T §6, mobile §7.2) produces different
// aggregates, but downstream consumers — examples, benches, offline
// analyses — only ever need three things: the measurement corpus, the
// inferred clusters, and the run manifest documenting how they were made.
// StudyBase carries that surface for the traceroute pipelines; MobileStudy
// (a ship-campaign corpus, not a TraceCorpus) satisfies the same concept
// with its own accessor types.
#pragma once

#include <concepts>

#include "alias_resolution.hpp"
#include "obs/manifest.hpp"
#include "observations.hpp"

namespace ran::infer {

struct StudyBase {
  TraceCorpus traces;        ///< every traceroute the pipeline collected
  RouterClusters routers;    ///< inferred routers (alias resolution)
  obs::RunManifest run_manifest;
  /// Why every CO-level edge exists (or was removed): supporting trace
  /// ids plus the ordered rule-decision chain. Deterministic — a pure
  /// function of the corpus, byte-stable at any campaign thread count.
  obs::ProvenanceLog edge_provenance;

  [[nodiscard]] TraceCorpus& corpus() { return traces; }
  [[nodiscard]] const TraceCorpus& corpus() const { return traces; }
  [[nodiscard]] RouterClusters& clusters() { return routers; }
  [[nodiscard]] const RouterClusters& clusters() const { return routers; }
  [[nodiscard]] obs::RunManifest& manifest() { return run_manifest; }
  [[nodiscard]] const obs::RunManifest& manifest() const {
    return run_manifest;
  }
  [[nodiscard]] obs::ProvenanceLog& provenance() { return edge_provenance; }
  [[nodiscard]] const obs::ProvenanceLog& provenance() const {
    return edge_provenance;
  }
};

/// Anything exposing the common study surface. The corpus and cluster
/// types differ per methodology; the manifest is always a RunManifest.
template <typename S>
concept StudyLike = requires(const S& s) {
  s.corpus();
  s.clusters();
  { s.manifest() } -> std::convertible_to<const obs::RunManifest&>;
};

}  // namespace ran::infer
