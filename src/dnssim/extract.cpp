#include "extract.hpp"

#include <unordered_map>
#include <vector>

#include "naming.hpp"
#include "netbase/clli.hpp"
#include "netbase/strings.hpp"

namespace ran::dns {

std::string_view to_string(HostKind kind) {
  switch (kind) {
    case HostKind::kRegionalRouter: return "regional";
    case HostKind::kBackboneRouter: return "backbone";
    case HostKind::kLightspeed: return "lightspeed";
    case HostKind::kSpeedtest: return "speedtest";
    case HostKind::kUnknown: return "unknown";
  }
  return "?";
}

std::string co_key_for(const net::City& city, int building) {
  return net::format("%s|%s|%d", std::string{city.name}.c_str(),
                     std::string{city.state}.c_str(), building);
}

namespace {

/// City lookup by space-less lowercase name + state ("sandiego","ca").
const net::City* city_by_compact_name(std::string_view compact,
                                      std::string_view state) {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string, const net::City*>;
    for (const auto& city : net::us_cities()) {
      std::string key;
      for (const char c : city.name)
        if (c != ' ') key.push_back(c);
      key += '|';
      key += city.state;
      map->emplace(std::move(key), &city);
    }
    return map;
  }();
  std::string key{compact};
  key += '|';
  key += state;
  const auto it = index->find(key);
  return it == index->end() ? nullptr : it->second;
}

/// City lookup by AT&T backbone tag ("sd2ca").
const net::City* city_by_att_tag(std::string_view tag) {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string, const net::City*>;
    for (const auto& city : net::us_cities())
      map->emplace(att_backbone_tag(city), &city);
    return map;
  }();
  const auto it = index->find(std::string{tag});
  return it == index->end() ? nullptr : it->second;
}

/// Decodes an 8-char building CLLI (lowercase ok): place+state+2 digits.
bool decode_clli8(std::string_view code, const net::City*& city,
                  int& building) {
  if (code.size() != 8) return false;
  if (!net::is_digits(code.substr(6, 2))) return false;
  city = net::clli_lookup(code.substr(0, 4), code.substr(4, 2));
  if (city == nullptr) return false;
  building = (code[6] - '0') * 10 + (code[7] - '0');
  return true;
}

/// Splits a compact city tag like "boston2" into name + building.
void split_city_tag(std::string_view tag, std::string_view& name,
                    int& building) {
  std::size_t digits = 0;
  while (digits < tag.size() &&
         net::is_digits(tag.substr(tag.size() - digits - 1, 1)))
    ++digits;
  name = tag.substr(0, tag.size() - digits);
  building = 0;
  for (std::size_t i = tag.size() - digits; i < tag.size(); ++i)
    building = building * 10 + (tag[i] - '0');
}

HostnameInfo parse_rr_com(const std::vector<std::string_view>& labels) {
  HostnameInfo info;
  for (const auto label : labels)
    if (label.empty()) return info;
  if (labels.size() == 5 && labels[2] == "tbone") {
    // bu-ether15.<clli8>-bcr00.tbone.rr.com
    const auto dash = labels[1].find('-');
    if (dash == std::string_view::npos) return info;
    const auto code = labels[1].substr(0, dash);
    if (!decode_clli8(code, info.city, info.building)) return info;
    info.kind = HostKind::kBackboneRouter;
    info.device = std::string{labels[0]};
    info.co_key = co_key_for(*info.city, info.building);
    return info;
  }
  if (labels.size() != 5) return info;
  // <device>.<clli8>r.<region>.rr.com
  const auto loc = labels[1];
  if (loc.size() < 9) return info;
  if (!decode_clli8(loc.substr(0, 8), info.city, info.building)) {
    // Undecodable location labels still cluster by their raw string.
    info.kind = HostKind::kRegionalRouter;
    info.region = std::string{labels[2]};
    info.device = std::string{labels[0]};
    info.co_key = std::string{loc};
    return info;
  }
  info.kind = HostKind::kRegionalRouter;
  info.region = std::string{labels[2]};
  info.device = std::string{labels[0]};
  info.co_key = co_key_for(*info.city, info.building);
  return info;
}

HostnameInfo parse_comcast_net(const std::vector<std::string_view>& labels) {
  HostnameInfo info;
  if (labels.size() != 6) return info;
  for (const auto label : labels)
    if (label.empty()) return info;
  const auto device = labels[0];
  const auto city_tag = labels[1];
  const auto state = labels[2];
  const auto region = labels[3];
  std::string_view compact;
  split_city_tag(city_tag, compact, info.building);
  info.city = city_by_compact_name(compact, state);
  info.kind = region == "ibone" ? HostKind::kBackboneRouter
                                : HostKind::kRegionalRouter;
  if (info.kind == HostKind::kRegionalRouter)
    info.region = std::string{region};
  // Backbone device labels look like "be-1102-cr02": keep the router part.
  const auto last_dash = device.rfind('-');
  info.device = std::string{last_dash == std::string_view::npos
                                ? device
                                : device.substr(last_dash + 1)};
  info.co_key = info.city != nullptr
                    ? co_key_for(*info.city, info.building)
                    : net::format("%s|%s", std::string{city_tag}.c_str(),
                                  std::string{state}.c_str());
  return info;
}

}  // namespace

HostnameInfo extract_hostname(std::string_view hostname) {
  HostnameInfo info;
  if (hostname.empty()) return info;
  const auto lower = net::to_lower(hostname);
  const auto labels = net::split(lower, '.');

  if (net::ends_with(lower, ".rr.com")) return parse_rr_com(labels);
  if (net::ends_with(lower, ".comcast.net")) return parse_comcast_net(labels);

  if (net::ends_with(lower, ".ip.att.net") && labels.size() == 5 &&
      !labels[0].empty() && !labels[1].empty()) {
    // cr2.sd2ca.ip.att.net
    info.kind = HostKind::kBackboneRouter;
    info.device = std::string{labels[0]};
    info.region = std::string{labels[1]};
    info.city = city_by_att_tag(labels[1]);
    info.co_key = info.city != nullptr ? co_key_for(*info.city, 0)
                                       : std::string{labels[1]};
    return info;
  }

  if (net::ends_with(lower, ".sbcglobal.net") && labels.size() == 5 &&
      labels[1] == "lightspeed" && !labels[0].empty() &&
      !labels[2].empty()) {
    // 107-200-91-1.lightspeed.sndgca.sbcglobal.net
    info.kind = HostKind::kLightspeed;
    info.metro_code = std::string{labels[2]};
    info.city = net::clli6_lookup(labels[2]);
    info.region = info.metro_code;
    info.co_key =
        info.city != nullptr ? co_key_for(*info.city, 0) : info.metro_code;
    return info;
  }

  if (net::ends_with(lower, ".ost.myvzw.com") && labels.size() == 4 &&
      !labels[0].empty()) {
    info.kind = HostKind::kSpeedtest;
    info.co_key = std::string{labels[0]};
    return info;
  }
  return info;
}

}  // namespace ran::dns
