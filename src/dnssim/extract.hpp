// Hostname information extraction — the inference-side counterpart of the
// paper's hand-crafted regexes (§5, App. B.1, App. C).
//
// Given a PTR name, classify it and pull out the CO / region / device
// fields. Decoding CLLI place codes back to cities stands in for the CLLI
// databases the authors used; it relies only on public structure, never on
// ground-truth objects.
#pragma once

#include <string>
#include <string_view>

#include "netbase/geo.hpp"

namespace ran::dns {

enum class HostKind {
  kRegionalRouter,   ///< a router inside a regional access network
  kBackboneRouter,   ///< ibone/tbone/ip.att.net backbone PoP router
  kLightspeed,       ///< AT&T IP-DSLAM / ONT gateway
  kSpeedtest,        ///< Verizon EdgeCO speedtest server
  kUnknown,
};

[[nodiscard]] std::string_view to_string(HostKind kind);

/// Parsed fields of a hostname. `co_key` is a canonical building
/// identifier ("city|state|building" when the location decodes, else the
/// raw location label) so that equal keys mean same building.
struct HostnameInfo {
  HostKind kind = HostKind::kUnknown;
  std::string region;      ///< regional tag ("socal", "bverton", "sd2ca")
  std::string co_key;
  std::string device;      ///< device label, e.g. "agg1", "cbr01", "cr2"
  std::string metro_code;  ///< lightspeed clli6 metro code
  const net::City* city = nullptr;
  int building = 0;

  [[nodiscard]] bool matched() const { return kind != HostKind::kUnknown; }
};

/// Applies every known grammar; returns kUnknown info when nothing fits.
[[nodiscard]] HostnameInfo extract_hostname(std::string_view hostname);

/// Builds the canonical co_key for a decoded (city, building) pair —
/// shared by the extractor and by evaluation code that needs to compare
/// inferred COs with ground truth buildings.
[[nodiscard]] std::string co_key_for(const net::City& city, int building);

}  // namespace ran::dns
