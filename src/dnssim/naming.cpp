#include "naming.hpp"

#include "netbase/clli.hpp"
#include "netbase/strings.hpp"

namespace ran::dns {

std::string att_backbone_tag(const net::City& city) {
  const auto words = net::split(city.name, ' ');
  std::string out;
  if (words.size() >= 2) {
    for (const auto word : words)
      if (!word.empty()) out.push_back(word.front());
    out.resize(2);
  } else {
    out = std::string{city.name.substr(0, 2)};
  }
  out += "2";
  out += city.state;
  return out;
}

std::string comcast_city_tag(const net::City& city, int building) {
  std::string out;
  for (const char c : city.name)
    if (c != ' ') out.push_back(c);
  if (building > 0) out += std::to_string(building);
  return out;
}

std::string cable_router_hostname(const topo::Isp& isp,
                                  const topo::CentralOffice& co,
                                  const topo::Router& router,
                                  net::IPv4Address addr) {
  const std::string& region = isp.region(co.region).name;
  const bool backbone = co.role == topo::CoRole::kBackbone;
  if (isp.name() == "charter") {
    // Charter embeds the building CLLI; backbone names live under tbone.
    const std::string clli = net::to_lower(co.clli);
    if (backbone)
      return net::format("bu-ether%d.%s-bcr00.tbone.rr.com",
                         1 + static_cast<int>(addr.value() % 20),
                         clli.c_str());
    return net::format("%s.%sr.%s.rr.com", router.name_hint.c_str(),
                       clli.c_str(), region.c_str());
  }
  // Comcast-style: location tag + state + region.
  const std::string tag = comcast_city_tag(*co.city, co.building);
  if (backbone)
    return net::format("be-%d-%s.%s.%s.ibone.comcast.net",
                       1000 + static_cast<int>(addr.value() % 999),
                       router.name_hint.c_str(), tag.c_str(),
                       std::string{co.city->state}.c_str());
  return net::format("%s.%s.%s.%s.comcast.net", router.name_hint.c_str(),
                     tag.c_str(), std::string{co.city->state}.c_str(),
                     region.c_str());
}

std::string telco_router_hostname(const topo::Isp& isp,
                                  const topo::CentralOffice& co,
                                  const topo::Router& router) {
  (void)isp;
  if (router.role != topo::RouterRole::kBackbone) return {};
  return net::format("%s.%s.ip.att.net", router.name_hint.c_str(),
                     att_backbone_tag(*co.city).c_str());
}

std::string lightspeed_hostname(net::IPv4Address addr,
                                const net::City& metro) {
  return net::format("%d-%d-%d-%d.lightspeed.%s.sbcglobal.net",
                     addr.octet(0), addr.octet(1), addr.octet(2),
                     addr.octet(3), net::clli6(metro).c_str());
}

std::string speedtest_hostname(const std::string& site_code) {
  return net::to_lower(site_code) + ".ost.myvzw.com";
}

}  // namespace ran::dns
