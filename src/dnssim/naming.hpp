// Per-ISP rDNS hostname grammars (Fig 5, Fig 12, App. C).
//
// These functions produce the hostnames an operator's DNS would serve:
//   Charter-style:  agg1.sndgca02r.socal.rr.com  /  bu-ether15.lsanca00-bcr00.tbone.rr.com
//   Comcast-style:  cbr01.troutdale.or.bverton.comcast.net  /  be-1102-cr02.sunnyvale.ca.ibone.comcast.net
//   AT&T:           cr2.sd2ca.ip.att.net  /  107-200-91-1.lightspeed.sndgca.sbcglobal.net
//   Verizon:        cavt.ost.myvzw.com (speedtest servers in EdgeCOs)
//
// Only the generation side lives here; the inference-side extractors in
// extract.hpp parse these formats back (the paper's hand-crafted regexes).
#pragma once

#include <string>

#include "netbase/geo.hpp"
#include "netbase/ipv4.hpp"
#include "topogen/model.hpp"

namespace ran::dns {

/// AT&T's backbone-router region tag, e.g. "sd2ca" for San Diego
/// (word-initials + '2' + state; single-word cities use two letters).
[[nodiscard]] std::string att_backbone_tag(const net::City& city);

/// The location label used by Comcast-style hostnames: city name without
/// spaces, plus the building number when non-zero ("troutdale", "boston2").
[[nodiscard]] std::string comcast_city_tag(const net::City& city,
                                           int building);

/// Hostname for a regional/backbone router interface of a cable ISP;
/// empty when the interface carries no name under the ISP's policy.
[[nodiscard]] std::string cable_router_hostname(
    const topo::Isp& isp, const topo::CentralOffice& co,
    const topo::Router& router, net::IPv4Address addr);

/// Hostname for a telco (AT&T-style) router interface: backbone routers
/// carry cr<N>.<tag>.ip.att.net; all regional routers are unnamed.
[[nodiscard]] std::string telco_router_hostname(
    const topo::Isp& isp, const topo::CentralOffice& co,
    const topo::Router& router);

/// lightspeed lspgw hostname: dashed address + metro code.
[[nodiscard]] std::string lightspeed_hostname(net::IPv4Address addr,
                                              const net::City& metro);

/// Verizon speedtest hostname, e.g. "vistca.ost.myvzw.com".
[[nodiscard]] std::string speedtest_hostname(const std::string& site_code);

}  // namespace ran::dns
