#include "rdns.hpp"

#include <vector>

#include "naming.hpp"
#include "netbase/strings.hpp"
#include "netbase/clli.hpp"
#include "netbase/contracts.hpp"

namespace ran::dns {

void RdnsDb::add(net::IPv4Address addr, std::string hostname) {
  RAN_EXPECTS(!addr.is_unspecified());
  entries_[addr] = std::move(hostname);
}

std::optional<std::string> RdnsDb::lookup(net::IPv4Address addr) const {
  const auto it = entries_.find(addr);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

namespace {

/// Picks the CO a stale record pretends the interface belongs to.
const topo::CentralOffice& pick_stale_co(const topo::Isp& isp,
                                         const topo::CentralOffice& real,
                                         const RdnsNoise& noise,
                                         net::Rng& rng) {
  const bool cross_region = rng.chance(noise.stale_cross_region_frac);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto& candidate = isp.cos()[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(isp.cos().size()) - 1))];
    if (candidate.id == real.id) continue;
    if (candidate.role == topo::CoRole::kBackbone) continue;
    const bool same_region = candidate.region == real.region;
    if (cross_region == !same_region) return candidate;
  }
  return real;  // degenerate topologies: give up on staleness
}

void add_cable(const topo::Isp& isp, const RdnsNoise& noise, net::Rng& rng,
               RdnsDb& db) {
  for (const auto& iface : isp.ifaces()) {
    if (iface.addr.is_unspecified()) continue;
    const auto& router = isp.router(iface.router);
    // Loopbacks and LAN-side addresses of regional routers carry no
    // CO-tagged rDNS; backbone peering interfaces do.
    if (iface.p2p_len == 0 &&
        router.role != topo::RouterRole::kBackbone)
      continue;
    if (rng.chance(noise.missing_prob)) continue;
    const auto* co = &isp.co(router.co);
    if (co->role != topo::CoRole::kBackbone && rng.chance(noise.stale_prob))
      co = &pick_stale_co(isp, *co, noise, rng);
    db.add(iface.addr, cable_router_hostname(isp, *co, router, iface.addr));
  }
  // CMTS-style last-mile gateways carry generic (non-CO) names; they never
  // match the CO regexes, mirroring reality.
  for (const auto& lm : isp.last_miles()) {
    if (rng.chance(noise.missing_prob)) continue;
    db.add(lm.gw_addr,
           net::format("%d-%d-%d-%d.hsd1.%s.%s.net", lm.gw_addr.octet(0),
                       lm.gw_addr.octet(1), lm.gw_addr.octet(2),
                       lm.gw_addr.octet(3),
                       isp.region(isp.co(lm.edge_co).region)
                           .state_hint.c_str(),
                       isp.name().c_str()));
  }
}

void add_telco(const topo::Isp& isp, const RdnsNoise& noise, net::Rng& rng,
               RdnsDb& db) {
  for (const auto& router : isp.routers()) {
    if (router.role != topo::RouterRole::kBackbone) continue;
    const auto& co = isp.co(router.co);
    const auto name = telco_router_hostname(isp, co, router);
    for (const auto i : router.ifaces) {
      const auto addr = isp.iface(i).addr;
      if (addr.is_unspecified() || name.empty()) continue;
      if (rng.chance(noise.missing_prob)) continue;
      db.add(addr, name);
    }
  }
  for (const auto& lm : isp.last_miles()) {
    if (rng.chance(noise.missing_prob)) continue;
    const auto& region = isp.region(isp.co(lm.edge_co).region);
    const auto* metro = net::clli6_lookup(region.name);
    if (metro == nullptr) continue;
    // Stale geolocation hints exist but are rare (App. C footnote).
    if (rng.chance(noise.stale_prob * 0.5)) {
      const auto& other = pick_stale_co(isp, isp.co(lm.edge_co), noise, rng);
      const auto* other_metro =
          net::clli6_lookup(isp.region(other.region).name);
      if (other_metro != nullptr) metro = other_metro;
    }
    db.add(lm.gw_addr, lightspeed_hostname(lm.gw_addr, *metro));
  }
}

void add_mobile(const topo::Isp& isp, RdnsDb& db) {
  for (const auto& mr : isp.mobile_regions()) {
    if (mr.speedtest_addr.is_unspecified()) continue;
    db.add(mr.speedtest_addr, speedtest_hostname(mr.name));
  }
}

}  // namespace

RdnsDb make_rdns(const topo::Isp& isp, const RdnsNoise& noise,
                 net::Rng& rng) {
  RdnsDb db;
  switch (isp.kind()) {
    case topo::IspKind::kCable:
      add_cable(isp, noise, rng, db);
      break;
    case topo::IspKind::kTelco:
      add_telco(isp, noise, rng, db);
      break;
    case topo::IspKind::kMobile:
      add_mobile(isp, db);
      break;
  }
  return db;
}

RdnsDb age_snapshot(const RdnsDb& live, double extra_stale_prob,
                    net::Rng& rng) {
  std::vector<const std::string*> hostnames;
  hostnames.reserve(live.size());
  for (const auto& [addr, name] : live.entries()) hostnames.push_back(&name);
  RdnsDb out;
  for (const auto& [addr, name] : live.entries()) {
    if (!hostnames.empty() && rng.chance(extra_stale_prob)) {
      out.add(addr, *hostnames[static_cast<std::size_t>(rng.uniform(
                        0, static_cast<std::int64_t>(hostnames.size()) - 1))]);
    } else {
      out.add(addr, name);
    }
  }
  return out;
}

}  // namespace ran::dns
