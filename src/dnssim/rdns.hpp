// Simulated reverse DNS.
//
// Generates the PTR records an ISP would serve for its infrastructure,
// with the two noise sources the paper fights throughout §5/B: missing
// entries and stale entries (hostnames describing a previous assignment of
// the address, sometimes in another region). Also produces an aged
// "Rapid7-style" snapshot — the bulk dataset the paper mines for targets —
// which is more complete in coverage but staler than live dig lookups.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "netbase/ipv4.hpp"
#include "netbase/rng.hpp"
#include "topogen/model.hpp"

namespace ran::dns {

/// An address -> hostname table supporting both point lookups ("dig -x")
/// and full enumeration (the Rapid7 rDNS dataset usage in §5.1).
class RdnsDb {
 public:
  void add(net::IPv4Address addr, std::string hostname);

  /// PTR lookup; nullopt when the address has no record.
  [[nodiscard]] std::optional<std::string> lookup(net::IPv4Address addr) const;

  [[nodiscard]] const std::unordered_map<net::IPv4Address, std::string>&
  entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<net::IPv4Address, std::string> entries_;
};

struct RdnsNoise {
  /// Probability an interface simply has no PTR record.
  double missing_prob = 0.08;
  /// Probability a PTR record reflects a previous (wrong) CO assignment.
  double stale_prob = 0.04;
  /// Of stale records, the fraction pointing into a different region
  /// (the cross-region noise pruned in §B.2).
  double stale_cross_region_frac = 0.35;
};

/// Builds the live rDNS for an ISP under its naming policy:
///  - cable: every router interface named (minus noise);
///  - telco: backbone routers and lightspeed lspgw gateways only;
///  - mobile: Verizon speedtest servers only.
[[nodiscard]] RdnsDb make_rdns(const topo::Isp& isp, const RdnsNoise& noise,
                               net::Rng& rng);

/// Produces an aged bulk snapshot: same coverage, but each record is
/// additionally stale (replaced by another address's record) with
/// probability `extra_stale_prob`.
[[nodiscard]] RdnsDb age_snapshot(const RdnsDb& live, double extra_stale_prob,
                                  net::Rng& rng);

}  // namespace ran::dns
