#include "clli.hpp"

#include <cctype>

#include "contracts.hpp"
#include "strings.hpp"

namespace ran::net {

namespace {

bool is_vowel(char c) {
  switch (c) {
    case 'a': case 'e': case 'i': case 'o': case 'u':
      return true;
    default:
      return false;
  }
}

char upper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

}  // namespace

std::string clli_place(std::string_view city_name) {
  // Deterministic scheme: for multi-word names take up to two letters per
  // word (first letter then first following consonant); single words take
  // the first letter then following consonants. Pad with trailing letters,
  // then 'X', to exactly four characters.
  const auto words = split(city_name, ' ');
  std::string out;
  const std::size_t per_word =
      words.size() >= 2 ? (words.size() >= 4 ? 1 : 2) : 4;
  for (auto word : words) {
    if (word.empty()) continue;
    std::string piece;
    piece.push_back(word.front());
    for (std::size_t i = 1; i < word.size() && piece.size() < per_word; ++i)
      if (!is_vowel(word[i])) piece.push_back(word[i]);
    for (std::size_t i = 1; i < word.size() && piece.size() < per_word; ++i)
      if (is_vowel(word[i])) piece.push_back(word[i]);
    out += piece;
    if (out.size() >= 4) break;
  }
  out.resize(4, 'X');
  for (auto& c : out) c = upper(c);
  return out;
}

std::string clli_building(const City& city, int building) {
  RAN_EXPECTS(building >= 0 && building < 100);
  std::string out = clli_place(city.name);
  for (char c : city.state) out.push_back(upper(c));
  out.push_back(static_cast<char>('0' + building / 10));
  out.push_back(static_cast<char>('0' + building % 10));
  return out;
}

std::string clli6(const City& city) {
  return to_lower(clli_place(city.name)) + std::string{city.state};
}

const City* clli_lookup(std::string_view place, std::string_view state) {
  const std::string want_place = to_lower(place);
  const std::string want_state = to_lower(state);
  for (const auto& city : us_cities()) {
    if (city.state != want_state) continue;
    if (to_lower(clli_place(city.name)) == want_place) return &city;
  }
  return nullptr;
}

const City* clli6_lookup(std::string_view code) {
  // rDNS-derived tokens arrive at arbitrary lengths (truncated labels,
  // garbage); guard before substr — code.substr(4, 2) on a shorter view
  // throws std::out_of_range and would kill the whole pipeline on one
  // malformed hostname. Only exactly place(4)+state(2) can decode.
  if (code.size() != 6) return nullptr;
  return clli_lookup(code.substr(0, 4), code.substr(4, 2));
}

}  // namespace ran::net
