// CLLI (Common Language Location Identifier) codes.
//
// Telcos identify buildings with 8-character CLLI codes: a 4-character
// place abbreviation, a 2-character state/region code, and a 2-character
// building suffix (e.g. SNDGCA02 = San Diego, CA, building 02). Charter
// embeds CLLIs in rDNS (Fig 5a) and AT&T's lightspeed hostnames carry a
// 6-character place+state code (App. C). The inference side decodes codes
// back to gazetteer cities via the same derivation, mirroring the use of a
// CLLI database in the real study.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo.hpp"

namespace ran::net {

/// Derives the 4-character place abbreviation for a city name
/// (deterministic; uppercase). E.g. "san diego" -> "SNDG".
[[nodiscard]] std::string clli_place(std::string_view city_name);

/// Full 8-character building CLLI: place + state + 2-digit building number.
[[nodiscard]] std::string clli_building(const City& city, int building);

/// The 6-character lowercase place+state code used by AT&T lightspeed
/// hostnames, e.g. "sndgca".
[[nodiscard]] std::string clli6(const City& city);

/// Decodes a place+state pairing ("SNDG", "CA" — case-insensitive) back to
/// a gazetteer city; nullptr when no city derives that abbreviation.
[[nodiscard]] const City* clli_lookup(std::string_view place,
                                      std::string_view state);

/// Decodes a 6-character code like "sndgca"; nullptr when unknown.
[[nodiscard]] const City* clli6_lookup(std::string_view code);

}  // namespace ran::net
