// Lightweight contract checking in the spirit of CppCoreGuidelines I.6/I.8
// (Expects/Ensures). Violations indicate programmer error and terminate.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ran::net::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace ran::net::detail

#define RAN_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ran::net::detail::contract_failure("Precondition", #cond,    \
                                                 __FILE__, __LINE__))

#define RAN_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::ran::net::detail::contract_failure("Postcondition", #cond,   \
                                                 __FILE__, __LINE__))
