#include "geo.hpp"

#include <algorithm>
#include <numbers>

namespace ran::net {

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double fiber_delay_ms(const GeoPoint& a, const GeoPoint& b) {
  return haversine_km(a, b) * kFiberPathStretch / kFiberKmPerMs;
}

namespace {

// Built-in gazetteer, ordered roughly by metro population so that
// population_rank == index + 1. Coordinates are approximate city centers.
constexpr City kCities[] = {
    {"new york", "ny", {40.71, -74.01}, 1},
    {"los angeles", "ca", {34.05, -118.24}, 2},
    {"chicago", "il", {41.88, -87.63}, 3},
    {"houston", "tx", {29.76, -95.37}, 4},
    {"phoenix", "az", {33.45, -112.07}, 5},
    {"philadelphia", "pa", {39.95, -75.17}, 6},
    {"san antonio", "tx", {29.42, -98.49}, 7},
    {"san diego", "ca", {32.72, -117.16}, 8},
    {"dallas", "tx", {32.78, -96.80}, 9},
    {"san jose", "ca", {37.34, -121.89}, 10},
    {"austin", "tx", {30.27, -97.74}, 11},
    {"jacksonville", "fl", {30.33, -81.66}, 12},
    {"fort worth", "tx", {32.76, -97.33}, 13},
    {"columbus", "oh", {39.96, -83.00}, 14},
    {"charlotte", "nc", {35.23, -80.84}, 15},
    {"san francisco", "ca", {37.77, -122.42}, 16},
    {"indianapolis", "in", {39.77, -86.16}, 17},
    {"seattle", "wa", {47.61, -122.33}, 18},
    {"denver", "co", {39.74, -104.99}, 19},
    {"washington", "dc", {38.91, -77.04}, 20},
    {"boston", "ma", {42.36, -71.06}, 21},
    {"el paso", "tx", {31.76, -106.49}, 22},
    {"nashville", "tn", {36.16, -86.78}, 23},
    {"detroit", "mi", {42.33, -83.05}, 24},
    {"oklahoma city", "ok", {35.47, -97.52}, 25},
    {"portland", "or", {45.52, -122.68}, 26},
    {"las vegas", "nv", {36.17, -115.14}, 27},
    {"memphis", "tn", {35.15, -90.05}, 28},
    {"louisville", "ky", {38.25, -85.76}, 29},
    {"baltimore", "md", {39.29, -76.61}, 30},
    {"milwaukee", "wi", {43.04, -87.91}, 31},
    {"albuquerque", "nm", {35.08, -106.65}, 32},
    {"tucson", "az", {32.22, -110.97}, 33},
    {"fresno", "ca", {36.74, -119.79}, 34},
    {"sacramento", "ca", {38.58, -121.49}, 35},
    {"kansas city", "mo", {39.10, -94.58}, 36},
    {"atlanta", "ga", {33.75, -84.39}, 37},
    {"omaha", "ne", {41.26, -95.93}, 38},
    {"colorado springs", "co", {38.83, -104.82}, 39},
    {"raleigh", "nc", {35.78, -78.64}, 40},
    {"miami", "fl", {25.76, -80.19}, 41},
    {"cleveland", "oh", {41.50, -81.69}, 42},
    {"tulsa", "ok", {36.15, -95.99}, 43},
    {"oakland", "ca", {37.80, -122.27}, 44},
    {"minneapolis", "mn", {44.98, -93.27}, 45},
    {"wichita", "ks", {37.69, -97.34}, 46},
    {"new orleans", "la", {29.95, -90.07}, 47},
    {"tampa", "fl", {27.95, -82.46}, 48},
    {"orlando", "fl", {28.54, -81.38}, 49},
    {"pittsburgh", "pa", {40.44, -80.00}, 50},
    {"cincinnati", "oh", {39.10, -84.51}, 51},
    {"st louis", "mo", {38.63, -90.20}, 52},
    {"birmingham", "al", {33.52, -86.80}, 53},
    {"buffalo", "ny", {42.89, -78.88}, 54},
    {"hartford", "ct", {41.77, -72.67}, 55},
    {"salt lake city", "ut", {40.76, -111.89}, 56},
    {"boise", "id", {43.62, -116.20}, 57},
    {"richmond", "va", {37.54, -77.44}, 58},
    {"spokane", "wa", {47.66, -117.43}, 59},
    {"des moines", "ia", {41.59, -93.62}, 60},
    {"baton rouge", "la", {30.45, -91.19}, 61},
    {"akron", "oh", {41.08, -81.52}, 62},
    {"little rock", "ar", {34.75, -92.29}, 63},
    {"grand rapids", "mi", {42.96, -85.66}, 64},
    {"providence", "ri", {41.82, -71.41}, 65},
    {"knoxville", "tn", {35.96, -83.92}, 66},
    {"worcester", "ma", {42.26, -71.80}, 67},
    {"chula vista", "ca", {32.64, -117.08}, 68},
    {"newark", "nj", {40.74, -74.17}, 69},
    {"bridgeport", "ct", {41.18, -73.19}, 70},
    {"anchorage", "ak", {61.22, -149.90}, 71},
    {"honolulu", "hi", {21.31, -157.86}, 72},
    {"jersey city", "nj", {40.73, -74.08}, 73},
    {"madison", "wi", {43.07, -89.40}, 74},
    {"reno", "nv", {39.53, -119.81}, 75},
    {"irvine", "ca", {33.68, -117.83}, 76},
    {"norfolk", "va", {36.85, -76.29}, 77},
    {"fort wayne", "in", {41.08, -85.14}, 78},
    {"jackson", "ms", {32.30, -90.18}, 79},
    {"lexington", "ky", {38.04, -84.50}, 80},
    {"oceanside", "ca", {33.20, -117.38}, 81},
    {"escondido", "ca", {33.12, -117.09}, 82},
    {"sioux falls", "sd", {43.55, -96.73}, 83},
    {"tacoma", "wa", {47.25, -122.44}, 84},
    {"springfield", "ma", {42.10, -72.59}, 85},
    {"new haven", "ct", {41.31, -72.92}, 86},
    {"stamford", "ct", {41.05, -73.54}, 87},
    {"el cajon", "ca", {32.79, -116.96}, 88},
    {"syracuse", "ny", {43.05, -76.15}, 89},
    {"savannah", "ga", {32.08, -81.09}, 90},
    {"montgomery", "al", {32.38, -86.31}, 91},
    {"aurora", "co", {39.73, -104.83}, 92},
    {"columbia", "sc", {34.00, -81.03}, 93},
    {"charleston", "sc", {32.78, -79.93}, 94},
    {"fargo", "nd", {46.88, -96.79}, 95},
    {"harrisburg", "pa", {40.27, -76.88}, 96},
    {"albany", "ny", {42.65, -73.75}, 97},
    {"billings", "mt", {45.78, -108.50}, 98},
    {"sunnyvale", "ca", {37.37, -122.04}, 99},
    {"manchester", "nh", {42.99, -71.45}, 100},
    {"nashua", "nh", {42.77, -71.47}, 101},
    {"vista", "ca", {33.20, -117.24}, 102},
    {"national city", "ca", {32.68, -117.10}, 103},
    {"la jolla", "ca", {32.84, -117.27}, 104},
    {"poway", "ca", {32.96, -117.04}, 105},
    {"santee", "ca", {32.84, -116.97}, 106},
    {"beaverton", "or", {45.49, -122.80}, 107},
    {"troutdale", "or", {45.54, -122.39}, 108},
    {"hillsboro", "or", {45.52, -122.99}, 109},
    {"salem", "or", {44.94, -123.04}, 110},
    {"santa cruz", "ca", {36.97, -122.03}, 111},
    {"azusa", "ca", {34.13, -117.91}, 112},
    {"trenton", "nj", {40.22, -74.76}, 113},
    {"wilmington", "de", {39.75, -75.55}, 114},
    {"charleston wv", "wv", {38.35, -81.63}, 115},
    {"fayetteville", "ar", {36.06, -94.16}, 116},
    {"cheyenne", "wy", {41.14, -104.82}, 117},
    {"bismarck", "nd", {46.81, -100.78}, 118},
    {"rapid city", "sd", {44.08, -103.23}, 119},
    {"missoula", "mt", {46.87, -113.99}, 120},
    {"burlington", "vt", {44.48, -73.21}, 121},
    {"rutland", "vt", {43.61, -72.97}, 122},
    {"montpelier", "vt", {44.26, -72.58}, 123},
    {"concord", "nh", {43.21, -71.54}, 124},
    {"portland me", "me", {43.66, -70.26}, 125},
    {"bangor", "me", {44.80, -68.77}, 126},
    {"calexico", "ca", {32.68, -115.50}, 127},
    {"el centro", "ca", {32.79, -115.56}, 128},
    {"the dalles", "or", {45.59, -121.18}, 129},
    {"council bluffs", "ia", {41.26, -95.86}, 130},
    {"moncks corner", "sc", {33.20, -80.01}, 131},
    {"redmond", "wa", {47.67, -122.12}, 132},
    {"southfield", "mi", {42.47, -83.22}, 133},
    {"new berlin", "wi", {42.97, -88.11}, 134},
    {"bloomington", "mn", {44.84, -93.30}, 135},
    {"west jordan", "ut", {40.61, -111.94}, 136},
    {"mobile", "al", {30.69, -88.04}, 137},
    {"shreveport", "la", {32.52, -93.75}, 138},
    {"chattanooga", "tn", {35.05, -85.31}, 139},
    {"greensboro", "nc", {36.07, -79.79}, 140},
    {"dayton", "oh", {39.76, -84.19}, 141},
    {"toledo", "oh", {41.65, -83.54}, 142},
    {"rochester", "ny", {43.16, -77.61}, 143},
    {"amarillo", "tx", {35.19, -101.85}, 144},
    {"eugene", "or", {44.05, -123.09}, 145},
    {"bakersfield", "ca", {35.37, -119.02}, 146},
    {"stockton", "ca", {37.96, -121.29}, 147},
    {"lincoln", "ne", {40.81, -96.70}, 148},
    {"topeka", "ks", {39.05, -95.68}, 149},
    {"duluth", "mn", {46.79, -92.10}, 150},
    {"tallahassee", "fl", {30.44, -84.28}, 151},
};

constexpr CloudRegion kCloudRegions[] = {
    // AWS
    {"aws", "us-east-1", {38.95, -77.45}},   // Ashburn, VA
    {"aws", "us-east-2", {39.96, -83.00}},   // Columbus, OH
    {"aws", "us-west-1", {37.34, -121.89}},  // San Jose, CA
    {"aws", "us-west-2", {45.84, -119.70}},  // Boardman, OR
    // Azure
    {"azure", "eastus", {36.67, -78.39}},         // Boydton, VA
    {"azure", "eastus2", {36.85, -78.57}},        // Virginia
    {"azure", "centralus", {41.59, -93.62}},      // Des Moines, IA
    {"azure", "northcentralus", {41.88, -87.63}}, // Chicago, IL
    {"azure", "southcentralus", {29.42, -98.49}}, // San Antonio, TX
    {"azure", "westus", {34.05, -118.24}},        // California
    {"azure", "westus2", {47.23, -119.85}},       // Quincy, WA
    {"azure", "westcentralus", {41.14, -104.82}}, // Cheyenne, WY
    // Google Cloud
    {"gcp", "us-east4", {38.95, -77.45}},     // Ashburn, VA
    {"gcp", "us-east1", {33.20, -80.01}},     // Moncks Corner, SC
    {"gcp", "us-central1", {41.26, -95.86}},  // Council Bluffs, IA
    {"gcp", "us-west1", {45.59, -121.18}},    // The Dalles, OR
    {"gcp", "us-west2", {34.05, -118.24}},    // Los Angeles, CA
    {"gcp", "us-west3", {40.76, -111.89}},    // Salt Lake City, UT
    {"gcp", "us-west4", {36.17, -115.14}},    // Las Vegas, NV
    {"gcp", "us-south1", {32.78, -96.80}},    // Dallas, TX
};

}  // namespace

std::span<const City> us_cities() { return kCities; }

std::vector<const City*> cities_in_state(std::string_view state) {
  std::vector<const City*> out;
  for (const auto& city : kCities)
    if (city.state == state) out.push_back(&city);
  return out;
}

const City* find_city(std::string_view name, std::string_view state) {
  for (const auto& city : kCities)
    if (city.name == name && city.state == state) return &city;
  return nullptr;
}

std::vector<std::string_view> us_states() {
  std::vector<std::string_view> out;
  for (const auto& city : kCities)
    if (std::find(out.begin(), out.end(), city.state) == out.end())
      out.push_back(city.state);
  return out;
}

std::span<const CloudRegion> us_cloud_regions() { return kCloudRegions; }

}  // namespace ran::net
