// Geography: coordinates, great-circle distance, fiber latency model, and a
// built-in US gazetteer used to place COs, vantage points, cloud regions,
// and shipment waypoints.
//
// The latency model follows the paper's framing (§2, §5.5): minimum RTT is
// dominated by fiber propagation, and fiber paths are longer than the great
// circle. We model one-way delay as
//     haversine_km * kFiberPathStretch / kFiberKmPerMs
// and add per-hop forwarding cost and access-technology delay elsewhere
// (see ran::sim::LatencyModel).
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ran::net {

/// A point on the Earth in degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance in kilometers.
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Typical ratio of fiber route length to great-circle distance.
inline constexpr double kFiberPathStretch = 1.7;
/// Speed of light in fiber, expressed as km traveled per millisecond.
inline constexpr double kFiberKmPerMs = 204.0;

/// One-way fiber propagation delay between two points, in milliseconds.
[[nodiscard]] double fiber_delay_ms(const GeoPoint& a, const GeoPoint& b);

/// One entry of the built-in US gazetteer.
struct City {
  std::string_view name;        ///< e.g. "san diego"
  std::string_view state;       ///< two-letter code, e.g. "ca"
  GeoPoint location;
  int population_rank;          ///< 1 = largest; drives CO density choices
};

/// All built-in cities, ordered by population rank.
[[nodiscard]] std::span<const City> us_cities();

/// Cities within a state, ordered by population rank.
[[nodiscard]] std::vector<const City*> cities_in_state(std::string_view state);

/// Looks a city up by (name, state); nullptr when absent.
[[nodiscard]] const City* find_city(std::string_view name,
                                    std::string_view state);

/// All distinct state codes present in the gazetteer.
[[nodiscard]] std::vector<std::string_view> us_states();

/// A public-cloud compute region (the paper pings EdgeCOs from VMs in every
/// US cloud region of AWS, Azure, and Google Cloud; §5.5).
struct CloudRegion {
  std::string_view provider;  ///< "aws" | "azure" | "gcp"
  std::string_view name;      ///< provider-specific region id
  GeoPoint location;
};

/// The built-in table of US cloud regions for the three largest providers.
[[nodiscard]] std::span<const CloudRegion> us_cloud_regions();

}  // namespace ran::net
