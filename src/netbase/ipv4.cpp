#include "ipv4.hpp"

#include <charconv>

#include "contracts.hpp"

namespace ran::net {

namespace {

// Parses a decimal number in [0, 255] from the front of `text`, advancing it.
std::optional<std::uint8_t> take_octet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

bool take_char(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !take_char(text, '.')) return std::nullopt;
    auto octet = take_octet(text);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<IPv4Prefix> IPv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  auto rest = text.substr(slash + 1);
  const char* begin = rest.data();
  auto [ptr, ec] = std::from_chars(begin, begin + rest.size(), len);
  if (ec != std::errc{} || ptr != begin + rest.size() || len < 0 || len > 32)
    return std::nullopt;
  return IPv4Prefix{*addr, len};
}

IPv4Address IPv4Prefix::at(std::uint64_t i) const {
  RAN_EXPECTS(i < size());
  return IPv4Address{static_cast<std::uint32_t>(addr_.value() + i)};
}

IPv4Address IPv4Prefix::host(std::uint64_t i) const {
  if (len_ >= 31) return at(i);
  return at(i + 1);
}

std::string IPv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

std::optional<IPv4Address> p2p_mate(IPv4Address a, int len) {
  RAN_EXPECTS(len == 30 || len == 31);
  if (len == 31) return IPv4Address{a.value() ^ 1u};
  const IPv4Prefix subnet{a, 30};
  const std::uint32_t offset = a.value() - subnet.network().value();
  if (offset == 1) return subnet.at(2);
  if (offset == 2) return subnet.at(1);
  return std::nullopt;  // network or broadcast address: no usable mate
}

}  // namespace ran::net
