// IPv4 address and prefix value types.
//
// These are the fundamental currency of the whole system: the topology
// generator allocates them, the simulator routes on them, and the inference
// pipeline clusters and maps them. They are trivially copyable value types
// with total ordering so they can key std::map/std::set and sort cheaply.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ran::net {

/// An IPv4 address held in host byte order.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation; returns nullopt on any syntax error.
  static std::optional<IPv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }

  /// Dotted-quad string, e.g. "192.0.2.1".
  [[nodiscard]] std::string to_string() const;

  /// Octet `i` (0 = most significant).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (24 - 8 * i));
  }

  friend constexpr auto operator<=>(IPv4Address, IPv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (network address + length), e.g. 10.0.0.0/8.
/// The network address is stored canonicalized (host bits zeroed).
class IPv4Prefix {
 public:
  constexpr IPv4Prefix() = default;

  /// Canonicalizes `addr` to the prefix length. `len` must be in [0, 32].
  constexpr IPv4Prefix(IPv4Address addr, int len)
      : addr_(IPv4Address{addr.value() & mask_for(len)}), len_(len) {}

  /// Parses "a.b.c.d/len"; returns nullopt on syntax error or len > 32.
  static std::optional<IPv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr IPv4Address network() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return len_; }

  [[nodiscard]] constexpr bool contains(IPv4Address a) const {
    return (a.value() & mask_for(len_)) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(const IPv4Prefix& p) const {
    return p.len_ >= len_ && contains(p.addr_);
  }

  /// Number of addresses covered (2^(32-len)); saturates at 2^32 for /0.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - len_);
  }

  /// The i-th address within the prefix. Expects i < size().
  [[nodiscard]] IPv4Address at(std::uint64_t i) const;

  /// First usable host in a point-to-point or LAN subnet following the
  /// usual convention: /31 has hosts at offsets 0 and 1; wider subnets
  /// reserve offset 0 (network) so hosts start at 1.
  [[nodiscard]] IPv4Address host(std::uint64_t i) const;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const IPv4Prefix&,
                                    const IPv4Prefix&) = default;

  static constexpr std::uint32_t mask_for(int len) {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }

 private:
  IPv4Address addr_;
  int len_ = 0;
};

/// The enclosing point-to-point subnet of `a` at length `len` (30 or 31
/// in practice; §B.1 uses the /30 of a traceroute hop to find the far end
/// of the link). Returns the canonical prefix containing `a`.
[[nodiscard]] constexpr IPv4Prefix p2p_subnet(IPv4Address a, int len) {
  return IPv4Prefix{a, len};
}

/// The "other side" of a point-to-point link: for a /31 the mate differs in
/// the last bit; for a /30 the two usable hosts are offsets 1 and 2.
[[nodiscard]] std::optional<IPv4Address> p2p_mate(IPv4Address a, int len);

}  // namespace ran::net

template <>
struct std::hash<ran::net::IPv4Address> {
  std::size_t operator()(const ran::net::IPv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
