#include "ipv6.hpp"

#include <charconv>
#include <vector>

#include "contracts.hpp"

namespace ran::net {

namespace {

std::optional<std::uint16_t> parse_group(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  unsigned value = 0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value, 16);
  if (ec != std::errc{} || ptr != begin + text.size()) return std::nullopt;
  return static_cast<std::uint16_t>(value);
}

}  // namespace

std::optional<IPv6Address> IPv6Address::parse(std::string_view text) {
  constexpr std::size_t kGroups = 8;
  if (text.empty()) return std::nullopt;
  // At most one "::": a second occurrence (including overlapping ":::")
  // makes the expansion ambiguous and is rejected outright.
  const auto dc = text.find("::");
  if (dc != std::string_view::npos &&
      text.find("::", dc + 1) != std::string_view::npos)
    return std::nullopt;

  auto parse_groups = [](std::string_view part,
                         std::vector<std::uint16_t>& out) {
    if (part.empty()) return true;
    std::size_t start = 0;
    while (true) {
      const auto pos = part.find(':', start);
      const auto piece = part.substr(
          start, pos == std::string_view::npos ? pos : pos - start);
      const auto group = parse_group(piece);
      if (!group) return false;
      out.push_back(*group);
      if (pos == std::string_view::npos) return true;
      start = pos + 1;
    }
  };

  std::vector<std::uint16_t> groups;
  if (dc == std::string_view::npos) {
    if (!parse_groups(text, groups) || groups.size() != kGroups)
      return std::nullopt;
  } else {
    std::vector<std::uint16_t> head;
    std::vector<std::uint16_t> tail;
    if (!parse_groups(text.substr(0, dc), head)) return std::nullopt;
    if (!parse_groups(text.substr(dc + 2), tail)) return std::nullopt;
    // The "::" must stand for at least one zero group: explicit groups
    // around it may number at most 7, so head+tail >= 8 is rejected
    // ("1:2:3:4:5:6:7:8::" and friends are not valid addresses).
    if (head.size() + tail.size() >= kGroups) return std::nullopt;
    groups = std::move(head);
    groups.resize(kGroups - tail.size(), 0);
    groups.insert(groups.end(), tail.begin(), tail.end());
  }
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) hi = (hi << 16) | groups[static_cast<size_t>(i)];
  for (int i = 4; i < 8; ++i) lo = (lo << 16) | groups[static_cast<size_t>(i)];
  return IPv6Address{hi, lo};
}

std::string IPv6Address::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 4; ++i)
    groups[static_cast<size_t>(i)] =
        static_cast<std::uint16_t>(hi_ >> (48 - 16 * i));
  for (int i = 0; i < 4; ++i)
    groups[static_cast<size_t>(4 + i)] =
        static_cast<std::uint16_t>(lo_ >> (48 - 16 * i));

  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1;
  int best_len = 1;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }

  std::string out;
  char buf[8];
  auto append_group = [&](int i) {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf,
                                   groups[static_cast<size_t>(i)], 16);
    RAN_ENSURES(ec == std::errc{});
    out.append(buf, ptr);
  };
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    append_group(i);
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::uint64_t IPv6Address::bits(int first_bit, int width) const {
  RAN_EXPECTS(width >= 1 && width <= 64);
  RAN_EXPECTS(first_bit >= 0 && first_bit + width <= 128);
  // Work on a conceptual 128-bit big-endian value.
  std::uint64_t out = 0;
  for (int i = 0; i < width; ++i) {
    const int bit = first_bit + i;
    const std::uint64_t half = bit < 64 ? hi_ : lo_;
    const int offset = 63 - (bit % 64);
    out = (out << 1) | ((half >> offset) & 1u);
  }
  return out;
}

IPv6Address IPv6Address::with_bits(int first_bit, int width,
                                   std::uint64_t value) const {
  RAN_EXPECTS(width >= 1 && width <= 64);
  RAN_EXPECTS(first_bit >= 0 && first_bit + width <= 128);
  std::uint64_t hi = hi_;
  std::uint64_t lo = lo_;
  for (int i = 0; i < width; ++i) {
    const int bit = first_bit + i;
    const std::uint64_t v = (value >> (width - 1 - i)) & 1u;
    std::uint64_t& half = bit < 64 ? hi : lo;
    const int offset = 63 - (bit % 64);
    half = (half & ~(std::uint64_t{1} << offset)) | (v << offset);
  }
  return IPv6Address{hi, lo};
}

IPv6Prefix::IPv6Prefix(IPv6Address addr, int len) : len_(len) {
  RAN_EXPECTS(len >= 0 && len <= 128);
  // Zero host bits.
  std::uint64_t hi = addr.hi();
  std::uint64_t lo = addr.lo();
  if (len <= 64) {
    lo = 0;
    hi = len == 0 ? 0 : hi & (~std::uint64_t{0} << (64 - len));
  } else if (len < 128) {
    lo &= ~std::uint64_t{0} << (128 - len);
  }
  addr_ = IPv6Address{hi, lo};
}

std::optional<IPv6Prefix> IPv6Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = IPv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  auto rest = text.substr(slash + 1);
  const char* begin = rest.data();
  auto [ptr, ec] = std::from_chars(begin, begin + rest.size(), len);
  if (ec != std::errc{} || ptr != begin + rest.size() || len < 0 || len > 128)
    return std::nullopt;
  return IPv6Prefix{*addr, len};
}

bool IPv6Prefix::contains(IPv6Address a) const {
  return IPv6Prefix{a, len_}.network() == addr_;
}

std::string IPv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace ran::net
