// IPv6 address and prefix value types, with the bit-field accessors used by
// the mobile-carrier address-structure analysis (§7.2 / Fig 16 of the paper).
//
// Mobile carriers encode topological meaning in address bits (e.g. AT&T user
// bits 32-39 = region, Verizon user bits 24-31 = backbone region, 32-39 =
// EdgeCO, 40-43 = packet gateway). `bits(hi_bit, width)` extracts arbitrary
// fields so both the address-plan generator and the inference code share one
// definition of "bit i" (bit 0 = most significant bit of the address).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ran::net {

/// A 128-bit IPv6 address stored as two big-endian 64-bit halves.
class IPv6Address {
 public:
  constexpr IPv6Address() = default;
  constexpr IPv6Address(std::uint64_t hi, std::uint64_t lo)
      : hi_(hi), lo_(lo) {}

  /// Parses standard textual forms, including "::" compression.
  /// Returns nullopt on syntax errors (no embedded-IPv4 form support).
  static std::optional<IPv6Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }
  [[nodiscard]] constexpr bool is_unspecified() const {
    return hi_ == 0 && lo_ == 0;
  }

  /// RFC 5952-style compressed lowercase text (longest zero run -> "::").
  [[nodiscard]] std::string to_string() const;

  /// Extracts `width` bits starting at `first_bit`, where bit 0 is the MSB
  /// of the address. Expects width in [1, 64] and first_bit + width <= 128.
  [[nodiscard]] std::uint64_t bits(int first_bit, int width) const;

  /// Returns a copy with `width` bits starting at `first_bit` replaced by
  /// the low-order bits of `value`.
  [[nodiscard]] IPv6Address with_bits(int first_bit, int width,
                                      std::uint64_t value) const;

  friend constexpr auto operator<=>(IPv6Address, IPv6Address) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// An IPv6 prefix (canonicalized network address + length).
class IPv6Prefix {
 public:
  constexpr IPv6Prefix() = default;
  IPv6Prefix(IPv6Address addr, int len);

  /// Parses "addr/len".
  static std::optional<IPv6Prefix> parse(std::string_view text);

  [[nodiscard]] IPv6Address network() const { return addr_; }
  [[nodiscard]] int length() const { return len_; }
  [[nodiscard]] bool contains(IPv6Address a) const;
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const IPv6Prefix&, const IPv6Prefix&) = default;

 private:
  IPv6Address addr_;
  int len_ = 0;
};

}  // namespace ran::net

template <>
struct std::hash<ran::net::IPv6Address> {
  std::size_t operator()(const ran::net::IPv6Address& a) const noexcept {
    // Mix the halves; addresses here are synthetic and well spread already.
    return std::hash<std::uint64_t>{}(a.hi() ^ (a.lo() * 0x9e3779b97f4a7c15ULL));
  }
};
