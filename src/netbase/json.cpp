#include "json.hpp"

#include <cmath>

#include "strings.hpp"

namespace ran::net {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Cast through unsigned char: a negative char promoted straight
        // to int would render as ￿ffXX.
        if (static_cast<unsigned char>(c) < 0x20)
          out += format("\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out += c;
    }
  }
  return out;
}

void JsonWriter::newline_indent(std::size_t depth) {
  out_ += '\n';
  out_.append(2 * depth, ' ');
}

void JsonWriter::prefix_value(bool is_container) {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  auto& frame = stack_.back();
  // Array elements: scalars pack onto one line, containers break it.
  if (frame.kind == '[') {
    if (is_container) {
      if (!frame.first) out_ += ',';
      frame.multiline = true;
      newline_indent(stack_.size());
    } else if (!frame.first) {
      raw(", ");
    }
  }
  frame.first = false;
}

JsonWriter& JsonWriter::begin_object() {
  prefix_value(/*is_container=*/true);
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent(stack_.size());
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix_value(/*is_container=*/true);
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const auto frame = stack_.back();
  stack_.pop_back();
  if (frame.multiline) newline_indent(stack_.size());
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  auto& frame = stack_.back();
  if (!frame.first) out_ += ',';
  frame.first = false;
  newline_indent(stack_.size());
  out_ += '"';
  out_ += json_escape(name);
  raw("\": ");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix_value(/*is_container=*/false);
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix_value(/*is_container=*/false);
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix_value(/*is_container=*/false);
  // JSON has no NaN/Infinity literals; bare "nan"/"inf" (e.g. from an
  // empty histogram's mean) would make the whole manifest unparseable.
  if (std::isfinite(v))
    out_ += format("%.17g", v);
  else
    raw("null");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix_value(/*is_container=*/false);
  out_ += format("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix_value(/*is_container=*/false);
  out_ += format("%lld", static_cast<long long>(v));
  return *this;
}

}  // namespace ran::net
