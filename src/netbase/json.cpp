#include "json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "strings.hpp"

namespace ran::net {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Cast through unsigned char: a negative char promoted straight
        // to int would render as ￿ffXX.
        if (static_cast<unsigned char>(c) < 0x20)
          out += format("\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
        else
          out += c;
    }
  }
  return out;
}

void JsonWriter::newline_indent(std::size_t depth) {
  out_ += '\n';
  out_.append(2 * depth, ' ');
}

void JsonWriter::prefix_value(bool is_container) {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  auto& frame = stack_.back();
  // Array elements: scalars pack onto one line, containers break it.
  if (frame.kind == '[') {
    if (is_container) {
      if (!frame.first) out_ += ',';
      frame.multiline = true;
      newline_indent(stack_.size());
    } else if (!frame.first) {
      raw(", ");
    }
  }
  frame.first = false;
}

JsonWriter& JsonWriter::begin_object() {
  prefix_value(/*is_container=*/true);
  out_ += '{';
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent(stack_.size());
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix_value(/*is_container=*/true);
  out_ += '[';
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const auto frame = stack_.back();
  stack_.pop_back();
  if (frame.multiline) newline_indent(stack_.size());
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  auto& frame = stack_.back();
  if (!frame.first) out_ += ',';
  frame.first = false;
  newline_indent(stack_.size());
  out_ += '"';
  out_ += json_escape(name);
  raw("\": ");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix_value(/*is_container=*/false);
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix_value(/*is_container=*/false);
  raw(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix_value(/*is_container=*/false);
  // JSON has no NaN/Infinity literals; bare "nan"/"inf" (e.g. from an
  // empty histogram's mean) would make the whole manifest unparseable.
  if (std::isfinite(v))
    out_ += format("%.17g", v);
  else
    raw("null");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix_value(/*is_container=*/false);
  out_ += format("%llu", static_cast<unsigned long long>(v));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix_value(/*is_container=*/false);
  out_ += format("%lld", static_cast<long long>(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == key) return &value;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-bounded so a
/// pathological artifact cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue out;
    if (!parse_value(out, 0) || (skip_ws(), pos_ != text_.size())) {
      if (error != nullptr) {
        if (error_.empty()) error_ = "trailing characters";
        *error = format("offset %zu: ", pos_) + error_;
      }
      return std::nullopt;
    }
    return out;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
    return false;
  }

  bool consume(char c, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      return fail(format("expected %s", what));
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape digit");
            }
            // Our own writer only escapes control characters; encode the
            // general case as UTF-8 without surrogate-pair handling
            // (sufficient for the BMP values artifacts contain).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const auto token = text_.substr(begin, pos_ - begin);
    double value = 0.0;
    const auto* first = token.data();
    const auto* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      pos_ = begin;
      return fail("invalid number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.num = value;
    out.str.assign(token);
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          if (!consume(':', "':'")) return false;
          JsonValue member;
          if (!parse_value(member, depth + 1)) return false;
          out.object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume('}', "'}' or ','");
        }
      }
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue element;
          if (!parse_value(element, depth + 1)) return false;
          out.array.push_back(std::move(element));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume(']', "']' or ','");
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return JsonParser{text}.run(error);
}

}  // namespace ran::net
