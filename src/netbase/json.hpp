// Deterministic JSON emission: the single path through which every JSON
// artifact leaves the repo (run manifests, paper-table exports, graph
// dumps). Formatting is fixed — 2-space indent, "%.17g" doubles, sorted
// input expected from callers — so identical data always serializes to
// identical bytes, which the manifest golden tests rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ran::net {

/// Escapes a string for a JSON document (surrounding quotes not added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One parsed JSON value — the read side of JsonWriter, used by the
/// manifest/bench diff tooling to load artifacts this repo emitted.
/// Numbers keep both the numeric value and the raw source token, so
/// deterministic fields can be compared byte-exactly while volatile ones
/// compare within tolerance.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  /// String payload for kString; the raw source token for kNumber.
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion (document) order; manifests emit sorted keys already.
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Member lookup (objects only); null when absent.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing junk
/// rejected). On failure returns nullopt and, when `error` is non-null,
/// a one-line "offset N: reason" message.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error =
                                                      nullptr);

/// A small streaming JSON writer. Objects put every key on its own line;
/// arrays of scalars stay on one line, arrays of containers break. Calls
/// must nest correctly (end matches begin, key before each object value);
/// misuse is a programming error, not a runtime condition.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view{v});
  }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  struct Frame {
    char kind = '{';         ///< '{' or '['
    bool first = true;       ///< no element emitted yet
    bool multiline = false;  ///< a nested container forced line breaks
  };

  /// Comma/indent bookkeeping before any value or nested container.
  void prefix_value(bool is_container);
  void newline_indent(std::size_t depth);
  void raw(std::string_view s) { out_.append(s); }

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace ran::net
