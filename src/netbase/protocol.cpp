#include "protocol.hpp"

#include <charconv>

#include "json.hpp"

namespace ran::net {

namespace {

void skip_ws(std::string_view line, std::size_t& pos) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r'))
    ++pos;
}

void set_error(std::string* error, std::string_view message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool FlatRequest::parse(std::string_view line, std::string* error) {
  count_ = 0;
  std::size_t pos = 0;
  skip_ws(line, pos);
  if (pos >= line.size() || line[pos] != '{') {
    set_error(error, "request is not a JSON object");
    return false;
  }
  ++pos;
  skip_ws(line, pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    skip_ws(line, pos);
    if (pos != line.size()) {
      set_error(error, "trailing bytes after request object");
      return false;
    }
    return true;
  }
  bool escaped = false;
  while (true) {
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] != '"') {
      set_error(error, "expected a quoted field name");
      return false;
    }
    ++pos;
    const std::size_t key_start = pos;
    while (pos < line.size() && line[pos] != '"' && line[pos] != '\\') ++pos;
    if (pos >= line.size() || line[pos] == '\\') {
      escaped = pos < line.size();
      break;
    }
    const auto key = line.substr(key_start, pos - key_start);
    ++pos;
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] != ':') {
      set_error(error, "expected ':' after field name");
      return false;
    }
    ++pos;
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] != '"') {
      set_error(error, "field values must be strings");
      return false;
    }
    ++pos;
    const std::size_t value_start = pos;
    while (pos < line.size() && line[pos] != '"' && line[pos] != '\\') ++pos;
    if (pos >= line.size() || line[pos] == '\\') {
      escaped = pos < line.size();
      break;
    }
    if (count_ >= kMaxFields) {
      set_error(error, "too many fields in request");
      return false;
    }
    keys_[count_] = key;
    values_[count_] = line.substr(value_start, pos - value_start);
    ++count_;
    ++pos;
    skip_ws(line, pos);
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
      skip_ws(line, pos);
      if (pos != line.size()) {
        set_error(error, "trailing bytes after request object");
        return false;
      }
      return true;
    }
    set_error(error, "expected ',' or '}' in request object");
    return false;
  }
  if (!escaped) {
    set_error(error, "unterminated string in request");
    return false;
  }
  // Slow path: an escape sequence appeared somewhere — let the full JSON
  // parser handle it, then copy the fields into owned storage.
  count_ = 0;
  std::string parse_error;
  const auto doc = parse_json(line, &parse_error);
  if (!doc.has_value()) {
    set_error(error, parse_error);
    return false;
  }
  if (!doc->is_object()) {
    set_error(error, "request is not a JSON object");
    return false;
  }
  for (const auto& [key, value] : doc->object) {
    if (!value.is_string()) {
      set_error(error, "field values must be strings");
      return false;
    }
    if (count_ >= kMaxFields) {
      set_error(error, "too many fields in request");
      return false;
    }
    storage_[count_ * 2] = key;
    storage_[count_ * 2 + 1] = value.str;
    keys_[count_] = storage_[count_ * 2];
    values_[count_] = storage_[count_ * 2 + 1];
    ++count_;
  }
  return true;
}

bool FlatRequest::has(std::string_view key) const {
  for (std::size_t i = 0; i < count_; ++i)
    if (keys_[i] == key) return true;
  return false;
}

std::string_view FlatRequest::get(std::string_view key) const {
  for (std::size_t i = 0; i < count_; ++i)
    if (keys_[i] == key) return values_[i];
  return {};
}

// ---------------------------------------------------------------------
// LineJsonWriter
// ---------------------------------------------------------------------

namespace {

/// Almost every emitted string is a CO key or a fixed op name; skip
/// the allocating escape pass unless a byte actually needs it.
bool needs_escape(std::string_view s) {
  for (const char c : s)
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
      return true;
  return false;
}

}  // namespace

void LineJsonWriter::comma() {
  if (!first_) out_.push_back(',');
  first_ = false;
}

LineJsonWriter& LineJsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_ = true;
  return *this;
}

LineJsonWriter& LineJsonWriter::end_object() {
  out_.push_back('}');
  first_ = false;
  return *this;
}

LineJsonWriter& LineJsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_ = true;
  return *this;
}

LineJsonWriter& LineJsonWriter::end_array() {
  out_.push_back(']');
  first_ = false;
  return *this;
}

LineJsonWriter& LineJsonWriter::key(std::string_view name) {
  comma();
  out_.push_back('"');
  if (needs_escape(name))
    out_.append(json_escape(name));
  else
    out_.append(name);
  out_.append("\":");
  first_ = true;  // the upcoming value must not emit another comma
  return *this;
}

LineJsonWriter& LineJsonWriter::value(std::string_view v) {
  comma();
  out_.push_back('"');
  if (needs_escape(v))
    out_.append(json_escape(v));
  else
    out_.append(v);
  out_.push_back('"');
  return *this;
}

LineJsonWriter& LineJsonWriter::value(bool v) {
  comma();
  out_.append(v ? "true" : "false");
  return *this;
}

LineJsonWriter& LineJsonWriter::value(double v) {
  comma();
  // to_chars(general, 17) emits the exact bytes of printf "%.17g" in
  // the C locale (verified over random bit patterns), minus the format
  // parse — the doubles contract in the header stays intact.
  char buf[64];
  const auto r =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  out_.append(buf, r.ptr);
  return *this;
}

LineJsonWriter& LineJsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
  return *this;
}

LineJsonWriter& LineJsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
  return *this;
}

}  // namespace ran::net
