// The ran_serve wire protocol: JSON lines, one request and one reply
// per line.
//
// Grammar (requests): a single flat JSON object whose values are all
// strings — `{"op":"path","region":"mo","from":"co-a","to":"co-b"}`.
// No nesting, no arrays, no numeric literals (numeric parameters travel
// as digit strings), at most FlatRequest::kMaxFields fields. The
// restriction is what makes the hot path cheap: a conforming line
// parses with zero allocations (string_views into the receive buffer);
// escaped strings take a slow path through the full JSON parser.
//
// Replies are one-line JSON objects: `{"ok":true,...}` on success,
// `{"ok":false,"reason":"<slug>","error":"<message>"}` on failure —
// the same structured-reason discipline as the ingest layer's
// ParseReason taxonomy (core/query_engine.hpp owns the slugs).
// LineJsonWriter emits them: JsonWriter's formatting contract (sorted
// keys from callers, "%.17g" doubles) minus the pretty-printing, since
// a protocol line must not contain newlines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ran::net {

/// One parsed request line. Parsing never allocates for the escape-free
/// case; fields view into the caller's buffer, which must outlive the
/// request.
class FlatRequest {
 public:
  static constexpr std::size_t kMaxFields = 8;

  /// Parses one request line. On failure returns false and, when
  /// `error` is non-null, a one-line reason.
  [[nodiscard]] bool parse(std::string_view line, std::string* error);

  /// Field lookup; nullopt when absent. Present-but-empty is distinct
  /// from absent (hence not a plain string_view return).
  [[nodiscard]] bool has(std::string_view key) const;
  /// Value of `key`, or an empty view when absent.
  [[nodiscard]] std::string_view get(std::string_view key) const;
  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  std::array<std::string_view, kMaxFields> keys_;
  std::array<std::string_view, kMaxFields> values_;
  /// Backing store for fields that needed unescaping (slow path only).
  std::array<std::string, kMaxFields * 2> storage_;
  std::size_t count_ = 0;
};

/// Single-line JSON emission for protocol replies. Same call discipline
/// as JsonWriter (nesting must match, key before object values, callers
/// emit keys sorted), but the output is one line with no whitespace.
class LineJsonWriter {
 public:
  /// Replies are short; one up-front reservation covers nearly all of
  /// them, keeping the 1M-replies/s hot path to a single allocation.
  LineJsonWriter() { out_.reserve(256); }

  LineJsonWriter& begin_object();
  LineJsonWriter& end_object();
  LineJsonWriter& begin_array();
  LineJsonWriter& end_array();
  LineJsonWriter& key(std::string_view name);
  LineJsonWriter& value(std::string_view v);
  LineJsonWriter& value(const char* v) { return value(std::string_view{v}); }
  LineJsonWriter& value(const std::string& v) {
    return value(std::string_view{v});
  }
  LineJsonWriter& value(bool v);
  LineJsonWriter& value(double v);
  LineJsonWriter& value(std::uint64_t v);
  LineJsonWriter& value(std::int64_t v);
  LineJsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  [[nodiscard]] const std::string& str() const { return out_; }
  /// Surrenders the buffer — reply builders return take() so the hot
  /// path hands one string from writer to socket without a copy.
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  bool first_ = true;  ///< no element yet in the innermost container
};

}  // namespace ran::net
