#include "report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "json.hpp"
#include "strings.hpp"

namespace ran::net {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string TextTable::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("header").begin_array();
  for (const auto& cell : header_) json.value(cell);
  json.end_array();
  json.key("rows").begin_array();
  for (const auto& row : rows_) {
    json.begin_array();
    for (const auto& cell : row) json.value(cell);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf,
               int points) {
  os << label << " (n=" << cdf.size() << ")\n";
  if (cdf.size() == 0) {
    os << "  <empty>\n";
    return;
  }
  for (int i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / points;
    const double v = cdf.quantile(q);
    const int bar = static_cast<int>(q * 40);
    os << "  p" << format("%3d", static_cast<int>(q * 100)) << "  "
       << format("%10.2f", v) << "  " << std::string(
           static_cast<std::size_t>(bar), '#') << '\n';
  }
}

std::string fmt_double(double value, int decimals) {
  return format("%.*f", decimals, value);
}

std::string fmt_percent(double fraction, int decimals) {
  return format("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace ran::net
