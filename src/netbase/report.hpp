// Plain-text reporting helpers used by the bench harnesses to print each
// paper table/figure as aligned rows or ASCII CDF series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats.hpp"

namespace ran::net {

/// A simple aligned-column text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> row);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  /// JSON rendering ({"header": [...], "rows": [[...], ...]}) through the
  /// shared net::JsonWriter path, so table exports and run manifests
  /// serialize identically.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a CDF as (value, cumulative fraction) sample points at the given
/// number of evenly spaced quantiles, plus an ASCII sparkline — enough to
/// eyeball the shapes of Figs 7, 10, 18.
void print_cdf(std::ostream& os, const std::string& label, const Cdf& cdf,
               int points = 10);

/// Formats a double with fixed precision (helper for table rows).
[[nodiscard]] std::string fmt_double(double value, int decimals = 2);

/// Formats a ratio as a percentage string, e.g. "37.7%".
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace ran::net
