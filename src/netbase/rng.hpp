// Deterministic random-number facade. Every stochastic decision in the
// system (topology generation, rDNS staleness, unresponsive hops, jitter)
// draws from an explicitly seeded Rng so experiments replay bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>

#include "contracts.hpp"

namespace ran::net {

/// SplitMix64 finalizer: cheap, well-mixed 64-bit hash. The shared
/// primitive behind flow/ECMP decisions and per-probe seeding.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless-seedable counter generator (SplitMix64 stream). Unlike Rng's
/// mersenne twister, construction is free, which lets every probe own an
/// independent generator seeded from its identity: the draw sequence is a
/// pure function of the seed, independent of any other probe and safe to
/// evaluate from any thread.
class ProbeRng {
 public:
  explicit ProbeRng(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Expects lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    RAN_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : next() % span);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    RAN_EXPECTS(lo <= hi);
    return lo + (hi - lo) * unit();
  }

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return unit() < p;
  }

 private:
  [[nodiscard]] double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::uint64_t state_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Expects lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    RAN_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    RAN_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Normal deviate.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponential deviate with the given mean. Expects mean > 0.
  [[nodiscard]] double exponential(double mean) {
    RAN_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    RAN_EXPECTS(!items.empty());
    return items[static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child generator; convenient for giving each
  /// subsystem its own stream without correlated draws.
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ran::net
