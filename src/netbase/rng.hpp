// Deterministic random-number facade. Every stochastic decision in the
// system (topology generation, rDNS staleness, unresponsive hops, jitter)
// draws from an explicitly seeded Rng so experiments replay bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>

#include "contracts.hpp"

namespace ran::net {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Expects lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    RAN_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    RAN_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Normal deviate.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
  }

  /// Exponential deviate with the given mean. Expects mean > 0.
  [[nodiscard]] double exponential(double mean) {
    RAN_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    RAN_EXPECTS(!items.empty());
    return items[static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child generator; convenient for giving each
  /// subsystem its own stream without correlated draws.
  [[nodiscard]] Rng fork() { return Rng{engine_()}; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ran::net
