#include "socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ran::net {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// poll() one fd for readability; true when readable before the timeout.
bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpStream TcpStream::connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TcpStream{};
  const auto addr = loopback(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return TcpStream{};
  }
  // Request/reply lines are small; Nagle only adds latency here.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

bool TcpStream::send_all(std::string_view data) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TcpStream::ReadResult TcpStream::read_some(char* buffer, std::size_t capacity,
                                           int timeout_ms, std::size_t* n) {
  *n = 0;
  if (fd_ < 0) return ReadResult::kError;
  if (!wait_readable(fd_, timeout_ms)) return ReadResult::kTimeout;
  while (true) {
    const ssize_t got = ::recv(fd_, buffer, capacity, 0);
    if (got > 0) {
      *n = static_cast<std::size_t>(got);
      return ReadResult::kData;
    }
    if (got == 0) return ReadResult::kClosed;
    if (errno == EINTR) continue;
    return ReadResult::kError;
  }
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::bind_local(std::uint16_t port,
                                                   std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return std::nullopt;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto addr = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  return TcpListener{fd, ntohs(addr.sin_port)};
}

TcpStream TcpListener::accept(int timeout_ms) {
  if (fd_ < 0 || !wait_readable(fd_, timeout_ms)) return TcpStream{};
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return TcpStream{};
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{client};
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ran::net
