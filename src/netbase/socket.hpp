// Minimal POSIX TCP wrappers for the serving layer: a loopback listener
// and a blocking byte stream, both with poll()-based timeouts so the
// daemon's accept and read loops can watch a stop flag instead of
// parking forever in the kernel.
//
// Scope is deliberately narrow — 127.0.0.1 only (ran_serve is a local
// daemon; exposing inference results beyond the host is a deployment
// concern, not this layer's), IPv4, no TLS. Sends use MSG_NOSIGNAL so a
// client that hangs up mid-reply surfaces as an error return, never as
// a process-killing SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ran::net {

/// A connected TCP byte stream. Move-only; the destructor closes.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;
  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept;
  ~TcpStream() { close(); }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Connects to 127.0.0.1:port. Invalid stream on failure.
  [[nodiscard]] static TcpStream connect_local(std::uint16_t port);

  /// Sends the whole buffer; false on any error (peer gone, ...).
  [[nodiscard]] bool send_all(std::string_view data);

  /// Result of one timed read.
  enum class ReadResult { kData, kTimeout, kClosed, kError };

  /// Reads up to `capacity` bytes within `timeout_ms` (-1 = forever).
  /// kData sets `*n` (> 0); kClosed means orderly EOF.
  [[nodiscard]] ReadResult read_some(char* buffer, std::size_t capacity,
                                     int timeout_ms, std::size_t* n);

  void close();

 private:
  int fd_ = -1;
};

/// A loopback listener. Move-only; the destructor closes.
class TcpListener {
 public:
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  ~TcpListener() { close(); }

  /// Binds 127.0.0.1:port (0 picks an ephemeral port, readable from
  /// port() afterwards) and listens. nullopt + error message on failure.
  [[nodiscard]] static std::optional<TcpListener> bind_local(
      std::uint16_t port, std::string* error);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Accepts one connection within `timeout_ms`; invalid stream on
  /// timeout or on a closed listener.
  [[nodiscard]] TcpStream accept(int timeout_ms);

  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ran::net
