#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "contracts.hpp"

namespace ran::net {

double mean(std::span<const double> xs) {
  RAN_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RAN_EXPECTS(!xs.empty());
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size()));
}

double min_value(std::span<const double> xs) {
  RAN_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  RAN_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  RAN_EXPECTS(!xs.empty());
  RAN_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  RAN_EXPECTS(!sorted_.empty());
  RAN_EXPECTS(q > 0.0 && q <= 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

}  // namespace ran::net
