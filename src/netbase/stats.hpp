// Descriptive statistics and empirical CDFs used throughout the analysis
// (Figs 7, 10, 18 are CDFs; the AggCO heuristic of §5.2.2 uses mean + one
// standard deviation of CO out-degrees).
#pragma once

#include <span>
#include <vector>

namespace ran::net {

[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation (the AggCO threshold in §5.2.2 is
/// mean + 1 stddev over all COs of a region, a population statistic).
[[nodiscard]] double stddev(std::span<const double> xs);

[[nodiscard]] double min_value(std::span<const double> xs);
[[nodiscard]] double max_value(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Expects non-empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] inline double median(std::span<const double> xs) {
  return percentile(xs, 50.0);
}

/// An empirical cumulative distribution over a sample.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x, in [0, 1].
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// The smallest sample v with fraction_at_or_below(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] std::span<const double> sorted_samples() const {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

}  // namespace ran::net
