#include "strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ran::net {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_digits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace ran::net
