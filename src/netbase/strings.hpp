// Small string utilities shared across modules (hostname parsing, report
// formatting). Kept deliberately minimal; no locale dependence.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ran::net {

/// Splits on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// True when every character is an ASCII decimal digit (and non-empty).
[[nodiscard]] bool is_digits(std::string_view text);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ran::net
