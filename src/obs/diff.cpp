#include "diff.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <regex>

#include "netbase/strings.hpp"

namespace ran::obs {

namespace {

using net::JsonValue;

/// Renders a scalar for the report. Containers never reach this: the
/// walk recurses into them and only compares leaves.
std::string render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.b ? "true" : "false";
    case JsonValue::Kind::kNumber: return v.str;  // raw source token
    case JsonValue::Kind::kString: return "\"" + v.str + "\"";
    case JsonValue::Kind::kArray: return "<array>";
    case JsonValue::Kind::kObject: return "<object>";
  }
  return "<?>";
}

/// Leaf name of a dotted path ("stages.children[2].wall_ms" -> "wall_ms").
std::string_view leaf_of(std::string_view path) {
  const auto dot = path.rfind('.');
  return dot == std::string_view::npos ? path : path.substr(dot + 1);
}

bool is_volatile_path(std::string_view path) {
  return path.rfind("volatile.", 0) == 0 ||
         path.rfind("resources.", 0) == 0 ||
         path.rfind("concurrency.", 0) == 0 || leaf_of(path) == "wall_ms";
}

class ManifestDiffer {
 public:
  explicit ManifestDiffer(const DiffOptions& options) : options_(options) {}

  DiffReport run(const JsonValue& before, const JsonValue& after) {
    walk("", &before, &after);
    return std::move(report_);
  }

 private:
  void record(const std::string& path, DiffEntry::Kind kind,
              std::string left, std::string right, bool within) {
    if (kind == DiffEntry::Kind::kDeterministic)
      ++report_.deterministic_differences;
    else if (!within)
      ++report_.volatile_out_of_tolerance;
    report_.differences.push_back(
        DiffEntry{path, kind, std::move(left), std::move(right), within});
  }

  void diff_leaf(const std::string& path, const JsonValue& a,
                 const JsonValue& b) {
    ++report_.paths_compared;
    const bool vol = is_volatile_path(path);
    if (vol && a.is_number() && b.is_number()) {
      const double diff = std::abs(a.num - b.num);
      const double bound =
          options_.abs_tolerance +
          options_.rel_tolerance * std::max(std::abs(a.num), std::abs(b.num));
      if (a.str != b.str)
        record(path, DiffEntry::Kind::kVolatile, render(a), render(b),
               diff <= bound);
      return;
    }
    // Exact: kind plus payload, numbers by raw token so that even
    // value-equal re-renderings ("1e3" vs "1000") count as drift in a
    // deterministic artifact.
    const bool equal =
        a.kind == b.kind &&
        (a.kind == JsonValue::Kind::kNull ||
         (a.kind == JsonValue::Kind::kBool && a.b == b.b) ||
         (a.kind != JsonValue::Kind::kBool && a.str == b.str));
    if (!equal)
      record(path,
             vol ? DiffEntry::Kind::kVolatile
                 : DiffEntry::Kind::kDeterministic,
             render(a), render(b), /*within=*/false);
  }

  void absent(const std::string& path, const JsonValue* a,
              const JsonValue* b) {
    ++report_.paths_compared;
    // A section present on one side only is structural drift regardless
    // of namespace — tolerance applies to values, not to shape.
    record(path, DiffEntry::Kind::kDeterministic,
           a != nullptr ? render(*a) : "<absent>",
           b != nullptr ? render(*b) : "<absent>", /*within=*/false);
  }

  void walk(const std::string& path, const JsonValue* a,
            const JsonValue* b) {
    if (a == nullptr || b == nullptr) {
      absent(path, a, b);
      return;
    }
    if (a->is_object() && b->is_object()) {
      // Union of keys, each side in document order (manifests emit
      // sorted keys, so this stays deterministic).
      std::map<std::string, std::pair<const JsonValue*, const JsonValue*>>
          members;
      for (const auto& [key, value] : a->object)
        members[key].first = &value;
      for (const auto& [key, value] : b->object)
        members[key].second = &value;
      for (const auto& [key, sides] : members)
        walk(path.empty() ? key : path + "." + key, sides.first,
             sides.second);
      return;
    }
    if (a->is_array() && b->is_array()) {
      const std::size_t n = std::max(a->array.size(), b->array.size());
      for (std::size_t i = 0; i < n; ++i)
        walk(net::format("%s[%zu]", path.c_str(), i),
             i < a->array.size() ? &a->array[i] : nullptr,
             i < b->array.size() ? &b->array[i] : nullptr);
      return;
    }
    diff_leaf(path, *a, *b);
  }

  DiffOptions options_;
  DiffReport report_;
};

}  // namespace

DiffReport diff_manifests(const JsonValue& before, const JsonValue& after,
                          const DiffOptions& options) {
  return ManifestDiffer{options}.run(before, after);
}

DiffReport diff_bench(const JsonValue& before, const JsonValue& after,
                      const BenchDiffOptions& options) {
  DiffReport report;
  std::optional<std::regex> filter;
  if (!options.name_filter.empty())
    filter.emplace(options.name_filter, std::regex::ECMAScript);
  const auto collect = [&](const JsonValue& doc) {
    std::map<std::string, const JsonValue*> out;
    if (const auto* benches = doc.find("benchmarks");
        benches != nullptr && benches->is_array())
      for (const auto& bench : benches->array)
        if (const auto* name = bench.find("name");
            name != nullptr && name->is_string())
          if (!filter || std::regex_search(name->str, *filter))
            out[name->str] = &bench;
    return out;
  };
  const auto lhs = collect(before);
  const auto rhs = collect(after);

  std::map<std::string, std::pair<const JsonValue*, const JsonValue*>> all;
  for (const auto& [name, bench] : lhs) all[name].first = bench;
  for (const auto& [name, bench] : rhs) all[name].second = bench;

  for (const auto& [name, sides] : all) {
    ++report.paths_compared;
    if (sides.first == nullptr || sides.second == nullptr) {
      ++report.deterministic_differences;
      report.differences.push_back(DiffEntry{
          name, DiffEntry::Kind::kDeterministic,
          sides.first != nullptr ? "<present>" : "<absent>",
          sides.second != nullptr ? "<present>" : "<absent>",
          /*within_tolerance=*/false});
      continue;
    }
    const auto* t0 = sides.first->find("real_time");
    const auto* t1 = sides.second->find("real_time");
    if (t0 == nullptr || t1 == nullptr || !t0->is_number() ||
        !t1->is_number())
      continue;
    if (t0->str == t1->str) continue;
    const bool within =
        t1->num <= t0->num * (1.0 + options.slowdown_threshold);
    if (!within) ++report.volatile_out_of_tolerance;
    report.differences.push_back(DiffEntry{name + ".real_time",
                                           DiffEntry::Kind::kVolatile,
                                           t0->str, t1->str, within});
  }
  return report;
}

std::string DiffReport::text() const {
  std::string out = net::format(
      "%llu paths compared, %llu deterministic difference(s), "
      "%llu volatile value(s) out of tolerance -> %s\n",
      static_cast<unsigned long long>(paths_compared),
      static_cast<unsigned long long>(deterministic_differences),
      static_cast<unsigned long long>(volatile_out_of_tolerance),
      gate_ok() ? "OK" : "FAIL");
  for (const auto& entry : differences) {
    const char* tag =
        entry.kind == DiffEntry::Kind::kDeterministic
            ? "DETERMINISTIC"
            : (entry.within_tolerance ? "volatile     " : "VOLATILE-OOT ");
    out += net::format("  [%s] %s: %s -> %s\n", tag, entry.path.c_str(),
                       entry.left.c_str(), entry.right.c_str());
  }
  return out;
}

std::string DiffReport::to_json() const {
  net::JsonWriter json;
  json.begin_object();
  json.key("gate_ok").value(gate_ok());
  json.key("paths_compared").value(paths_compared);
  json.key("deterministic_differences").value(deterministic_differences);
  json.key("volatile_out_of_tolerance").value(volatile_out_of_tolerance);
  json.key("differences").begin_array();
  for (const auto& entry : differences) {
    json.begin_object();
    json.key("path").value(entry.path);
    json.key("kind").value(entry.kind == DiffEntry::Kind::kDeterministic
                               ? "deterministic"
                               : "volatile");
    json.key("left").value(entry.left);
    json.key("right").value(entry.right);
    if (entry.kind == DiffEntry::Kind::kVolatile)
      json.key("within_tolerance").value(entry.within_tolerance);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace ran::obs
