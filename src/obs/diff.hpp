// Manifest / benchmark diffing: the regression gate that makes the
// observability artifacts actionable in CI. Two runs of the same study
// must produce byte-identical deterministic content (counters, summary
// statistics, provenance, topology counts); wall-clock timings, resource
// samples, and volatile metrics are expected to move and are compared
// within a tolerance instead.
//
// Classification is namespace-driven and matches what RunManifest emits:
//   - any path under "volatile.", "resources.",
//     or "concurrency."                           -> tolerance compare
//   - any path whose leaf is "wall_ms"            -> tolerance compare
//   - everything else                             -> exact (numbers by
//     raw source token, i.e. byte equality)
//
// diff_bench() applies the same report machinery to two google-benchmark
// JSON exports, matching benchmarks by name and gating on relative
// real_time slowdown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/json.hpp"

namespace ran::obs {

struct DiffOptions {
  /// Volatile numerics pass when
  ///   |a - b| <= abs_tolerance + rel_tolerance * max(|a|, |b|).
  /// Defaults are loose on purpose: timings on a shared CI box jitter,
  /// and the gate's job is catching structural drift, not scheduling
  /// noise.
  double rel_tolerance = 0.5;
  double abs_tolerance = 64.0;
};

struct BenchDiffOptions {
  /// A benchmark regresses when
  ///   after.real_time > before.real_time * (1 + slowdown_threshold).
  /// Speedups never fail the gate.
  double slowdown_threshold = 0.35;
  /// ECMAScript regex over benchmark names; non-matching benchmarks are
  /// skipped on both sides. Empty = compare everything. Lets a gate pin
  /// a stable kernel subset while the suite grows new benchmarks (which
  /// would otherwise read as one-side-only deterministic drift).
  std::string name_filter;
};

/// One observed difference between the two documents.
struct DiffEntry {
  enum class Kind {
    kDeterministic,  ///< exact-compare path: any difference fails the gate
    kVolatile,       ///< tolerance-compare path
  };

  std::string path;  ///< dotted path, arrays indexed ("stages.children[2]")
  Kind kind = Kind::kDeterministic;
  std::string left;   ///< rendered value, or "<absent>"
  std::string right;  ///< rendered value, or "<absent>"
  /// Volatile entries only: the difference stayed inside tolerance (it is
  /// recorded for the report but does not fail the gate).
  bool within_tolerance = false;
};

struct DiffReport {
  std::vector<DiffEntry> differences;
  std::uint64_t paths_compared = 0;
  std::uint64_t deterministic_differences = 0;
  std::uint64_t volatile_out_of_tolerance = 0;

  /// The CI verdict: no deterministic drift and all volatile movement
  /// within tolerance.
  [[nodiscard]] bool gate_ok() const {
    return deterministic_differences == 0 && volatile_out_of_tolerance == 0;
  }

  /// Human-readable multi-line summary (stable ordering).
  [[nodiscard]] std::string text() const;
  /// Machine-readable report through the deterministic JsonWriter.
  [[nodiscard]] std::string to_json() const;
};

/// Diffs two parsed run manifests under the namespace rules above.
[[nodiscard]] DiffReport diff_manifests(const net::JsonValue& before,
                                        const net::JsonValue& after,
                                        const DiffOptions& options = {});

/// Diffs two google-benchmark JSON exports: benchmarks are matched by
/// "name"; a benchmark present on one side only is a deterministic
/// difference, and real_time slowdowns beyond the threshold fail the
/// gate. Context blocks are not compared (machine-specific).
[[nodiscard]] DiffReport diff_bench(const net::JsonValue& before,
                                    const net::JsonValue& after,
                                    const BenchDiffOptions& options = {});

}  // namespace ran::obs
