#include "exposition.hpp"

#include <cmath>
#include <cstdlib>

#include "netbase/strings.hpp"

namespace ran::obs {

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Doubles in samples: integers render without an exponent or decimal
/// point (counter values stay grep-able), everything else as %.17g.
std::string format_sample_value(double v) {
  if (std::isfinite(v) && v >= 0.0 && v < 9.007199254740992e15 &&
      v == std::floor(v))
    return net::format("%llu", static_cast<unsigned long long>(v));
  return net::format("%.17g", v);
}

void append_type(std::string& out, const std::string& name,
                 const char* type, bool is_volatile) {
  if (is_volatile) {
    out += "# HELP ";
    out += name;
    out += " (volatile)\n";
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_counters(std::string& out, const ExpositionOptions& options,
                     const std::map<std::string, std::uint64_t>& counters,
                     bool is_volatile) {
  for (const auto& [name, value] : counters) {
    const auto metric = options.prefix + sanitize_metric_name(name);
    append_type(out, metric, "counter", is_volatile);
    out += metric;
    out += ' ';
    out += net::format("%llu", static_cast<unsigned long long>(value));
    out += '\n';
  }
}

void append_gauges(std::string& out, const ExpositionOptions& options,
                   const std::map<std::string, double>& gauges,
                   bool is_volatile) {
  for (const auto& [name, value] : gauges) {
    const auto metric = options.prefix + sanitize_metric_name(name);
    append_type(out, metric, "gauge", is_volatile);
    out += metric;
    out += ' ';
    out += format_sample_value(value);
    out += '\n';
  }
}

void append_histograms(
    std::string& out, const ExpositionOptions& options,
    const std::map<std::string, MetricsSnapshot::HistogramData>& histograms,
    bool is_volatile) {
  for (const auto& [name, data] : histograms) {
    const auto metric = options.prefix + sanitize_metric_name(name);
    append_type(out, metric, "histogram", is_volatile);
    // Log2 buckets hold [lower, 2*lower), i.e. every value <= 2*lower-1:
    // the exact inclusive upper bound each cumulative `le` line exposes.
    std::uint64_t cumulative = 0;
    for (const auto& [lower, count] : data.buckets) {
      cumulative += count;
      const std::uint64_t le = lower == 0 ? 0 : lower * 2 - 1;
      out += metric;
      out += "_bucket{le=\"";
      out += net::format("%llu", static_cast<unsigned long long>(le));
      out += "\"} ";
      out += net::format("%llu", static_cast<unsigned long long>(cumulative));
      out += '\n';
    }
    out += metric;
    out += "_bucket{le=\"+Inf\"} ";
    out += net::format("%llu", static_cast<unsigned long long>(data.count));
    out += '\n';
    out += metric;
    out += "_sum ";
    out += net::format("%llu", static_cast<unsigned long long>(data.sum));
    out += '\n';
    out += metric;
    out += "_count ";
    out += net::format("%llu", static_cast<unsigned long long>(data.count));
    out += '\n';
    if (options.include_percentiles) {
      for (const auto& [suffix, q] :
           {std::pair<const char*, double>{"_p50", 0.5},
            {"_p90", 0.9},
            {"_p99", 0.99}}) {
        out += metric;
        out += suffix;
        out += ' ';
        out += format_sample_value(data.percentile(q));
        out += '\n';
      }
    }
  }
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) out += is_name_char(c) ? c : '_';
  // A leading digit is not a valid name start; names here never begin
  // with one in practice, but guard so the renderer cannot emit an
  // unparseable document.
  if (!out.empty() && out.front() >= '0' && out.front() <= '9')
    out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const ExpositionOptions& options) {
  std::string out;
  out.reserve(4096);
  if (snapshot.scrape_seq > 0) {
    const auto metric = options.prefix + "scrape_seq";
    append_type(out, metric, "counter", /*is_volatile=*/false);
    out += metric;
    out += ' ';
    out += net::format("%llu",
                       static_cast<unsigned long long>(snapshot.scrape_seq));
    out += '\n';
  }
  if (options.include_deterministic) {
    append_counters(out, options, snapshot.counters, /*is_volatile=*/false);
    append_gauges(out, options, snapshot.gauges, /*is_volatile=*/false);
    append_histograms(out, options, snapshot.histograms,
                      /*is_volatile=*/false);
  }
  if (options.include_volatile) {
    append_counters(out, options, snapshot.volatile_counters,
                    /*is_volatile=*/true);
    append_gauges(out, options, snapshot.volatile_gauges,
                  /*is_volatile=*/true);
    append_histograms(out, options, snapshot.volatile_histograms,
                      /*is_volatile=*/true);
  }
  return out;
}

std::optional<std::map<std::string, double>> parse_exposition(
    std::string_view text, std::string* error,
    std::map<std::string, std::string>* types) {
  const auto fail = [&](std::size_t line_no, const char* reason)
      -> std::optional<std::map<std::string, double>> {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + reason;
    return std::nullopt;
  };

  std::map<std::string, double> out;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    auto end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') {
      constexpr std::string_view kType = "# TYPE ";
      if (types != nullptr && line.substr(0, kType.size()) == kType) {
        const auto rest = line.substr(kType.size());
        const auto space = rest.find(' ');
        if (space != std::string_view::npos)
          (*types)[std::string{rest.substr(0, space)}] =
              std::string{rest.substr(space + 1)};
      }
      continue;
    }

    // <name>[{label="value",...}] <value>
    std::size_t i = 0;
    while (i < line.size() && is_name_char(line[i])) ++i;
    if (i == 0) return fail(line_no, "sample does not start with a name");
    std::size_t key_end = i;
    if (i < line.size() && line[i] == '{') {
      bool in_string = false;
      for (++i; i < line.size(); ++i) {
        if (in_string) {
          if (line[i] == '\\') ++i;  // skip the escaped byte
          else if (line[i] == '"') in_string = false;
        } else if (line[i] == '"') {
          in_string = true;
        } else if (line[i] == '}') {
          break;
        }
      }
      if (i >= line.size() || line[i] != '}')
        return fail(line_no, "unterminated label block");
      key_end = ++i;
    }
    if (i >= line.size() || line[i] != ' ')
      return fail(line_no, "no space between sample name and value");
    const std::string key{line.substr(0, key_end)};
    const std::string value_text{line.substr(i + 1)};
    if (value_text.empty()) return fail(line_no, "sample has no value");
    char* parse_end = nullptr;
    const double value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == nullptr || *parse_end != '\0')
      return fail(line_no, "sample value is not a number");
    if (!out.emplace(key, value).second)
      return fail(line_no, "duplicate sample name");
  }
  return out;
}

}  // namespace ran::obs
