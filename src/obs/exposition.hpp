// Metrics exposition: the live rendering of a Registry snapshot for
// scrapers — Prometheus-style text (counters, gauges, histograms with
// cumulative `le` buckets plus p50/p90/p99 lines) next to the JSON
// manifest section RunManifest already emits. The `metrics` protocol op,
// the rolling telemetry files `ran_serve --telemetry-every` writes, and
// the serve_obs_gate all consume this one renderer.
//
// Scrape contract (why Registry::scrape() exists): counters are
// monotonic and scraping never resets anything, so two scrapes at any
// distance are delta-comparable — scrape_2 minus scrape_1 is exactly the
// work performed in between whenever the writers quiesce between the two
// reads, and per-series values never decrease even under concurrent
// writers (each counter is a single atomic that only grows). Multiple
// concurrent scrapers cannot steal each other's deltas, unlike
// reset-on-read schemes. The scrape sequence number orders scrapes of
// the same registry.
//
// Text format grammar (the golden test locks it):
//   # TYPE <name> counter|gauge|histogram
//   <name>[{le="<n>"}] <integer-or-%.17g-double>
// Metric names are sanitized ([a-zA-Z0-9_:], everything else becomes
// '_') and prefixed (default "ran_"); histogram buckets expose the exact
// log2 edges as inclusive upper bounds (le="0","1","3","7",...,"+Inf").
// Volatile metrics render under the same grammar with a
// "# HELP ... (volatile)" marker — exposition is an operator surface, so
// unlike manifests it shows wall-clock series by default.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "metrics.hpp"

namespace ran::obs {

struct ExpositionOptions {
  /// Prepended to every sanitized metric name.
  std::string prefix = "ran_";
  bool include_deterministic = true;
  bool include_volatile = true;
  /// Also emit <name>_p50/_p90/_p99 quantile lines per histogram.
  bool include_percentiles = true;
};

/// A metric name made exposition-safe: [a-zA-Z0-9_:] kept, every other
/// byte replaced by '_' ("serve.latency_us.path" -> "serve_latency_us_path").
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Renders a snapshot in the Prometheus-style text format above.
/// Deterministic: same snapshot, same bytes (sorted series, fixed
/// number formatting).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot,
                                            const ExpositionOptions& options = {});

/// Parses an exposition document back into (series key -> value), where
/// the key is the sample name including its label block when present
/// ("ran_serve_latency_us_path_bucket{le=\"3\"}"). Comment and blank
/// lines are skipped; any malformed sample line fails the whole parse
/// (nullopt + reason). When `types` is given it receives the `# TYPE`
/// declarations (metric name -> "counter"/"gauge"/"histogram") — what
/// lets a consumer know which series are monotonic. This is the
/// validation half of the round trip the serve_obs_gate and the golden
/// tests rely on.
[[nodiscard]] std::optional<std::map<std::string, double>> parse_exposition(
    std::string_view text, std::string* error = nullptr,
    std::map<std::string, std::string>* types = nullptr);

}  // namespace ran::obs
