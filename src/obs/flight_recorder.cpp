#include "flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "netbase/json.hpp"

namespace ran::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : id_(next_recorder_id()),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.capacity == 0) config_.capacity = 1;
}

std::uint64_t FlightRecorder::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

FlightRecorder::ThreadBuffer& FlightRecorder::local() {
  // Same id-keyed thread-local cache as Tracer::local(): never matches a
  // stale entry after this recorder dies, move-to-front keeps the hot
  // recorder O(1).
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i].first != id_) continue;
    if (i != 0) std::swap(cache[0], cache[i]);
    return *cache[0].second;
  }
  const std::lock_guard lock{mutex_};
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  auto& buffer = *buffers_.back();
  buffer.tid = static_cast<std::uint32_t>(buffers_.size());
  buffer.ring.resize(config_.capacity);
  for (auto& slot : buffer.ring) {
    slot.request.reserve(config_.max_request_chars);
    slot.op.reserve(16);
    slot.reason.reserve(16);
  }
  if (cache.size() >= 64) cache.pop_back();
  cache.insert(cache.begin(), {id_, &buffer});
  return buffer;
}

void FlightRecorder::record(std::uint64_t rid, std::string_view request,
                            std::string_view op, std::string_view reason,
                            std::uint64_t latency_us, bool is_error) {
  auto& buffer = local();
  if (request.size() > config_.max_request_chars)
    request = request.substr(0, config_.max_request_chars);
  {
    // Uncontended except while a dump copies this ring: the owner thread
    // is the only other party that ever takes this mutex.
    const std::lock_guard lock{buffer.mutex};
    FlightRecord& slot = buffer.ring[buffer.next];
    slot.rid = rid;
    slot.ts_us = now_us();
    slot.tid = buffer.tid;
    slot.latency_us = latency_us;
    slot.request.assign(request);
    slot.op.assign(op);
    slot.reason.assign(reason);
    buffer.next = (buffer.next + 1) % config_.capacity;
    if (buffer.filled < config_.capacity) ++buffer.filled;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  if (is_error) note_error();
}

void FlightRecorder::note_error() {
  if (config_.burst_threshold == 0 || config_.burst_path.empty()) return;
  const std::uint64_t now_ms = now_us() / 1000;
  const std::uint64_t window = now_ms / config_.burst_window_ms;
  std::uint64_t start = window_index_.load(std::memory_order_relaxed);
  if (start != window) {
    // First error of a new window resets the count; a racing loser just
    // adds its error to the fresh window, which only makes the trigger
    // marginally more eager — never silent.
    if (window_index_.compare_exchange_strong(start, window,
                                                 std::memory_order_relaxed))
      window_errors_.store(0, std::memory_order_relaxed);
  }
  const auto errors =
      window_errors_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (errors < config_.burst_threshold) return;
  // Dump at most once per window.
  std::uint64_t last = last_burst_window_.load(std::memory_order_relaxed);
  if (last == window ||
      !last_burst_window_.compare_exchange_strong(last, window,
                                                  std::memory_order_relaxed))
    return;
  if (dump_file(config_.burst_path))
    burst_dumps_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightRecord> FlightRecorder::last_records() const {
  std::vector<FlightRecord> records;
  {
    const std::lock_guard lock{mutex_};
    for (const auto& buffer : buffers_) {
      const std::lock_guard ring_lock{buffer->mutex};
      records.reserve(records.size() + buffer->filled);
      for (std::size_t i = 0; i < buffer->filled; ++i)
        records.push_back(buffer->ring[i]);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.rid < b.rid;
            });
  if (records.size() > config_.capacity)
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(config_.capacity));
  return records;
}

std::string FlightRecorder::to_jsonl(bool include_volatile) const {
  const auto records = last_records();
  std::string out;
  out.reserve(records.size() * 96);
  for (const auto& record : records) {
    out += "{";
    if (include_volatile) {
      out += "\"latency_us\":";
      out += std::to_string(record.latency_us);
      out += ',';
    }
    out += "\"op\":\"";
    out += net::json_escape(record.op);
    out += "\",\"reason\":\"";
    out += net::json_escape(record.reason);
    out += "\",\"request\":\"";
    out += net::json_escape(record.request);
    out += "\",\"rid\":";
    out += std::to_string(record.rid);
    if (include_volatile) {
      out += ",\"tid\":";
      out += std::to_string(record.tid);
      out += ",\"ts_us\":";
      out += std::to_string(record.ts_us);
    }
    out += "}\n";
  }
  return out;
}

bool FlightRecorder::dump_file(const std::string& path,
                               bool include_volatile) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os{tmp, std::ios::binary | std::ios::trunc};
    if (!os) return false;
    os << to_jsonl(include_volatile);
    if (!os.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace ran::obs
