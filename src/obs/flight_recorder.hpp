// FlightRecorder: the serving layer's black box. Every answered request
// leaves one fixed-size record (request id, request line, op, reason,
// latency) in the handling thread's own ring buffer; a dump merges the
// rings and reproduces the last-N requests the daemon saw — the thing an
// operator needs when a long-lived `ran_serve` misbehaves and the
// interesting traffic is already gone from any log.
//
// Concurrency model, next to Tracer/Log's joined-threads export rule:
// the recorder must dump LIVE (SIGUSR1, the admin `dump` op, an
// error-burst trigger fire while workers keep serving), so each
// per-thread ring carries its own mutex. The hot path locks only the
// calling thread's mutex — uncontended except during the rare instant a
// dump copies that ring, so recording stays contention-free between
// workers and never blocks on another thread's work. Rings are
// fixed-size at construction; recording never allocates after a
// thread's first record (request strings are copied into preallocated
// slots, truncated to max_request_chars).
//
// Determinism contract: the canonical dump (include_volatile=false) is
// the global last-N records ordered by request id, each serialized as
// {"op","reason","request","rid"} — a pure function of the request
// sequence, byte-stable at any worker-thread count. Each thread's ring
// holds its own last-N, and a record inside the global last-N by rid
// can have at most N-1 globally-later records, hence at most N-1 later
// records on its own thread — so it is still in that ring, and the
// merged view always contains the exact global last-N. Timestamps,
// thread ids, and latencies are wall-clock artifacts and only appear in
// the volatile JSONL form.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

/// One captured request.
struct FlightRecord {
  std::uint64_t rid = 0;         ///< the engine's monotonic request id
  std::uint64_t ts_us = 0;       ///< microseconds since the recorder epoch
  std::uint32_t tid = 0;         ///< registration-order thread id
  std::uint64_t latency_us = 0;  ///< answer latency (volatile)
  std::string request;           ///< request line, truncated
  std::string op;                ///< resolved op ("" when unparseable)
  std::string reason;            ///< "ok" or the QueryReason slug
};

struct FlightRecorderConfig {
  /// The "last N": dump size and per-thread ring capacity.
  std::size_t capacity = 256;
  /// Request lines are truncated to this many bytes in the record.
  std::size_t max_request_chars = 200;
  /// Error-burst auto-dump: when more than `burst_threshold` error-class
  /// records land within one `burst_window_ms` window, the recorder
  /// writes one volatile JSONL dump to `burst_path` (at most one per
  /// window, so a sustained error storm cannot turn into an I/O storm).
  /// 0 or an empty path disables the trigger.
  std::uint64_t burst_threshold = 0;
  std::uint64_t burst_window_ms = 1000;
  std::string burst_path;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

  /// Captures one request into the calling thread's ring. `is_error`
  /// feeds the burst window. Thread-safe; may be called concurrently
  /// with dumps.
  void record(std::uint64_t rid, std::string_view request,
              std::string_view op, std::string_view reason,
              std::uint64_t latency_us, bool is_error);

  /// The global last-N records in ascending rid order (see the
  /// determinism contract above). Safe while recording continues.
  [[nodiscard]] std::vector<FlightRecord> last_records() const;

  /// last_records() as JSON lines, one object per record with sorted
  /// keys. include_volatile=false drops ts/tid/latency — the byte-stable
  /// canonical form the determinism tests compare.
  [[nodiscard]] std::string to_jsonl(bool include_volatile = true) const;

  /// Writes to_jsonl(include_volatile) to `path` atomically (temp file +
  /// rename, so a reader never sees a half-written dump). False when the
  /// file cannot be written.
  bool dump_file(const std::string& path, bool include_volatile = true) const;

  /// Total records ever captured (exact; adds commute).
  [[nodiscard]] std::uint64_t record_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// Error-burst dumps triggered so far.
  [[nodiscard]] std::uint64_t burst_dumps() const {
    return burst_dumps_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;  ///< taken by the owner per record and by dumps
    std::uint32_t tid = 0;
    std::vector<FlightRecord> ring;  ///< capacity slots, preallocated
    std::size_t next = 0;            ///< ring cursor
    std::uint64_t filled = 0;        ///< records written (caps at capacity)
  };

  ThreadBuffer& local();
  void note_error();
  [[nodiscard]] std::uint64_t now_us() const;

  const std::uint64_t id_;  ///< process-unique, for the thread-local cache
  FlightRecorderConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  ///< guards buffer registration only
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint64_t> total_{0};

  /// Error-burst window (1-slot sliding): current window ordinal + error
  /// count, plus the window a dump already fired in.
  std::atomic<std::uint64_t> window_index_{0};
  std::atomic<std::uint64_t> window_errors_{0};
  std::atomic<std::uint64_t> last_burst_window_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> burst_dumps_{0};
};

}  // namespace ran::obs
