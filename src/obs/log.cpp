#include "log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "netbase/json.hpp"

namespace ran::obs {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

namespace {

std::uint64_t next_log_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Log::Log(LogConfig config)
    : id_(next_log_id()),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()) {}

Log::~Log() {
  if (!config_.jsonl_path.empty()) flush();
}

Log::ThreadBuffer& Log::local() {
  // Same id-keyed thread-local cache as Tracer::local(): a new Log
  // allocated where a destroyed one lived must not hit a stale entry.
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i].first != id_) continue;
    if (i != 0) std::swap(cache[0], cache[i]);
    return *cache[0].second;
  }
  const std::lock_guard lock{mutex_};
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  auto& buffer = *buffers_.back();
  buffer.tid = static_cast<std::uint32_t>(buffers_.size());
  if (cache.size() >= 64) cache.pop_back();
  cache.insert(cache.begin(), {id_, &buffer});
  return buffer;
}

Log::SiteState& Log::site_state(const char* site) {
  thread_local std::vector<std::tuple<std::uint64_t, const char*,
                                      SiteState*>> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (std::get<0>(cache[i]) != id_ || std::get<1>(cache[i]) != site)
      continue;
    if (i != 0) std::swap(cache[0], cache[i]);
    return *std::get<2>(cache[0]);
  }
  const std::lock_guard lock{mutex_};
  // Intern by text, not pointer: two literals with equal spelling (or the
  // same literal deduplicated differently across TUs) share one cap.
  SiteState* state = nullptr;
  for (const auto& existing : sites_)
    if (std::strcmp(existing->site, site) == 0) {
      state = existing.get();
      break;
    }
  if (state == nullptr) {
    sites_.push_back(std::make_unique<SiteState>());
    state = sites_.back().get();
    state->site = site;
  }
  if (cache.size() >= 128) cache.pop_back();
  cache.insert(cache.begin(), {id_, site, state});
  return *state;
}

void Log::log(LogLevel level, const char* site, std::string_view message) {
  if (!enabled(level)) return;
  counts_by_level_[static_cast<int>(level)].fetch_add(
      1, std::memory_order_relaxed);
  auto& state = site_state(site);
  const auto admitted =
      state.accepted.fetch_add(1, std::memory_order_relaxed);
  if (config_.per_site_limit != 0 && admitted >= config_.per_site_limit) {
    state.suppressed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (config_.stderr_sink && level >= config_.stderr_level) {
    // One fprintf per record keeps concurrent lines whole (stdio locks
    // the stream); warn/error volume is capped by the site limit anyway.
    std::fprintf(stderr, "[%s] %s: %.*s\n",
                 std::string{to_string(level)}.c_str(), site,
                 static_cast<int>(message.size()), message.data());
  }
  auto& buffer = local();
  if (!buffer.records.empty()) {
    auto& last = buffer.records.back();
    if (last.level == level && std::strcmp(last.site, site) == 0 &&
        last.message == message) {
      ++last.repeats;  // consecutive dedup (per thread)
      return;
    }
  }
  LogRecord record;
  record.level = level;
  record.ts_us = now_us();
  record.tid = buffer.tid;
  record.seq = buffer.records.size();
  record.site = site;
  record.message.assign(message);
  buffer.records.push_back(std::move(record));
}

std::uint64_t Log::count(LogLevel level) const {
  return counts_by_level_[static_cast<int>(level)].load(
      std::memory_order_relaxed);
}

std::uint64_t Log::suppressed(std::string_view site) const {
  const std::lock_guard lock{mutex_};
  std::uint64_t total = 0;
  for (const auto& state : sites_)
    if (site == state->site)
      total += state->suppressed.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Log::suppressed_total() const {
  const std::lock_guard lock{mutex_};
  std::uint64_t total = 0;
  for (const auto& state : sites_)
    total += state->suppressed.load(std::memory_order_relaxed);
  return total;
}

std::vector<LogRecord> Log::merged() const {
  std::vector<LogRecord> out;
  {
    const std::lock_guard lock{mutex_};
    for (const auto& buffer : buffers_)
      for (const auto& record : buffer->records) out.push_back(record);
  }
  // Deterministic merge: identical buffer contents always produce
  // identical order, whatever order threads registered or finished in.
  std::sort(out.begin(), out.end(),
            [](const LogRecord& a, const LogRecord& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return out;
}

std::string Log::to_jsonl() const {
  std::string out;
  const auto records = merged();
  out.reserve(records.size() * 96 + 64);
  for (const auto& record : records) {
    out += "{\"ts_us\":";
    out += std::to_string(record.ts_us);
    out += ",\"tid\":";
    out += std::to_string(record.tid);
    out += ",\"level\":\"";
    out += to_string(record.level);
    out += "\",\"site\":\"";
    out += net::json_escape(record.site);
    out += "\",\"msg\":\"";
    out += net::json_escape(record.message);
    out += '"';
    if (record.repeats > 1) {
      out += ",\"repeats\":";
      out += std::to_string(record.repeats);
    }
    out += "}\n";
  }
  // Trailing suppression summary, one line per rate-limited site, in
  // site order (deterministic given the same accounting).
  std::map<std::string_view, std::uint64_t> suppressed_by_site;
  {
    const std::lock_guard lock{mutex_};
    for (const auto& state : sites_) {
      const auto n = state->suppressed.load(std::memory_order_relaxed);
      if (n > 0) suppressed_by_site[state->site] += n;
    }
  }
  for (const auto& [site, n] : suppressed_by_site) {
    out += "{\"level\":\"info\",\"site\":\"";
    out += net::json_escape(site);
    out += "\",\"msg\":\"rate limit: ";
    out += std::to_string(n);
    out += " record(s) suppressed\",\"suppressed\":";
    out += std::to_string(n);
    out += "}\n";
  }
  return out;
}

std::string Log::canonical_text() const {
  // The deterministic multiset view: (level, site, message) sorted, with
  // repeats aggregated across threads and timestamps/tids dropped. Below
  // the per-site cap this is a pure function of the work performed.
  std::map<std::tuple<int, std::string, std::string>, std::uint64_t> agg;
  for (const auto& record : merged())
    agg[{static_cast<int>(record.level), record.site, record.message}] +=
        record.repeats;
  std::string out;
  for (const auto& [key, repeats] : agg) {
    const auto& [level, site, message] = key;
    out += to_string(static_cast<LogLevel>(level));
    out += ' ';
    out += site;
    out += ": ";
    out += message;
    if (repeats > 1) {
      out += " (x";
      out += std::to_string(repeats);
      out += ')';
    }
    out += '\n';
  }
  return out;
}

bool Log::flush() {
  if (config_.jsonl_path.empty()) return true;
  std::ofstream os{config_.jsonl_path};
  if (!os) return false;
  os << to_jsonl();
  return os.good();
}

}  // namespace ran::obs
