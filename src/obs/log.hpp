// Structured logging: the operator-facing channel next to the metrics
// registry (what happened, counted) and the tracer (when it happened).
// A log record says WHY — "dropped 3 malformed trace blocks", "region
// desertsw: ring completion found no second AggCO" — with a level, a
// stable site id, and a human message.
//
// Design mirrors obs::Tracer: each thread appends to its own buffer
// without synchronization (the only lock is per-(thread, log)
// registration and export), and buffers are merged in a fixed
// (ts, tid, seq) order so the same buffer contents always serialize to
// the same bytes. On top of that the log adds:
//   * per-site rate limiting — a global (cross-thread) cap on records
//     kept per site id; excess records are counted, not stored, so a hot
//     mis-parse loop cannot grow memory or drown the file sink;
//   * consecutive dedup — a thread repeating the same (site, level,
//     message) collapses into one record with a repeat count;
//   * two sinks: a JSONL file written at flush()/destruction (merged
//     deterministically) and an immediate stderr text sink for records
//     at/above its threshold (warn by default).
//
// Determinism contract: timestamps and thread ids are wall-clock /
// scheduling artifacts, so the JSONL stream is VOLATILE observability
// (never part of a manifest). What IS deterministic is the multiset of
// (level, site, message) records below the rate cap: a pure function of
// the work performed, exposed via canonical_text() and byte-stable at
// any thread count (the test_log_diff golden).
//
// Cost model: a null Log* is the off switch — instrumented code performs
// one pointer test. enabled() lets hot paths skip message formatting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// One recorded log line.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::uint64_t ts_us = 0;       ///< microseconds since the log's epoch
  std::uint32_t tid = 0;         ///< registration-order thread id
  std::uint64_t seq = 0;         ///< per-thread sequence (merge tie-break)
  const char* site = "";         ///< static-lifetime site id ("ingest.drop")
  std::string message;
  std::uint64_t repeats = 1;     ///< consecutive identical records folded in
};

struct LogConfig {
  /// Records below this level are dropped at the call site.
  LogLevel min_level = LogLevel::kInfo;
  /// Records at/above this level also go to stderr immediately (text).
  LogLevel stderr_level = LogLevel::kWarn;
  /// Set false to silence the stderr sink entirely (tests, benches).
  bool stderr_sink = true;
  /// JSONL file written by flush() / the destructor; empty = no file.
  std::string jsonl_path;
  /// Global cap on records *kept* per site id (suppressed ones are still
  /// counted exactly); 0 = unlimited.
  std::uint64_t per_site_limit = 64;
};

class Log {
 public:
  explicit Log(LogConfig config = {});
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  /// Flushes the JSONL sink (best-effort) on destruction.
  ~Log();

  [[nodiscard]] const LogConfig& config() const { return config_; }

  /// True when `level` passes the min-level filter — test before paying
  /// for message formatting on hot paths.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= config_.min_level;
  }

  /// Records one message under a static-lifetime site id. Thread-safe,
  /// lock-free after the calling thread's first record.
  void log(LogLevel level, const char* site, std::string_view message);
  void debug(const char* site, std::string_view message) {
    log(LogLevel::kDebug, site, message);
  }
  void info(const char* site, std::string_view message) {
    log(LogLevel::kInfo, site, message);
  }
  void warn(const char* site, std::string_view message) {
    log(LogLevel::kWarn, site, message);
  }
  void error(const char* site, std::string_view message) {
    log(LogLevel::kError, site, message);
  }

  /// Exact number of records accepted at `level` (including rate-limited
  /// ones, which are counted before the cap applies).
  [[nodiscard]] std::uint64_t count(LogLevel level) const;
  /// Exact number of records the per-site cap suppressed, per site /
  /// total. Export-time use; must not race recording threads.
  [[nodiscard]] std::uint64_t suppressed(std::string_view site) const;
  [[nodiscard]] std::uint64_t suppressed_total() const;

  /// Every kept record merged in (ts, tid, seq) order: the same buffer
  /// contents always produce the same sequence. Call after worker
  /// threads have joined.
  [[nodiscard]] std::vector<LogRecord> merged() const;

  /// The merged stream as JSON lines (one object per record, trailing
  /// per-site suppression records at the end). The volatile export.
  [[nodiscard]] std::string to_jsonl() const;

  /// The deterministic view: kept records sorted by (level, site,
  /// message) with repeats aggregated, timestamps and thread ids
  /// omitted. Below the rate cap this is a pure function of the work
  /// performed — byte-stable at any thread count.
  [[nodiscard]] std::string canonical_text() const;

  /// Writes to_jsonl() to config().jsonl_path (no-op without a path).
  /// False when the file cannot be written.
  bool flush();

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<LogRecord> records;
  };
  struct SiteState {
    const char* site = "";
    /// Records accepted for this site across all threads (exact; adds
    /// commute, so relaxed atomics suffice).
    std::atomic<std::uint64_t> accepted{0};
    /// Records dropped by the per-site cap (exact).
    std::atomic<std::uint64_t> suppressed{0};
  };

  ThreadBuffer& local();
  /// The interned state for a site id (registered under the lock on a
  /// thread's first use of the site, cached thread-locally afterwards).
  SiteState& site_state(const char* site);
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  const std::uint64_t id_;  ///< process-unique, for the thread-local cache
  LogConfig config_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  /// Site ids are interned by text under the lock on first use; the hot
  /// path then runs on cached pointers and relaxed atomics only.
  std::vector<std::unique_ptr<SiteState>> sites_;
  std::atomic<std::uint64_t> counts_by_level_[4] = {};
};

}  // namespace ran::obs
