#include "manifest.hpp"

#include <fstream>

#include "netbase/json.hpp"

namespace ran::obs {

void RunManifest::set_config(const std::string& key,
                             const std::string& value) {
  config_[key] = Scalar{Scalar::Kind::kString, value, 0, 0, 0.0, false};
}

void RunManifest::set_config(const std::string& key, std::int64_t value) {
  config_[key] = Scalar{Scalar::Kind::kInt, {}, 0, value, 0.0, false};
}

void RunManifest::set_config(const std::string& key, double value) {
  config_[key] = Scalar{Scalar::Kind::kDouble, {}, 0, 0, value, false};
}

void RunManifest::set_config(const std::string& key, bool value) {
  config_[key] = Scalar{Scalar::Kind::kBool, {}, 0, 0, 0.0, value};
}

void RunManifest::add_summary(const std::string& section,
                              const std::string& key, std::uint64_t value) {
  summary_[section][key] = Scalar{Scalar::Kind::kUint, {}, value, 0, 0.0,
                                  false};
}

void RunManifest::add_summary(const std::string& section,
                              const std::string& key, double value) {
  summary_[section][key] = Scalar{Scalar::Kind::kDouble, {}, 0, 0, value,
                                  false};
}

void RunManifest::add_summary(const std::string& section,
                              const std::string& key,
                              const std::string& value) {
  summary_[section][key] = Scalar{Scalar::Kind::kString, value, 0, 0, 0.0,
                                  false};
}

void RunManifest::capture(const Registry& registry) {
  metrics_ = registry.snapshot();
  captured_ = true;
}

void RunManifest::capture_provenance(const ProvenanceLog& log) {
  provenance_rules_ = log.rule_counts();
  provenance_edges_ = log.edges().size();
  provenance_decision_cap_ = log.decision_cap();
  provenance_dropped_decisions_ = log.dropped_decisions();
  provenance_captured_ = true;
}

void RunManifest::capture_resources(const ResourceProfiler& profiler) {
  resources_ = profiler.snapshot();
  resources_captured_ = true;
}

namespace {

void write_scalar(net::JsonWriter& json, const RunManifest::Scalar& v) {
  using Kind = RunManifest::Scalar::Kind;
  switch (v.kind) {
    case Kind::kString: json.value(v.s); break;
    case Kind::kUint: json.value(v.u); break;
    case Kind::kInt: json.value(v.i); break;
    case Kind::kDouble: json.value(v.d); break;
    case Kind::kBool: json.value(v.b); break;
  }
}

void write_stage(net::JsonWriter& json, const StageSnapshot& stage,
                 bool include_timings) {
  json.begin_object();
  json.key("name").value(stage.name);
  json.key("items").value(stage.items);
  if (include_timings) json.key("wall_ms").value(stage.wall_ms);
  if (!stage.children.empty()) {
    json.key("children").begin_array();
    for (const auto& child : stage.children)
      write_stage(json, child, include_timings);
    json.end_array();
  }
  json.end_object();
}

}  // namespace

std::string RunManifest::to_json(const ManifestOptions& options) const {
  net::JsonWriter json;
  json.begin_object();
  json.key("name").value(name_);

  json.key("config").begin_object();
  for (const auto& [key, value] : config_) {
    json.key(key);
    write_scalar(json, value);
  }
  json.end_object();

  json.key("summary").begin_object();
  for (const auto& [section, entries] : summary_) {
    json.key(section).begin_object();
    for (const auto& [key, value] : entries) {
      json.key(key);
      write_scalar(json, value);
    }
    json.end_object();
  }
  json.end_object();

  json.key("metrics").begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : metrics_.counters)
    json.key(name).value(value);
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : metrics_.gauges)
    json.key(name).value(value);
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, hist] : metrics_.histograms) {
    json.key(name).begin_object();
    json.key("count").value(hist.count);
    json.key("sum").value(hist.sum);
    json.key("mean").value(hist.mean());
    json.key("p50").value(hist.percentile(0.50));
    json.key("p90").value(hist.percentile(0.90));
    json.key("p99").value(hist.percentile(0.99));
    json.key("buckets").begin_array();
    for (const auto& [lower, count] : hist.buckets)
      json.begin_array().value(lower).value(count).end_array();
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();

  if (provenance_captured_) {
    json.key("provenance").begin_object();
    json.key("decision_cap").value(provenance_decision_cap_);
    json.key("dropped_decisions").value(provenance_dropped_decisions_);
    json.key("edges").value(provenance_edges_);
    json.key("rules").begin_object();
    for (const auto& [rule, counts] : provenance_rules_) {
      json.key(rule).begin_object();
      json.key("kept").value(counts.kept);
      json.key("removed").value(counts.removed);
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }

  if (captured_) {
    json.key("stages");
    write_stage(json, metrics_.stages, options.include_timings);
  }

  if (resources_captured_) {
    json.key("resources").begin_object();
    json.key("nonvoluntary_ctxt_switches")
        .value(resources_.nonvoluntary_ctxt);
    json.key("vm_peak_kb").value(resources_.vm_peak_kb);
    json.key("vm_rss_kb").value(resources_.vm_rss_kb);
    json.key("voluntary_ctxt_switches").value(resources_.voluntary_ctxt);
    json.key("stages").begin_array();
    for (const auto& stage : resources_.stages) {
      json.begin_object();
      json.key("name").value(stage.name);
      json.key("rss_begin_kb").value(stage.rss_begin_kb);
      json.key("rss_end_kb").value(stage.rss_end_kb);
      json.key("delta_kb").value(stage.delta_kb);
      json.key("voluntary_ctxt").value(stage.voluntary_ctxt_delta);
      json.key("nonvoluntary_ctxt").value(stage.nonvoluntary_ctxt_delta);
      json.end_object();
    }
    json.end_array();
    json.key("structures").begin_object();
    for (const auto& [name, bytes] : resources_.structure_bytes)
      json.key(name).value(bytes);
    json.end_object();
    json.end_object();
  }

  if (options.include_timings) {
    // The concurrency section: lock-site wait accounting and parallel
    // efficiency, derived from the captured volatile metrics the
    // TimedMutex wrappers and the campaign runner publish. Timings-only
    // (contention is pure scheduling) and tolerance-compared by
    // manifest_diff like `resources` — values are milliseconds and
    // ratios, scales a diff tolerance can absorb.
    json.key("concurrency").begin_object();
    json.key("locks").begin_object();
    for (const auto& [name, hist] : metrics_.volatile_histograms) {
      constexpr std::string_view kPrefix = "lock.";
      constexpr std::string_view kSuffix = ".wait_us";
      if (name.size() <= kPrefix.size() + kSuffix.size() ||
          name.compare(0, kPrefix.size(), kPrefix) != 0 ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0)
        continue;
      const std::string site = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      const auto counter_of = [this](const std::string& counter_name) {
        const auto it = metrics_.volatile_counters.find(counter_name);
        return it == metrics_.volatile_counters.end() ? std::uint64_t{0}
                                                      : it->second;
      };
      const auto contended =
          counter_of(std::string{kPrefix} + site + ".contended");
      const auto uncontended =
          counter_of(std::string{kPrefix} + site + ".uncontended");
      json.key(site).begin_object();
      json.key("acquisitions").value(contended + uncontended);
      json.key("contended").value(contended);
      json.key("wait_ms").value(static_cast<double>(hist.sum) / 1000.0);
      json.key("wait_p99_us").value(hist.percentile(0.99));
      json.end_object();
    }
    json.end_object();
    json.key("stages").begin_object();
    for (const auto& [name, value] : metrics_.volatile_gauges) {
      constexpr std::string_view kPrefix = "campaign.stage.";
      constexpr std::string_view kSuffix = ".efficiency";
      if (name.size() <= kPrefix.size() + kSuffix.size() ||
          name.compare(0, kPrefix.size(), kPrefix) != 0 ||
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) != 0)
        continue;
      const std::string stage = name.substr(
          kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
      json.key(stage).begin_object();
      json.key("efficiency").value(value);
      json.end_object();
    }
    json.end_object();
    if (const auto it =
            metrics_.volatile_gauges.find("campaign.parallel_efficiency");
        it != metrics_.volatile_gauges.end())
      json.key("parallel_efficiency").value(it->second);
    json.end_object();

    json.key("volatile").begin_object();
    json.key("counters").begin_object();
    for (const auto& [name, value] : metrics_.volatile_counters)
      json.key(name).value(value);
    json.end_object();
    json.key("gauges").begin_object();
    for (const auto& [name, value] : metrics_.volatile_gauges)
      json.key(name).value(value);
    json.end_object();
    json.key("histograms").begin_object();
    for (const auto& [name, hist] : metrics_.volatile_histograms) {
      json.key(name).begin_object();
      json.key("count").value(hist.count);
      json.key("sum").value(hist.sum);
      json.key("mean").value(hist.mean());
      json.key("p50").value(hist.percentile(0.50));
      json.key("p90").value(hist.percentile(0.90));
      json.key("p99").value(hist.percentile(0.99));
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }

  json.end_object();
  return json.str();
}

bool RunManifest::write_file(const std::string& path,
                             const ManifestOptions& options) const {
  std::ofstream os{path};
  if (!os) return false;
  os << to_json(options) << '\n';
  return os.good();
}

}  // namespace ran::obs
