// RunManifest: the machine-readable record every pipeline run emits —
// a config echo, summary statistics of what was produced (corpus /
// clusters / graph sizes), the captured metrics registry, and the stage
// tree. Serialized through net::JsonWriter.
//
// By default the JSON contains only deterministic content: the same study
// at any parallelism serializes to identical bytes (the golden test in
// tests/test_obs.cpp). Wall-clock stage times and volatile metrics are
// opt-in via ManifestOptions::include_timings. Execution knobs that do
// not affect results (thread counts) are deliberately NOT part of the
// config echo for the same reason.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "metrics.hpp"
#include "provenance.hpp"
#include "resource.hpp"

namespace ran::obs {

struct ManifestOptions {
  /// Also emit wall-clock stage times and volatile metrics. Off by
  /// default: the deterministic manifest is byte-stable across thread
  /// counts and machines.
  bool include_timings = false;
};

class RunManifest {
 public:
  RunManifest() = default;
  explicit RunManifest(std::string name) : name_(std::move(name)) {}

  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Records one result-affecting config knob (echoed under "config").
  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, std::int64_t value);
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, bool value);

  /// Records one summary statistic under "summary.<section>".
  void add_summary(const std::string& section, const std::string& key,
                   std::uint64_t value);
  void add_summary(const std::string& section, const std::string& key,
                   double value);
  void add_summary(const std::string& section, const std::string& key,
                   const std::string& value);

  /// Copies the registry's current metrics and stage tree into the
  /// manifest (a shared registry accumulates across runs; capture late).
  void capture(const Registry& registry);

  /// Copies the provenance decision accounting into the manifest: the
  /// edge total plus per-rule kept/removed counts, serialized under
  /// "provenance". Deterministic — the log is a pure function of the
  /// corpus analyzed, so the section is byte-stable across thread counts
  /// and its per-rule totals cross-check the Tables 4/5 counters.
  void capture_provenance(const ProvenanceLog& log);

  /// Copies the resource profiler's state into the manifest: peak RSS (VmHWM) /
  /// VmRSS, per-stage RSS deltas, and the named structure-size accounting,
  /// serialized under "resources". The whole section is VOLATILE (RSS is
  /// allocator- and thread-count-dependent); manifest_diff compares it
  /// under tolerance, never byte-exactly, so capturing it does not break
  /// cross-thread-count manifest stability at the gate level.
  void capture_resources(const ResourceProfiler& profiler);

  [[nodiscard]] std::string to_json(const ManifestOptions& options = {}) const;
  /// Writes to_json() + newline to `path`; false when the file cannot be
  /// opened.
  bool write_file(const std::string& path,
                  const ManifestOptions& options = {}) const;

  /// One JSON scalar, remembering which overload produced it so integers
  /// serialize without a decimal point.
  struct Scalar {
    enum class Kind { kString, kUint, kInt, kDouble, kBool };
    Kind kind = Kind::kString;
    std::string s;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double d = 0.0;
    bool b = false;
  };

 private:
  std::string name_;
  std::map<std::string, Scalar> config_;
  std::map<std::string, std::map<std::string, Scalar>> summary_;
  MetricsSnapshot metrics_;
  bool captured_ = false;
  std::map<std::string, RuleCounts> provenance_rules_;
  std::uint64_t provenance_edges_ = 0;
  std::uint64_t provenance_decision_cap_ = 0;
  std::uint64_t provenance_dropped_decisions_ = 0;
  bool provenance_captured_ = false;
  ResourceProfiler::Snapshot resources_;
  bool resources_captured_ = false;
};

}  // namespace ran::obs
