#include "metrics.hpp"

#include "netbase/contracts.hpp"

namespace ran::obs {

template <typename T>
T& Registry::lookup(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& store,
    std::string_view name) {
  const std::lock_guard lock{mutex_};
  const auto it = store.find(name);
  if (it != store.end()) return *it->second;
  return *store.emplace(std::string{name}, std::make_unique<T>())
              .first->second;
}

Counter& Registry::counter(std::string_view name) {
  return lookup(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return lookup(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}

Counter& Registry::volatile_counter(std::string_view name) {
  return lookup(volatile_counters_, name);
}

Gauge& Registry::volatile_gauge(std::string_view name) {
  return lookup(volatile_gauges_, name);
}

namespace {

StageSnapshot copy_stage(const StageNode& node) {
  StageSnapshot out;
  out.name = node.name;
  out.items = node.items;
  out.wall_ms = node.wall_ms;
  out.children.reserve(node.children.size());
  for (const auto& child : node.children)
    out.children.push_back(copy_stage(*child));
  return out;
}

}  // namespace

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock{mutex_};
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_)
    out.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    out.gauges.emplace(name, gauge->value());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = hist->count();
    data.sum = hist->sum();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (const auto n = hist->bucket_count(b); n > 0)
        data.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
    out.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, counter] : volatile_counters_)
    out.volatile_counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : volatile_gauges_)
    out.volatile_gauges.emplace(name, gauge->value());
  out.stages = copy_stage(stage_root_);
  return out;
}

StageNode* Registry::begin_stage(std::string name) {
  const std::lock_guard lock{mutex_};
  StageNode* parent =
      stage_stack_.empty() ? &stage_root_ : stage_stack_.back();
  parent->children.push_back(std::make_unique<StageNode>());
  StageNode* node = parent->children.back().get();
  node->name = std::move(name);
  stage_stack_.push_back(node);
  return node;
}

void Registry::end_stage(StageNode* node, std::uint64_t items,
                         double wall_ms) {
  const std::lock_guard lock{mutex_};
  RAN_EXPECTS(!stage_stack_.empty() && stage_stack_.back() == node);
  node->items = items;
  node->wall_ms = wall_ms;
  stage_stack_.pop_back();
}

StageTimer::StageTimer(Registry* registry, std::string name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  node_ = registry_->begin_stage(std::move(name));
  start_ = std::chrono::steady_clock::now();
}

void StageTimer::stop() {
  if (registry_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  registry_->end_stage(
      node_, items_,
      std::chrono::duration<double, std::milli>(elapsed).count());
  registry_ = nullptr;
}

StageTimer::~StageTimer() { stop(); }

}  // namespace ran::obs
