#include "metrics.hpp"

#include <algorithm>

#include "netbase/contracts.hpp"
#include "resource.hpp"
#include "trace.hpp"

namespace ran::obs {

template <typename T>
T& Registry::lookup(
    std::map<std::string, std::unique_ptr<T>, std::less<>>& store,
    std::string_view name) {
  const std::lock_guard lock{mutex_};
  const auto it = store.find(name);
  if (it != store.end()) return *it->second;
  return *store.emplace(std::string{name}, std::make_unique<T>())
              .first->second;
}

Counter& Registry::counter(std::string_view name) {
  return lookup(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return lookup(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}

Counter& Registry::volatile_counter(std::string_view name) {
  return lookup(volatile_counters_, name);
}

Gauge& Registry::volatile_gauge(std::string_view name) {
  return lookup(volatile_gauges_, name);
}

Histogram& Registry::volatile_histogram(std::string_view name) {
  return lookup(volatile_histograms_, name);
}

double MetricsSnapshot::HistogramData::percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  // A single observation is known exactly (it IS the sum): return it for
  // every q instead of interpolating inside its bucket, so single-sample
  // histograms serialize the true value, not a bucket-midpoint estimate.
  if (count == 1) return static_cast<double>(sum);
  q = std::clamp(q, 0.0, 1.0);
  // The (1-based) rank of the q-th observation under nearest-rank.
  const double rank = q * static_cast<double>(count);
  double seen = 0.0;
  for (const auto& [lower, n] : buckets) {
    const double next = seen + static_cast<double>(n);
    if (next < rank) {
      seen = next;
      continue;
    }
    // Interpolate inside [lower, upper): bucket 0 holds only the value 0.
    if (lower == 0) return 0.0;
    const double upper = static_cast<double>(lower) * 2.0;
    const double fraction =
        n == 0 ? 0.0 : (rank - seen) / static_cast<double>(n);
    return static_cast<double>(lower) +
           (upper - static_cast<double>(lower)) * fraction;
  }
  // q == 1 with rounding slack: the top of the last non-empty bucket.
  const auto last = buckets.back().first;
  return last == 0 ? 0.0 : static_cast<double>(last) * 2.0;
}

namespace {

StageSnapshot copy_stage(const StageNode& node) {
  StageSnapshot out;
  out.name = node.name;
  out.items = node.items;
  out.wall_ms = node.wall_ms;
  out.children.reserve(node.children.size());
  for (const auto& child : node.children)
    out.children.push_back(copy_stage(*child));
  return out;
}

}  // namespace

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock{mutex_};
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_)
    out.counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : gauges_)
    out.gauges.emplace(name, gauge->value());
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = hist->count();
    data.sum = hist->sum();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (const auto n = hist->bucket_count(b); n > 0)
        data.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
    out.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, counter] : volatile_counters_)
    out.volatile_counters.emplace(name, counter->value());
  for (const auto& [name, gauge] : volatile_gauges_)
    out.volatile_gauges.emplace(name, gauge->value());
  for (const auto& [name, hist] : volatile_histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = hist->count();
    data.sum = hist->sum();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      if (const auto n = hist->bucket_count(b); n > 0)
        data.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
    out.volatile_histograms.emplace(name, std::move(data));
  }
  out.stages = copy_stage(stage_root_);
  return out;
}

MetricsSnapshot Registry::scrape() const {
  auto out = snapshot();
  out.scrape_seq = scrape_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  return out;
}

StageNode* Registry::begin_stage(std::string name) {
  const std::lock_guard lock{mutex_};
  StageNode* parent =
      stage_stack_.empty() ? &stage_root_ : stage_stack_.back();
  parent->children.push_back(std::make_unique<StageNode>());
  StageNode* node = parent->children.back().get();
  node->name = std::move(name);
  stage_stack_.push_back(node);
  return node;
}

std::string Registry::current_stage_name() const {
  const std::lock_guard lock{mutex_};
  return stage_stack_.empty() ? std::string{} : stage_stack_.back()->name;
}

void Registry::end_stage(StageNode* node, std::uint64_t items,
                         double wall_ms) {
  const std::lock_guard lock{mutex_};
  RAN_EXPECTS(!stage_stack_.empty() && stage_stack_.back() == node);
  node->items = items;
  node->wall_ms = wall_ms;
  stage_stack_.pop_back();
}

StageTimer::StageTimer(Registry* registry, std::string name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  traced_ = registry_->tracer() != nullptr;
  profiled_ = registry_->resource_profiler() != nullptr;
  if (traced_ || profiled_) {
    name_ = name;
    if (traced_) registry_->tracer()->begin(name_, "stage");
    if (profiled_) registry_->resource_profiler()->on_stage_begin(name_);
  }
  node_ = registry_->begin_stage(std::move(name));
  start_ = std::chrono::steady_clock::now();
}

void StageTimer::stop() {
  if (registry_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  registry_->end_stage(
      node_, items_,
      std::chrono::duration<double, std::milli>(elapsed).count());
  // Guarded on what the constructor saw: a tracer or profiler attached
  // mid-stage must not see an end with no matching begin.
  if (traced_)
    if (auto* tracer = registry_->tracer()) tracer->end(name_);
  if (profiled_)
    if (auto* profiler = registry_->resource_profiler())
      profiler->on_stage_end(name_);
  registry_ = nullptr;
}

StageTimer::~StageTimer() { stop(); }

}  // namespace ran::obs
