// Observability core: a thread-safe metrics registry (counters, gauges,
// log2-bucketed histograms) plus the RAII StageTimer that nests into a
// stage tree mirroring the paper's methodology phases.
//
// Determinism contract: metrics registered through counter() / gauge() /
// histogram() must be pure functions of the work performed — the same
// campaign produces the same values at any thread count — and are what a
// RunManifest serializes by default. Anything derived from wall-clock or
// scheduling (tasks/sec, worker utilization, cache hit rates that depend
// on interleaving) goes through volatile_counter() / volatile_gauge() and
// is excluded from deterministic snapshots. Instrumentation never feeds
// back into inference: enabling a registry cannot change a corpus or a
// graph, only describe it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

class Log;
class ResourceProfiler;
class Tracer;

/// Monotonic event count. Relaxed atomics: totals are exact because adds
/// commute; no ordering is implied between metrics.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a detected parameter, a final ratio).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative integers with fixed log-scale buckets:
/// bucket 0 holds the value 0, bucket b >= 1 holds [2^(b-1), 2^b). Fixed
/// edges keep merged/parallel observations deterministic — no dynamic
/// rebucketing, no floating-point boundaries.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  ///< bit_width(uint64) + 1

  void observe(std::uint64_t value) {
    buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] static int bucket_of(std::uint64_t value) {
    return static_cast<int>(std::bit_width(value));
  }
  /// Smallest value landing in `bucket` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_lower_bound(int bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One node of the stage tree. `items` counts deterministic work units
/// (targets probed, edges examined); `wall_ms` is timing-only and omitted
/// from deterministic serialization.
struct StageNode {
  std::string name;
  std::uint64_t items = 0;
  double wall_ms = 0.0;
  std::vector<std::unique_ptr<StageNode>> children;
};

/// Value-type copy of a stage tree, as captured into a manifest.
struct StageSnapshot {
  std::string name;
  std::uint64_t items = 0;
  double wall_ms = 0.0;
  std::vector<StageSnapshot> children;
};

/// Point-in-time copy of a registry, ordered by metric name.
struct MetricsSnapshot {
  struct HistogramData {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (bucket lower bound, count) for non-empty buckets only.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

    /// Defined on empty histograms (0.0, not the 0/0 NaN that would
    /// serialize a manifest into invalid JSON).
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }

    /// Quantile estimate from the log2 buckets (q in [0, 1]): finds the
    /// bucket holding the q-th observation and interpolates linearly
    /// inside its [lower, 2*lower) range. Exact for bucket edges, within
    /// one bucket width otherwise; 0.0 on empty histograms. Deterministic
    /// — a pure function of the (deterministic) bucket counts, so p50/
    /// p90/p99 are safe to serialize into manifests.
    [[nodiscard]] double percentile(double q) const;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, std::uint64_t> volatile_counters;
  std::map<std::string, double> volatile_gauges;
  std::map<std::string, HistogramData> volatile_histograms;
  StageSnapshot stages;
  /// Scrape ordinal stamped by Registry::scrape(); 0 for plain
  /// snapshot() copies (manifest captures do not consume the sequence).
  std::uint64_t scrape_seq = 0;
};

/// Thread-safe, name-keyed metric store. Lookup takes a mutex; the
/// returned references are stable for the registry's lifetime, so hot
/// paths resolve once and increment lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  /// Execution-dependent variants: values may differ between runs of the
  /// same campaign (thread counts, cache interleaving, wall time).
  [[nodiscard]] Counter& volatile_counter(std::string_view name);
  [[nodiscard]] Gauge& volatile_gauge(std::string_view name);
  /// Wall-clock distributions (request latencies): always volatile —
  /// timing histograms are never deterministic.
  [[nodiscard]] Histogram& volatile_histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// snapshot() for scrapers: additionally stamps a monotonically
  /// increasing scrape sequence number (1, 2, ...). Scraping is
  /// delta/reset-free — nothing is cleared, counters only grow, so for
  /// any two scrapes s1 before s2 every counter satisfies
  /// s2[c] >= s1[c], and s2[c] - s1[c] is exactly the number of
  /// increments that completed between the two reads once writers
  /// quiesce. Concurrent scrapers never perturb each other (no
  /// read-and-reset), which is what makes repeated live scrapes exact.
  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Attaches an event tracer: StageTimer scopes (and the campaign
  /// runner, which resolves it from its registry) emit begin/end spans
  /// through it. Set before instrumented work starts and keep the tracer
  /// alive for the registry's lifetime; null detaches. Tracing is
  /// volatile observability — it never appears in deterministic
  /// manifests and never feeds back into inference.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }

  /// Attaches a structured logger: pipelines, the campaign runner, and
  /// the ingest boundary resolve it from their registry and emit real
  /// warnings through it ("dropped N malformed trace blocks") instead of
  /// only bumping counters. Same lifetime discipline as set_tracer; null
  /// detaches, and a null logger costs call sites one pointer test.
  void set_logger(Log* log) { log_ = log; }
  [[nodiscard]] Log* logger() const { return log_; }

  /// Attaches a resource profiler: every StageTimer scope then samples
  /// process memory at open and close, and pipelines report their big
  /// structures' sizes into it. Null detaches.
  void set_resource_profiler(ResourceProfiler* profiler) {
    resources_ = profiler;
  }
  [[nodiscard]] ResourceProfiler* resource_profiler() const {
    return resources_;
  }

  // --- stage tree (used via StageTimer) ---------------------------------
  /// Opens a child of the innermost open stage and returns its node.
  [[nodiscard]] StageNode* begin_stage(std::string name);
  /// Name of the innermost open stage ("" outside any StageTimer scope) —
  /// lets instrumentation deep inside a stage (the campaign runner's
  /// efficiency gauges) label its metrics by the stage that ran it.
  [[nodiscard]] std::string current_stage_name() const;
  /// Closes `node`, recording its work items and wall time. Stages close
  /// in LIFO order (enforced), which RAII timers guarantee.
  void end_stage(StageNode* node, std::uint64_t items, double wall_ms);

 private:
  template <typename T>
  [[nodiscard]] T& lookup(std::map<std::string, std::unique_ptr<T>,
                                   std::less<>>& store,
                          std::string_view name);

  Tracer* tracer_ = nullptr;
  Log* log_ = nullptr;
  ResourceProfiler* resources_ = nullptr;
  mutable std::atomic<std::uint64_t> scrape_seq_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>>
      volatile_counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> volatile_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      volatile_histograms_;
  StageNode stage_root_{"run", 0, 0.0, {}};
  std::vector<StageNode*> stage_stack_;
};

/// RAII scope timing one methodology stage. Null registry makes it a
/// no-op, so instrumented code needs no branches. add_items() records the
/// stage's deterministic work count (targets, edges, addresses).
class StageTimer {
 public:
  StageTimer(Registry* registry, std::string name);
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer();

  void add_items(std::uint64_t n) { items_ += n; }
  /// Closes the stage before the scope ends (idempotent). Useful when a
  /// registry snapshot is taken later in the same scope.
  void stop();

 private:
  Registry* registry_ = nullptr;
  StageNode* node_ = nullptr;
  std::uint64_t items_ = 0;
  std::chrono::steady_clock::time_point start_;
  /// Retained while the registry has a tracer or resource profiler
  /// attached, for the matching end-span / end-sample call.
  std::string name_;
  /// Which hooks saw the begin — a tracer/profiler attached mid-stage
  /// must not receive an end with no matching begin.
  bool traced_ = false;
  bool profiled_ = false;
};

}  // namespace ran::obs
