#include "provenance.hpp"

#include <algorithm>

#include "netbase/strings.hpp"

namespace ran::obs {

void ProvenanceLog::set_decision_cap(std::size_t cap) {
  decision_cap_ = std::max<std::size_t>(cap, 2);
}

std::uint64_t ProvenanceLog::dropped_decisions() const {
  std::uint64_t total = 0;
  for (const auto& [key, edge] : edges_) total += edge.dropped_decisions;
  return total;
}

void ProvenanceLog::append_decision(EdgeProvenance& edge,
                                    EdgeDecision decision) {
  edge.decisions.push_back(std::move(decision));
  if (edge.decisions.size() <= decision_cap_) return;
  // Elide the oldest entry of the tail window: the first cap/2 records
  // (how the edge came to exist) and the most recent ones (its current
  // fate, including decisions.back() that kept() reads) both survive.
  edge.decisions.erase(edge.decisions.begin() +
                       static_cast<std::ptrdiff_t>(decision_cap_ / 2));
  ++edge.dropped_decisions;
}

void ProvenanceLog::add_support(const std::string& from,
                                const std::string& to, std::uint64_t count,
                                const std::string& first_trace,
                                const std::string& last_trace) {
  auto& edge = edges_[{from, to}];
  edge.observations += count;
  if (edge.first_trace.empty()) edge.first_trace = first_trace;
  if (!last_trace.empty()) edge.last_trace = last_trace;
}

void ProvenanceLog::record(const std::string& from, const std::string& to,
                           std::string_view rule, bool kept,
                           std::string detail) {
  record_uncounted(from, to, rule, kept, std::move(detail));
  count_rule(rule, kept);
}

void ProvenanceLog::record_uncounted(const std::string& from,
                                     const std::string& to,
                                     std::string_view rule, bool kept,
                                     std::string detail) {
  append_decision(edges_[{from, to}],
                  {std::string{rule}, kept, std::move(detail)});
}

void ProvenanceLog::count_rule(std::string_view rule, bool kept,
                               std::uint64_t n) {
  auto& counts = rules_[std::string{rule}];
  if (kept)
    counts.kept += n;
  else
    counts.removed += n;
}

void ProvenanceLog::restore_edge(const std::string& from,
                                 const std::string& to,
                                 EdgeProvenance edge) {
  edges_[{from, to}] = std::move(edge);
}

void ProvenanceLog::restore_rule(const std::string& rule, RuleCounts counts) {
  rules_[rule] = counts;
}

void ProvenanceLog::restore_mapping(const std::string& co,
                                    const std::string& rule,
                                    std::uint64_t count) {
  mapping_[co][rule] = count;
}

void ProvenanceLog::note_mapping(const std::string& co,
                                 std::string_view rule) {
  ++mapping_[co][std::string{rule}];
}

const EdgeProvenance* ProvenanceLog::find(const std::string& from,
                                          const std::string& to) const {
  const auto it = edges_.find({from, to});
  return it == edges_.end() ? nullptr : &it->second;
}

std::string ProvenanceLog::explain(const std::string& from,
                                   const std::string& to) const {
  const auto* edge = find(from, to);
  std::string a = from;
  std::string b = to;
  if (edge == nullptr) {
    // Edges are directed in traceroute order; accept the reverse too.
    edge = find(to, from);
    if (edge != nullptr) std::swap(a, b);
  }
  std::string out;
  if (edge == nullptr) {
    out = "edge " + from + " -> " + to +
          ": no provenance record (never observed as a CO adjacency)\n";
    return out;
  }
  out += "edge " + a + " -> " + b + "\n";
  out += net::format("  observations : %llu supporting traces\n",
                     static_cast<unsigned long long>(edge->observations));
  if (!edge->first_trace.empty())
    out += "  first support: " + edge->first_trace + "\n";
  if (!edge->last_trace.empty())
    out += "  last support : " + edge->last_trace + "\n";
  out += "  decision chain:\n";
  if (edge->decisions.empty()) out += "    (none recorded)\n";
  for (std::size_t i = 0; i < edge->decisions.size(); ++i) {
    if (edge->dropped_decisions > 0 && i == decision_cap_ / 2)
      out += net::format(
          "    ... (%llu decision(s) elided by the per-edge cap) ...\n",
          static_cast<unsigned long long>(edge->dropped_decisions));
    const auto& decision = edge->decisions[i];
    out += net::format("    %zu. %-24s %-7s ", i + 1,
                       decision.rule.c_str(),
                       decision.kept ? "KEPT" : "REMOVED");
    out += decision.detail;
    out += '\n';
  }
  out += net::format("  verdict      : %s\n",
                     edge->kept() ? "kept" : "removed");
  for (const auto& co : {a, b}) {
    const auto it = mapping_.find(co);
    if (it == mapping_.end()) continue;
    out += "  mapping of " + co + ":";
    for (const auto& [rule, count] : it->second)
      out += net::format(" %s=%llu", rule.c_str(),
                         static_cast<unsigned long long>(count));
    out += '\n';
  }
  return out;
}

void ProvenanceLog::merge(const ProvenanceLog& other) {
  for (const auto& [key, edge] : other.edges_) {
    auto& mine = edges_[key];
    mine.observations += edge.observations;
    if (mine.first_trace.empty()) mine.first_trace = edge.first_trace;
    if (!edge.last_trace.empty()) mine.last_trace = edge.last_trace;
    mine.dropped_decisions += edge.dropped_decisions;
    // Re-append one by one so the merged chain honours this log's cap.
    for (const auto& decision : edge.decisions)
      append_decision(mine, decision);
  }
  for (const auto& [rule, counts] : other.rules_) {
    rules_[rule].kept += counts.kept;
    rules_[rule].removed += counts.removed;
  }
  for (const auto& [co, rules] : other.mapping_)
    for (const auto& [rule, count] : rules) mapping_[co][rule] += count;
}

}  // namespace ran::obs
