// Inference provenance: the Rocketfuel-style "which observations and
// which rule support this link" bookkeeping. Every CO-level edge the
// pipelines touch carries a record of its supporting traceroutes (count,
// first and last (vp,dst) trace ids) and an ordered chain of rule
// decisions (created / kept / removed, with a deterministic rationale).
// Per-rule kept/removed totals accumulate alongside, which is what a run
// manifest's `provenance` section serializes — the per-rule accounting
// cross-checks the PruningStats/RefineStats counters of Tables 4/5.
//
// Determinism contract (same discipline as the deterministic metrics
// namespace): everything recorded here is a pure function of the corpus
// analyzed, never of scheduling — so explain() output and the manifest
// section are byte-stable at any campaign thread count. The parallel
// prune/refine kernels honor this by writing into one private
// ProvenanceLog shard per worker region and merge()-ing the shards back
// in deterministic region order; serial analysis phases write directly.
// ProvenanceLog itself is NOT thread-safe — a log instance belongs to
// exactly one thread at a time, never to the probe pool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

/// One recorded rule decision about an edge.
struct EdgeDecision {
  std::string rule;    ///< stable rule id, e.g. "prune.mpls"
  bool kept = false;   ///< true: created/kept by the rule; false: removed
  std::string detail;  ///< deterministic rationale (human-readable)
};

/// Everything known about why one CO-level edge exists — or does not.
struct EdgeProvenance {
  std::uint64_t observations = 0;  ///< supporting traceroute count
  std::string first_trace;         ///< "(vp,dst)" of the first support
  std::string last_trace;          ///< "(vp,dst)" of the last support
  /// In pipeline order, bounded by the log's decision cap: when a chain
  /// overflows, the first cap/2 and most recent cap/2 entries survive
  /// and `dropped_decisions` counts the middle that was elided.
  std::vector<EdgeDecision> decisions;
  std::uint64_t dropped_decisions = 0;

  /// The edge's final fate: the verdict of the last decision recorded.
  [[nodiscard]] bool kept() const {
    return !decisions.empty() && decisions.back().kept;
  }
};

/// Aggregated kept/removed totals for one rule id.
struct RuleCounts {
  std::uint64_t kept = 0;
  std::uint64_t removed = 0;
};

class ProvenanceLog {
 public:
  using EdgeKey = std::pair<std::string, std::string>;

  /// Default bound on one edge's decision chain. Rule totals stay exact
  /// regardless — the cap only bounds the per-edge narrative, so a
  /// pathological edge that a refinement loop revisits thousands of
  /// times cannot grow the log without bound.
  static constexpr std::size_t kDefaultDecisionCap = 16;

  /// Adjusts the per-edge decision cap (minimum 2: a chain must keep its
  /// creating rule and its verdict). Applies to future records; set it
  /// before analysis starts.
  void set_decision_cap(std::size_t cap);
  [[nodiscard]] std::size_t decision_cap() const { return decision_cap_; }
  /// Total decisions elided across all edges.
  [[nodiscard]] std::uint64_t dropped_decisions() const;

  /// Records the supporting observations of edge (from, to): total count
  /// plus the first/last supporting trace ids (callers pass traces in
  /// corpus order, so first wins once and last always overwrites).
  void add_support(const std::string& from, const std::string& to,
                   std::uint64_t count, const std::string& first_trace,
                   const std::string& last_trace);

  /// Appends a decision to edge (from, to) and bumps the rule's counts.
  void record(const std::string& from, const std::string& to,
              std::string_view rule, bool kept, std::string detail = {});
  /// As record(), but without touching the per-rule totals — extra
  /// per-edge detail for rules whose natural unit is not one edge (the
  /// small-AggCO exception counts source COs; see count_rule).
  void record_uncounted(const std::string& from, const std::string& to,
                        std::string_view rule, bool kept,
                        std::string detail = {});
  /// Bumps a rule's totals without naming an edge.
  void count_rule(std::string_view rule, bool kept,
                  std::uint64_t n = 1);

  // Restore API: verbatim re-injection of previously serialized state
  // (the snapshot loader's path). Unlike record()/merge(), nothing is
  // re-capped or re-counted — a restored log is byte-for-byte the log
  // that was saved, including elided-middle chains whose dropped counts
  // record() could never reproduce.

  /// Installs edge (from, to) exactly as given, replacing any existing
  /// record for that key.
  void restore_edge(const std::string& from, const std::string& to,
                    EdgeProvenance edge);
  /// Installs a rule's totals exactly as given.
  void restore_rule(const std::string& rule, RuleCounts counts);
  /// Installs one CO's per-rule mapping-support counter.
  void restore_mapping(const std::string& co, const std::string& rule,
                       std::uint64_t count);

  /// Notes that one address mapped into CO `co` via B.1 rule `rule`
  /// (rdns / alias / p2p). Bounded per-CO counters, not per-address
  /// records — enough for explain() to show an endpoint's support.
  void note_mapping(const std::string& co, std::string_view rule);

  [[nodiscard]] const EdgeProvenance* find(const std::string& from,
                                           const std::string& to) const;
  [[nodiscard]] const std::map<EdgeKey, EdgeProvenance>& edges() const {
    return edges_;
  }
  [[nodiscard]] const std::map<std::string, RuleCounts>& rule_counts()
      const {
    return rules_;
  }
  [[nodiscard]] const std::map<std::string,
                               std::map<std::string, std::uint64_t>>&
  mapping_support() const {
    return mapping_;
  }

  /// The full decision chain for edge (from, to) — or (to, from) when
  /// only the reverse direction exists — as a fixed-format text block.
  /// Byte-stable for byte-identical corpora. Unknown edges yield a
  /// one-line "no record" message.
  [[nodiscard]] std::string explain(const std::string& from,
                                    const std::string& to) const;

  /// Merges another log into this one (counts add, decision chains and
  /// trace ids concatenate in `other`'s order). Used by studies that
  /// analyze regions independently.
  void merge(const ProvenanceLog& other);

 private:
  /// Appends to `edge`'s chain, eliding the middle once over the cap.
  void append_decision(EdgeProvenance& edge, EdgeDecision decision);

  std::size_t decision_cap_ = kDefaultDecisionCap;
  std::map<EdgeKey, EdgeProvenance> edges_;
  std::map<std::string, RuleCounts> rules_;
  std::map<std::string, std::map<std::string, std::uint64_t>> mapping_;
};

}  // namespace ran::obs
