#include "resource.hpp"

#include <cstdio>
#include <cstring>

namespace ran::obs {

MemorySample sample_process_memory() {
  MemorySample out;
  // stdio, not ifstream: this runs at every stage boundary and must not
  // allocate. /proc/self/status is a few hundred bytes.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return out;  // non-Linux: report zeros, keep going
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1)
      out.vm_rss_kb = kb;
    // VmHWM (peak RSS), not VmPeak: peak *virtual* size swings by ~64 MB
    // per glibc malloc arena — i.e. per worker thread — while touched
    // pages barely move, and the manifest diff should not have to absorb
    // an 18x "regression" that is really just address-space reservation.
    else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1)
      out.vm_peak_kb = kb;
    // Scheduler counters of the reading thread (stage boundaries run on
    // the pipeline thread): the nonvoluntary count is preemption
    // pressure, the contention signal the concurrency section pairs
    // with lock waits.
    else if (std::sscanf(line, "voluntary_ctxt_switches: %llu", &kb) == 1)
      out.voluntary_ctxt = kb;
    else if (std::sscanf(line, "nonvoluntary_ctxt_switches: %llu", &kb) ==
             1)
      out.nonvoluntary_ctxt = kb;
  }
  std::fclose(f);
  return out;
}

void ResourceProfiler::on_stage_begin(const std::string& name) {
  const auto sample = sample_process_memory();
  const std::lock_guard lock{mutex_};
  StageMemory stage;
  stage.name = name;
  stage.rss_begin_kb = sample.vm_rss_kb;
  stage.voluntary_ctxt_begin = sample.voluntary_ctxt;
  stage.nonvoluntary_ctxt_begin = sample.nonvoluntary_ctxt;
  stages_.push_back(std::move(stage));
}

void ResourceProfiler::on_stage_end(const std::string& name) {
  const auto sample = sample_process_memory();
  const std::lock_guard lock{mutex_};
  // Close the innermost open stage with this name (stages nest LIFO,
  // which the RAII StageTimer guarantees).
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    if (it->closed || it->name != name) continue;
    it->rss_end_kb = sample.vm_rss_kb;
    it->delta_kb = static_cast<std::int64_t>(sample.vm_rss_kb) -
                   static_cast<std::int64_t>(it->rss_begin_kb);
    // Cumulative counters only grow; clamp anyway so a zero read on a
    // platform without /proc can never wrap the delta.
    it->voluntary_ctxt_delta =
        sample.voluntary_ctxt >= it->voluntary_ctxt_begin
            ? sample.voluntary_ctxt - it->voluntary_ctxt_begin
            : 0;
    it->nonvoluntary_ctxt_delta =
        sample.nonvoluntary_ctxt >= it->nonvoluntary_ctxt_begin
            ? sample.nonvoluntary_ctxt - it->nonvoluntary_ctxt_begin
            : 0;
    it->closed = true;
    return;
  }
}

void ResourceProfiler::set_structure_bytes(const std::string& name,
                                           std::uint64_t bytes) {
  const std::lock_guard lock{mutex_};
  structure_bytes_[name] = bytes;
}

ResourceProfiler::Snapshot ResourceProfiler::snapshot() const {
  const auto sample = sample_process_memory();
  const std::lock_guard lock{mutex_};
  Snapshot out;
  out.stages = stages_;
  out.vm_peak_kb = sample.vm_peak_kb;
  out.vm_rss_kb = sample.vm_rss_kb;
  out.voluntary_ctxt = sample.voluntary_ctxt;
  out.nonvoluntary_ctxt = sample.nonvoluntary_ctxt;
  out.structure_bytes = structure_bytes_;
  return out;
}

}  // namespace ran::obs
