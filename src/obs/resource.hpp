// Per-stage resource profiling: what a methodology stage COSTS, next to
// the stage tree's what-it-did (items) and when (wall_ms).
//
// Two complementary signals:
//   * process memory sampled from /proc/self/status (VmRSS / VmHWM) at
//     every StageTimer scope boundary — the operating-system truth,
//     including allocator slack;
//   * explicit byte accounting of the big structures a pipeline builds
//     (corpus, alias tables, CO graphs, provenance log), reported by the
//     code that owns them.
//
// Both are folded into the run manifest's `resources` section. The whole
// section is VOLATILE observability: RSS depends on allocator behaviour
// and thread count, and the structure estimates include container
// capacity, so manifest_diff compares `resources.*` under tolerance, not
// byte-exactly. On platforms without /proc the memory fields read 0 and
// everything else keeps working.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ran::obs {

/// One /proc/self/status reading (0 when unavailable). Memory in
/// kilobytes; the context-switch counts are cumulative scheduler totals
/// for the reading thread — nonvoluntary switches are preemptions, a
/// direct and cheap contention signal next to VmRSS.
struct MemorySample {
  std::uint64_t vm_rss_kb = 0;
  std::uint64_t vm_peak_kb = 0;
  std::uint64_t voluntary_ctxt = 0;
  std::uint64_t nonvoluntary_ctxt = 0;
};

/// Parses VmRSS / VmHWM (peak RSS) and the voluntary/nonvoluntary
/// context-switch counters out of /proc/self/status. Cheap (one short
/// read of an in-kernel file) but not free: call at stage boundaries,
/// never per probe.
[[nodiscard]] MemorySample sample_process_memory();

/// Collects per-stage memory deltas and named structure sizes. Attach to
/// a Registry (set_resource_profiler) and every StageTimer scope samples
/// at open and close; a null profiler costs the usual one pointer test.
/// Thread-safe; stages are keyed by name in first-open order.
class ResourceProfiler {
 public:
  struct StageMemory {
    std::string name;
    std::uint64_t rss_begin_kb = 0;
    std::uint64_t rss_end_kb = 0;
    /// end - begin; negative when a stage released more than it grew.
    std::int64_t delta_kb = 0;
    /// Context switches the stage cost the profiling thread (end minus
    /// begin of the cumulative /proc counters): a spike in the
    /// nonvoluntary count marks a stage that fought for the CPU.
    std::uint64_t voluntary_ctxt_delta = 0;
    std::uint64_t nonvoluntary_ctxt_delta = 0;
    bool closed = false;
    /// Cumulative counters at stage open, for the delta at close.
    std::uint64_t voluntary_ctxt_begin = 0;
    std::uint64_t nonvoluntary_ctxt_begin = 0;
  };
  struct Snapshot {
    std::vector<StageMemory> stages;  ///< first-open order
    std::uint64_t vm_peak_kb = 0;     ///< process-lifetime peak RSS
    std::uint64_t vm_rss_kb = 0;      ///< at snapshot time
    /// Cumulative context-switch totals at snapshot time.
    std::uint64_t voluntary_ctxt = 0;
    std::uint64_t nonvoluntary_ctxt = 0;
    std::map<std::string, std::uint64_t> structure_bytes;
  };

  /// StageTimer hooks. Nested stages each get their own entry; a stage
  /// name reopened later (shared registries across runs) gets a fresh
  /// entry, so deltas always pair one begin with one end.
  void on_stage_begin(const std::string& name);
  void on_stage_end(const std::string& name);

  /// Records the approximate heap footprint of one named structure
  /// (last write wins — report after the structure is fully built).
  void set_structure_bytes(const std::string& name, std::uint64_t bytes);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<StageMemory> stages_;
  std::map<std::string, std::uint64_t> structure_bytes_;
};

}  // namespace ran::obs
