#include "timed_mutex.hpp"

#include <chrono>

#include "metrics.hpp"
#include "trace.hpp"

namespace ran::obs {

namespace detail {

void attach_channel(LockChannel& channel, Registry* registry,
                    std::string_view site, std::string_view suffix) {
  if (registry == nullptr) {
    channel = {};
    return;
  }
  const std::string base =
      "lock." + std::string{site} + std::string{suffix};
  channel.contended = &registry->volatile_counter(base + ".contended");
  channel.uncontended = &registry->volatile_counter(base + ".uncontended");
  channel.wait_us = &registry->volatile_histogram(base + ".wait_us");
  channel.trace_name = base + ".wait";
}

namespace {

/// Times the blocking acquire after a failed try_lock and publishes the
/// wait. The clock is read only on this contended slow path.
template <typename BlockFn>
void timed_acquire(const LockChannel& channel, Registry* registry,
                   BlockFn&& block) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  block();
  const auto wait_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            t0)
          .count());
  channel.contended->inc();
  channel.wait_us->observe(wait_us);
  if (Tracer* tracer = registry->tracer(); tracer != nullptr)
    tracer->complete(channel.trace_name, wait_us, "lock");
}

}  // namespace
}  // namespace detail

void TimedMutex::attach(Registry* registry, std::string_view site) {
  registry_ = registry;
  detail::attach_channel(write_, registry, site, "");
}

void TimedMutex::lock() {
  if (write_.uncontended == nullptr) {
    mutex_.lock();
    return;
  }
  if (mutex_.try_lock()) {
    write_.uncontended->inc();
    return;
  }
  detail::timed_acquire(write_, registry_, [this] { mutex_.lock(); });
}

bool TimedMutex::try_lock() {
  if (!mutex_.try_lock()) return false;
  if (write_.uncontended != nullptr) write_.uncontended->inc();
  return true;
}

void TimedSharedMutex::attach(Registry* registry, std::string_view site) {
  registry_ = registry;
  detail::attach_channel(read_, registry, site, ".read");
  detail::attach_channel(write_, registry, site, ".write");
}

void TimedSharedMutex::lock() {
  if (write_.uncontended == nullptr) {
    mutex_.lock();
    return;
  }
  if (mutex_.try_lock()) {
    write_.uncontended->inc();
    return;
  }
  detail::timed_acquire(write_, registry_, [this] { mutex_.lock(); });
}

bool TimedSharedMutex::try_lock() {
  if (!mutex_.try_lock()) return false;
  if (write_.uncontended != nullptr) write_.uncontended->inc();
  return true;
}

void TimedSharedMutex::lock_shared() {
  if (read_.uncontended == nullptr) {
    mutex_.lock_shared();
    return;
  }
  if (mutex_.try_lock_shared()) {
    read_.uncontended->inc();
    return;
  }
  detail::timed_acquire(read_, registry_,
                        [this] { mutex_.lock_shared(); });
}

bool TimedSharedMutex::try_lock_shared() {
  if (!mutex_.try_lock_shared()) return false;
  if (read_.uncontended != nullptr) read_.uncontended->inc();
  return true;
}

}  // namespace ran::obs
