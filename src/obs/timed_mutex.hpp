// Lock-wait profiling: drop-in mutex wrappers that publish per-site
// acquire-wait histograms and contended/uncontended counters into a
// metrics Registry — the instrumentation half of the contention-
// observability layer (TraceAnalysis is the read side).
//
// Cost model, mirroring the tracer's: an unattached wrapper is the off
// switch. lock() then costs one pointer test on top of the underlying
// std::mutex / std::shared_mutex — no clock reads, no atomics beyond the
// lock itself — so wrapping a hot lock is free until someone attaches a
// registry. When attached, the fast path is a try_lock: success counts
// as uncontended and still reads no clock; only a *failed* try_lock pays
// for two steady_clock reads around the blocking acquire, bumps the
// contended counter, and records the wait in a per-site histogram
// (`lock.<site>[.read|.write].wait_us`). Every acquisition increments
// exactly one of {contended, uncontended}, so the two always partition
// the acquisition total exactly — the property the contention tests pin.
//
// All published metrics are VOLATILE: whether an acquire contends is
// pure scheduling, so nothing here may ever appear in a deterministic
// manifest section. When the registry also carries a Tracer, each
// contended acquire additionally lands as a complete ('X') trace event
// of category "lock" spanning the wait — which is how TraceAnalysis
// ranks lock sites by total wait inside a campaign trace.
//
// attach()/detach happen-before any concurrent use (the same discipline
// as Registry::set_tracer): call them while the lock is quiescent,
// typically right after construction.
#pragma once

#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace ran::obs {

class Counter;
class Histogram;
class Registry;

namespace detail {

/// Resolved-once metric handles for one acquisition mode at one site.
/// `uncontended` doubles as the attached/off switch: null means the
/// wrapper behaves exactly like the raw lock.
struct LockChannel {
  Counter* contended = nullptr;
  Counter* uncontended = nullptr;
  Histogram* wait_us = nullptr;
  /// Name of the emitted trace event
  /// ("lock.<site>[.read|.write].wait").
  std::string trace_name;
};

/// Resolves the channel's counters/histogram under
/// "lock.<site><suffix>.*" (volatile namespace); empty registry detaches.
void attach_channel(LockChannel& channel, Registry* registry,
                    std::string_view site, std::string_view suffix);

}  // namespace detail

/// std::mutex with per-site wait accounting. Satisfies *Lockable*, so
/// std::lock_guard / std::unique_lock / std::scoped_lock work unchanged.
class TimedMutex {
 public:
  TimedMutex() = default;
  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  /// Publishes this lock's accounting as `lock.<site>.*` in `registry`'s
  /// volatile namespace (null detaches). Not thread-safe against
  /// concurrent lock()/unlock() — attach before the lock goes live.
  void attach(Registry* registry, std::string_view site);

  void lock();
  [[nodiscard]] bool try_lock();
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
  Registry* registry_ = nullptr;
  detail::LockChannel write_;
};

/// std::shared_mutex with separate read/write wait accounting
/// (`lock.<site>.read.*` / `lock.<site>.write.*`). Satisfies
/// *SharedLockable*, so std::shared_lock / std::unique_lock work
/// unchanged — the World route cache and SnapshotHub swap this in
/// without touching their locking code.
class TimedSharedMutex {
 public:
  TimedSharedMutex() = default;
  TimedSharedMutex(const TimedSharedMutex&) = delete;
  TimedSharedMutex& operator=(const TimedSharedMutex&) = delete;

  /// As TimedMutex::attach; resolves both the read and write channels.
  void attach(Registry* registry, std::string_view site);

  void lock();
  [[nodiscard]] bool try_lock();
  void unlock() { mutex_.unlock(); }

  void lock_shared();
  [[nodiscard]] bool try_lock_shared();
  void unlock_shared() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
  Registry* registry_ = nullptr;
  detail::LockChannel read_;
  detail::LockChannel write_;
};

}  // namespace ran::obs
