#include "trace.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>

#include "netbase/json.hpp"

namespace ran::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::ThreadBuffer& Tracer::local() {
  // Keyed by the process-unique tracer id, not the address: a new tracer
  // allocated where a destroyed one lived must not hit a stale entry (a
  // dead tracer's id never recurs, so its entries are never matched or
  // dereferenced again). Move-to-front keeps the hot tracer O(1); the cap
  // bounds a thread that touches many tracers over its lifetime.
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (cache[i].first != id_) continue;
    if (i != 0) std::swap(cache[0], cache[i]);
    return *cache[0].second;
  }
  const std::lock_guard lock{mutex_};
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  auto& buffer = *buffers_.back();
  buffer.tid = static_cast<std::uint32_t>(buffers_.size());
  if (cache.size() >= 64) cache.pop_back();
  cache.insert(cache.begin(), {id_, &buffer});
  return buffer;
}

void Tracer::record(char phase, std::string_view name,
                    const char* category, std::uint64_t value,
                    std::uint64_t ts_back_us) {
  auto& buffer = local();
  TraceEvent event;
  event.phase = phase;
  const auto now = now_us();
  // Backdated events ('X' lock waits end now but span the wait) clamp at
  // the epoch so timestamps stay non-negative.
  event.ts_us = now >= ts_back_us ? now - ts_back_us : 0;
  event.seq = buffer.events.size();
  event.value = value;
  event.name.assign(name);
  event.category = category;
  buffer.events.push_back(std::move(event));
}

void Tracer::begin(std::string_view name, const char* category) {
  record('B', name, category);
}

void Tracer::end(std::string_view name) { record('E', name, ""); }

void Tracer::instant(std::string_view name, const char* category) {
  record('i', name, category);
}

void Tracer::complete(std::string_view name, std::uint64_t dur_us,
                      const char* category) {
  record('X', name, category, dur_us, dur_us);
}

void Tracer::counter(std::string_view name, std::uint64_t value,
                     const char* category) {
  record('C', name, category, value);
}

void Tracer::reset() {
  const std::lock_guard lock{mutex_};
  for (auto& buffer : buffers_) buffer->events.clear();
  epoch_ = std::chrono::steady_clock::now();
}

std::size_t Tracer::event_count() const {
  const std::lock_guard lock{mutex_};
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::string Tracer::to_chrome_json() const {
  struct Row {
    const TraceEvent* event;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  {
    const std::lock_guard lock{mutex_};
    for (const auto& buffer : buffers_)
      for (const auto& event : buffer->events)
        rows.push_back({&event, buffer->tid});
  }
  // Deterministic merge: identical buffer contents always produce
  // identical bytes, whatever order threads registered or finished in.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.event->ts_us != b.event->ts_us)
      return a.event->ts_us < b.event->ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.event->seq < b.event->seq;
  });

  std::string out;
  out.reserve(rows.size() * 96 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += net::json_escape(row.event->name);
    out += "\",\"cat\":\"";
    out += net::json_escape(row.event->category);
    out += "\",\"ph\":\"";
    out += row.event->phase;
    out += "\",\"ts\":";
    out += std::to_string(row.event->ts_us);
    if (row.event->phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(row.event->value);
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(row.tid);
    if (row.event->phase == 'C') {
      out += ",\"args\":{\"value\":";
      out += std::to_string(row.event->value);
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream os{path};
  if (!os) return false;
  os << to_chrome_json() << '\n';
  return os.good();
}

}  // namespace ran::obs
