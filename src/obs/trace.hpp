// Event tracing: per-run timelines in the Chrome trace-event format
// (load the exported trace.json in Perfetto / chrome://tracing).
//
// Contract, mirroring the metrics registry's split: tracing is VOLATILE
// observability. Timestamps come from the wall clock and event order
// depends on scheduling, so a trace is never part of a deterministic
// manifest and never feeds back into inference. What IS deterministic is
// the merge: buffers are combined in a fixed order (timestamp, then
// thread id, then per-thread sequence), so the same buffer contents
// always serialize to the same bytes.
//
// Cost model: a null Tracer* is the off switch — instrumented code does a
// single pointer test and nothing else (the BM_CampaignTraced benchmark
// holds the disabled path to <2% on campaign throughput). When enabled,
// each thread appends to its own buffer without synchronization; the only
// lock is taken once per (thread, tracer) registration and once more at
// export, which must happen after worker threads have joined.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

/// One Chrome trace event. `phase` uses the trace-event phase letters:
/// 'B' begin, 'E' end, 'i' instant, 'X' complete (with duration),
/// 'C' counter (with a sampled value).
struct TraceEvent {
  char phase = 'i';
  std::uint64_t ts_us = 0;     ///< microseconds since the tracer's epoch
  std::uint64_t seq = 0;       ///< per-thread sequence (merge tie-break)
  /// Phase-dependent payload: duration for 'X' ("dur"), the sampled
  /// value for 'C' ("args":{"value":...}); unused otherwise.
  std::uint64_t value = 0;
  std::string name;
  const char* category = "";   ///< static-lifetime category string
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span on the calling thread. Spans must nest per thread
  /// (LIFO), which the RAII TraceSpan guarantees.
  void begin(std::string_view name, const char* category = "stage");
  /// Closes the innermost open span on the calling thread. The name is
  /// recorded again for readability; Chrome pairs B/E by nesting.
  void end(std::string_view name);
  /// A zero-duration marker (sampled probe events and the like).
  void instant(std::string_view name, const char* category = "event");

  /// A complete ('X') event ending now and spanning the last `dur_us`
  /// microseconds — how lock waits land in the timeline without a
  /// B-event recorded before the wait was known to matter.
  void complete(std::string_view name, std::uint64_t dur_us,
                const char* category = "event");

  /// A counter ('C') event sampling `value` on the calling thread's
  /// track — per-thread task throughput in campaign traces. Chrome
  /// renders one stacked series per (name, tid).
  void counter(std::string_view name, std::uint64_t value,
               const char* category = "counter");

  /// Drops all recorded events and restarts the clock epoch. Buffers
  /// stay registered, so cached per-thread handles remain valid. Must
  /// not race with recording threads.
  void reset();

  /// Number of events recorded so far (export-time use only).
  [[nodiscard]] std::size_t event_count() const;

  /// Serializes every buffer into one Chrome trace-event JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}. Events are merged in
  /// (ts, tid, seq) order; one event per line so the output is both
  /// Perfetto-loadable and line-parseable by the structural tests.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() + newline to `path`; false when the file
  /// cannot be opened.
  bool write_file(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer, registered under the tracer's lock on
  /// first use and cached thread-locally afterwards.
  ThreadBuffer& local();
  void record(char phase, std::string_view name, const char* category,
              std::uint64_t value = 0, std::uint64_t ts_back_us = 0);
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  const std::uint64_t id_;  ///< process-unique, for the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: begin at construction, end at destruction. A null tracer
/// makes it a no-op, so call sites need no branches.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name,
            const char* category = "stage")
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    name_.assign(name);
    tracer_->begin(name_, category);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->end(name_);
  }

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
};

}  // namespace ran::obs
