#include "trace_analysis.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "netbase/json.hpp"
#include "netbase/report.hpp"

namespace ran::obs {

namespace {

/// Missing/non-numeric fields read as 0 — the tracer always emits the
/// fields we ask for, and hand-built traces get forgiving defaults.
std::uint64_t num_field(const net::JsonValue& event, std::string_view key) {
  const auto* v = event.find(key);
  if (v == nullptr || !v->is_number() || v->num < 0) return 0;
  return static_cast<std::uint64_t>(v->num);
}

std::string str_field(const net::JsonValue& event, std::string_view key) {
  const auto* v = event.find(key);
  return v != nullptr && v->is_string() ? v->str : std::string{};
}

}  // namespace

bool TraceAnalysis::load_file(const std::string& path, std::string* error) {
  std::ifstream is{path};
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!load_json(buffer.str(), error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool TraceAnalysis::load_json(std::string_view text, std::string* error) {
  const auto doc = net::parse_json(text, error);
  if (!doc) return false;
  const auto* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error != nullptr) *error = "no traceEvents array";
    return false;
  }
  const auto file = static_cast<std::uint32_t>(file_wall_us_.size());

  // Per-thread open-span stacks. Events inside one tid appear in
  // chronological (seq) order in the document — the tracer's merge is
  // (ts, tid, seq) — so B/E pairing by nesting is a plain stack walk.
  struct OpenSpan {
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;
    std::uint64_t child_us = 0;
  };
  struct ThreadState {
    std::vector<OpenSpan> stack;
    ThreadStats stats;
    bool seen = false;
  };
  std::map<std::uint32_t, ThreadState> by_tid;

  std::uint64_t file_min = 0;
  std::uint64_t file_max = 0;
  bool any_event = false;

  // The root thread for critical-path attribution: earliest first event,
  // ties to the lowest tid. Only the first loaded file contributes.
  std::uint32_t root_tid = 0;
  bool have_root = false;
  if (file == 0) {
    std::map<std::uint32_t, std::uint64_t> first_ts;
    for (const auto& event : events->array) {
      if (!event.is_object()) continue;
      const auto tid = static_cast<std::uint32_t>(num_field(event, "tid"));
      first_ts.emplace(tid, num_field(event, "ts"));
    }
    std::uint64_t best_ts = 0;
    for (const auto& [tid, ts] : first_ts)  // tid-ascending: ties keep low
      if (!have_root || ts < best_ts) {
        have_root = true;
        root_tid = tid;
        best_ts = ts;
      }
  }
  std::uint64_t root_prev_ts = 0;
  bool root_started = false;
  std::vector<std::string> root_stack;

  for (const auto& event : events->array) {
    if (!event.is_object()) continue;
    const auto phase_str = str_field(event, "ph");
    if (phase_str.empty()) continue;
    const char phase = phase_str[0];
    const auto name = str_field(event, "name");
    const auto category = str_field(event, "cat");
    const auto ts = num_field(event, "ts");
    const auto tid = static_cast<std::uint32_t>(num_field(event, "tid"));
    const auto value = phase == 'X' ? num_field(event, "dur") : [&] {
      const auto* args = event.find("args");
      return args != nullptr ? num_field(*args, "value") : std::uint64_t{0};
    }();
    const std::uint64_t end_ts = phase == 'X' ? ts + value : ts;

    auto& thread = by_tid[tid];
    if (!thread.seen) {
      thread.seen = true;
      thread.stats.file = file;
      thread.stats.tid = tid;
      thread.stats.first_ts_us = ts;
      thread.stats.last_ts_us = end_ts;
    }
    thread.stats.events += 1;
    thread.stats.first_ts_us = std::min(thread.stats.first_ts_us, ts);
    thread.stats.last_ts_us = std::max(thread.stats.last_ts_us, end_ts);
    if (!any_event) {
      any_event = true;
      file_min = ts;
      file_max = end_ts;
    }
    file_min = std::min(file_min, ts);
    file_max = std::max(file_max, end_ts);
    events_ += 1;

    // Critical path: wall time on the root thread belongs to whichever
    // span is innermost when it elapses ("(idle)" outside all spans).
    if (have_root && tid == root_tid && (phase == 'B' || phase == 'E')) {
      if (root_started && ts > root_prev_ts)
        critical_us_[root_stack.empty() ? "(idle)" : root_stack.back()] +=
            ts - root_prev_ts;
      root_started = true;
      root_prev_ts = ts;
      if (phase == 'B') root_stack.push_back(name);
      else if (!root_stack.empty()) root_stack.pop_back();
    }

    switch (phase) {
      case 'B': {
        thread.stack.push_back(OpenSpan{name, category, ts, 0});
        if (category == "campaign") thread.stats.campaign_spans += 1;
        break;
      }
      case 'E': {
        if (thread.stack.empty()) {
          unmatched_ends_ += 1;
          break;
        }
        OpenSpan open = std::move(thread.stack.back());
        thread.stack.pop_back();
        const std::uint64_t dur = ts >= open.ts_us ? ts - open.ts_us : 0;
        auto& agg = spans_[open.name];
        if (agg.count == 0) agg.category = open.category;
        agg.count += 1;
        agg.total_us += dur;
        agg.self_us += dur >= open.child_us ? dur - open.child_us : 0;
        if (thread.stack.empty())
          thread.stats.busy_us += dur;
        else
          thread.stack.back().child_us += dur;
        break;
      }
      case 'X': {
        if (category == "lock") {
          auto& lock = locks_[name];
          lock.count += 1;
          lock.total_us += value;
          lock.max_us = std::max(lock.max_us, value);
        } else {
          auto& agg = spans_[name];
          if (agg.count == 0) agg.category = category;
          agg.count += 1;
          agg.total_us += value;
          agg.self_us += value;
          if (!thread.stack.empty())
            thread.stack.back().child_us += value;
        }
        break;
      }
      case 'C': {
        auto& [samples, count] = counter_samples_[name];
        samples[(static_cast<std::uint64_t>(file) << 32) | tid] = value;
        count += 1;
        break;
      }
      case 'i': {
        instants_[name] += 1;
        break;
      }
      default: break;
    }
  }

  for (auto& [tid, thread] : by_tid) {
    unclosed_spans_ += thread.stack.size();
    threads_.push_back(thread.stats);
  }
  std::sort(threads_.begin(), threads_.end(),
            [](const ThreadStats& a, const ThreadStats& b) {
              return a.file != b.file ? a.file < b.file : a.tid < b.tid;
            });
  file_wall_us_.push_back(any_event ? file_max - file_min : 0);
  return true;
}

std::uint64_t TraceAnalysis::wall_us() const {
  std::uint64_t wall = 0;
  for (const auto w : file_wall_us_) wall = std::max(wall, w);
  return wall;
}

int TraceAnalysis::worker_thread_count() const {
  int workers = 0;
  for (const auto& thread : threads_)
    workers += thread.campaign_spans > 0;
  return workers > 0 ? workers : static_cast<int>(threads_.size());
}

std::map<std::string, TraceAnalysis::CounterStats>
TraceAnalysis::counters() const {
  std::map<std::string, CounterStats> out;
  for (const auto& [name, entry] : counter_samples_) {
    CounterStats stats;
    stats.events = entry.second;
    for (const auto& [thread_key, last] : entry.first) stats.final += last;
    out.emplace(name, stats);
  }
  return out;
}

std::vector<TraceAnalysis::CriticalSegment> TraceAnalysis::critical_path()
    const {
  std::vector<CriticalSegment> out;
  out.reserve(critical_us_.size());
  for (const auto& [name, us] : critical_us_)
    out.push_back(CriticalSegment{name, us});
  // Descending by time; name breaks ties so the ranking is total.
  std::sort(out.begin(), out.end(),
            [](const CriticalSegment& a, const CriticalSegment& b) {
              return a.us != b.us ? a.us > b.us : a.name < b.name;
            });
  return out;
}

std::string TraceAnalysis::canonical_json() const {
  // Scheduling-invariant structure only: what was traced, never when or
  // for how long. Lock events are omitted wholesale — whether an acquire
  // contends is pure scheduling.
  net::JsonWriter json;
  json.begin_object();
  json.key("canonical").value("ran.trace_analysis.v1");
  json.key("files").value(static_cast<std::uint64_t>(file_wall_us_.size()));
  json.key("spans").begin_object();
  for (const auto& [name, agg] : spans_) json.key(name).value(agg.count);
  json.end_object();
  json.key("instants").begin_object();
  for (const auto& [name, count] : instants_) json.key(name).value(count);
  json.end_object();
  json.key("counters").begin_object();
  for (const auto& [name, entry] : counter_samples_)
    json.key(name).value(entry.second);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string TraceAnalysis::report_json() const {
  net::JsonWriter json;
  json.begin_object();
  json.key("report").value("ran.trace_analysis.report.v1");
  json.key("files").value(static_cast<std::uint64_t>(file_wall_us_.size()));
  json.key("events").value(events_);
  json.key("wall_us").value(wall_us());
  json.key("worker_threads")
      .value(static_cast<std::int64_t>(worker_thread_count()));

  json.key("spans").begin_object();
  for (const auto& [name, agg] : spans_) {
    json.key(name).begin_object();
    json.key("category").value(agg.category);
    json.key("count").value(agg.count);
    json.key("total_us").value(agg.total_us);
    json.key("self_us").value(agg.self_us);
    json.end_object();
  }
  json.end_object();

  json.key("critical_path").begin_array();
  for (const auto& segment : critical_path()) {
    json.begin_object();
    json.key("name").value(segment.name);
    json.key("us").value(segment.us);
    json.end_object();
  }
  json.end_array();

  json.key("threads").begin_array();
  for (const auto& thread : threads_) {
    const auto wall = file_wall_us_[thread.file];
    json.begin_object();
    json.key("file").value(static_cast<std::uint64_t>(thread.file));
    json.key("tid").value(static_cast<std::uint64_t>(thread.tid));
    json.key("events").value(thread.events);
    json.key("busy_us").value(thread.busy_us);
    json.key("utilization")
        .value(wall == 0 ? 0.0
                         : static_cast<double>(thread.busy_us) /
                               static_cast<double>(wall));
    json.end_object();
  }
  json.end_array();

  json.key("locks").begin_object();
  for (const auto& [name, lock] : locks_) {
    json.key(name).begin_object();
    json.key("count").value(lock.count);
    json.key("total_us").value(lock.total_us);
    json.key("max_us").value(lock.max_us);
    json.end_object();
  }
  json.end_object();

  json.key("counters").begin_object();
  for (const auto& [name, stats] : counters()) {
    json.key(name).begin_object();
    json.key("events").value(stats.events);
    json.key("final").value(stats.final);
    json.end_object();
  }
  json.end_object();

  json.key("instants").begin_object();
  for (const auto& [name, count] : instants_) json.key(name).value(count);
  json.end_object();

  json.key("unmatched_ends").value(unmatched_ends_);
  json.key("unclosed_spans").value(unclosed_spans_);
  json.end_object();
  return json.str();
}

std::string TraceAnalysis::report_text(std::size_t top_n) const {
  std::ostringstream os;
  os << "trace analysis: " << file_wall_us_.size() << " file(s), "
     << events_ << " events, wall "
     << static_cast<double>(wall_us()) / 1000.0 << " ms, "
     << threads_.size() << " thread(s)\n";
  if (unmatched_ends_ > 0 || unclosed_spans_ > 0)
    os << "  (warning: " << unmatched_ends_ << " unmatched ends, "
       << unclosed_spans_ << " unclosed spans)\n";

  // Spans ranked by self time: where the run actually spent itself.
  std::vector<std::pair<std::string, const SpanStats*>> ranked;
  ranked.reserve(spans_.size());
  for (const auto& [name, agg] : spans_) ranked.emplace_back(name, &agg);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second->self_us != b.second->self_us
               ? a.second->self_us > b.second->self_us
               : a.first < b.first;
  });
  net::TextTable span_table{
      {"span", "cat", "count", "total_ms", "self_ms"}};
  for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i)
    span_table.add_row(
        {ranked[i].first, ranked[i].second->category,
         std::to_string(ranked[i].second->count),
         net::fmt_double(static_cast<double>(ranked[i].second->total_us) /
                         1000.0),
         net::fmt_double(static_cast<double>(ranked[i].second->self_us) /
                         1000.0)});
  os << "\nspans by self time (top " << std::min(top_n, ranked.size())
     << " of " << ranked.size() << ")\n"
     << span_table.to_string();

  const auto critical = critical_path();
  if (!critical.empty()) {
    std::uint64_t critical_total = 0;
    for (const auto& segment : critical) critical_total += segment.us;
    net::TextTable crit_table{{"segment", "ms", "share"}};
    for (std::size_t i = 0; i < critical.size() && i < top_n; ++i)
      crit_table.add_row(
          {critical[i].name,
           net::fmt_double(static_cast<double>(critical[i].us) / 1000.0),
           net::fmt_percent(critical_total == 0
                                ? 0.0
                                : static_cast<double>(critical[i].us) /
                                      static_cast<double>(critical_total))});
    os << "\ncritical path (root thread, innermost-span attribution)\n"
       << crit_table.to_string();
  }

  if (!locks_.empty()) {
    std::vector<std::pair<std::string, const LockStats*>> lock_rank;
    for (const auto& [name, lock] : locks_)
      lock_rank.emplace_back(name, &lock);
    std::sort(lock_rank.begin(), lock_rank.end(),
              [](const auto& a, const auto& b) {
                return a.second->total_us != b.second->total_us
                           ? a.second->total_us > b.second->total_us
                           : a.first < b.first;
              });
    net::TextTable lock_table{
        {"lock site", "contended", "total_ms", "max_us"}};
    for (std::size_t i = 0; i < lock_rank.size() && i < top_n; ++i)
      lock_table.add_row(
          {lock_rank[i].first, std::to_string(lock_rank[i].second->count),
           net::fmt_double(
               static_cast<double>(lock_rank[i].second->total_us) / 1000.0),
           std::to_string(lock_rank[i].second->max_us)});
    os << "\nlock sites by total wait\n" << lock_table.to_string();
  }

  net::TextTable thread_table{
      {"file", "tid", "events", "busy_ms", "utilization"}};
  for (const auto& thread : threads_) {
    const auto wall = file_wall_us_[thread.file];
    thread_table.add_row(
        {std::to_string(thread.file), std::to_string(thread.tid),
         std::to_string(thread.events),
         net::fmt_double(static_cast<double>(thread.busy_us) / 1000.0),
         net::fmt_percent(wall == 0 ? 0.0
                                    : static_cast<double>(thread.busy_us) /
                                          static_cast<double>(wall))});
  }
  os << "\nper-thread utilization\n" << thread_table.to_string();

  const auto counter_stats = counters();
  if (!counter_stats.empty()) {
    net::TextTable counter_table{{"counter", "events", "final"}};
    for (const auto& [name, stats] : counter_stats)
      counter_table.add_row({name, std::to_string(stats.events),
                             std::to_string(stats.final)});
    os << "\ncounters\n" << counter_table.to_string();
  }
  return os.str();
}

std::vector<TraceAnalysis::StageComparison> TraceAnalysis::compare(
    const TraceAnalysis& base, const TraceAnalysis& other) {
  std::vector<StageComparison> out;
  const auto workers = other.worker_thread_count();
  const auto add = [&out, workers](const std::string& name,
                                   std::uint64_t base_us,
                                   std::uint64_t other_us) {
    StageComparison row;
    row.name = name;
    row.base_us = base_us;
    row.other_us = other_us;
    row.speedup = other_us == 0 ? 0.0
                                : static_cast<double>(base_us) /
                                      static_cast<double>(other_us);
    row.efficiency = workers <= 0 ? 0.0 : row.speedup / workers;
    out.push_back(std::move(row));
  };
  add("[wall]", base.wall_us(), other.wall_us());
  for (const auto& [name, agg] : base.spans_) {
    if (agg.category != "stage") continue;
    const auto it = other.spans_.find(name);
    if (it == other.spans_.end() || it->second.category != "stage")
      continue;
    add(name, agg.total_us, it->second.total_us);
  }
  return out;
}

}  // namespace ran::obs
