// Trace analytics: the read side of the contention-observability layer.
// TraceAnalysis loads one or more Chrome-trace JSON documents (exactly
// what obs::Tracer emits — B/E spans, 'i' instants, 'X' complete events,
// 'C' counters), merges them, and turns the raw timeline into attributed
// answers:
//
//   * per-span-name aggregates: count, total (inclusive) and self
//     (exclusive, children subtracted) time;
//   * a critical-path attribution: the root thread's wall time divided
//     among its innermost open spans, ranked — "which stage actually
//     owns the run's duration";
//   * per-thread utilization: busy time under top-level spans vs. the
//     trace's wall span, exposing the idle gaps a contended lock or an
//     empty work queue leaves behind;
//   * lock-wait ranking from the 'X' events of category "lock" that
//     TimedMutex/TimedSharedMutex emit — total/max wait per site;
//   * counter-event totals (per-thread cumulative counters summed at
//     their final value).
//
// Two serializations with different stability contracts, mirroring the
// manifest's deterministic/volatile split:
//   * canonical_json(): only scheduling-invariant structure — per-name
//     span/instant/counter-event counts, lock events excluded. For the
//     same workload this is byte-identical at any thread count and
//     across repeated analyzer runs (pinned by tests/test_contention).
//   * report_json() / report_text(): the full analysis, deterministic
//     for a given input trace but carrying wall-clock values.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ran::obs {

class TraceAnalysis {
 public:
  /// Aggregate over every span of one name (B/E pairs and non-lock 'X'
  /// complete events).
  struct SpanStats {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;  ///< inclusive of nested spans
    std::uint64_t self_us = 0;   ///< nested span time subtracted
    std::string category;        ///< first category seen for the name
  };

  /// One traced thread. `busy_us` sums top-level span durations; the
  /// utilization denominator is the owning file's wall span.
  struct ThreadStats {
    std::uint32_t file = 0;
    std::uint32_t tid = 0;
    std::uint64_t events = 0;
    std::uint64_t busy_us = 0;
    std::uint64_t campaign_spans = 0;  ///< spans of category "campaign"
    std::uint64_t first_ts_us = 0;
    std::uint64_t last_ts_us = 0;
  };

  /// Aggregate over the 'X' events of category "lock" for one site.
  struct LockStats {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };

  struct CounterStats {
    std::uint64_t events = 0;
    /// Counters are cumulative per thread: the sum of each thread's last
    /// sample is the cross-thread final total.
    std::uint64_t final = 0;
  };

  /// One critical-path segment: wall time of the root thread attributed
  /// to the innermost open span named `name` ("(idle)" outside spans).
  struct CriticalSegment {
    std::string name;
    std::uint64_t us = 0;
  };

  /// One row of the parallel-efficiency table compare() produces.
  struct StageComparison {
    std::string name;
    std::uint64_t base_us = 0;
    std::uint64_t other_us = 0;
    double speedup = 0.0;     ///< base / other
    double efficiency = 0.0;  ///< speedup / other's worker count
  };

  /// Parses and folds in one trace document; false (with a one-line
  /// message in `error`) on malformed JSON or a missing traceEvents
  /// array. May be called repeatedly to merge several files.
  bool load_json(std::string_view text, std::string* error = nullptr);
  bool load_file(const std::string& path, std::string* error = nullptr);

  [[nodiscard]] std::size_t file_count() const { return file_wall_us_.size(); }
  [[nodiscard]] std::uint64_t event_count() const { return events_; }
  /// Longest single-file wall span (last ts - first ts).
  [[nodiscard]] std::uint64_t wall_us() const;
  /// Threads that ran campaign-category spans; every traced thread when
  /// the trace has none (a non-campaign workload).
  [[nodiscard]] int worker_thread_count() const;

  [[nodiscard]] const std::map<std::string, SpanStats>& spans() const {
    return spans_;
  }
  [[nodiscard]] const std::map<std::string, LockStats>& locks() const {
    return locks_;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& instants()
      const {
    return instants_;
  }
  [[nodiscard]] std::map<std::string, CounterStats> counters() const;
  [[nodiscard]] const std::vector<ThreadStats>& threads() const {
    return threads_;
  }
  /// Ranked (descending) critical-path segments of the first loaded
  /// file's root thread — the thread whose first event is earliest.
  [[nodiscard]] std::vector<CriticalSegment> critical_path() const;

  [[nodiscard]] std::uint64_t unmatched_ends() const {
    return unmatched_ends_;
  }
  [[nodiscard]] std::uint64_t unclosed_spans() const {
    return unclosed_spans_;
  }

  [[nodiscard]] std::string canonical_json() const;
  [[nodiscard]] std::string report_json() const;
  /// Human-readable report; `top_n` caps each ranked table.
  [[nodiscard]] std::string report_text(std::size_t top_n = 10) const;

  /// Per-stage speedup/efficiency of `other` against `base` (typically a
  /// 1-thread trace vs. an N-thread trace of the same workload): rows
  /// for every stage-category span name they share, ordered by name,
  /// plus a leading "[wall]" row comparing whole-trace wall spans.
  [[nodiscard]] static std::vector<StageComparison> compare(
      const TraceAnalysis& base, const TraceAnalysis& other);

 private:
  struct RootSegmentState;

  std::map<std::string, SpanStats> spans_;
  std::map<std::string, std::uint64_t> instants_;
  std::map<std::string, LockStats> locks_;
  /// name -> ((file<<32)|tid -> last sampled value, event count).
  std::map<std::string,
           std::pair<std::map<std::uint64_t, std::uint64_t>, std::uint64_t>>
      counter_samples_;
  std::vector<ThreadStats> threads_;
  std::vector<std::uint64_t> file_wall_us_;
  /// Root-thread critical path of file 0, merged by innermost span name.
  std::map<std::string, std::uint64_t> critical_us_;
  std::uint64_t events_ = 0;
  std::uint64_t unmatched_ends_ = 0;
  std::uint64_t unclosed_spans_ = 0;
};

}  // namespace ran::obs
