#include "alias.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <unordered_map>

#include "netbase/contracts.hpp"

namespace ran::probe {

std::vector<std::pair<net::IPv4Address, net::IPv4Address>> mercator_resolve(
    const sim::World& world, std::span<const net::IPv4Address> addrs) {
  std::vector<std::pair<net::IPv4Address, net::IPv4Address>> pairs;
  for (const auto addr : addrs) {
    const auto primary = world.mercator_probe(addr);
    if (primary && *primary != addr) pairs.emplace_back(addr, *primary);
  }
  return pairs;
}

namespace {

struct Estimate {
  net::IPv4Address addr;
  double velocity = 0.0;   ///< counts per ms
  double intercept = 0.0;  ///< extrapolated counter value at t = 0
};

/// Unwraps a 16-bit counter sequence sampled at known times into a
/// monotone sequence; returns false when no consistent unwrap exists
/// (non-monotone counter).
bool unwrap(std::span<const std::pair<double, std::uint16_t>> samples,
            std::vector<double>& values, double max_velocity) {
  values.clear();
  if (samples.empty()) return false;
  double current = samples.front().second;
  values.push_back(current);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].first - samples[i - 1].first;
    double next = values.back() - static_cast<double>(samples[i - 1].second) +
                  static_cast<double>(samples[i].second);
    // Allow one wrap per step (velocities stay well under 65536/step).
    while (next < values.back()) next += 65536.0;
    if (dt <= 0.0) return false;
    if ((next - values.back()) / dt > max_velocity) return false;
    values.push_back(next);
  }
  return true;
}

/// Least-squares line fit through (t, value) points.
void fit_line(std::span<const double> ts, std::span<const double> vs,
              double& slope, double& intercept) {
  RAN_EXPECTS(ts.size() == vs.size() && ts.size() >= 2);
  double st = 0, sv = 0, stt = 0, stv = 0;
  const auto n = static_cast<double>(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    st += ts[i];
    sv += vs[i];
    stt += ts[i] * ts[i];
    stv += ts[i] * vs[i];
  }
  const double denom = n * stt - st * st;
  slope = denom == 0.0 ? 0.0 : (n * stv - st * sv) / denom;
  intercept = (sv - slope * st) / n;
}

}  // namespace

AliasGroups midar_resolve(const sim::World& world,
                          std::span<const net::IPv4Address> addrs,
                          const MidarConfig& config, double start_time_ms) {
  // --- Estimation stage: three spaced samples per address --------------
  std::vector<Estimate> estimates;
  estimates.reserve(addrs.size());
  double clock = start_time_ms;
  for (const auto addr : addrs) {
    std::vector<std::pair<double, std::uint16_t>> samples;
    bool ok = true;
    for (int i = 0; i < 3; ++i) {
      const double t = clock + i * config.sample_spacing_ms;
      const auto sample = world.ipid_sample(addr, t);
      if (!sample) {
        ok = false;
        break;
      }
      samples.emplace_back(t, *sample);
    }
    clock += 1.0;  // probing pace: addresses interleave in time
    if (!ok) continue;
    std::vector<double> values;
    if (!unwrap(samples, values, config.max_velocity)) continue;
    std::vector<double> ts;
    for (const auto& [t, s] : samples) ts.push_back(t);
    Estimate est;
    est.addr = addr;
    fit_line(ts, values, est.velocity, est.intercept);
    if (est.velocity <= 0.0 || est.velocity > config.max_velocity) continue;
    estimates.push_back(est);
  }

  // --- Sharding: candidates must agree on velocity and on the counter's
  // current value (intercept modulo wrap). ------------------------------
  std::map<std::pair<long, long>, std::vector<const Estimate*>> shards;
  for (const auto& est : estimates) {
    const long vkey = std::lround(est.velocity / 0.05);
    const long ikey =
        std::lround(std::fmod(est.intercept, 65536.0) / 64.0);
    // Insert into the shard and its neighbours to avoid boundary misses.
    for (long dv = -1; dv <= 1; ++dv)
      for (long di = -1; di <= 1; ++di)
        shards[{vkey + dv, ikey + di}].push_back(&est);
  }

  // --- Elimination stage: Monotonic Bounds Test per candidate pair -----
  std::unordered_map<net::IPv4Address, net::IPv4Address> parent;
  std::function<net::IPv4Address(net::IPv4Address)> find =
      [&](net::IPv4Address x) {
        auto it = parent.find(x);
        if (it == parent.end() || it->second == x) return x;
        const auto root = find(it->second);
        parent[x] = root;
        return root;
      };
  auto unite = [&](net::IPv4Address a, net::IPv4Address b) {
    const auto ra = find(a);
    const auto rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };
  for (const auto addr : addrs) parent.emplace(addr, addr);

  auto mbt = [&](const Estimate& a, const Estimate& b, double t0) {
    // Interleave five samples of each; a shared counter stays on one line.
    std::vector<std::pair<double, std::uint16_t>> merged;
    for (int i = 0; i < 5; ++i) {
      const double ta = t0 + i * 20.0;
      const double tb = t0 + i * 20.0 + 9.0;
      const auto sa = world.ipid_sample(a.addr, ta);
      const auto sb = world.ipid_sample(b.addr, tb);
      if (!sa || !sb) return false;
      merged.emplace_back(ta, *sa);
      merged.emplace_back(tb, *sb);
    }
    std::vector<double> values;
    if (!unwrap(merged, values, config.max_velocity)) return false;
    std::vector<double> ts;
    for (const auto& [t, s] : merged) ts.push_back(t);
    double slope = 0, inter = 0;
    fit_line(ts, values, slope, inter);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (std::abs(values[i] - (slope * ts[i] + inter)) >
          config.mbt_tolerance)
        return false;
    }
    return true;
  };

  double mbt_clock = clock + 1000.0;
  for (const auto& [key, members] : shards) {
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const auto& a = *members[i];
        const auto& b = *members[j];
        if (a.addr == b.addr || find(a.addr) == find(b.addr)) continue;
        if (std::abs(a.velocity - b.velocity) > 0.06) continue;
        if (mbt(a, b, mbt_clock)) unite(a.addr, b.addr);
        mbt_clock += 1.0;
      }
    }
  }

  std::unordered_map<net::IPv4Address, std::vector<net::IPv4Address>> groups;
  for (const auto addr : addrs) groups[find(addr)].push_back(addr);
  AliasGroups out;
  for (auto& [root, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    if (members.size() >= 2) out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ran::probe
