// Alias resolution probing: Mercator [26] and MIDAR [33].
//
// Mercator sends probes to an unused UDP port; many routers reply with a
// common (primary) source address, directly aliasing the probed address to
// it. MIDAR exploits routers' shared IP-ID counters: it first estimates
// each address's counter velocity, then confirms candidate pairs with a
// Monotonic Bounds Test over interleaved samples. This implementation
// follows MIDAR's estimation/elimination structure, sharded by velocity
// and counter intercept so it scales to full-ISP address sets.
#pragma once

#include <span>
#include <vector>

#include "simnet/world.hpp"

namespace ran::probe {

/// Result of alias resolution: groups of addresses inferred to sit on the
/// same router. Only groups of two or more are returned.
using AliasGroups = std::vector<std::vector<net::IPv4Address>>;

/// Runs Mercator against every address; returns inferred alias pairs
/// (probed address, revealed primary address) with distinct members.
[[nodiscard]] std::vector<std::pair<net::IPv4Address, net::IPv4Address>>
mercator_resolve(const sim::World& world,
                 std::span<const net::IPv4Address> addrs);

struct MidarConfig {
  /// Time between samples of the same address during estimation (ms).
  double sample_spacing_ms = 60.0;
  /// Discard counters faster than this (counts/ms): random IP-IDs look
  /// like implausibly fast counters.
  double max_velocity = 60.0;
  /// Maximum residual (counts) for the Monotonic Bounds Test.
  double mbt_tolerance = 8.0;
};

/// MIDAR-style alias resolution; `start_time_ms` positions the probing
/// window on the shared simulation clock.
[[nodiscard]] AliasGroups midar_resolve(const sim::World& world,
                                        std::span<const net::IPv4Address> addrs,
                                        const MidarConfig& config = {},
                                        double start_time_ms = 0.0);

}  // namespace ran::probe
