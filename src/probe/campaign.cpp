#include "campaign.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "netbase/strings.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace ran::probe {

namespace {

/// Indexes per counter fetch: large enough to amortize the atomic,
/// small enough to balance uneven per-trace cost.
constexpr std::size_t kBlock = 16;

}  // namespace

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for_indexed(std::size_t count, int threads,
                          const std::function<void(int, std::size_t)>& fn) {
  threads = resolve_threads(threads);
  if (threads <= 1 || count <= kBlock) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&](int id) {
    while (true) {
      const std::size_t begin = next.fetch_add(kBlock);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + kBlock, count);
      for (std::size_t i = begin; i < end; ++i) fn(id, i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& th : pool) th.join();
}

void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(count, threads,
                       [&fn](int, std::size_t i) { fn(i); });
}

CampaignRunner::CampaignRunner(const sim::World& world,
                               const CampaignConfig& config)
    : engine_(world, config.trace, config.metrics),
      threads_(resolve_threads(config.parallelism)),
      metrics_(config.metrics),
      trace_sample_(config.trace_sample) {
  agg_mutex_.attach(metrics_, "campaign.result_agg");
}

std::vector<TraceRecord> CampaignRunner::run(
    std::span<const ProbeTask> tasks) const {
  using Clock = std::chrono::steady_clock;
  // Warm the per-source route tables up front so the pool runs against a
  // read-mostly cache instead of racing to fill it.
  if (threads_ > 1) {
    std::unordered_set<sim::NodeId> seen;
    std::vector<sim::ProbeSource> sources;
    for (const auto& task : tasks)
      if (seen.insert(task.src.node).second) sources.push_back(task.src);
    engine_.world().warm_routes(sources);
  }
  std::vector<TraceRecord> out(tasks.size());
  // Per-worker busy time; each worker only touches its own slot.
  std::vector<double> busy_ms(static_cast<std::size_t>(threads_), 0.0);
  // Batch-outcome accounting: workers tally reached/silent per shard into
  // their own slot, then merge into the shared totals under the
  // instrumented agg_mutex_ at shard boundaries. Sums commute, so the
  // totals (and the canonical log view below) stay byte-stable at any
  // thread count — but the merge is real shared-state traffic, which is
  // the point: result-aggregation contention becomes measurable.
  struct BatchTally {
    std::size_t reached = 0;
    std::size_t silent = 0;
  };
  BatchTally total;
  std::vector<BatchTally> partial(static_cast<std::size_t>(threads_));
  // Per-worker cumulative task counts, published as per-thread 'C'
  // counter events at shard ends while tracing — task throughput lands
  // on each worker's track in the exported timeline.
  std::vector<std::uint64_t> tasks_done(static_cast<std::size_t>(threads_),
                                        0);
  obs::Log* log = metrics_ != nullptr ? metrics_->logger() : nullptr;
  const bool tally = metrics_ != nullptr || log != nullptr;
  // Tracing rides along when the registry carries a tracer: one span per
  // kBlock shard (shards are handed to a worker whole, so B/E pairs nest
  // per thread) plus sampled per-probe instants. A null tracer keeps the
  // hot loop at a single pointer test.
  obs::Tracer* tracer = metrics_ != nullptr ? metrics_->tracer() : nullptr;
  const auto shard_name = [&tasks](std::size_t i) {
    const std::size_t begin = i - i % kBlock;
    const std::size_t end = std::min(begin + kBlock, tasks.size());
    return net::format("shard[%zu,%zu)", begin, end);
  };
  const auto t0 = Clock::now();
  parallel_for_indexed(tasks.size(), threads_, [&](int worker,
                                                   std::size_t i) {
    const auto& task = tasks[i];
    const auto w = static_cast<std::size_t>(worker);
    if (tracer != nullptr && i % kBlock == 0)
      tracer->begin(shard_name(i), "campaign");
    const auto start = metrics_ != nullptr ? Clock::now() : Clock::time_point{};
    out[i] = engine_.run(task.src, task.dst, task.vp, task.flow_id);
    if (metrics_ != nullptr)
      busy_ms[w] +=
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
    const bool shard_end = (i + 1) % kBlock == 0 || i + 1 == tasks.size();
    if (tally) {
      const auto& record = out[i];
      partial[w].reached += record.reached;
      bool any = false;
      for (const auto& hop : record.hops) any = any || hop.responded();
      partial[w].silent += !any;
      tasks_done[w] += 1;
      if (shard_end) {
        const std::lock_guard lock{agg_mutex_};
        total.reached += partial[w].reached;
        total.silent += partial[w].silent;
        partial[w] = {};
      }
    }
    if (tracer != nullptr) {
      if (trace_sample_ > 0 &&
          i % static_cast<std::size_t>(trace_sample_) == 0)
        tracer->instant(
            net::format("probe %s -> %s", task.vp.c_str(),
                        task.dst.to_string().c_str()),
            "probe");
      if (shard_end) {
        tracer->end(shard_name(i));
        tracer->counter("campaign.tasks_done", tasks_done[w]);
      }
    }
  });
  if (metrics_ != nullptr) {
    metrics_->counter("campaign.tasks").inc(tasks.size());
    metrics_->counter("campaign.batches").inc();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    metrics_->volatile_gauge("campaign.threads")
        .set(static_cast<double>(threads_));
    if (wall_ms > 0.0) {
      metrics_->volatile_gauge("campaign.tasks_per_sec")
          .set(static_cast<double>(tasks.size()) / wall_ms * 1000.0);
      double busy_total_ms = 0.0;
      for (int w = 0; w < threads_; ++w) {
        busy_total_ms += busy_ms[static_cast<std::size_t>(w)];
        metrics_
            ->volatile_gauge(
                net::format("campaign.worker%02d.utilization", w))
            .set(busy_ms[static_cast<std::size_t>(w)] / wall_ms);
      }
      // Parallel efficiency: busy time across workers over wall *
      // threads. 1.0 = perfect scaling; the gap is scheduling, lock
      // waits, and idle tails — what the ROADMAP's BM_CampaignParallel
      // regression is made of. Labeled by the innermost open pipeline
      // stage so the manifest's concurrency section can attribute it.
      const double efficiency =
          busy_total_ms / (wall_ms * static_cast<double>(threads_));
      metrics_->volatile_gauge("campaign.parallel_efficiency")
          .set(efficiency);
      if (const auto stage = metrics_->current_stage_name(); !stage.empty())
        metrics_
            ->volatile_gauge("campaign.stage." + stage + ".efficiency")
            .set(efficiency);
    }
  }
  // Batch outcome logging happens on the joined main thread and depends
  // only on the (deterministic) trace results, never on scheduling — the
  // canonical log view stays byte-stable at any thread count.
  if (log != nullptr && !tasks.empty()) {
    const std::size_t reached = total.reached;
    const std::size_t silent = total.silent;
    if (silent == out.size())
      log->warn("campaign.batch",
                net::format("campaign batch of %zu probe(s) saw no "
                            "responding hop at all",
                            out.size()));
    else if (log->enabled(obs::LogLevel::kInfo))
      log->info("campaign.batch",
                net::format("campaign batch: %zu probe(s), %zu reached "
                            "their target, %zu fully silent",
                            out.size(), reached, silent));
  }
  return out;
}

}  // namespace ran::probe
