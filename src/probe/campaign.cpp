#include "campaign.hpp"

#include <atomic>
#include <thread>
#include <unordered_set>

namespace ran::probe {

namespace {

/// Indexes per counter fetch: large enough to amortize the atomic,
/// small enough to balance uneven per-trace cost.
constexpr std::size_t kBlock = 16;

}  // namespace

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const auto hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& fn) {
  threads = resolve_threads(threads);
  if (threads <= 1 || count <= kBlock) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t begin = next.fetch_add(kBlock);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + kBlock, count);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
}

CampaignRunner::CampaignRunner(const TracerouteEngine& engine,
                               CampaignConfig config)
    : engine_(&engine), threads_(resolve_threads(config.threads)) {}

std::vector<TraceRecord> CampaignRunner::run(
    std::span<const ProbeTask> tasks) const {
  // Warm the per-source route tables up front so the pool runs against a
  // read-mostly cache instead of racing to fill it.
  if (threads_ > 1) {
    std::unordered_set<sim::NodeId> seen;
    std::vector<sim::ProbeSource> sources;
    for (const auto& task : tasks)
      if (seen.insert(task.src.node).second) sources.push_back(task.src);
    engine_->world().warm_routes(sources);
  }
  std::vector<TraceRecord> out(tasks.size());
  parallel_for(tasks.size(), threads_, [&](std::size_t i) {
    const auto& task = tasks[i];
    out[i] = engine_->run(task.src, task.dst, task.vp, task.flow_id);
  });
  return out;
}

}  // namespace ran::probe
