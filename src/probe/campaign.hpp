// Pooled measurement campaigns: fans a list of traceroute tasks across a
// worker pool. Because World::trace is a pure function of the probe's
// identity and every result lands in the output slot of its task index,
// a campaign's corpus is bit-identical whatever the thread count or
// scheduling — threads=1 reproduces the plain serial loop exactly.
//
// CampaignConfig is also the execution-config base shared by every
// pipeline config (cable / AT&T / mobile): one place for per-trace
// options, the parallelism knob, and the metrics sink.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timed_mutex.hpp"
#include "traceroute.hpp"

namespace ran::probe {

/// One traceroute to run: a vantage point (source + label) and a target.
struct ProbeTask {
  sim::ProbeSource src;
  std::string vp;
  net::IPv4Address dst;
  std::uint64_t flow_id = 0;
};

/// Execution settings for a measurement campaign, embedded by every
/// pipeline config. None of these fields changes what is inferred —
/// corpora are byte-identical at any parallelism, with or without a
/// metrics registry.
struct CampaignConfig {
  /// Probe attempts / gap limit for every traceroute.
  TraceOptions trace;
  /// Worker threads; 0 = all hardware threads, 1 = serial.
  int parallelism = 0;
  /// Metrics sink for campaign/probe instrumentation; null = off. When
  /// the registry carries a tracer (Registry::set_tracer), the runner
  /// also emits one span per task shard plus sampled per-probe instants.
  obs::Registry* metrics = nullptr;
  /// Every Nth probe emits an instant trace event while tracing is on;
  /// 0 disables per-probe instants (shard spans still appear). Tracing
  /// never affects results, only the timeline exported.
  int trace_sample = 64;
};

/// Resolves a `threads` knob: 0 -> hardware_concurrency (at least 1).
[[nodiscard]] int resolve_threads(int threads);

/// Runs fn(i) for every i in [0, count) on `threads` workers. Indexes are
/// handed out in small blocks from a shared counter; callers must key any
/// output by index so results are independent of scheduling. threads<=1
/// runs inline on the calling thread.
void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& fn);

/// As parallel_for, but fn also receives the index of the worker running
/// it (0 is the calling thread) — for per-worker accounting. Results must
/// not depend on the worker index.
void parallel_for_indexed(std::size_t count, int threads,
                          const std::function<void(int, std::size_t)>& fn);

/// Builds the VP-major task grid (every target from vps[0], then vps[1],
/// ...) — the canonical ordering of the serial pipeline loops. Works with
/// any VP type exposing `.source()` and `.name`.
template <typename VpRange>
[[nodiscard]] std::vector<ProbeTask> grid_tasks(
    const VpRange& vps, std::span<const net::IPv4Address> targets) {
  std::vector<ProbeTask> tasks;
  tasks.reserve(vps.size() * targets.size());
  for (const auto& vp : vps)
    for (const auto target : targets)
      tasks.push_back({vp.source(), vp.name, target, 0});
  return tasks;
}

class CampaignRunner {
 public:
  explicit CampaignRunner(const sim::World& world,
                          const CampaignConfig& config = {});

  [[nodiscard]] int thread_count() const { return threads_; }
  [[nodiscard]] const TracerouteEngine& engine() const { return engine_; }

  /// Runs every task; result[i] is the traceroute for tasks[i].
  [[nodiscard]] std::vector<TraceRecord> run(
      std::span<const ProbeTask> tasks) const;

 private:
  TracerouteEngine engine_;
  int threads_;
  obs::Registry* metrics_;
  int trace_sample_;
  /// Guards the shared batch-outcome totals workers merge into at shard
  /// boundaries. Instrumented (site `campaign.result_agg`) when the
  /// config carries a registry, so result-aggregation contention shows
  /// up next to the route cache's in lock-wait reports. mutable: run()
  /// is const, and the aggregate totals are observability, not results.
  mutable obs::TimedMutex agg_mutex_;
};

}  // namespace ran::probe
