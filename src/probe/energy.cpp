#include "energy.hpp"

#include <cmath>

#include "netbase/contracts.hpp"

namespace ran::probe {

namespace {

double wake_mah(const RadioModel& model) {
  return 0.5 * (model.wake_mah_min + model.wake_mah_max);
}

}  // namespace

double round_duration_s(const RoundProfile& round, bool parallel_hops,
                        const RadioModel& model) {
  RAN_EXPECTS(round.destinations > 0);
  const double hops = round.responsive_hops + round.unresponsive_hops;
  double per_destination;
  if (!parallel_hops) {
    // Stock scamper walks hop by hop; every unresponsive hop costs a full
    // timeout with the radio held in the active state.
    per_destination = round.responsive_hops * model.responsive_hop_s +
                      round.unresponsive_hops * model.unresponsive_timeout_s;
  } else {
    // Parallel-hop mode probes windows of consecutive hops at once, so a
    // window completes in the time of its slowest member (the timeout when
    // it contains any unresponsive hop, which the tail windows do).
    const double windows = std::ceil(hops / model.parallelism);
    per_destination = windows * model.unresponsive_timeout_s +
                      model.responsive_hop_s;
  }
  return per_destination * round.destinations;
}

double round_energy_mah(const RoundProfile& round, bool parallel_hops,
                        const RadioModel& model) {
  return round_duration_s(round, parallel_hops, model) * model.active_ma /
         3600.0;
}

double battery_days(double battery_mah, const RoundProfile& round,
                    bool parallel_hops, bool airplane_between_rounds,
                    const RadioModel& model) {
  RAN_EXPECTS(battery_mah > 0);
  const double probe = round_energy_mah(round, parallel_hops, model);
  const double sleep = airplane_between_rounds
                           ? model.sleep_airplane_mah_per_55min
                           : model.sleep_connected_mah_per_55min;
  const double wake = airplane_between_rounds ? wake_mah(model) : 0.0;
  const double per_hour = probe + sleep + wake;
  return battery_mah / per_hour / 24.0;
}

std::vector<EnergyPoint> energy_timeline(const RoundProfile& round,
                                         bool parallel_hops,
                                         double airplane_min,
                                         const RadioModel& model) {
  std::vector<EnergyPoint> out;
  double t = 0.0;
  double mah = 0.0;
  // Asleep in airplane mode before the round starts.
  const double sleep_rate = model.sleep_airplane_mah_per_55min / 55.0;
  for (double m = 0; m < airplane_min; m += 0.25) {
    out.push_back({t, mah, "airplane"});
    t += 0.25;
    mah += sleep_rate * 0.25;
  }
  // Wake from airplane mode (~30 s of re-attach signalling).
  const double wake_total = wake_mah(model);
  for (int i = 0; i < 2; ++i) {
    out.push_back({t, mah, "wake"});
    t += 0.25;
    mah += wake_total / 2;
  }
  // The probing round itself.
  const double duration_min =
      round_duration_s(round, parallel_hops, model) / 60.0;
  const double probe_mah = round_energy_mah(round, parallel_hops, model);
  const int steps = std::max(1, static_cast<int>(duration_min / 0.25));
  for (int i = 0; i < steps; ++i) {
    out.push_back({t, mah, "probe"});
    t += duration_min / steps;
    mah += probe_mah / steps;
  }
  out.push_back({t, mah, "probe"});
  return out;
}

}  // namespace ran::probe
