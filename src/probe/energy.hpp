// Smartphone radio energy model for ShipTraceroute (§7.1.2, Fig 14).
//
// Calibrated to the paper's Samsung Galaxy A71 measurements: a round of
// traceroutes to the 266 AT&T-neighbour destinations costs 8.6 mAh with
// stock hop-serial scamper and 5.3 mAh with the parallel-hop modification
// (38 % less); exiting airplane mode costs 1.4-2.6 mAh; sleeping 55 min
// costs 14.5 mAh connected vs 9 mAh in airplane mode; and a ~4500 mAh
// battery sustains hourly rounds for ~12 days.
#pragma once

#include <string>
#include <vector>

namespace ran::probe {

struct RadioModel {
  /// Effective average battery draw while the radio actively probes (mA).
  double active_ma = 61.3;
  /// Sleep draw over a 55-minute gap (mAh per hour of sleep).
  double sleep_connected_mah_per_55min = 14.5;
  double sleep_airplane_mah_per_55min = 9.0;
  /// Energy to re-attach after leaving airplane mode (mAh).
  double wake_mah_min = 1.4;
  double wake_mah_max = 2.6;
  /// Per-probe service time for a responsive hop, and the timeout spent
  /// on an unresponsive one (seconds).
  double responsive_hop_s = 0.15;
  double unresponsive_timeout_s = 0.5;
  /// Probes in flight at once in parallel-hop mode.
  int parallelism = 4;
};

/// Shape of one measurement round.
struct RoundProfile {
  int destinations = 266;  ///< IPv4+IPv6 targets in neighbouring ASes (§D)
  double responsive_hops = 6.0;    ///< mean per trace
  double unresponsive_hops = 2.0;  ///< mean per trace (timeouts dominate)
};

/// Wall-clock duration of one round (seconds).
[[nodiscard]] double round_duration_s(const RoundProfile& round,
                                      bool parallel_hops,
                                      const RadioModel& model = {});

/// Radio energy of one round (mAh).
[[nodiscard]] double round_energy_mah(const RoundProfile& round,
                                      bool parallel_hops,
                                      const RadioModel& model = {});

/// Days of hourly rounds a battery sustains. `airplane_between_rounds`
/// selects the ShipTraceroute regime (airplane sleep + wake cost) versus
/// the stock regime (connected sleep, no wake cost).
[[nodiscard]] double battery_days(double battery_mah,
                                  const RoundProfile& round,
                                  bool parallel_hops,
                                  bool airplane_between_rounds,
                                  const RadioModel& model = {});

/// One point of the Fig 14 cumulative-energy timeline.
struct EnergyPoint {
  double t_min = 0.0;
  double cumulative_mah = 0.0;
  std::string phase;  ///< "airplane", "wake", "probe"
};

/// Cumulative energy over one wake -> probe cycle, starting from
/// `airplane_min` minutes asleep in airplane mode (the Fig 14 curve).
[[nodiscard]] std::vector<EnergyPoint> energy_timeline(
    const RoundProfile& round, bool parallel_hops, double airplane_min = 1.0,
    const RadioModel& model = {});

}  // namespace ran::probe
