#include "traceroute.hpp"

#include <algorithm>

#include "netbase/contracts.hpp"

namespace ran::probe {

TracerouteEngine::TracerouteEngine(const sim::World& world,
                                   TraceOptions options,
                                   obs::Registry* metrics)
    : world_(world), options_(options) {
  if (metrics == nullptr) return;
  traces_ = &metrics->counter("probe.trace.count");
  reached_ = &metrics->counter("probe.trace.reached");
  retry_rescued_hops_ = &metrics->counter("probe.trace.hops_rescued_by_retry");
  hops_per_trace_ = &metrics->histogram("probe.trace.hops");
}

TraceRecord TracerouteEngine::run(const sim::ProbeSource& src,
                                  net::IPv4Address dst, std::string vp_label,
                                  std::uint64_t flow_id) const {
  RAN_EXPECTS(options_.attempts >= 1);
  TraceRecord record;
  record.vp = std::move(vp_label);
  record.dst = dst;

  // Retry semantics: scamper probes each hop `attempts` times, and paris
  // keeps the flow constant so every attempt traverses the same path; a
  // hop silent on one attempt may answer another. Merge per-TTL.
  std::uint64_t rescued = 0;
  for (int attempt = 0; attempt < options_.attempts; ++attempt) {
    const auto result =
        world_.trace(src, dst, flow_id, static_cast<std::uint64_t>(attempt));
    record.reached = record.reached || result.reached;
    if (record.hops.size() < result.hops.size()) {
      const auto old_size = record.hops.size();
      record.hops.resize(result.hops.size());
      // A hop slot keeps its TTL even if no attempt ever hears a reply.
      for (std::size_t i = old_size; i < record.hops.size(); ++i)
        record.hops[i].ttl = result.hops[i].ttl;
    }
    for (std::size_t i = 0; i < result.hops.size(); ++i)
      if (!record.hops[i].responded() && result.hops[i].responded()) {
        record.hops[i] = result.hops[i];
        if (attempt > 0) ++rescued;
      }
  }

  // Gap limit: stop reporting after a long silent run.
  int gap = 0;
  for (std::size_t i = 0; i < record.hops.size(); ++i) {
    gap = record.hops[i].responded() ? 0 : gap + 1;
    if (gap >= options_.gap_limit) {
      record.hops.resize(i + 1);
      break;
    }
  }
  if (static_cast<int>(record.hops.size()) > options_.max_ttl)
    record.hops.resize(static_cast<std::size_t>(options_.max_ttl));

  if (traces_ != nullptr) {
    traces_->inc();
    if (record.reached) reached_->inc();
    if (rescued > 0) retry_rescued_hops_->inc(rescued);
    hops_per_trace_->observe(record.hops.size());
  }
  return record;
}

}  // namespace ran::probe
