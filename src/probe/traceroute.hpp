// scamper-style traceroute engine on top of the simulated world.
//
// Adds the prober behaviours that matter to the paper on top of raw
// World::trace: per-hop retry attempts (rescuing rate-limited hops), the
// gap limit that stops probing after a run of silent hops, and the choice
// between hop-serial probing (stock scamper) and the parallel-hop mode the
// authors added to cut radio-on time (§7.1.2, Fig 14).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/world.hpp"

namespace ran::probe {

struct TraceOptions {
  int max_ttl = 30;
  /// Probe attempts per hop; a hop that answers any attempt is recorded.
  int attempts = 2;
  /// Stop after this many consecutive unresponsive hops.
  int gap_limit = 5;
};

/// One collected traceroute: the unit of the measurement corpus.
struct TraceRecord {
  std::string vp;  ///< vantage point label
  net::IPv4Address dst;
  std::vector<sim::Hop> hops;
  bool reached = false;
};

class TracerouteEngine {
 public:
  /// `metrics` (optional) receives per-trace accounting: trace counts,
  /// hops rescued by retry attempts, hop-count histograms. All of it is a
  /// pure function of the probes run — never of scheduling — so the same
  /// campaign yields the same totals at any thread count.
  TracerouteEngine(const sim::World& world, TraceOptions options,
                   obs::Registry* metrics = nullptr);

  /// Runs a paris traceroute from `src`, labelled with the VP name.
  [[nodiscard]] TraceRecord run(const sim::ProbeSource& src,
                                net::IPv4Address dst, std::string vp_label,
                                std::uint64_t flow_id = 0) const;

  [[nodiscard]] const TraceOptions& options() const { return options_; }
  [[nodiscard]] const sim::World& world() const { return world_; }

 private:
  const sim::World& world_;
  TraceOptions options_;
  // Resolved once at construction so the per-trace hot path is lock-free.
  obs::Counter* traces_ = nullptr;
  obs::Counter* reached_ = nullptr;
  obs::Counter* retry_rescued_hops_ = nullptr;
  obs::Histogram* hops_per_trace_ = nullptr;
};

}  // namespace ran::probe
