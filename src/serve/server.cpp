#include "server.hpp"

#include <chrono>

#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace ran::serve {

namespace {

/// Poll tick: how often blocked accept/read loops re-check stopping_.
constexpr int kTickMs = 100;

infer::QueryEngineConfig engine_config(const ServerConfig& config,
                                       const infer::ServeHealth* health) {
  infer::QueryEngineConfig engine;
  engine.max_request_bytes = config.max_request_bytes;
  engine.metrics = config.metrics;
  engine.recorder = config.recorder;
  engine.health = health;
  engine.error_window_s = config.error_window_s;
  return engine;
}

}  // namespace

Server::Server(const infer::SnapshotHub& hub, ServerConfig config)
    : hub_(hub),
      config_(config),
      engine_(hub, engine_config(config_, &health_)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (started_) return true;
  listener_ = net::TcpListener::bind_local(config_.port, error);
  if (!listener_.has_value()) return false;
  port_ = listener_->port();
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  const int workers = std::max(1, config_.worker_threads);
  health_.total_workers = static_cast<std::uint32_t>(workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  if (config_.log != nullptr)
    config_.log->info("serve", "listening on 127.0.0.1:" +
                                   std::to_string(port_) + " with " +
                                   std::to_string(workers) + " workers");
  return true;
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  {
    const std::lock_guard lock{queue_mutex_};
    pending_.clear();  // connections never picked up: close them
  }
  if (listener_.has_value()) listener_->close();
  listener_.reset();
  started_ = false;
  if (config_.log != nullptr) config_.log->info("serve", "stopped");
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto stream = listener_->accept(kTickMs);
    if (!stream.valid()) continue;
    if (config_.metrics != nullptr)
      config_.metrics->volatile_counter("serve.connections").inc();
    {
      const std::lock_guard lock{queue_mutex_};
      pending_.push_back(std::move(stream));
      health_.queue_depth.store(static_cast<std::uint32_t>(pending_.size()),
                                std::memory_order_relaxed);
    }
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  while (true) {
    net::TcpStream stream;
    {
      std::unique_lock lock{queue_mutex_};
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !pending_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      stream = std::move(pending_.front());
      pending_.pop_front();
      health_.queue_depth.store(static_cast<std::uint32_t>(pending_.size()),
                                std::memory_order_relaxed);
    }
    health_.busy_workers.fetch_add(1, std::memory_order_relaxed);
    serve_connection(std::move(stream));
    health_.busy_workers.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::serve_connection(net::TcpStream stream) {
  using Clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  // A request that overflows the bound still needs its newline found, so
  // the buffer may briefly exceed max_request_bytes by one chunk.
  const std::size_t hard_cap = config_.max_request_bytes + sizeof(chunk);
  auto partial_since = Clock::now();
  bool partial = false;

  while (!stopping_.load(std::memory_order_relaxed)) {
    // Drain every complete line already buffered. Per-request latency
    // lands in the engine's per-op serve.latency_us.<op> histograms.
    std::size_t start = 0;
    while (true) {
      const auto newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line{buffer.data() + start, newline - start};
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      std::string reply = engine_.answer(line);
      reply.push_back('\n');
      if (!stream.send_all(reply)) return;
      start = newline + 1;
    }
    buffer.erase(0, start);
    partial = !buffer.empty();
    if (!partial) partial_since = Clock::now();

    if (buffer.size() > config_.max_request_bytes) {
      // The line under construction already blew the bound — reply once
      // and drop the connection rather than buffer without limit.
      auto reply = engine_.error_reply(infer::QueryReason::kTooLarge,
                                       "request exceeds the size bound",
                                       buffer);
      reply.push_back('\n');
      (void)stream.send_all(reply);
      return;
    }

    std::size_t n = 0;
    const auto result =
        stream.read_some(chunk, sizeof(chunk), kTickMs, &n);
    switch (result) {
      case net::TcpStream::ReadResult::kData:
        if (buffer.size() + n > hard_cap) n = hard_cap - buffer.size();
        buffer.append(chunk, n);
        if (!partial) partial_since = Clock::now();
        break;
      case net::TcpStream::ReadResult::kTimeout:
        if (partial &&
            Clock::now() - partial_since >
                std::chrono::milliseconds(config_.request_timeout_ms)) {
          auto reply = engine_.error_reply(
              infer::QueryReason::kTimeout,
              "request not completed within the deadline", buffer);
          reply.push_back('\n');
          (void)stream.send_all(reply);
          return;
        }
        break;
      case net::TcpStream::ReadResult::kClosed:
      case net::TcpStream::ReadResult::kError:
        return;
    }
  }
}

}  // namespace ran::serve
