// ran::serve — the long-lived daemon core around QueryEngine.
//
// Threading model: one acceptor thread pulls connections off the
// loopback listener and hands them to a fixed worker pool over a small
// queue; each worker owns one connection at a time and runs its whole
// JSON-lines conversation (read → QueryEngine::answer → write) with
// poll()-based timeouts so both the acceptor and the workers notice
// stop() within one tick. Queries never take a lock the publisher
// holds: the engine copies the SnapshotHub's shared_ptr once per
// request (see core/snapshot.hpp for the shared concurrency contract).
//
// Robustness contract (the "never crash the daemon" satellite): request
// lines are bounded (max_request_bytes — an over-long line gets a
// `too_large` error reply and the connection closes), a partial line
// that stalls past request_timeout_ms gets a `timeout` reply and the
// connection closes, and malformed bytes produce structured error
// replies. All of it surfaces in `serve.*` volatile counters.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/query_engine.hpp"
#include "core/snapshot.hpp"
#include "netbase/socket.hpp"

namespace ran::obs {
class FlightRecorder;
class Log;
class Registry;
}

namespace ran::serve {

struct ServerConfig {
  /// 0 binds an ephemeral port; read the choice from port() after
  /// start().
  std::uint16_t port = 0;
  int worker_threads = 4;
  /// Longest accepted request line (bytes, newline excluded).
  std::size_t max_request_bytes = 4096;
  /// A partial request older than this is answered `timeout` and the
  /// connection dropped.
  int request_timeout_ms = 5000;
  obs::Registry* metrics = nullptr;
  obs::Log* log = nullptr;
  /// Optional: every answered request leaves a flight record (and the
  /// admin `dump` op starts working).
  obs::FlightRecorder* recorder = nullptr;
  /// Width of the `health` op's error-rate window, in seconds.
  int error_window_s = 60;
};

class Server {
 public:
  /// The hub outlives the server; publish() on it at any time to move
  /// every subsequent query to the new snapshot generation.
  Server(const infer::SnapshotHub& hub, ServerConfig config);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Binds and spawns the acceptor + workers. False (with a message)
  /// when the port can't be bound.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, let every worker finish the
  /// request it is writing, close all connections, join all threads.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return started_ && !stopping_.load(std::memory_order_relaxed);
  }

  /// The engine answering this server's requests — for callers that want
  /// to issue admin ops (metrics/health/dump) in-process.
  [[nodiscard]] const infer::QueryEngine& engine() const { return engine_; }

  /// Live worker-pool saturation, as the `health` op reports it.
  [[nodiscard]] const infer::ServeHealth& health() const { return health_; }

 private:
  void accept_loop();
  void worker_loop();
  /// Runs one connection's whole conversation; returns when the peer
  /// hangs up, errs, times out, or the server stops.
  void serve_connection(net::TcpStream stream);

  const infer::SnapshotHub& hub_;
  ServerConfig config_;
  /// Declared before engine_: the engine captures a pointer to it.
  infer::ServeHealth health_;
  infer::QueryEngine engine_;
  std::optional<net::TcpListener> listener_;

  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<net::TcpStream> pending_;
};

}  // namespace ran::serve
