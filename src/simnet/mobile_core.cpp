#include "mobile_core.hpp"

#include <algorithm>

#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"

namespace ran::sim {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_real(std::uint64_t key) {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

constexpr double kCoreHopDelayMs = 0.3;

/// The Gulf-coast pocket where the shipped T-Mobile device attached to a
/// distant South Carolina EdgeCO (Fig 18c).
bool in_gulf_pocket(const net::GeoPoint& p) {
  return p.lat > 29.0 && p.lat < 31.8 && p.lon > -92.0 && p.lon < -84.0;
}

}  // namespace

net::IPv6Address provider_router_addr(int asn, int unit) {
  net::IPv6Address base{0x2001'0000'0000'0000ULL, 0x1ULL};
  return base.with_bits(16, 16, static_cast<std::uint64_t>(asn) & 0xffff)
      .with_bits(48, 16, static_cast<std::uint64_t>(unit));
}

MobileCore::MobileCore(const topo::Isp& carrier, std::uint64_t seed)
    : carrier_(carrier), seed_(seed) {
  RAN_EXPECTS(carrier.kind() == topo::IspKind::kMobile);
  RAN_EXPECTS(carrier.ipv6_plan().has_value());
  RAN_EXPECTS(!carrier.mobile_regions().empty());
  plan_ = *carrier.ipv6_plan();
  if (carrier.name() == "verizon") {
    flavor_ = Flavor::kVerizon;
  } else if (carrier.name() == "tmobile") {
    flavor_ = Flavor::kTmobile;
  } else {
    flavor_ = Flavor::kAtt;
  }
}

const topo::MobileRegion& MobileCore::region(int index) const {
  RAN_EXPECTS(index >= 0 &&
              index < static_cast<int>(carrier_.mobile_regions().size()));
  return carrier_.mobile_regions()[static_cast<std::size_t>(index)];
}

net::GeoPoint MobileCore::edge_location(int index) const {
  return carrier_.co(region(index).edge_co).location;
}

net::GeoPoint MobileCore::backbone_location(int index) const {
  const auto& mr = region(index);
  if (mr.backbone_co == topo::kInvalidId) return edge_location(index);
  return carrier_.co(mr.backbone_co).location;
}

int MobileCore::serving_region(const net::GeoPoint& location,
                               std::uint64_t cycle) const {
  // T-Mobile's distributed core occasionally hands Gulf-coast devices to a
  // distant EdgeCO (observed as a South Carolina attachment in Fig 18c).
  if (flavor_ == Flavor::kTmobile && in_gulf_pocket(location) &&
      unit_real(seed_ ^ cycle ^ 0xf10ULL) < 0.85) {
    for (std::size_t i = 0; i < carrier_.mobile_regions().size(); ++i)
      if (carrier_.mobile_regions()[i].name == "CLMB")
        return static_cast<int>(i);
  }
  // Administrative (state-based) coverage takes precedence: centralized
  // carriers assign whole states to a mobile datacenter regardless of
  // distance. Otherwise the nearest EdgeCO serves.
  std::string_view state;
  double state_km = 1e18;
  for (const auto& city : net::us_cities()) {
    const double km = net::haversine_km(location, city.location);
    if (km < state_km) {
      state_km = km;
      state = city.state;
    }
  }
  for (std::size_t i = 0; i < carrier_.mobile_regions().size(); ++i) {
    const auto& states = carrier_.mobile_regions()[i].states;
    if (std::find(states.begin(), states.end(), state) != states.end())
      return static_cast<int>(i);
  }
  int best = 0;
  double best_km = 1e18;
  for (std::size_t i = 0; i < carrier_.mobile_regions().size(); ++i) {
    const double km =
        net::haversine_km(location, edge_location(static_cast<int>(i)));
    if (km < best_km) {
      best_km = km;
      best = static_cast<int>(i);
    }
  }
  return best;
}

Attachment MobileCore::attach(const net::GeoPoint& location,
                              std::uint64_t cycle) const {
  Attachment at;
  at.device_location = location;
  at.region_index = serving_region(location, cycle);
  // Regionalized cores occasionally hand a stationary device to the
  // neighbouring EdgeCO behind the same BackboneCO (load balancing /
  // redundancy; observed in the §7.2.2 stationary experiment).
  if (flavor_ == Flavor::kVerizon &&
      unit_real(seed_ ^ cycle ^ 0xba1aULL) < 0.04) {
    const auto& home = region(at.region_index);
    int best = -1;
    double best_km = 1e18;
    for (std::size_t i = 0; i < carrier_.mobile_regions().size(); ++i) {
      const auto& other = carrier_.mobile_regions()[i];
      if (static_cast<int>(i) == at.region_index) continue;
      if (other.backbone_co != home.backbone_co) continue;
      const double km =
          net::haversine_km(location, edge_location(static_cast<int>(i)));
      if (km < best_km) {
        best_km = km;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) at.region_index = best;
  }
  const auto& mr = region(at.region_index);
  at.pgw_index = static_cast<int>(
      mix64(seed_ ^ cycle ^ (static_cast<std::uint64_t>(at.region_index) << 8))
      % std::max<std::size_t>(1, mr.pgws.size()));
  at.ran_delay_ms = 12.0 + 18.0 * unit_real(seed_ ^ cycle ^ 0xadULL);

  // Build the user /64 per the address plan.
  net::IPv6Address user = plan_.user_prefix.network();
  if (plan_.user_region_width > 0) {
    const std::uint64_t code =
        flavor_ == Flavor::kVerizon ? mr.backbone_code : mr.user_code;
    user = user.with_bits(plan_.user_region_bit, plan_.user_region_width,
                          code);
  }
  if (plan_.user_edgeco_width > 0)
    user = user.with_bits(plan_.user_edgeco_bit, plan_.user_edgeco_width,
                          mr.region_code);
  if (plan_.user_pgw_width > 0) {
    std::uint64_t pgw_code = static_cast<std::uint64_t>(at.pgw_index);
    if (flavor_ == Flavor::kTmobile) {
      // T-Mobile's user /40 names the PGW globally with no geographic
      // bit structure (Fig 16c): scramble the global PGW index.
      const std::uint64_t raw =
          static_cast<std::uint64_t>(at.region_index) * 3 +
          static_cast<std::uint64_t>(at.pgw_index);
      pgw_code = 0x40 + (raw * 41) % 0xbf;
    } else if (flavor_ == Flavor::kVerizon) {
      pgw_code = 0xb ^ static_cast<std::uint64_t>(at.pgw_index);
    }
    user = user.with_bits(plan_.user_pgw_bit, plan_.user_pgw_width, pgw_code);
  }
  // Subscriber bits: stable per cycle, otherwise arbitrary.
  const int sub_bit =
      std::max({plan_.user_region_bit + plan_.user_region_width,
                plan_.user_edgeco_bit + plan_.user_edgeco_width,
                plan_.user_pgw_bit + plan_.user_pgw_width, 44});
  if (sub_bit < 64)
    user = user.with_bits(sub_bit, 64 - sub_bit,
                          mix64(seed_ ^ cycle ^ 0x5bULL));
  at.user_prefix64 = user;
  return at;
}

double MobileCore::delay_to_edge(const Attachment& at) const {
  return at.ran_delay_ms +
         net::fiber_delay_ms(at.device_location,
                             edge_location(at.region_index));
}

int MobileCore::backbone_asn(const Attachment& at) const {
  const auto& mr = region(at.region_index);
  RAN_EXPECTS(!mr.backbone_asns.empty());
  if (mr.backbone_asns.size() == 1) return mr.backbone_asns.front();
  // Distributed cores (T-Mobile) spread attachments over providers.
  const auto idx =
      mix64(seed_ ^ at.user_prefix64.lo() ^
            static_cast<std::uint64_t>(at.pgw_index)) %
      mr.backbone_asns.size();
  return mr.backbone_asns[idx];
}

Trace6Result MobileCore::trace6(const Attachment& at, net::IPv6Address dst,
                                int dst_asn,
                                const net::GeoPoint& dst_location) const {
  RAN_EXPECTS(at.region_index >= 0);
  Trace6Result out;
  out.dst = dst;
  const auto& mr = region(at.region_index);

  const double to_edge = delay_to_edge(at);
  const double to_backbone =
      to_edge + net::fiber_delay_ms(edge_location(at.region_index),
                                    backbone_location(at.region_index));
  const double to_dst =
      to_backbone +
      net::fiber_delay_ms(backbone_location(at.region_index), dst_location);
  int ttl = 0;
  auto push = [&](net::IPv6Address addr, double one_way, std::string rdns,
                  int asn) {
    Hop6 hop;
    hop.ttl = ++ttl;
    hop.addr = addr;
    hop.rtt_ms =
        2 * one_way + 0.2 +
        0.4 * unit_real(seed_ ^ dst.lo() ^ static_cast<std::uint64_t>(ttl));
    hop.rdns = std::move(rdns);
    hop.asn = asn;
    out.hops.push_back(hop);
  };
  auto push_star = [&] {
    Hop6 hop;
    hop.ttl = ++ttl;
    out.hops.push_back(hop);
  };

  // Hop 1: the PGW replies with an address inside the user space (Fig 16).
  net::IPv6Address pgw_addr = at.user_prefix64.with_bits(
      64, 64, mix64(seed_ ^ at.user_prefix64.hi() ^ 0x90ULL) | 0x40);
  push(pgw_addr, to_edge, "", carrier_.asn());

  switch (flavor_) {
    case Flavor::kAtt: {
      push_star();  // hidden packet-core middlebox
      // Two infrastructure routers carrying region and PGW bits.
      for (const std::uint64_t variant : {0x0eULL, 0x20ULL}) {
        net::IPv6Address addr = plan_.infra_prefix.network()
                                    .with_bits(plan_.infra_region_bit,
                                               plan_.infra_region_width,
                                               mr.region_code)
                                    .with_bits(48, 4, 0xb)
                                    .with_bits(plan_.infra_pgw_bit,
                                               plan_.infra_pgw_width,
                                               static_cast<std::uint64_t>(
                                                   at.pgw_index))
                                    .with_bits(56, 8, variant)
                                    .with_bits(120, 8, 1);
        push(addr, to_edge + kCoreHopDelayMs, "", carrier_.asn());
      }
      break;
    }
    case Flavor::kVerizon: {
      for (int i = 0; i < 4; ++i) push_star();  // hops 2-5 never answer
      const std::uint64_t edge_code =
          (0x62e + static_cast<std::uint64_t>(at.region_index) * 57) & 0xfff;
      auto infra = [&](std::uint64_t site, std::uint64_t unit) {
        return plan_.infra_prefix.network()
            .with_bits(32, 8, site)
            .with_bits(48, 16, unit)
            .with_bits(plan_.infra_edgeco_bit, plan_.infra_edgeco_width,
                       edge_code)
            .with_bits(88, 8, 1);
      };
      push(infra(0x65, 0x200e), to_edge + kCoreHopDelayMs, "",
           carrier_.asn());
      push_star();
      push(infra(0x6f, 0x3091), to_edge + 2 * kCoreHopDelayMs, "",
           carrier_.asn());
      push(infra(0x6f, 0x3091), to_edge + 2 * kCoreHopDelayMs, "",
           carrier_.asn());
      push(infra(0x65, 0x1020), to_backbone, "", carrier_.asn());
      break;
    }
    case Flavor::kTmobile: {
      // ULA packet-core hops (fc00:420:81::/48 style).
      for (const std::uint64_t unit : {0x2013ULL, 0x0113ULL}) {
        net::IPv6Address addr{0xfc00'0420'0081'0000ULL | unit, 0x1ULL};
        push(addr, to_edge + kCoreHopDelayMs, "", carrier_.asn());
      }
      const std::uint64_t pgw16 =
          0x1400 + static_cast<std::uint64_t>(at.region_index) * 16 +
          static_cast<std::uint64_t>(at.pgw_index);
      net::IPv6Address addr = plan_.infra_prefix.network()
                                  .with_bits(plan_.infra_pgw_bit,
                                             plan_.infra_pgw_width, pgw16)
                                  .with_bits(48, 16, 0x9001)
                                  .with_bits(120, 8, 1);
      push(addr, to_edge + 2 * kCoreHopDelayMs, "", carrier_.asn());
      break;
    }
  }

  // Backbone-provider hop (the egress); Verizon's carries alter.net rDNS.
  const int provider = backbone_asn(at);
  std::string rdns;
  if (flavor_ == Flavor::kVerizon) {
    std::string site = mr.backbone_name;
    std::transform(site.begin(), site.end(), site.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    rdns = net::format("0.ae2.br1.%s.alter.net", site.c_str());
  }
  push(provider_router_addr(provider,
                            1 + static_cast<int>(mr.region_code & 0xf)),
       to_backbone + kCoreHopDelayMs, std::move(rdns), provider);

  if (dst_asn != provider) push_star();  // an unnamed inter-AS hop
  push(dst, to_dst, "", dst_asn);
  out.reached = true;
  return out;
}

net::IPv4Address MobileCore::speedtest_addr(const Attachment& at) const {
  return region(at.region_index).speedtest_addr;
}

double MobileCore::rtt_sample(const Attachment& at,
                              const net::GeoPoint& server,
                              std::uint64_t probe) const {
  const double one_way =
      delay_to_edge(at) +
      net::fiber_delay_ms(edge_location(at.region_index),
                          backbone_location(at.region_index)) +
      net::fiber_delay_ms(backbone_location(at.region_index), server);
  return 2 * one_way + 1.0 + 6.0 * unit_real(seed_ ^ probe ^ 0x57ULL);
}

}  // namespace ran::sim
