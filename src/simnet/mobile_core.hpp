// Simulator for mobile carrier packet cores (§7).
//
// A device attaches (on every airplane-mode exit) to the packet core: the
// serving mobile EdgeCO is the nearest mobile datacenter, a packet gateway
// (PGW) inside it is assigned round-robin-ish per attachment, and the
// device receives an IPv6 /64 whose bits encode region / EdgeCO / PGW per
// the carrier's address plan (Fig 16). IPv6 traceroutes from the device
// reveal a short chain of packet-core hops and a backbone-provider hop;
// probes toward carrier-internal destinations are blocked (§7.1.1), so the
// corpus only ever contains outbound paths.
//
// The radio access network is invisible to IP, exactly as in reality: its
// contribution is an attachment-specific access delay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/ipv6.hpp"
#include "topogen/model.hpp"

namespace ran::sim {

/// A packet-core session established when the device leaves airplane mode.
struct Attachment {
  int region_index = -1;  ///< index into Isp::mobile_regions()
  int pgw_index = 0;
  net::IPv6Address user_prefix64;  ///< the device's delegated /64
  double ran_delay_ms = 20.0;      ///< one-way radio delay this session
  net::GeoPoint device_location;
};

/// One hop of an IPv6 traceroute through the packet core.
struct Hop6 {
  int ttl = 0;
  net::IPv6Address addr;  ///< unspecified when no reply ("*")
  double rtt_ms = 0.0;
  std::string rdns;       ///< only Verizon backbone hops carry rDNS
  int asn = 0;            ///< owning AS (carrier or backbone provider)
  [[nodiscard]] bool responded() const { return !addr.is_unspecified(); }
};

struct Trace6Result {
  net::IPv6Address dst;
  std::vector<Hop6> hops;
  bool reached = false;
};

class MobileCore {
 public:
  /// `carrier` must be a kMobile ISP with an IPv6 plan; the core keeps a
  /// reference and must not outlive it.
  MobileCore(const topo::Isp& carrier, std::uint64_t seed);

  [[nodiscard]] const topo::Isp& carrier() const { return carrier_; }

  /// Index of the mobile region serving a location (nearest EdgeCO, with
  /// T-Mobile's occasional distant-EdgeCO assignment on the Gulf coast —
  /// the Fig 18c anomaly).
  [[nodiscard]] int serving_region(const net::GeoPoint& location,
                                   std::uint64_t cycle) const;

  /// Attach at a location. `cycle` identifies the airplane-mode cycle and
  /// drives PGW churn; the same cycle re-attaches identically.
  [[nodiscard]] Attachment attach(const net::GeoPoint& location,
                                  std::uint64_t cycle) const;

  /// IPv6 traceroute to an external destination in AS `dst_asn` located at
  /// `dst_location`.
  [[nodiscard]] Trace6Result trace6(const Attachment& at,
                                    net::IPv6Address dst, int dst_asn,
                                    const net::GeoPoint& dst_location) const;

  /// One RTT sample from the device to a server (Fig 18's measurement).
  [[nodiscard]] double rtt_sample(const Attachment& at,
                                  const net::GeoPoint& server,
                                  std::uint64_t probe) const;

  /// The backbone provider ASN used by this attachment (T-Mobile cycles
  /// through several per region; §7.2.3).
  [[nodiscard]] int backbone_asn(const Attachment& at) const;

  /// The serving EdgeCO's speedtest server (Verizon deploys one per
  /// EdgeCO whose rDNS names the CO; §7.2.2). Unspecified address when
  /// the carrier runs none.
  [[nodiscard]] net::IPv4Address speedtest_addr(const Attachment& at) const;

 private:
  [[nodiscard]] const topo::MobileRegion& region(int index) const;
  [[nodiscard]] net::GeoPoint edge_location(int index) const;
  [[nodiscard]] net::GeoPoint backbone_location(int index) const;
  /// Cumulative one-way delay device -> mobile EdgeCO.
  [[nodiscard]] double delay_to_edge(const Attachment& at) const;

  const topo::Isp& carrier_;
  topo::Ipv6FieldPlan plan_;
  std::uint64_t seed_;
  enum class Flavor { kAtt, kVerizon, kTmobile } flavor_;
};

/// Synthetic address of a backbone provider's peering router (used for the
/// post-egress hop and for external trace targets).
[[nodiscard]] net::IPv6Address provider_router_addr(int asn, int unit = 1);

}  // namespace ran::sim
