#include "world.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <queue>

#include "netbase/contracts.hpp"

namespace ran::sim {

namespace {

using net::mix64;

/// Deterministic per-entity coin with probability p (stable across runs).
bool hash_chance(std::uint64_t key, std::uint64_t salt, double p) {
  return static_cast<double>(mix64(key ^ salt) >> 11) * 0x1.0p-53 < p;
}

/// IGP weight model (§ DESIGN): uniform metric 1 inside access regions so
/// redundant AggCO paths tie and ECMP exposes both; a large flat cost on
/// backbone entry links so traffic never transits an access region; and
/// delay-based weights across backbones (hot-potato-ish).
double link_weight(const topo::Isp& isp, const topo::Link& link) {
  const auto& ra = isp.router(isp.iface(link.a).router);
  const auto& rb = isp.router(isp.iface(link.b).router);
  const bool a_bb = ra.role == topo::RouterRole::kBackbone;
  const bool b_bb = rb.role == topo::RouterRole::kBackbone;
  if (!a_bb && !b_bb) return 1.0;
  if (a_bb && b_bb) return link.delay_ms + 0.01;
  return 64.0;
}

constexpr double kPeeringDelayMs = 0.3;
constexpr double kProcessingDelayMs = 0.08;

}  // namespace

World::World(std::uint64_t seed) : seed_(seed) {}

std::uint64_t World::probe_seed(NodeId src, net::IPv4Address dst,
                                std::uint64_t flow,
                                std::uint64_t attempt) const {
  // Chained avalanche over the probe identity: any trace's noise stream is
  // a pure function of its inputs, so campaigns replay bit-for-bit no
  // matter how their probes are ordered or threaded.
  std::uint64_t s = mix64(seed_ ^ 0x50524f4245ULL);  // "PROBE"
  s = mix64(s ^ src);
  s = mix64(s ^ dst.value());
  s = mix64(s ^ flow);
  s = mix64(s ^ attempt);
  return s;
}

NodeId World::add_node(Node node) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  adj_.emplace_back();
  return id;
}

void World::add_edge(NodeId a, NodeId b, double weight, double delay,
                     net::IPv4Address ingress_at_b,
                     net::IPv4Address ingress_at_a) {
  RAN_EXPECTS(a < nodes_.size() && b < nodes_.size());
  adj_[a].push_back(Edge{b, weight, delay, ingress_at_b});
  adj_[b].push_back(Edge{a, weight, delay, ingress_at_a});
}

int World::add_isp(topo::Isp isp) {
  RAN_EXPECTS(!finalized_);
  const int index = static_cast<int>(isps_.size());
  isps_.push_back(std::move(isp));
  const auto& ground = isps_.back();

  std::vector<NodeId> router_nodes(ground.routers().size(), kInvalidNode);
  for (const auto& router : ground.routers()) {
    Node node;
    node.kind = NodeKind::kRouter;
    node.isp = index;
    node.router = router.id;
    node.location = ground.co(router.co).location;
    router_nodes[router.id] = add_node(node);
  }
  for (const auto& link : ground.links()) {
    const auto& ia = ground.iface(link.a);
    const auto& ib = ground.iface(link.b);
    add_edge(router_nodes[ia.router], router_nodes[ib.router],
             link_weight(ground, link), link.delay_ms, ib.addr, ia.addr);
  }
  for (const auto& lm : ground.last_miles()) {
    Node node;
    node.kind = NodeKind::kLastMile;
    node.isp = index;
    node.last_mile = lm.id;
    node.location = lm.location;
    node.addr = lm.gw_addr;
    const NodeId lm_node = add_node(node);
    lastmile_node_[(static_cast<std::uint64_t>(index) << 32) | lm.id] =
        lm_node;
    for (const topo::RouterId router : lm.edge_routers) {
      const auto& r = ground.router(router);
      net::IPv4Address lan;
      if (r.lan_iface != topo::kInvalidId)
        lan = ground.iface(r.lan_iface).addr;
      add_edge(lm_node, router_nodes[router], 1.0, 0.25, lan, lm.gw_addr);
    }
    addr_index_[lm.gw_addr] = Resolution{AddrKind::kLastMileGw, lm_node, true};
    slash24_index_.emplace(lm.gw_addr.value() >> 8, lm_node);
    pools_.emplace_back(lm.customer_pool, lm_node);
    slash24_index_.emplace(lm.customer_pool.network().value() >> 8, lm_node);
  }
  for (const auto& iface : ground.ifaces()) {
    if (iface.addr.is_unspecified()) continue;
    addr_index_[iface.addr] =
        Resolution{AddrKind::kRouterIface, router_nodes[iface.router], true};
    slash24_index_.emplace(iface.addr.value() >> 8,
                           router_nodes[iface.router]);
  }
  return index;
}

NodeId World::add_host(std::string name, net::GeoPoint location,
                       net::IPv4Address addr) {
  RAN_EXPECTS(!finalized_);
  (void)name;
  Node node;
  node.kind = NodeKind::kHost;
  node.location = location;
  node.addr = addr;
  const NodeId id = add_node(node);
  addr_index_[addr] = Resolution{AddrKind::kHost, id, true};
  return id;
}

void World::finalize() {
  RAN_EXPECTS(!finalized_);

  // Transit core: one router at each cloud-region metro and at each city
  // hosting any ISP BackboneCO, full-meshed with fiber-delay weights.
  std::vector<net::GeoPoint> sites;
  auto add_site = [&](const net::GeoPoint& p) {
    for (const auto& s : sites)
      if (net::haversine_km(s, p) < 30.0) return;
    sites.push_back(p);
  };
  for (const auto& cloud : net::us_cloud_regions()) add_site(cloud.location);
  for (const auto& isp : isps_)
    for (const auto& co : isp.cos())
      if (co.role == topo::CoRole::kBackbone) add_site(co.location);

  const auto transit_pool = *net::IPv4Prefix::parse("198.32.0.0/16");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    Node node;
    node.kind = NodeKind::kTransit;
    node.location = sites[i];
    node.addr = transit_pool.at(i + 1);
    const NodeId id = add_node(node);
    addr_index_[node.addr] = Resolution{AddrKind::kTransit, id, true};
    transit_nodes_.push_back(id);
  }
  for (std::size_t i = 0; i < transit_nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < transit_nodes_.size(); ++j) {
      const NodeId a = transit_nodes_[i];
      const NodeId b = transit_nodes_[j];
      const double delay =
          net::fiber_delay_ms(nodes_[a].location, nodes_[b].location) +
          kProcessingDelayMs;
      add_edge(a, b, delay + 0.01, delay, nodes_[b].addr, nodes_[a].addr);
    }
  }

  auto nearest_transit = [&](const net::GeoPoint& p) {
    NodeId best = kInvalidNode;
    double best_km = 1e18;
    for (const NodeId t : transit_nodes_) {
      const double km = net::haversine_km(p, nodes_[t].location);
      if (km < best_km) {
        best_km = km;
        best = t;
      }
    }
    return best;
  };

  // Peer every ISP backbone router with the nearest transit router.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const auto& node = nodes_[n];
    if (node.kind != NodeKind::kRouter) continue;
    const auto& isp = isps_[static_cast<std::size_t>(node.isp)];
    const auto& router = isp.router(node.router);
    if (router.role != topo::RouterRole::kBackbone) continue;
    const NodeId t = nearest_transit(node.location);
    // Peering ingress: the router's dedicated (non-point-to-point)
    // peering interface when it has one, else its first interface.
    net::IPv4Address router_side;
    for (const auto i : router.ifaces) {
      const auto& iface = isp.iface(i);
      if (iface.p2p_len == 0 && !iface.probe_filtered) {
        router_side = iface.addr;
        break;
      }
    }
    if (router_side.is_unspecified() && !router.ifaces.empty())
      router_side = isp.iface(router.ifaces.front()).addr;
    add_edge(static_cast<NodeId>(n), t, kPeeringDelayMs + 0.01,
             kPeeringDelayMs, nodes_[t].addr, router_side);
  }

  // Attach external hosts to their nearest transit router.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].kind != NodeKind::kHost) continue;
    const NodeId t = nearest_transit(nodes_[n].location);
    const double delay =
        net::fiber_delay_ms(nodes_[n].location, nodes_[t].location) +
        kProcessingDelayMs;
    add_edge(static_cast<NodeId>(n), t, delay + 0.01, delay, nodes_[t].addr,
             nodes_[n].addr);
  }

  std::sort(pools_.begin(), pools_.end(),
            [](const auto& a, const auto& b) {
              return a.first.network() < b.first.network();
            });
  finalized_ = true;
}

const topo::Isp& World::isp(int index) const {
  RAN_EXPECTS(index >= 0 && index < isp_count());
  return isps_[static_cast<std::size_t>(index)];
}

NodeId World::node_of_last_mile(int isp_index, topo::LastMileId lm) const {
  const auto it = lastmile_node_.find(
      (static_cast<std::uint64_t>(isp_index) << 32) | lm);
  RAN_EXPECTS(it != lastmile_node_.end());
  return it->second;
}

ProbeSource World::vantage_behind(int isp_index, topo::LastMileId lm) const {
  ProbeSource src;
  src.node = node_of_last_mile(isp_index, lm);
  src.access_delay_ms =
      isp(isp_index).last_mile(lm).access_delay_ms;
  return src;
}

AddrKind World::classify(net::IPv4Address addr) const {
  return resolve(addr).kind;
}

World::Resolution World::resolve(net::IPv4Address addr) const {
  if (const auto it = addr_index_.find(addr); it != addr_index_.end())
    return it->second;
  // Customer pools (binary search on sorted ranges).
  const auto it = std::upper_bound(
      pools_.begin(), pools_.end(), addr,
      [](net::IPv4Address a, const auto& pool) {
        return a < pool.first.network();
      });
  if (it != pools_.begin()) {
    const auto& [pool, node] = *std::prev(it);
    if (pool.contains(addr))
      return Resolution{AddrKind::kCustomer, node, true};
  }
  // Routable vicinity: another address in an occupied /24.
  if (const auto s24 = slash24_index_.find(addr.value() >> 8);
      s24 != slash24_index_.end())
    return Resolution{AddrKind::kUnknown, s24->second, false};
  return Resolution{AddrKind::kUnknown, kInvalidNode, false};
}

std::shared_ptr<const World::RouteTable> World::routes_from(
    NodeId src) const {
  RAN_EXPECTS(finalized_);
  // Copy the published map pointer once; the lookup itself runs with no
  // lock held (the map behind the pointer is immutable once published).
  std::shared_ptr<const RouteCacheMap> cache;
  {
    std::shared_lock lock{route_mutex_};
    cache = route_cache_;
  }
  if (cache != nullptr) {
    if (const auto it = cache->find(src); it != cache->end()) {
      if (metrics_.route_hits != nullptr) metrics_.route_hits->inc();
      return it->second;
    }
  }
  if (metrics_.route_misses != nullptr) metrics_.route_misses->inc();

  // Compute outside the lock: concurrent misses on the same source do
  // redundant work at worst; the first insert wins below.
  auto table = std::make_shared<RouteTable>();
  const auto n = nodes_.size();
  table->dist.assign(n, std::numeric_limits<double>::infinity());
  table->preds.resize(n);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  table->dist[src] = 0.0;
  queue.emplace(0.0, src);
  constexpr double kTieEps = 1e-9;
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > table->dist[u] + kTieEps) continue;
    for (const auto& e : adj_[u]) {
      const double nd = d + e.weight;
      if (nd + kTieEps < table->dist[e.to]) {
        table->dist[e.to] = nd;
        table->preds[e.to].clear();
        table->preds[e.to].push_back(
            PredEdge{u, e.ingress_addr, static_cast<float>(e.delay_ms)});
        queue.emplace(nd, e.to);
      } else if (std::abs(nd - table->dist[e.to]) <= kTieEps) {
        table->preds[e.to].push_back(
            PredEdge{u, e.ingress_addr, static_cast<float>(e.delay_ms)});
      }
    }
  }

  std::unique_lock lock{route_mutex_};
  // Re-check: a racing miss on the same source may have published first;
  // its table wins so every caller shares one instance. These lost races
  // are redundant Dijkstra runs — exactly the wasted work the insert-race
  // counter makes visible.
  if (route_cache_ != nullptr) {
    if (const auto it = route_cache_->find(src); it != route_cache_->end()) {
      if (metrics_.route_insert_races != nullptr)
        metrics_.route_insert_races->inc();
      return it->second;
    }
  }
  auto next = route_cache_ == nullptr
                  ? std::make_shared<RouteCacheMap>()
                  : std::make_shared<RouteCacheMap>(*route_cache_);
  if (next->size() > 96) {
    if (metrics_.route_evictions != nullptr)
      metrics_.route_evictions->inc(next->size());
    next->clear();
  }
  auto inserted = next->emplace(src, std::move(table)).first->second;
  route_cache_ = std::move(next);
  return inserted;
}

void World::set_metrics(obs::Registry* registry) {
  // The route-cache lock publishes acquire-wait accounting alongside the
  // hit/miss counters; like them, it is volatile-only and never perturbs
  // probe results. Attach while quiescent (same contract as the cache).
  route_mutex_.attach(registry, "world.route_cache");
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.traces = &registry->counter("sim.world.traces");
  metrics_.pings = &registry->counter("sim.world.pings");
  metrics_.ping_ttls = &registry->counter("sim.world.ping_ttls");
  metrics_.mercator_probes = &registry->counter("sim.world.mercator_probes");
  metrics_.ipid_samples = &registry->counter("sim.world.ipid_samples");
  metrics_.route_hits = &registry->volatile_counter("sim.route_cache.hits");
  metrics_.route_misses =
      &registry->volatile_counter("sim.route_cache.misses");
  metrics_.route_evictions =
      &registry->volatile_counter("sim.route_cache.evictions");
  metrics_.route_insert_races =
      &registry->volatile_counter("sim.route_cache.insert_races");
}

void World::warm_routes(std::span<const ProbeSource> sources) const {
  for (const auto& src : sources) (void)routes_from(src.node);
}

std::vector<World::PathStep> World::path_to(const ProbeSource& src,
                                            const Resolution& res,
                                            net::IPv4Address dst,
                                            std::uint64_t flow_id) const {
  RAN_EXPECTS(src.node < nodes_.size());
  if (res.anchor == kInvalidNode) return {};
  const auto table = routes_from(src.node);
  if (!std::isfinite(table->dist[res.anchor])) return {};
  const std::uint64_t flow =
      flow_id != 0 ? flow_id : mix64(src.node * 0x1000003ULL ^ dst.value());
  std::vector<PathStep> rev;
  NodeId cur = res.anchor;
  while (cur != src.node) {
    const auto& preds = table->preds[cur];
    RAN_ENSURES(!preds.empty());
    const auto& choice =
        preds[mix64(flow ^ (cur * 0x9e37ULL)) % preds.size()];
    rev.push_back(PathStep{cur, choice.ingress, choice.delay});
    cur = choice.from;
    RAN_ENSURES(rev.size() <= nodes_.size());
  }
  rev.push_back(PathStep{src.node, {}, 0.0f});
  std::reverse(rev.begin(), rev.end());
  return rev;
}

bool World::policy_allows(const ProbeSource& src, const Resolution& res) const {
  if (res.anchor == kInvalidNode) return false;
  const auto& dst_node = nodes_[res.anchor];
  if (dst_node.isp < 0) return true;
  const auto& dst_isp = isps_[static_cast<std::size_t>(dst_node.isp)];
  if (dst_isp.kind() != topo::IspKind::kTelco) return true;

  // Telco filtering (§6.1 / App C): regional infrastructure and lspgw
  // addresses only answer probes from inside the same or a nearby region;
  // customers remain probeable from anywhere (§6.3). Backbone routers are
  // open.
  const bool dst_is_access =
      dst_node.kind == NodeKind::kLastMile ||
      (dst_node.kind == NodeKind::kRouter &&
       dst_isp.router(dst_node.router).role != topo::RouterRole::kBackbone);
  if (!dst_is_access) return true;
  if (res.kind == AddrKind::kCustomer) return true;

  const auto& src_node = nodes_[src.node];
  if (src_node.isp != dst_node.isp ||
      src_node.kind != NodeKind::kLastMile)
    return false;
  // Same or nearby region: compare the regions' anchor locations.
  const auto& src_co =
      dst_isp.co(dst_isp.last_mile(src_node.last_mile).edge_co);
  const double km =
      net::haversine_km(src_co.location, dst_node.location);
  return km < 600.0;
}

TraceResult World::trace(const ProbeSource& src, net::IPv4Address dst,
                         std::uint64_t flow_id, std::uint64_t attempt) const {
  if (metrics_.traces != nullptr) metrics_.traces->inc();
  TraceResult out;
  out.dst = dst;
  // The noise generator is seeded from the resolved flow so that explicit
  // and derived flow identifiers naming the same flow share one stream.
  const std::uint64_t flow =
      flow_id != 0 ? flow_id : mix64(src.node * 0x1000003ULL ^ dst.value());
  net::ProbeRng rng{probe_seed(src.node, dst, flow, attempt)};
  const auto res = resolve(dst);
  auto path = path_to(src, res, dst, flow_id);
  if (path.empty()) return out;
  // Probes to unallocated addresses die at the last real forwarding hop,
  // before the representative anchor node.
  if (!res.exact) path.pop_back();
  if (path.size() <= 1) return out;

  bool blocked = false;
  if (!policy_allows(src, res)) {
    // Truncate at the destination ISP's regional boundary: the backbone
    // still answers; the access network goes dark.
    const int dst_isp = nodes_[res.anchor].isp;
    std::size_t cut = path.size();
    for (std::size_t i = 1; i < path.size(); ++i) {
      const auto& node = nodes_[path[i].node];
      if (node.isp != dst_isp) continue;
      const bool access =
          node.kind == NodeKind::kLastMile ||
          (node.kind == NodeKind::kRouter &&
           isps_[static_cast<std::size_t>(node.isp)]
                   .router(node.router)
                   .role != topo::RouterRole::kBackbone);
      if (access) {
        cut = i;
        break;
      }
    }
    path.resize(cut);
    blocked = true;
  }

  // Does the destination qualify as infrastructure (reveals MPLS interiors)?
  const bool dst_infra = res.kind == AddrKind::kRouterIface;

  double cum_delay = src.access_delay_ms;
  int ttl = 0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    cum_delay += path[i].delay;
    const auto& node = nodes_[path[i].node];
    const bool terminal = !blocked && i + 1 == path.size() && res.exact;

    if (node.kind == NodeKind::kRouter) {
      const auto& isp = isps_[static_cast<std::size_t>(node.isp)];
      const auto& router = isp.router(node.router);
      if (router.mpls_interior && !dst_infra && !terminal) continue;
      ++ttl;
      Hop hop;
      hop.ttl = ttl;
      const bool respond = router.icmp_responsive &&
                           !rng.chance(noise_.unresponsive_hop_prob);
      if (respond) {
        net::IPv4Address addr = terminal ? dst : path[i].ingress;
        if (!terminal && !dst_infra && router.replies_from_loopback &&
            router.loopback_iface != topo::kInvalidId)
          addr = isp.iface(router.loopback_iface).addr;
        if (addr.is_unspecified() && !router.ifaces.empty())
          addr = isp.iface(router.ifaces.front()).addr;
        if (!terminal && rng.chance(noise_.anomaly_prob) &&
            !isp.ifaces().empty()) {
          addr = isp.ifaces()[static_cast<std::size_t>(rng.uniform(
                                  0, static_cast<std::int64_t>(
                                         isp.ifaces().size()) -
                                         1))]
                     .addr;
        }
        hop.addr = addr;
        hop.rtt_ms = 2 * cum_delay + kProcessingDelayMs +
                     rng.uniform_real(0.0, noise_.rtt_jitter_ms);
        hop.reply_ttl = 255 - ttl;
      }
      out.hops.push_back(hop);
      if (terminal) out.reached = true;
      continue;
    }

    ++ttl;
    Hop hop;
    hop.ttl = ttl;
    if (!rng.chance(noise_.unresponsive_hop_prob)) {
      hop.addr = node.addr;  // equals dst for gateway/host destinations
      hop.rtt_ms = 2 * cum_delay + kProcessingDelayMs +
                   rng.uniform_real(0.0, noise_.rtt_jitter_ms);
      hop.reply_ttl = (node.kind == NodeKind::kLastMile ? 64 : 255) - ttl;
    }
    out.hops.push_back(hop);
    if (terminal && res.kind != AddrKind::kCustomer) out.reached = true;

    // Customer endpoint: one more (virtual) hop behind the last mile.
    if (terminal && res.kind == AddrKind::kCustomer) {
      const auto& lm = isps_[static_cast<std::size_t>(node.isp)].last_mile(
          node.last_mile);
      cum_delay += lm.access_delay_ms;
      ++ttl;
      Hop customer;
      customer.ttl = ttl;
      if (hash_chance(dst.value(), seed_, noise_.customer_echo_prob)) {
        customer.addr = dst;
        customer.rtt_ms = 2 * cum_delay + kProcessingDelayMs +
                          rng.uniform_real(0.0, noise_.rtt_jitter_ms);
        customer.reply_ttl = 64 - ttl;
        out.reached = true;
      }
      out.hops.push_back(customer);
    }
  }
  if (blocked || !res.exact) {
    // A short run of silent probes past the truncation point.
    for (int i = 0; i < 3; ++i) {
      Hop hop;
      hop.ttl = ++ttl;
      out.hops.push_back(hop);
    }
  }
  return out;
}

PingResult World::ping(const ProbeSource& src, net::IPv4Address dst,
                       std::uint64_t attempt) const {
  if (metrics_.pings != nullptr) metrics_.pings->inc();
  PingResult out;
  net::ProbeRng rng{probe_seed(src.node, dst, 0x50494e47ULL, attempt)};
  const auto res = resolve(dst);
  if (!res.exact || res.anchor == kInvalidNode) return out;
  if (!policy_allows(src, res)) return out;
  if (res.kind == AddrKind::kCustomer &&
      !hash_chance(dst.value(), seed_, noise_.customer_echo_prob))
    return out;
  const auto path = path_to(src, res, dst, 0);
  if (path.empty()) return out;
  double delay = src.access_delay_ms;
  for (std::size_t i = 1; i < path.size(); ++i) delay += path[i].delay;
  if (res.kind == AddrKind::kCustomer)
    delay += isps_[static_cast<std::size_t>(nodes_[res.anchor].isp)]
                 .last_mile(nodes_[res.anchor].last_mile)
                 .access_delay_ms;
  out.responded = true;
  out.responder = dst;
  out.rtt_ms = 2 * delay + kProcessingDelayMs +
               rng.uniform_real(0.0, noise_.rtt_jitter_ms);
  return out;
}

PingResult World::ping_ttl(const ProbeSource& src, net::IPv4Address dst,
                           int ttl, std::uint64_t attempt) const {
  // Counts the TTL-limited echo itself; the trace() it rides on adds to
  // the trace counter as well.
  if (metrics_.ping_ttls != nullptr) metrics_.ping_ttls->inc();
  PingResult out;
  const auto res = resolve(dst);
  if (res.anchor == kInvalidNode) return out;
  const auto full = trace(src, dst, 0, attempt);
  for (const auto& hop : full.hops) {
    if (hop.ttl != ttl) continue;
    out.responded = hop.responded();
    out.responder = hop.addr;
    out.rtt_ms = hop.rtt_ms;
    return out;
  }
  return out;
}

std::optional<double> World::min_rtt(const ProbeSource& src,
                                     net::IPv4Address dst, int count) const {
  RAN_EXPECTS(count > 0);
  std::optional<double> best;
  for (int i = 0; i < count; ++i) {
    const auto result = ping(src, dst, static_cast<std::uint64_t>(i));
    if (!result.responded) continue;
    if (!best || result.rtt_ms < *best) best = result.rtt_ms;
  }
  return best;
}

std::optional<net::IPv4Address> World::mercator_probe(
    net::IPv4Address addr) const {
  if (metrics_.mercator_probes != nullptr) metrics_.mercator_probes->inc();
  const auto res = resolve(addr);
  if (res.kind != AddrKind::kRouterIface) return std::nullopt;
  const auto& node = nodes_[res.anchor];
  const auto& isp = isps_[static_cast<std::size_t>(node.isp)];
  if (const auto iface = isp.iface_by_addr(addr);
      iface && isp.iface(*iface).probe_filtered)
    return std::nullopt;
  const auto& router = isp.router(node.router);
  // ~70 % of routers reply to unreachable-port probes with their primary
  // (first) interface address; the rest use the probed address. Router
  // stacks that randomize IP-IDs (frustrating MIDAR) almost always honor
  // the common-source-address behaviour, so the two alias techniques
  // rarely fail together.
  const bool random_ipid =
      hash_chance(node.router * 0x77ULL ^ static_cast<std::uint64_t>(node.isp),
                  seed_ ^ 0x1d1dULL, 0.15);
  const double honor_prob = random_ipid ? 1.0 : 0.7;
  if (hash_chance(node.router * 0x51ULL ^ static_cast<std::uint64_t>(node.isp),
                  seed_ ^ 0x4d45524341ULL, honor_prob))
    return isp.iface(router.ifaces.front()).addr;
  return addr;
}

std::optional<std::uint16_t> World::ipid_sample(net::IPv4Address addr,
                                                double t_ms) const {
  if (metrics_.ipid_samples != nullptr) metrics_.ipid_samples->inc();
  const auto res = resolve(addr);
  if (res.kind == AddrKind::kRouterIface) {
    const auto& node = nodes_[res.anchor];
    const auto& isp = isps_[static_cast<std::size_t>(node.isp)];
    if (const auto iface = isp.iface_by_addr(addr);
        iface && isp.iface(*iface).probe_filtered)
      return std::nullopt;
    const auto& router = isp.router(node.router);
    // ~15 % of routers use unpredictable IP-IDs (MIDAR cannot pair them).
    // Per-sample draws hash (addr, t_ms, world seed) so a sample is a pure
    // function of what was probed and when — no shared generator state.
    net::ProbeRng rng{mix64(seed_ ^ 0x495049440aULL ^
                            mix64(addr.value()) ^
                            std::bit_cast<std::uint64_t>(t_ms))};
    if (hash_chance(node.router * 0x77ULL ^
                        static_cast<std::uint64_t>(node.isp),
                    seed_ ^ 0x1d1dULL, 0.15))
      return static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
    const double value = router.ipid_seed + router.ipid_rate * t_ms +
                         rng.uniform_real(0.0, 2.0);
    return static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(value) & 0xffff);
  }
  if (res.kind == AddrKind::kLastMileGw) {
    // Last-mile devices keep their own counters (never alias with routers).
    const double value = static_cast<double>(mix64(addr.value()) & 0xffff) +
                         1.5 * t_ms;
    return static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(value) & 0xffff);
  }
  return std::nullopt;
}

}  // namespace ran::sim
