// The measurement world: ground-truth ISPs embedded in a shared Internet
// with a transit core and external hosts, answering traceroute, ping,
// TTL-limited echo, and alias-resolution probes exactly the way the paper's
// measurement campaigns experienced them:
//
//  * hop-by-hop ICMP time-exceeded replies from the inbound interface;
//  * intra-region ECMP with paris-traceroute flow stability;
//  * invisible MPLS tunnels, revealed only by probes targeted at router
//    interfaces (Direct Path Revelation, [72][73]);
//  * per-ISP filtering policies (AT&T blocks external probes at the
//    regional boundary; mobile cores are handled by MobileCore);
//  * unresponsive hops, rate limiting, and rare anomalous hop corruption
//    (the single-observation noise pruned in §5.2.1);
//  * shared per-router IP-ID counters for MIDAR and common source
//    addresses for Mercator.
//
// The inference pipeline must treat this class as "the Internet": it can
// send probes and read replies, nothing else.
//
// Thread safety: after finalize(), every probe primitive is safe to call
// concurrently. Probe noise is a pure function of the probe's identity
// (seed, source, destination, flow, attempt) — results never depend on
// global call order — and the route cache hides behind a shared_mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/timed_mutex.hpp"
#include "topogen/model.hpp"

namespace ran::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = topo::kInvalidId;

/// What an address resolves to inside the world.
enum class AddrKind {
  kRouterIface,   ///< an ISP router interface
  kLastMileGw,    ///< an IP-DSLAM / ONT / CMTS gateway address
  kCustomer,      ///< a subscriber address behind a last-mile device
  kTransit,       ///< transit-core router
  kHost,          ///< external host (cloud VM, measurement server)
  kUnknown,
};

/// Observation noise knobs (§5.2.1's anomalies and non-responses).
struct NoiseConfig {
  double unresponsive_hop_prob = 0.02;  ///< per-hop silent drop
  double anomaly_prob = 0.0004;  ///< hop address replaced by a random
                                 ///< interface of the same ISP
  double rtt_jitter_ms = 0.15;   ///< half-width of uniform RTT jitter
  /// Probability a customer host answers ICMP echo at all.
  double customer_echo_prob = 0.35;
};

/// One traceroute hop observation.
struct Hop {
  int ttl = 0;
  net::IPv4Address addr;    ///< unspecified when no reply ("*")
  double rtt_ms = 0.0;
  int reply_ttl = 0;
  [[nodiscard]] bool responded() const { return !addr.is_unspecified(); }
};

struct TraceResult {
  net::IPv4Address dst;
  std::vector<Hop> hops;
  bool reached = false;
};

struct PingResult {
  bool responded = false;
  net::IPv4Address responder;
  double rtt_ms = 0.0;
};

/// Where a probe originates.
struct ProbeSource {
  NodeId node = kInvalidNode;
  /// Extra one-way delay in front of the first hop (radio, WiFi, DSL).
  double access_delay_ms = 0.0;
};

class World {
 public:
  explicit World(std::uint64_t seed);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Takes ownership of a ground-truth ISP; returns its index.
  int add_isp(topo::Isp isp);

  /// Adds an external host attached (at `location`) to the transit core.
  NodeId add_host(std::string name, net::GeoPoint location,
                  net::IPv4Address addr);

  /// Builds the transit core and the address indexes. Call once after all
  /// ISPs and hosts are added; probing before finalize() is a precondition
  /// violation.
  void finalize();

  [[nodiscard]] const topo::Isp& isp(int index) const;
  [[nodiscard]] int isp_count() const { return static_cast<int>(isps_.size()); }

  /// Node handle for a last-mile device (to originate probes behind it).
  [[nodiscard]] NodeId node_of_last_mile(int isp_index,
                                         topo::LastMileId lm) const;
  /// A ProbeSource behind the given last-mile device (adds access delay).
  [[nodiscard]] ProbeSource vantage_behind(int isp_index,
                                           topo::LastMileId lm) const;

  [[nodiscard]] AddrKind classify(net::IPv4Address addr) const;

  /// Paris-style traceroute. The flow identifier is stable for the whole
  /// trace; by default it derives from (source, destination). `attempt`
  /// re-rolls the observation noise (unresponsive hops, anomalies,
  /// jitter) without moving the path: retrying a probe is attempt+1.
  /// Results are a pure function of (src, dst, flow_id, attempt).
  [[nodiscard]] TraceResult trace(const ProbeSource& src,
                                  net::IPv4Address dst,
                                  std::uint64_t flow_id = 0,
                                  std::uint64_t attempt = 0) const;

  /// ICMP echo to `dst`; `attempt` re-rolls the noise as in trace().
  [[nodiscard]] PingResult ping(const ProbeSource& src, net::IPv4Address dst,
                                std::uint64_t attempt = 0) const;

  /// ICMP echo with a limited TTL: the reply comes from the hop where the
  /// TTL expires (the §6.3 penultimate-hop latency trick).
  [[nodiscard]] PingResult ping_ttl(const ProbeSource& src,
                                    net::IPv4Address dst, int ttl,
                                    std::uint64_t attempt = 0) const;

  /// Minimum RTT over `count` pings; nullopt when nothing answered.
  [[nodiscard]] std::optional<double> min_rtt(const ProbeSource& src,
                                              net::IPv4Address dst,
                                              int count) const;

  // --- alias-resolution primitives -------------------------------------
  /// Mercator: a UDP probe to an unused port; routers configured to reply
  /// with their primary address reveal it (otherwise the probed address).
  [[nodiscard]] std::optional<net::IPv4Address> mercator_probe(
      net::IPv4Address addr) const;

  /// IP-ID of a reply elicited from `addr` at time `t_ms`. Routers share
  /// one counter across interfaces (MIDAR's signal); some use random
  /// IP-IDs, returned as unpredictable values. nullopt when unreachable.
  [[nodiscard]] std::optional<std::uint16_t> ipid_sample(
      net::IPv4Address addr, double t_ms) const;

  [[nodiscard]] NoiseConfig& noise() { return noise_; }
  [[nodiscard]] const NoiseConfig& noise() const { return noise_; }

  /// Pre-computes the route tables for the given sources so a following
  /// concurrent campaign runs on a read-mostly cache.
  void warm_routes(std::span<const ProbeSource> sources) const;

  /// Hooks probe-primitive counters and route-cache accounting into
  /// `registry` (null unhooks). Counting never perturbs probe results.
  /// Probe-primitive totals are deterministic; route-cache hit/miss/evict
  /// depend on scheduling and register as volatile metrics.
  void set_metrics(obs::Registry* registry);

 private:
  enum class NodeKind { kRouter, kLastMile, kTransit, kHost };

  struct Node {
    NodeKind kind = NodeKind::kTransit;
    int isp = -1;
    topo::RouterId router = topo::kInvalidId;
    topo::LastMileId last_mile = topo::kInvalidId;
    net::GeoPoint location;
    net::IPv4Address addr;  ///< transit/host own address
  };

  struct Edge {
    NodeId to = kInvalidNode;
    double weight = 1.0;
    double delay_ms = 0.05;
    /// Address of the `to`-side interface: what `to` replies with when a
    /// probe arriving over this edge expires there (unspecified: reply
    /// with the probed/primary address).
    net::IPv4Address ingress_addr;
  };

  struct Resolution {
    AddrKind kind = AddrKind::kUnknown;
    NodeId anchor = kInvalidNode;  ///< node the address routes to
    bool exact = true;  ///< false: routable vicinity only (/24 fallback)
  };

  /// One equal-cost predecessor on a shortest path, with the ingress
  /// interface address at the successor node and the edge delay.
  struct PredEdge {
    NodeId from = kInvalidNode;
    net::IPv4Address ingress;
    float delay = 0.0f;
  };

  /// Per-source shortest-path state (cached).
  struct RouteTable {
    std::vector<double> dist;
    std::vector<std::vector<PredEdge>> preds;
  };

  /// One node along a selected path with its ingress address and the delay
  /// of the edge leading to it.
  struct PathStep {
    NodeId node = kInvalidNode;
    net::IPv4Address ingress;
    float delay = 0.0f;
  };

  NodeId add_node(Node node);
  void add_edge(NodeId a, NodeId b, double weight, double delay,
                net::IPv4Address ingress_at_b, net::IPv4Address ingress_at_a);
  [[nodiscard]] Resolution resolve(net::IPv4Address addr) const;
  /// Shared ownership so a concurrent cache eviction cannot invalidate a
  /// table another thread is still walking.
  [[nodiscard]] std::shared_ptr<const RouteTable> routes_from(
      NodeId src) const;
  /// Seed of the noise generator owned by one probe.
  [[nodiscard]] std::uint64_t probe_seed(NodeId src, net::IPv4Address dst,
                                         std::uint64_t flow,
                                         std::uint64_t attempt) const;
  /// Node sequence src..anchor for the flow, or empty when disconnected.
  [[nodiscard]] std::vector<PathStep> path_to(const ProbeSource& src,
                                              const Resolution& res,
                                              net::IPv4Address dst,
                                              std::uint64_t flow_id) const;
  [[nodiscard]] bool policy_allows(const ProbeSource& src,
                                   const Resolution& res) const;

  std::vector<topo::Isp> isps_;
  std::vector<Node> nodes_;
  std::vector<std::vector<Edge>> adj_;
  std::unordered_map<net::IPv4Address, Resolution> addr_index_;
  /// Customer pools, sorted by first address, for range resolution.
  std::vector<std::pair<net::IPv4Prefix, NodeId>> pools_;
  /// /24 -> representative node, for sweep targets that hit no pool.
  std::unordered_map<std::uint32_t, NodeId> slash24_index_;
  std::unordered_map<std::uint64_t, NodeId> lastmile_node_;  // (isp,lm)
  std::vector<NodeId> transit_nodes_;
  /// Pre-resolved metric handles (see set_metrics); null when unhooked.
  struct Metrics {
    obs::Counter* traces = nullptr;
    obs::Counter* pings = nullptr;
    obs::Counter* ping_ttls = nullptr;
    obs::Counter* mercator_probes = nullptr;
    obs::Counter* ipid_samples = nullptr;
    obs::Counter* route_hits = nullptr;
    obs::Counter* route_misses = nullptr;
    obs::Counter* route_evictions = nullptr;
    obs::Counter* route_insert_races = nullptr;
  };

  bool finalized_ = false;
  NoiseConfig noise_;
  Metrics metrics_;
  /// The route cache is an immutable map snapshot swapped under the
  /// mutex — the same publish pattern as infer::SnapshotHub, and the
  /// one concurrency contract shared by the campaign and serve paths:
  /// readers copy the map's shared_ptr once per query (a briefly-held
  /// shared lock) and look their source up lock-free; a miss clones the
  /// map, inserts, and publishes under the exclusive lock. The mutex is
  /// never held across a lookup or a Dijkstra run. The mutex is the
  /// instrumented wrapper so set_metrics() can publish per-site
  /// acquire-wait accounting (`lock.world.route_cache.*`) — the prime
  /// suspect in the campaign parallel-scaling regression.
  using RouteCacheMap =
      std::unordered_map<NodeId, std::shared_ptr<const RouteTable>>;
  mutable obs::TimedSharedMutex route_mutex_;
  mutable std::shared_ptr<const RouteCacheMap> route_cache_;
  std::uint64_t seed_;
};

}  // namespace ran::sim
