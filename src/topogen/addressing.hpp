// Sequential subnet allocation out of an ISP's announced address space.
// Real operators carve regional blocks the same way; the AT&T pipeline's
// "EdgeCO router prefixes" discovery (App. C, Table 6) depends on routers
// of one region clustering into a few /24s, which this allocator produces
// naturally by allocating per-region pools.
#pragma once

#include <vector>

#include "netbase/contracts.hpp"
#include "netbase/ipv4.hpp"

namespace ran::topo {

class AddressAllocator {
 public:
  explicit AddressAllocator(net::IPv4Prefix pool) : pool_(pool) {}

  /// Allocates the next aligned subnet of the given length.
  /// Expects capacity remains (topology sizes are chosen well under pool
  /// size; exhaustion is a configuration bug).
  [[nodiscard]] net::IPv4Prefix alloc(int len) {
    RAN_EXPECTS(len >= pool_.length() && len <= 32);
    const std::uint64_t size = std::uint64_t{1} << (32 - len);
    next_ = (next_ + size - 1) / size * size;  // align up
    RAN_EXPECTS(next_ + size <= pool_.size());
    const net::IPv4Prefix out{pool_.at(next_), len};
    next_ += size;
    return out;
  }

  /// Allocates a single address (a /32's worth).
  [[nodiscard]] net::IPv4Address alloc_addr() { return alloc(32).network(); }

  [[nodiscard]] net::IPv4Prefix pool() const { return pool_; }
  [[nodiscard]] std::uint64_t used() const { return next_; }

 private:
  net::IPv4Prefix pool_;
  std::uint64_t next_ = 0;
};

}  // namespace ran::topo
