#include "builder.hpp"

#include <algorithm>

#include "netbase/clli.hpp"
#include "netbase/contracts.hpp"

namespace ran::topo {

CoId make_co(BuildContext& ctx, RegionId region, CoRole role,
             const net::City& city, int agg_level) {
  CentralOffice co;
  co.role = role;
  co.region = region;
  co.city = &city;
  co.building = ctx.building_counter[&city]++;
  co.clli = net::clli_building(city, co.building);
  // Scatter buildings a few km around the city center (~0.1 deg ~ 10 km).
  co.location = {city.location.lat + ctx.rng.uniform_real(-0.10, 0.10),
                 city.location.lon + ctx.rng.uniform_real(-0.10, 0.10)};
  co.agg_level = agg_level;
  return ctx.isp.add_co(std::move(co));
}

RouterId make_router(BuildContext& ctx, CoId co, RouterRole role,
                     std::string name_hint) {
  Router router;
  router.co = co;
  router.role = role;
  router.name_hint = std::move(name_hint);
  router.ipid_seed =
      static_cast<std::uint32_t>(ctx.rng.uniform(0, 0xffff));
  // IP-ID counter velocities vary per router (packets/ms); MIDAR's
  // monotonic bounds test needs distinct-but-overlapping ranges.
  router.ipid_rate = ctx.rng.uniform_real(0.5, 8.0);
  return ctx.isp.add_router(std::move(router));
}

LinkId connect(BuildContext& ctx, RouterId a, RouterId b) {
  RAN_EXPECTS(a != b);
  const auto subnet = ctx.alloc->alloc(ctx.p2p_len);
  Interface ia;
  ia.router = a;
  ia.addr = subnet.host(0);
  ia.p2p_len = ctx.p2p_len;
  Interface ib;
  ib.router = b;
  ib.addr = subnet.host(1);
  ib.p2p_len = ctx.p2p_len;
  const IfaceId fa = ctx.isp.add_iface(ia);
  const IfaceId fb = ctx.isp.add_iface(ib);
  const auto& co_a = ctx.isp.co_of_router(a);
  const auto& co_b = ctx.isp.co_of_router(b);
  double geo = net::fiber_delay_ms(co_a.location, co_b.location);
  if (net::haversine_km(co_a.location, co_b.location) > 80.0)
    geo *= ctx.long_link_stretch;
  return ctx.isp.add_link(fa, fb, geo + ctx.hop_cost_ms);
}

LastMileId make_last_mile(BuildContext& ctx, CoId edge_co,
                          std::vector<RouterId> edge_routers,
                          int customer_pool_len) {
  RAN_EXPECTS(!edge_routers.empty());
  LastMile lm;
  lm.edge_co = edge_co;
  lm.edge_routers = std::move(edge_routers);
  lm.gw_addr = ctx.alloc->alloc_addr();
  lm.customer_pool = ctx.alloc->alloc(customer_pool_len);
  const auto& co = ctx.isp.co(edge_co);
  // Last-mile plant reaches a few km past the CO.
  lm.location = {co.location.lat + ctx.rng.uniform_real(-0.05, 0.05),
                 co.location.lon + ctx.rng.uniform_real(-0.05, 0.05)};
  lm.access_delay_ms = ctx.rng.uniform_real(0.8, 3.0);
  return ctx.isp.add_last_mile(std::move(lm));
}

std::vector<const net::City*> pick_cities(
    BuildContext& /*ctx*/, const std::vector<std::string>& states,
    int count) {
  RAN_EXPECTS(count > 0);
  std::vector<const net::City*> pool;
  for (const auto& state : states) {
    auto cities = net::cities_in_state(state);
    pool.insert(pool.end(), cities.begin(), cities.end());
  }
  RAN_EXPECTS(!pool.empty());
  std::sort(pool.begin(), pool.end(),
            [](const net::City* a, const net::City* b) {
              return a->population_rank < b->population_rank;
            });
  // Weight by market size: the largest city hosts most of the buildings
  // (real regional networks concentrate COs in the metro core).
  std::vector<const net::City*> expanded;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const int weight = i == 0 ? 6 : i == 1 ? 3 : i == 2 ? 2 : 1;
    for (int k = 0; k < weight; ++k) expanded.push_back(pool[i]);
  }
  std::vector<const net::City*> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    out.push_back(expanded[static_cast<std::size_t>(i) % expanded.size()]);
  return out;
}

}  // namespace ran::topo
