// Shared construction helpers for the per-ISP topology generators.
#pragma once

#include "addressing.hpp"
#include "model.hpp"
#include "netbase/rng.hpp"

namespace ran::topo {

/// Mutable state threaded through a generation run.
struct BuildContext {
  Isp& isp;
  net::Rng& rng;
  AddressAllocator* alloc;  ///< swappable: telco regions use per-region pools
  /// Point-to-point subnet length for inter-router links (30 or 31; §B.1
  /// observes Comcast on /30s and Charter on /31s).
  int p2p_len = 30;
  /// Fixed per-hop forwarding cost added to geographic propagation delay.
  double hop_cost_ms = 0.05;
  /// Extra stretch applied to links spanning > 80 km: long-haul regional
  /// fiber rings detour through intermediate COs rather than following
  /// the great circle (§2.1's physical rings; the Imperial-valley latency
  /// tail of Table 2 comes from exactly this).
  double long_link_stretch = 1.0;
  /// Next building number per anchor city (CLLI suffixes).
  std::unordered_map<const net::City*, int> building_counter;
};

/// Creates a CO in `region` anchored at `city`, jittering the building
/// location a few km from the city center and assigning the next building
/// number for that city.
[[nodiscard]] CoId make_co(BuildContext& ctx, RegionId region, CoRole role,
                           const net::City& city, int agg_level = 0);

/// Creates a router inside a CO with a fresh IP-ID counter.
[[nodiscard]] RouterId make_router(BuildContext& ctx, CoId co, RouterRole role,
                                   std::string name_hint);

/// Connects two routers with a point-to-point link: allocates a subnet of
/// ctx.p2p_len, creates one interface on each router, and computes the link
/// delay from the CO locations.
LinkId connect(BuildContext& ctx, RouterId a, RouterId b);

/// Creates a last-mile device under an EdgeCO: allocates a gateway address
/// and a customer pool, homes it to the given EdgeCO routers.
[[nodiscard]] LastMileId make_last_mile(BuildContext& ctx, CoId edge_co,
                                        std::vector<RouterId> edge_routers,
                                        int customer_pool_len = 26);

/// Picks `count` anchor cities for a region spanning `states`, repeating
/// cities (with increasing building numbers) when a state has fewer
/// gazetteer entries than requested. Larger cities appear first.
[[nodiscard]] std::vector<const net::City*> pick_cities(
    BuildContext& ctx, const std::vector<std::string>& states, int count);

}  // namespace ran::topo
