// Ground-truth generator for cable access ISPs (Comcast-like and
// Charter-like). Implements the architecture of §2/§5: regions of EdgeCOs
// wired in dual-star topologies over fiber rings to one or two AggCOs per
// subregion, optional second aggregation layer, backbone entries from two
// or more BackboneCOs, daisy-chained EdgeCOs as the main redundancy gap,
// and MPLS LSPs in one large region.
#include <algorithm>
#include <map>
#include <unordered_map>

#include "builder.hpp"
#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "profiles.hpp"

namespace ran::topo {

namespace {

/// Per-subregion working state during a region build.
struct Subregion {
  std::vector<CoId> agg_cos;
  std::vector<RouterId> agg_routers;
  std::vector<CoId> edge_cos;
};

struct RegionBuild {
  RegionId id = kInvalidId;
  std::vector<Subregion> subs;
  /// AggCO routers that face the backbone (subregion 0's in multi-level).
  std::vector<RouterId> top_agg_routers;
};

/// Finds or creates the ISP's BackboneCO (plus one core router) in a city.
class BackboneDirectory {
 public:
  BackboneDirectory(BuildContext& ctx, RegionId backbone_region)
      : ctx_(ctx), backbone_region_(backbone_region) {}

  struct Entry {
    CoId co;
    RouterId router;
  };

  Entry get(const std::string& city_key) {
    if (const auto it = entries_.find(city_key); it != entries_.end())
      return it->second;
    const auto comma = city_key.find(',');
    RAN_EXPECTS(comma != std::string::npos);
    const auto* city = net::find_city(city_key.substr(0, comma),
                                      city_key.substr(comma + 1));
    RAN_EXPECTS(city != nullptr);
    const CoId co =
        make_co(ctx_, backbone_region_, CoRole::kBackbone, *city);
    const RouterId router =
        make_router(ctx_, co, RouterRole::kBackbone, "bcr01");
    // Dedicated peering interface (the address transit-entering probes
    // see); created first so it doubles as the Mercator primary.
    Interface peering;
    peering.router = router;
    peering.addr = ctx_.alloc->alloc_addr();
    (void)ctx_.isp.add_iface(peering);
    const Entry entry{co, router};
    entries_.emplace(city_key, entry);
    return entry;
  }

  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

 private:
  BuildContext& ctx_;
  RegionId backbone_region_;
  std::map<std::string, Entry> entries_;
};

/// Builds one access region: COs, routers, star wiring, rings, last miles.
RegionBuild build_region(BuildContext& ctx, const CableProfile& profile,
                         const CableRegionSpec& spec) {
  auto& isp = ctx.isp;
  auto& rng = ctx.rng;

  RegionBuild rb;
  Region region;
  region.name = spec.name;
  region.state_hint = spec.states.empty() ? "" : spec.states.front();
  rb.id = isp.add_region(std::move(region));

  const int n_edge = spec.edge_cos;
  int n_sub = 1;
  if (n_edge > profile.two_agg_threshold) {
    n_sub = std::max(
        2, (n_edge + profile.edge_per_subregion / 2) /
               profile.edge_per_subregion);
  }
  rb.subs.resize(static_cast<std::size_t>(n_sub));

  // Every regional router gets an unnamed loopback; some reply to transit
  // probes from it (the "addresses without rDNS" of §5.1).
  auto add_loopback = [&](RouterId router) {
    Interface loopback;
    loopback.router = router;
    loopback.addr = ctx.alloc->alloc_addr();
    loopback.probe_filtered = true;
    const IfaceId id = isp.add_iface(loopback);
    isp.router(router).loopback_iface = id;
    isp.router(router).replies_from_loopback =
        rng.chance(profile.loopback_reply_prob);
  };

  // AggCOs live in the largest cities; EdgeCOs spread across the rest.
  const auto agg_cities = pick_cities(ctx, spec.states, 2 * n_sub);
  for (int s = 0; s < n_sub; ++s) {
    auto& sub = rb.subs[static_cast<std::size_t>(s)];
    const bool single_agg_region = n_edge <= profile.single_agg_threshold;
    // The backbone-facing subregion always gets the full AggCO pair;
    // lower subregions are where operators skimp (§5.3).
    const int n_agg = single_agg_region
                          ? 1
                          : (s == 0 || rng.chance(profile.two_agg_prob) ? 2
                                                                        : 1);
    for (int a = 0; a < n_agg; ++a) {
      const auto& city = *agg_cities[static_cast<std::size_t>(2 * s + a)];
      const CoId co = make_co(ctx, rb.id, CoRole::kAgg, city,
                              /*agg_level=*/s == 0 ? 1 : 2);
      sub.agg_cos.push_back(co);
      const RouterId agg = make_router(
          ctx, co, RouterRole::kAgg, net::format("agg%d", a + 1));
      add_loopback(agg);
      sub.agg_routers.push_back(agg);
    }
  }
  rb.top_agg_routers = rb.subs.front().agg_routers;

  // Second aggregation layer: lower subregions' AggCOs home to the top pair.
  for (std::size_t s = 1; s < rb.subs.size(); ++s) {
    for (const RouterId sub_agg : rb.subs[s].agg_routers) {
      for (const RouterId top_agg : rb.top_agg_routers) {
        connect(ctx, sub_agg, top_agg);
      }
    }
  }

  // EdgeCOs, assigned round-robin to subregions. Daisy chains cluster:
  // a small CO that aggregates one neighbour usually aggregates several
  // (B.3's "small AggCO" pattern), so chained COs prefer parents that
  // already host a chain.
  const auto edge_cities = pick_cities(ctx, spec.states, n_edge);
  std::vector<RouterId> chain_pool;     // region-wide anchor candidates
  std::vector<RouterId> chain_parents;  // COs already hosting a chain
  // Subregions are geographic: every EdgeCO homes to the nearest AggCO
  // pair with spare capacity (fiber rings follow geography).
  const int sub_capacity =
      (5 * n_edge) / (4 * static_cast<int>(rb.subs.size())) + 1;
  auto nearest_sub = [&](const net::City& city) {
    std::size_t best = 0;
    double best_km = 1e18;
    for (std::size_t si = 0; si < rb.subs.size(); ++si) {
      if (static_cast<int>(rb.subs[si].edge_cos.size()) >= sub_capacity)
        continue;
      const auto& hub = isp.co(rb.subs[si].agg_cos.front());
      const double km = net::haversine_km(city.location, hub.location);
      if (km < best_km) {
        best_km = km;
        best = si;
      }
    }
    return best;
  };
  for (int e = 0; e < n_edge; ++e) {
    const auto sub_index =
        nearest_sub(*edge_cities[static_cast<std::size_t>(e)]);
    auto& sub = rb.subs[sub_index];
    const auto& city = *edge_cities[static_cast<std::size_t>(e)];
    const CoId co = make_co(ctx, rb.id, CoRole::kEdge, city);
    sub.edge_cos.push_back(co);
    const RouterId router = make_router(ctx, co, RouterRole::kEdge, "cbr01");
    add_loopback(router);

    auto pick_router = [&](const std::vector<RouterId>& pool) {
      return pool[static_cast<std::size_t>(rng.uniform(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
    };
    const bool forced_single = sub.agg_routers.size() == 1;
    if (!chain_pool.empty() && rng.chance(profile.chain_prob)) {
      const RouterId parent = (!chain_parents.empty() && rng.chance(0.75))
                                  ? pick_router(chain_parents)
                                  : pick_router(chain_pool);
      connect(ctx, router, parent);
      if (std::find(chain_parents.begin(), chain_parents.end(), parent) ==
          chain_parents.end())
        chain_parents.push_back(parent);
    } else if (!forced_single && rng.chance(profile.lone_uplink_prob)) {
      connect(ctx, router, pick_router(sub.agg_routers));
    } else {
      for (const RouterId agg : sub.agg_routers) connect(ctx, router, agg);
      chain_pool.push_back(router);
    }

    // Last-mile devices and the router's downstream LAN interface.
    Interface lan;
    lan.router = router;
    lan.addr = ctx.alloc->alloc_addr();
    const IfaceId lan_id = isp.add_iface(lan);
    isp.router(router).lan_iface = lan_id;
    for (int m = 0; m < profile.last_miles_per_edge; ++m)
      (void)make_last_mile(ctx, co, {router});
  }

  // Fiber rings: each subregion's AggCOs plus its EdgeCOs form one ring.
  for (const auto& sub : rb.subs) {
    FiberRing ring;
    ring.cos = sub.agg_cos;
    ring.cos.insert(ring.cos.end(), sub.edge_cos.begin(), sub.edge_cos.end());
    ring.level = 1;
    isp.add_ring(std::move(ring));
  }

  // MPLS: the lower aggregation layer rides inside LSPs, so plain
  // traceroutes show top AggCOs adjacent to nearly all EdgeCOs (§5.1);
  // only probes targeted at router interfaces reveal the hidden layer.
  if (spec.mpls) {
    for (std::size_t s = 1; s < rb.subs.size(); ++s)
      for (const RouterId sub_agg : rb.subs[s].agg_routers)
        isp.router(sub_agg).mpls_interior = true;
  }
  return rb;
}

}  // namespace

Isp generate_cable(const CableProfile& profile, net::Rng& rng) {
  Isp isp{profile.name, profile.asn, IspKind::kCable};
  isp.add_prefix(profile.pool);
  AddressAllocator alloc{profile.pool};
  BuildContext ctx{.isp = isp, .rng = rng, .alloc = &alloc,
                   .p2p_len = profile.p2p_len, .hop_cost_ms = 0.35,
                   .long_link_stretch = 1.0, .building_counter = {}};

  // Region 0 holds the ISP's BackboneCOs (the national backbone PoPs whose
  // rDNS carries ibone/tbone labels rather than regional tags).
  Region backbone_region;
  backbone_region.name = "backbone";
  const RegionId backbone_region_id = isp.add_region(std::move(backbone_region));
  BackboneDirectory backbone{ctx, backbone_region_id};

  std::vector<RegionBuild> builds;
  builds.reserve(profile.regions.size());
  for (const auto& spec : profile.regions)
    builds.push_back(build_region(ctx, profile, spec));

  // Backbone entries: every entry city's BackboneCO router connects to each
  // of the region's backbone-facing AggCO routers.
  for (std::size_t i = 0; i < profile.regions.size(); ++i) {
    const auto& spec = profile.regions[i];
    auto& rb = builds[i];
    for (const auto& city_key : spec.entry_cities) {
      const auto entry = backbone.get(city_key);
      for (const RouterId agg : rb.top_agg_routers)
        connect(ctx, entry.router, agg);
      isp.regions()[rb.id].backbone_entries.push_back(entry.co);
    }
  }

  // Inter-region upstreams (the Connecticut arrangement): this region's top
  // AggCO routers connect to the upstream region's top AggCO routers.
  for (std::size_t i = 0; i < profile.regions.size(); ++i) {
    const auto& spec = profile.regions[i];
    for (const auto& upstream_name : spec.upstream_regions) {
      const auto it = std::find_if(
          profile.regions.begin(), profile.regions.end(),
          [&](const CableRegionSpec& s) { return s.name == upstream_name; });
      RAN_EXPECTS(it != profile.regions.end());
      const auto& up =
          builds[static_cast<std::size_t>(it - profile.regions.begin())];
      for (const RouterId mine : builds[i].top_agg_routers)
        for (const RouterId theirs : up.top_agg_routers)
          connect(ctx, mine, theirs);
      isp.regions()[builds[i].id].upstream_regions.push_back(up.id);
    }
  }

  // The ISP's national backbone: a delay-weighted ring over its
  // BackboneCOs plus chords between the largest ones, enough to carry
  // cross-country paths without dominating the topology.
  std::vector<BackboneDirectory::Entry> bbs;
  for (const auto& [key, entry] : backbone.entries()) bbs.push_back(entry);
  for (std::size_t i = 0; i + 1 < bbs.size(); ++i)
    connect(ctx, bbs[i].router, bbs[i + 1].router);
  if (bbs.size() > 2) connect(ctx, bbs.back().router, bbs.front().router);
  for (std::size_t i = 0; i + 2 < bbs.size(); i += 2)
    connect(ctx, bbs[i].router, bbs[i + 2].router);

  // Announce only the used space, as /16 blocks: the sweep campaigns of
  // §5.1 enumerate /24s of BGP-visible prefixes, which track deployment.
  std::vector<net::IPv4Prefix> announced;
  const std::uint64_t used = alloc.used();
  for (std::uint64_t base = 0; base < used; base += 1 << 16)
    announced.push_back(net::IPv4Prefix{profile.pool.at(base), 16});
  isp.set_address_space(std::move(announced));
  return isp;
}

CableProfile comcast_profile() {
  CableProfile p;
  p.name = "comcast";
  p.asn = 7922;
  p.pool = *net::IPv4Prefix::parse("96.0.0.0/6");
  p.p2p_len = 30;
  p.two_agg_prob = 1.0;        // lower subregions always get the pair
  p.loopback_reply_prob = 0.62;
  p.chain_prob = 0.075;        // + single-AggCO regions => ~11.4% (B.4)
  p.lone_uplink_prob = 0.02;
  p.edge_per_subregion = 18;
  p.single_agg_threshold = 14;
  p.two_agg_threshold = 34;
  // 28 regions calibrated so that 5 are single-AggCO, 11 dual-AggCO and 12
  // multi-level (Table 1), with the Fig 9 northeast arrangement: MA/NH/VT
  // share Boston AggCOs with NJ/NY backbone entries; Connecticut reaches
  // the backbone only through the Boston AggCOs.
  p.regions = {
      {"boston", {"ma", "nh", "vt"}, 48,
       {"newark,nj", "new york,ny"}, {}, false},
      {"westnewengland", {"ct"}, 20, {}, {"boston"}, false},
      {"philadelphia", {"pa", "de"}, 42,
       {"new york,ny", "washington,dc"}, {}, false},
      {"newjersey", {"nj"}, 30, {"newark,nj", "philadelphia,pa"}, {}, false},
      {"dcmetro", {"dc", "md"}, 40,
       {"washington,dc", "philadelphia,pa"}, {}, false},
      {"richmond", {"va"}, 24, {"washington,dc", "charlotte,nc"}, {}, false},
      {"pittsburgh", {"pa"}, 22, {"philadelphia,pa", "cleveland,oh"}, {},
       false},
      {"atlanta", {"ga"}, 44, {"atlanta,ga", "charlotte,nc"}, {}, false},
      {"miami", {"fl"}, 38, {"miami,fl", "atlanta,ga"}, {}, false},
      {"jacksonville", {"fl"}, 18, {"atlanta,ga", "miami,fl"}, {}, false},
      {"nashville", {"tn"}, 20, {"nashville,tn", "atlanta,ga"}, {}, false},
      {"memphis", {"tn"}, 12, {"nashville,tn"}, {}, false},
      {"knoxville", {"tn"}, 13, {"nashville,tn", "atlanta,ga"}, {}, false},
      {"detroit", {"mi"}, 40, {"chicago,il", "cleveland,oh"}, {}, false},
      {"chicago", {"il"}, 52,
       {"chicago,il", "indianapolis,in", "minneapolis,mn"}, {}, false},
      {"indianapolis", {"in"}, 24, {"indianapolis,in", "chicago,il"}, {},
       false},
      {"minneapolis", {"mn"}, 36, {"chicago,il", "minneapolis,mn"}, {},
       false},
      {"denver", {"co"}, 36, {"denver,co", "dallas,tx"}, {}, false},
      {"saltlake", {"ut"}, 24, {"denver,co", "salt lake city,ut"}, {}, false},
      {"albuquerque", {"nm"}, 12, {"denver,co"}, {}, false},
      {"houston", {"tx"}, 44, {"houston,tx", "dallas,tx"}, {}, false},
      {"seattle", {"wa"}, 42, {"seattle,wa", "portland,or"}, {}, false},
      {"spokane", {"wa"}, 13, {"seattle,wa", "portland,or"}, {}, false},
      {"beaverton", {"or"}, 28, {"seattle,wa", "portland,or"}, {}, false},
      {"sacramento", {"ca"}, 26, {"san francisco,ca", "sacramento,ca"}, {},
       false},
      {"sanfrancisco", {"ca"}, 46, {"san francisco,ca", "san jose,ca"}, {},
       false},
      // Central California: two backbone entries plus a direct connection
      // to the San Francisco regional network (§5.2.5).
      {"centralcalifornia", {"ca"}, 26, {"san jose,ca", "los angeles,ca"},
       {"sanfrancisco"}, false},
      {"coloradosprings", {"co"}, 14, {"denver,co"}, {}, false},
  };
  return p;
}

CableProfile charter_profile() {
  CableProfile p;
  p.name = "charter";
  p.asn = 20115;
  p.pool = *net::IPv4Prefix::parse("72.128.0.0/9");
  p.p2p_len = 31;
  p.two_agg_prob = 0.70;    // lower subregions often get one AggCO
  p.loopback_reply_prob = 0.42;
  p.chain_prob = 0.22;      // => ~37.7% single-upstream, 42% via chains
  p.lone_uplink_prob = 0.03;
  p.edge_per_subregion = 16;
  p.single_agg_threshold = 0;   // no single-AggCO Charter regions observed
  p.two_agg_threshold = 0;      // every region is multi-level (Table 1)
  // Six vast former-Time-Warner regions (§5.3); the Midwest touches ten
  // states and runs MPLS between aggregation layers (§5.1).
  p.regions = {
      {"socal", {"ca"}, 88, {"los angeles,ca", "san diego,ca"}, {}, false},
      {"texas", {"tx"}, 110, {"dallas,tx", "houston,tx"}, {}, false},
      {"midwest",
       {"oh", "wi", "mi", "il", "in", "ky", "mo", "ne", "mn", "ia"},
       240,
       {"chicago,il", "columbus,oh"},
       {},
       true},
      {"northeast", {"ny", "ma", "me", "nh", "vt"}, 150,
       {"new york,ny", "boston,ma"}, {}, false},
      {"carolinas", {"nc", "sc"}, 96, {"charlotte,nc", "raleigh,nc"}, {},
       false},
      {"southeast", {"fl", "al", "ms", "la"}, 120,
       {"atlanta,ga", "miami,fl"}, {}, false},
  };
  return p;
}

}  // namespace ran::topo
