// Ground-truth generators for the three mobile carriers (§7).
//
// Each carrier is a packet core overlaid on wireline infrastructure: base
// stations backhaul (invisibly) to a mobile EdgeCO — a datacenter housing
// several packet gateways (PGWs) — which connects to one or more backbone
// providers. The carriers differ architecturally (Fig 17):
//   AT&T      — 11 huge regions, one EdgeCO each, 2-6 PGWs, own backbone.
//   Verizon   — ~28 EdgeCOs grouped under 14 backbone regions, own backbone.
//   T-Mobile  — many EdgeCOs, each peering with several third-party
//               backbones (Zayo, Lumen, Verizon) directly.
// IPv6 addresses encode region / EdgeCO / PGW in carrier-specific bit
// fields (Fig 16); the codes below follow Tables 7 and 8.
#include "builder.hpp"
#include "netbase/clli.hpp"
#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "profiles.hpp"

namespace ran::topo {

namespace {

net::IPv6Prefix v6(const char* text) {
  const auto parsed = net::IPv6Prefix::parse(text);
  RAN_EXPECTS(parsed.has_value());
  return *parsed;
}

}  // namespace

Isp generate_mobile(const MobileProfile& profile, net::Rng& rng) {
  Isp isp{profile.name, profile.asn, IspKind::kMobile};
  isp.set_ipv6_plan(profile.plan);

  // Pool for the odd IPv4 endpoints mobile networks expose (speedtest
  // servers, v4 PGW NAT addresses).
  AddressAllocator alloc{*net::IPv4Prefix::parse("198.224.0.0/16")};
  BuildContext ctx{.isp = isp, .rng = rng, .alloc = &alloc,
                   .p2p_len = 30, .hop_cost_ms = 0.05, .building_counter = {}};

  Region backbone_region;
  backbone_region.name = "backbone";
  const RegionId backbone_region_id =
      isp.add_region(std::move(backbone_region));

  // BackboneCOs dedup by city.
  std::unordered_map<std::string, CoId> backbone_cos;
  auto backbone_co_at = [&](const std::string& city, const std::string& state)
      -> CoId {
    const std::string key = city + "," + state;
    if (const auto it = backbone_cos.find(key); it != backbone_cos.end())
      return it->second;
    const auto* c = net::find_city(city, state);
    RAN_EXPECTS(c != nullptr);
    const CoId co = make_co(ctx, backbone_region_id, CoRole::kBackbone, *c);
    backbone_cos.emplace(key, co);
    return co;
  };

  for (const auto& spec : profile.regions) {
    Region region;
    region.name = spec.name;
    region.state_hint = spec.state;
    const RegionId region_id = isp.add_region(std::move(region));

    const auto* anchor = net::find_city(spec.city, spec.state);
    RAN_EXPECTS(anchor != nullptr);
    const CoId edge_co = make_co(ctx, region_id, CoRole::kEdge, *anchor);

    MobileRegion mr;
    mr.name = spec.name;
    mr.states = spec.states;
    mr.edge_co = edge_co;
    mr.region_code = spec.region_code;
    mr.user_code = spec.region_code;  // may be overridden below
    mr.backbone_asns = spec.backbone_asns;
    for (int g = 0; g < spec.pgws; ++g)
      mr.pgws.push_back(make_router(ctx, edge_co, RouterRole::kPacketGateway,
                                    net::format("pgw%d", g + 1)));
    if (!spec.backbone_city.empty()) {
      mr.backbone_co = backbone_co_at(spec.backbone_city, spec.backbone_state);
    } else {
      // Carrier lands on the backbone at the EdgeCO's own city.
      mr.backbone_co = backbone_co_at(spec.city, spec.state);
    }
    mr.backbone_name = spec.backbone_name;
    isp.regions()[region_id].backbone_entries.push_back(mr.backbone_co);
    isp.add_mobile_region(std::move(mr));
  }

  // Carrier-specific code fixups.
  auto& mrs = isp.mobile_regions_mut();
  if (profile.name == "att-mobile") {
    // User /40 region byte: distinct per region, spread across the whole
    // byte (real plans do not confine codes to one nibble).
    for (std::size_t i = 0; i < mrs.size(); ++i)
      mrs[i].user_code = (0x15 + i * 0x1d) & 0xff;
  } else if (profile.name == "tmobile") {
    // T-Mobile's user /40 names the PGW globally with no geographic
    // structure (Fig 16c); scramble so nearby PGWs share no bit pattern.
    // (The per-attachment value is derived in MobileCore.)
  } else if (profile.name == "verizon") {
    for (std::size_t i = 0; i < mrs.size(); ++i) {
      // Backbone code packs into user bits 24-31; EdgeCO code into 32-39.
      const auto& spec = profile.regions[i];
      mrs[i].backbone_code = spec.region_code >> 8;
      mrs[i].region_code = spec.region_code & 0xff;
      mrs[i].user_code = mrs[i].region_code;
      mrs[i].speedtest_addr = ctx.alloc->alloc_addr();
    }
  }
  return isp;
}

MobileProfile att_mobile_profile() {
  MobileProfile p;
  p.name = "att-mobile";
  p.asn = 20057;
  p.arch = MobileArch::kCentralized;
  p.plan.user_prefix = v6("2600:380::/32");
  p.plan.infra_prefix = v6("2600:300::/32");
  p.plan.user_region_bit = 32;
  p.plan.user_region_width = 8;
  p.plan.infra_region_bit = 32;
  p.plan.infra_region_width = 16;
  p.plan.infra_pgw_bit = 52;
  p.plan.infra_pgw_width = 4;
  p.infra_has_rdns = false;
  // The 11 mobile datacenters of Table 7 with their region bits and
  // MTSO/PGW counts; coverage areas partition the country.
  p.regions = {
      {"BTH", "seattle", "wa",
       {"wa", "or", "id", "ak"}, 2, 0x2030, "", "", "", {7018}},
      {"CNC", "san francisco", "ca",
       {"nv", "ut"}, 5, 0x2040, "", "", "", {7018}},
      {"VNN", "los angeles", "ca",
       {"ca", "az", "hi"}, 5, 0x2090, "", "", "", {7018}},
      {"ALN", "dallas", "tx",
       {"tx", "ok", "nm", "ar", "la"}, 5, 0x2010, "", "", "", {7018}},
      {"HST", "houston", "tx",
       {"ms", "al"}, 5, 0x20a0, "", "", "", {7018}},
      // Chicago also backhauls the sparsely-covered northern plains — the
      // circuitous paths behind Fig 18a's dark Montana/North Dakota cells.
      {"CHC", "chicago", "il",
       {"il", "wi", "mn", "ia", "mt", "nd", "sd", "wy", "co"},
       5, 0x20b0, "", "", "", {7018}},
      {"AKR", "akron", "oh",
       {"oh", "mi", "in", "ky", "wv", "pa"}, 3, 0x2000, "", "", "", {7018}},
      {"ALP", "atlanta", "ga",
       {"ga", "fl", "sc", "tn"}, 6, 0x2020, "", "", "", {7018}},
      {"NYC", "new york", "ny",
       {"ny", "nj", "ct", "ma", "ri", "nh", "vt", "me"},
       4, 0x2050, "", "", "", {7018}},
      {"ART", "washington", "dc",
       {"dc", "md", "va", "de", "nc"}, 3, 0x2070, "", "", "", {7018}},
      {"GSV", "kansas city", "mo", {"mo", "ks", "ne"}, 3, 0x2080, "", "", "",
       {7018}},
  };
  return p;
}

MobileProfile verizon_profile() {
  MobileProfile p;
  p.name = "verizon";
  p.asn = 22394;
  p.arch = MobileArch::kRegionalized;
  p.plan.user_prefix = v6("2600:1000::/24");
  p.plan.infra_prefix = v6("2001:4888::/32");
  p.plan.user_region_bit = 24;   // backbone region
  p.plan.user_region_width = 8;
  p.plan.user_edgeco_bit = 32;
  p.plan.user_edgeco_width = 8;
  p.plan.user_pgw_bit = 40;
  p.plan.user_pgw_width = 4;
  p.plan.infra_edgeco_bit = 64;
  p.plan.infra_edgeco_width = 12;
  p.infra_has_rdns = true;  // alter.net backbone hops
  // Wireless regions of Table 8: region_code packs (backbone byte << 8) |
  // EdgeCO byte; names are CLLI-style site codes.
  p.regions = {
      {"RDMEWA", "redmond", "wa", {"wa", "ak"}, 1, 0x0fb0, "SEA",
       "seattle", "wa", {701}},
      {"HLBOOR", "hillsboro", "or", {"or", "id", "mt"}, 1, 0x0fb1, "SEA",
       "seattle", "wa", {701}},
      {"SNVACA", "sunnyvale", "ca", {}, 2, 0x10b0, "SJC",
       "san jose", "ca", {701}},
      {"RCKLCA", "sacramento", "ca", {}, 2, 0x10b1, "SJC",
       "san jose", "ca", {701}},
      {"LSVKNV", "las vegas", "nv", {"nv"}, 2, 0x11b0, "LAX",
       "los angeles", "ca", {701}},
      {"AZUSCA", "azusa", "ca", {}, 2, 0x12b0, "LAX",
       "los angeles", "ca", {701}},
      {"VISTCA", "vista", "ca", {}, 3, 0x12b1, "LAX",
       "los angeles", "ca", {701}},
      {"HCHLIL", "chicago", "il", {"il"}, 2, 0x08b0, "CHI",
       "chicago", "il", {701}},
      {"NWBLWI", "new berlin", "wi", {"wi"}, 2, 0x08b1, "CHI",
       "chicago", "il", {701}},
      {"SFLDMI", "southfield", "mi", {"mi", "oh", "in"}, 1, 0x09b1, "CHI",
       "chicago", "il", {701}},
      {"STLSMO", "st louis", "mo", {"mo", "ks", "ar"}, 1, 0x0ab0, "CHI",
       "chicago", "il", {701}},
      {"BLTNMN", "bloomington", "mn", {"mn", "nd", "sd", "ia"}, 3, 0x14b1,
       "CHI", "chicago", "il", {701}},
      {"OMALNE", "omaha", "ne", {"ne"}, 2, 0x14b0, "CHI",
       "chicago", "il", {701}},
      {"ESYRNY", "syracuse", "ny", {"vt", "me"}, 1, 0x02b1, "NYC",
       "new york", "ny", {701}},
      {"AURSCO", "aurora", "co", {"co", "wy"}, 2, 0x0eb0, "DEN",
       "denver", "co", {701}},
      {"WJRDUT", "west jordan", "ut", {"ut"}, 2, 0x0eb1, "DEN",
       "denver", "co", {701}},
      {"ELSSTX", "el paso", "tx", {"nm", "az"}, 1, 0x0cb2, "DLLSTX",
       "dallas", "tx", {701}},
      {"HSTWTX", "houston", "tx", {"tx", "ok"}, 2, 0x0db0, "DLLSTX",
       "dallas", "tx", {701}},
      {"BTRHLA", "baton rouge", "la", {"la", "ms"}, 2, 0x0db1, "DLLSTX",
       "dallas", "tx", {701}},
      {"MIAMFL", "miami", "fl", {}, 2, 0x0bb0, "MIA", "miami", "fl", {701}},
      {"ORLHFL", "orlando", "fl", {"fl"}, 2, 0x0bb1, "MIA",
       "miami", "fl", {701}},
      {"CHRXNC", "charlotte", "nc", {"nc"}, 4, 0x04b0, "ATL",
       "atlanta", "ga", {701}},
      {"WHCKTN", "nashville", "tn", {"tn", "ky", "al"}, 2, 0x04b1, "ATL",
       "atlanta", "ga", {701}},
      {"ALPSGA", "atlanta", "ga", {"ga", "sc"}, 2, 0x05b0, "ATL",
       "atlanta", "ga", {701}},
      {"CHNTVA", "richmond", "va", {"va", "wv", "dc", "md", "de"}, 2,
       0x03b0, "IAD", "washington", "dc", {701}},
      {"JHTWPA", "pittsburgh", "pa", {"pa"}, 1, 0x03b1, "IAD",
       "washington", "dc", {701}},
      {"WLTPNJ", "trenton", "nj", {"nj"}, 2, 0x17b0, "NYC",
       "new york", "ny", {701}},
      {"WSBOMA", "boston", "ma", {"ma", "nh", "ri", "ct"}, 2, 0x00b0,
       "BOS", "boston", "ma", {701}},
      {"BBTPNJ", "jersey city", "nj", {"ny"}, 1, 0x02b2, "NYC",
       "new york", "ny", {701}},
  };
  return p;
}

MobileProfile tmobile_profile() {
  MobileProfile p;
  p.name = "tmobile";
  p.asn = 21928;
  p.arch = MobileArch::kDistributed;
  p.plan.user_prefix = v6("2607:fb90::/32");
  p.plan.infra_prefix = v6("fd00:976a::/32");
  p.plan.user_pgw_bit = 32;
  p.plan.user_pgw_width = 8;
  p.plan.infra_pgw_bit = 32;
  p.plan.infra_pgw_width = 16;
  p.infra_has_rdns = false;
  // EdgeCO sites, each peering with several backbone providers; T-Mobile's
  // IPv4 transit is mainly Zayo (6461), plus Lumen (3356) and Verizon (701).
  const std::vector<int> providers{6461, 3356, 701};
  p.regions = {
      {"SEAT", "seattle", "wa", {"wa", "or", "id", "mt", "ak"}, 3, 0x4a00,
       "", "", "", providers},
      {"SNFC", "san francisco", "ca", {"nv"}, 3, 0x4a10, "", "", "",
       {6461, 3356}},
      {"LASA", "los angeles", "ca", {"ca", "hi"}, 3, 0x4a20, "", "", "",
       providers},
      {"PHNX", "phoenix", "az", {"az", "nm"}, 2, 0x4a30, "", "", "",
       {6461, 701}},
      {"SLKC", "salt lake city", "ut", {"ut", "wy", "co"}, 2, 0x4a40, "",
       "", "", {6461, 3356}},
      {"DLLS", "dallas", "tx", {"tx", "ok", "ar", "ks"}, 3, 0x4a50, "", "",
       "", providers},
      {"CHCG", "chicago", "il",
       {"il", "wi", "mn", "ia", "mo", "ne", "nd", "sd"}, 3, 0x4a60, "", "",
       "", providers},
      {"DTRT", "detroit", "mi", {"mi", "oh", "in", "ky"}, 2, 0x4a70, "", "",
       "", {6461, 3356}},
      {"ATLN", "atlanta", "ga", {"ga", "al", "tn", "ms"}, 3, 0x4a80, "", "",
       "", providers},
      {"MIAM", "miami", "fl", {"fl", "la"}, 2, 0x4a90, "", "", "",
       {6461, 701}},
      {"CLMB", "columbia", "sc", {"sc", "nc"}, 2, 0x4aa0, "", "", "",
       {6461, 3356}},
      {"WASH", "washington", "dc", {"dc", "va", "md", "wv", "de"}, 3,
       0x4ab0, "", "", "", providers},
      {"NWYC", "new york", "ny", {"ny", "nj", "pa", "ct"}, 3, 0x4ac0, "",
       "", "", providers},
      {"BSTN", "boston", "ma", {"ma", "nh", "vt", "me", "ri"}, 2, 0x4ad0,
       "", "", "", {6461, 3356}},
  };
  return p;
}

}  // namespace ran::topo
