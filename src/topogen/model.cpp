#include "model.hpp"

#include "netbase/contracts.hpp"

namespace ran::topo {

std::string_view to_string(CoRole role) {
  switch (role) {
    case CoRole::kBackbone: return "backbone";
    case CoRole::kAgg: return "agg";
    case CoRole::kEdge: return "edge";
  }
  return "?";
}

RegionId Isp::add_region(Region region) {
  region.id = static_cast<RegionId>(regions_.size());
  regions_.push_back(std::move(region));
  return regions_.back().id;
}

CoId Isp::add_co(CentralOffice co) {
  co.id = static_cast<CoId>(cos_.size());
  RAN_EXPECTS(co.region < regions_.size());
  regions_[co.region].cos.push_back(co.id);
  cos_.push_back(std::move(co));
  return cos_.back().id;
}

RouterId Isp::add_router(Router router) {
  router.id = static_cast<RouterId>(routers_.size());
  RAN_EXPECTS(router.co < cos_.size());
  routers_.push_back(std::move(router));
  return routers_.back().id;
}

IfaceId Isp::add_iface(Interface iface) {
  RAN_EXPECTS(iface.router < routers_.size());
  iface.id = static_cast<IfaceId>(ifaces_.size());
  routers_[iface.router].ifaces.push_back(iface.id);
  if (!iface.addr.is_unspecified()) by_addr_.emplace(iface.addr, iface.id);
  if (!iface.addr6.is_unspecified()) by_addr6_.emplace(iface.addr6, iface.id);
  ifaces_.push_back(iface);
  return iface.id;
}

LinkId Isp::add_link(IfaceId a, IfaceId b, double delay_ms) {
  RAN_EXPECTS(a < ifaces_.size() && b < ifaces_.size());
  Link link;
  link.id = static_cast<LinkId>(links_.size());
  link.a = a;
  link.b = b;
  link.delay_ms = delay_ms;
  links_by_router_[ifaces_[a].router].push_back(link.id);
  links_by_router_[ifaces_[b].router].push_back(link.id);
  links_.push_back(link);
  return link.id;
}

LastMileId Isp::add_last_mile(LastMile lm) {
  lm.id = static_cast<LastMileId>(last_miles_.size());
  RAN_EXPECTS(lm.edge_co < cos_.size());
  last_miles_.push_back(std::move(lm));
  return last_miles_.back().id;
}

const Region& Isp::region(RegionId id) const {
  RAN_EXPECTS(id < regions_.size());
  return regions_[id];
}

const CentralOffice& Isp::co(CoId id) const {
  RAN_EXPECTS(id < cos_.size());
  return cos_[id];
}

const Router& Isp::router(RouterId id) const {
  RAN_EXPECTS(id < routers_.size());
  return routers_[id];
}

Router& Isp::router(RouterId id) {
  RAN_EXPECTS(id < routers_.size());
  return routers_[id];
}

const Interface& Isp::iface(IfaceId id) const {
  RAN_EXPECTS(id < ifaces_.size());
  return ifaces_[id];
}

const Link& Isp::link(LinkId id) const {
  RAN_EXPECTS(id < links_.size());
  return links_[id];
}

const LastMile& Isp::last_mile(LastMileId id) const {
  RAN_EXPECTS(id < last_miles_.size());
  return last_miles_[id];
}

std::optional<IfaceId> Isp::iface_by_addr(net::IPv4Address addr) const {
  const auto it = by_addr_.find(addr);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

std::optional<IfaceId> Isp::iface_by_addr6(net::IPv6Address addr) const {
  const auto it = by_addr6_.find(addr);
  if (it == by_addr6_.end()) return std::nullopt;
  return it->second;
}

bool Isp::owns(net::IPv4Address addr) const {
  for (const auto& prefix : address_space_)
    if (prefix.contains(addr)) return true;
  return false;
}

std::vector<LinkId> Isp::links_of_router(RouterId id) const {
  const auto it = links_by_router_.find(id);
  if (it == links_by_router_.end()) return {};
  return it->second;
}

std::vector<RouterId> Isp::routers_in_co(CoId id) const {
  std::vector<RouterId> out;
  for (const auto& router : routers_)
    if (router.co == id) out.push_back(router.id);
  return out;
}

std::vector<CoId> Isp::cos_in_region(RegionId id, CoRole role) const {
  std::vector<CoId> out;
  for (CoId co_id : region(id).cos)
    if (cos_[co_id].role == role) out.push_back(co_id);
  return out;
}

}  // namespace ran::topo
