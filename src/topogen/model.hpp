// Ground-truth model of an ISP's regional access infrastructure.
//
// This is the hidden reality the paper tries to infer: Central Offices in a
// backbone/aggregation/edge hierarchy (Fig 2), routers and point-to-point
// links inside and between COs, last-mile attachment points (DSLAM / ONT /
// CMTS), fiber rings carrying logical dual-star topologies (Fig 3), MPLS
// P-routers that hide interior hops, and per-carrier mobile packet cores.
//
// The inference pipeline (ran::infer) must never read these structures; it
// sees only what the simulator (ran::sim) and rDNS (ran::dns) expose. The
// evaluation component compares inferred output against this ground truth.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/geo.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"

namespace ran::topo {

using CoId = std::uint32_t;
using RouterId = std::uint32_t;
using IfaceId = std::uint32_t;
using LinkId = std::uint32_t;
using RegionId = std::uint32_t;
using LastMileId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId =
    std::numeric_limits<std::uint32_t>::max();

/// Role of a CO in the aggregation hierarchy (§2).
enum class CoRole { kBackbone, kAgg, kEdge };

[[nodiscard]] std::string_view to_string(CoRole role);

/// Role of a router; packet gateways terminate the mobile packet core (§2.2).
enum class RouterRole { kBackbone, kAgg, kEdge, kPacketGateway };

/// The ISP archetypes studied by the paper.
enum class IspKind {
  kCable,          ///< Comcast / Charter style: rDNS-rich, externally probeable
  kTelco,          ///< AT&T wireline: unnamed regional routers, MPLS, lspgw rDNS
  kMobile,         ///< AT&T / Verizon / T-Mobile packet cores
};

/// A physical CO building.
struct CentralOffice {
  CoId id = kInvalidId;
  CoRole role = CoRole::kEdge;
  RegionId region = kInvalidId;
  const net::City* city = nullptr;  ///< gazetteer anchor
  int building = 0;                 ///< building number within the city
  std::string clli;                 ///< 8-char building CLLI
  net::GeoPoint location;           ///< jittered around the city center
  /// For AggCOs: 1 = top level (connects toward backbone), 2 = below it.
  int agg_level = 0;
};

/// A router interface with an IPv4 and/or IPv6 address.
struct Interface {
  IfaceId id = kInvalidId;
  RouterId router = kInvalidId;
  net::IPv4Address addr;        ///< unspecified when v6-only
  net::IPv6Address addr6;       ///< unspecified when v4-only
  /// Prefix length of the point-to-point subnet this address was allocated
  /// from (30 or 31), or 0 for loopback/LAN-style addresses.
  int p2p_len = 0;
  /// Filtered against direct probing (no Mercator/IP-ID replies); typical
  /// for loopbacks. Such addresses frustrate alias resolution, which is
  /// why the Fig 19 point-to-point refinement earns its keep.
  bool probe_filtered = false;
};

/// A router (layer-3 device) inside a CO.
struct Router {
  RouterId id = kInvalidId;
  CoId co = kInvalidId;
  RouterRole role = RouterRole::kEdge;
  std::vector<IfaceId> ifaces;
  /// Shared IP-ID counter parameters for alias-resolution simulation: the
  /// counter advances at `ipid_rate` per millisecond from `ipid_seed`.
  std::uint32_t ipid_seed = 0;
  double ipid_rate = 1.0;
  /// Routers that never answer traceroute probes (ICMP filtered).
  bool icmp_responsive = true;
  /// MPLS P-router: invisible (no TTL decrement) to probes whose
  /// destination is not an infrastructure address, per the invisible-tunnel
  /// behaviour of [72]; probes targeted at router interfaces reveal it
  /// (Direct Path Revelation, [73]).
  bool mpls_interior = false;
  /// Downstream/LAN interface used to face last-mile devices; also the
  /// address the router replies with to probes arriving from them.
  IfaceId lan_iface = kInvalidId;
  /// Loopback interface (unnamed in rDNS).
  IfaceId loopback_iface = kInvalidId;
  /// Replies to transit probes from the loopback instead of the inbound
  /// interface — the "addresses without rDNS" that made the paper's /24
  /// sweep miss CO interconnections (§5.1). Probes targeted at the
  /// router's own interfaces still elicit the probed address.
  bool replies_from_loopback = false;
  /// Short device tag used by rDNS naming, e.g. "agg1", "cr2", "cbr01".
  std::string name_hint;
};

/// A point-to-point link between two interfaces.
struct Link {
  LinkId id = kInvalidId;
  IfaceId a = kInvalidId;
  IfaceId b = kInvalidId;
  double delay_ms = 0.05;  ///< one-way propagation + forwarding delay
};

/// A last-mile aggregation device (IP-DSLAM, ONT, CMTS port) plus the
/// customers behind it. Traceroutes from a subscriber start here; probes
/// toward customers elicit replies from it (§6.1, Fig 12).
struct LastMile {
  LastMileId id = kInvalidId;
  CoId edge_co = kInvalidId;
  /// EdgeCO routers this device homes to (two in AT&T; §6.2).
  std::vector<RouterId> edge_routers;
  net::IPv4Address gw_addr;       ///< the device's own address (has rDNS)
  net::IPv4Prefix customer_pool;  ///< subscriber addresses behind it
  net::GeoPoint location;
  double access_delay_ms = 1.5;   ///< one-way last-mile delay
};

/// A fiber ring (physical layer). Logical point-to-point links are
/// provisioned as wavelength pairs over these rings (Fig 3); the CO order
/// around the ring defines the physical failure groups.
struct FiberRing {
  std::vector<CoId> cos;  ///< ring order; first element is an AggCO hub
  int level = 1;          ///< 1 = edge ring, 2 = core ring
};

/// One regional access network (the unit of study).
struct Region {
  RegionId id = kInvalidId;
  std::string name;        ///< rDNS region tag, e.g. "socal" or "sd2ca"
  std::string state_hint;  ///< primary state code
  std::vector<CoId> cos;
  /// BackboneCOs providing this region's entries (§5.2.5).
  std::vector<CoId> backbone_entries;
  /// Regions this one reaches the backbone through instead of / in addition
  /// to its own entries (the Connecticut situation in Fig 9).
  std::vector<RegionId> upstream_regions;
};

/// Bit-field layout of a mobile carrier's IPv6 plan (Fig 16): which bits of
/// user and infrastructure addresses encode region / EdgeCO / PGW.
struct Ipv6FieldPlan {
  net::IPv6Prefix user_prefix;
  net::IPv6Prefix infra_prefix;
  // first_bit/width pairs; width 0 = field absent for this carrier.
  int user_region_bit = 0, user_region_width = 0;
  int user_edgeco_bit = 0, user_edgeco_width = 0;
  int user_pgw_bit = 0, user_pgw_width = 0;
  int infra_region_bit = 0, infra_region_width = 0;
  int infra_edgeco_bit = 0, infra_edgeco_width = 0;
  int infra_pgw_bit = 0, infra_pgw_width = 0;
};

/// A mobile carrier's packet-core region: base-station coverage maps to an
/// EdgeCO (mobile datacenter) hosting several PGWs (§7.2).
struct MobileRegion {
  std::string name;                   ///< e.g. "VNN" or "VISTCA"
  std::vector<std::string> states;    ///< coverage area
  CoId edge_co = kInvalidId;          ///< mobile EdgeCO (datacenter)
  std::vector<RouterId> pgws;
  CoId backbone_co = kInvalidId;      ///< serving BackboneCO
  std::uint64_t region_code = 0;      ///< value placed in the region bits
  std::uint64_t user_code = 0;        ///< value for user-address region bits
  std::uint64_t backbone_code = 0;    ///< Verizon: backbone-region bits
  std::string backbone_name;          ///< Verizon: backbone region label
  /// Verizon deploys speedtest servers in EdgeCOs whose rDNS names the CO
  /// (§7.2.2 validation); unspecified for other carriers.
  net::IPv4Address speedtest_addr;
  /// Backbone providers (ASNs) with interconnects here; T-Mobile uses
  /// several per region (§7.2.3).
  std::vector<int> backbone_asns;
};

/// A complete ISP: regions, COs, routers, links, last miles, tunnels.
class Isp {
 public:
  Isp(std::string name, int asn, IspKind kind)
      : name_(std::move(name)), asn_(asn), kind_(kind) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int asn() const { return asn_; }
  [[nodiscard]] IspKind kind() const { return kind_; }

  // --- construction (used by generators) -------------------------------
  RegionId add_region(Region region);
  CoId add_co(CentralOffice co);
  RouterId add_router(Router router);
  /// Adds an interface and indexes its addresses. Expects a valid router id.
  IfaceId add_iface(Interface iface);
  LinkId add_link(IfaceId a, IfaceId b, double delay_ms);
  LastMileId add_last_mile(LastMile lm);
  void add_ring(FiberRing ring) { rings_.push_back(std::move(ring)); }
  void add_prefix(net::IPv4Prefix p) { address_space_.push_back(p); }
  /// Replaces the announced space (generators trim the allocation pool to
  /// the used range so BGP-visible prefixes match reality).
  void set_address_space(std::vector<net::IPv4Prefix> prefixes) {
    address_space_ = std::move(prefixes);
  }
  void add_mobile_region(MobileRegion mr) {
    mobile_regions_.push_back(std::move(mr));
  }
  void set_ipv6_plan(Ipv6FieldPlan plan) { ipv6_plan_ = plan; }

  // --- access -----------------------------------------------------------
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] std::vector<Region>& regions() { return regions_; }
  [[nodiscard]] const std::vector<CentralOffice>& cos() const { return cos_; }
  [[nodiscard]] const std::vector<Router>& routers() const { return routers_; }
  [[nodiscard]] const std::vector<Interface>& ifaces() const {
    return ifaces_;
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<LastMile>& last_miles() const {
    return last_miles_;
  }
  [[nodiscard]] const std::vector<FiberRing>& rings() const { return rings_; }
  [[nodiscard]] const std::vector<net::IPv4Prefix>& address_space() const {
    return address_space_;
  }
  [[nodiscard]] const std::vector<MobileRegion>& mobile_regions() const {
    return mobile_regions_;
  }
  [[nodiscard]] std::vector<MobileRegion>& mobile_regions_mut() {
    return mobile_regions_;
  }
  [[nodiscard]] const std::optional<Ipv6FieldPlan>& ipv6_plan() const {
    return ipv6_plan_;
  }

  [[nodiscard]] const Region& region(RegionId id) const;
  [[nodiscard]] const CentralOffice& co(CoId id) const;
  [[nodiscard]] const Router& router(RouterId id) const;
  [[nodiscard]] Router& router(RouterId id);
  [[nodiscard]] const Interface& iface(IfaceId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const LastMile& last_mile(LastMileId id) const;

  /// Interface owning an IPv4/IPv6 address; nullopt when unknown.
  [[nodiscard]] std::optional<IfaceId> iface_by_addr(
      net::IPv4Address addr) const;
  [[nodiscard]] std::optional<IfaceId> iface_by_addr6(
      net::IPv6Address addr) const;

  /// True when the address falls inside this ISP's announced space.
  [[nodiscard]] bool owns(net::IPv4Address addr) const;

  /// The CO housing a router.
  [[nodiscard]] const CentralOffice& co_of_router(RouterId id) const {
    return co(router(id).co);
  }

  /// All link ids incident to a router.
  [[nodiscard]] std::vector<LinkId> links_of_router(RouterId id) const;

  /// All routers housed in a CO.
  [[nodiscard]] std::vector<RouterId> routers_in_co(CoId id) const;

  /// Convenience: CO ids of a region filtered by role.
  [[nodiscard]] std::vector<CoId> cos_in_region(RegionId id,
                                                CoRole role) const;

 private:
  std::string name_;
  int asn_;
  IspKind kind_;
  std::vector<Region> regions_;
  std::vector<CentralOffice> cos_;
  std::vector<Router> routers_;
  std::vector<Interface> ifaces_;
  std::vector<Link> links_;
  std::vector<LastMile> last_miles_;
  std::vector<FiberRing> rings_;
  std::vector<net::IPv4Prefix> address_space_;
  std::vector<MobileRegion> mobile_regions_;
  std::optional<Ipv6FieldPlan> ipv6_plan_;
  std::unordered_map<net::IPv4Address, IfaceId> by_addr_;
  std::unordered_map<net::IPv6Address, IfaceId> by_addr6_;
  std::unordered_map<RouterId, std::vector<LinkId>> links_by_router_;
};

}  // namespace ran::topo
