// Per-ISP generation profiles and the factory functions that produce
// ground-truth topologies calibrated to the paper's published facts:
//   - Comcast-like: 28 regions, smaller, single/dual/multi-level AggCO mix,
//     ~11% single-upstream EdgeCOs, /30 p2p subnets, location-tag rDNS.
//   - Charter-like: 6 vast multi-state regions, all multi-level, ~38%
//     single-upstream EdgeCOs, /31 p2p subnets, CLLI rDNS, MPLS in the
//     largest region.
//   - AT&T wireline: 37 regions; per region one fortified BackboneCO with
//     two backbone routers, four aggregation routers, dozens of dual-router
//     EdgeCOs, MPLS tunnels hiding AggCOs, lightspeed lspgw rDNS only.
//   - Mobile carriers: packet cores with PGWs per mobile EdgeCO and IPv6
//     plans encoding region/EdgeCO/PGW in address bits (Fig 16).
#pragma once

#include <string>
#include <vector>

#include "model.hpp"
#include "netbase/rng.hpp"

namespace ran::topo {

/// One access region of a cable ISP.
struct CableRegionSpec {
  std::string name;                      ///< rDNS region tag, e.g. "socal"
  std::vector<std::string> states;       ///< coverage
  int edge_cos = 20;                     ///< target EdgeCO count
  /// "city,state" anchors of the BackboneCOs with entries into the region.
  std::vector<std::string> entry_cities;
  /// Names of regions whose AggCOs this region reaches the backbone
  /// through (the Connecticut arrangement, §5.5).
  std::vector<std::string> upstream_regions;
  bool mpls = false;  ///< hide sub-AggCOs behind LSPs (one Charter region)
};

struct CableProfile {
  std::string name;
  int asn = 0;
  net::IPv4Prefix pool;    ///< announced space to carve from
  int p2p_len = 30;        ///< 30 (Comcast-style) or 31 (Charter-style)
  /// Probability a lower subregion is provisioned with two AggCOs (the
  /// backbone-facing subregion always gets the full pair).
  double two_agg_prob = 0.9;
  /// Probability an EdgeCO hangs off another EdgeCO instead of an AggCO
  /// (daisy chains, clustered under shared small aggregators; §B.4).
  double chain_prob = 0.04;
  /// Probability a dual-AggCO subregion's EdgeCO still gets only one
  /// AggCO uplink (a genuinely missing redundant fiber pair).
  double lone_uplink_prob = 0.02;
  /// Share of regional routers that answer transit probes from their
  /// (unnamed) loopback rather than the inbound interface.
  double loopback_reply_prob = 0.45;
  int edge_per_subregion = 18;    ///< multi-level subregion size target
  int single_agg_threshold = 14;  ///< <= this many EdgeCOs: one AggCO
  int two_agg_threshold = 34;     ///< <= this many: two AggCOs, else multi
  int last_miles_per_edge = 3;
  std::vector<CableRegionSpec> regions;
};

/// The paper's Comcast and former-Time-Warner Charter footprints.
[[nodiscard]] CableProfile comcast_profile();
[[nodiscard]] CableProfile charter_profile();

/// Generates a cable ISP ground truth from a profile.
[[nodiscard]] Isp generate_cable(const CableProfile& profile, net::Rng& rng);

/// One AT&T wireline region, anchored at its Long Lines tandem city.
struct TelcoRegionSpec {
  std::string city;   ///< gazetteer name of the BackboneCO city
  std::string state;
  int edge_cos = 30;
};

struct TelcoProfile {
  std::string name = "att";
  int asn = 7018;
  net::IPv4Prefix backbone_pool;  ///< 12.0.0.0/12-style backbone space
  net::IPv4Prefix regional_pool;  ///< carved into per-region pools
  int agg_cos = 4;                ///< AggCOs per region (§6.2)
  int routers_per_edge_co = 2;
  int lspgw_per_edge_co = 8;      ///< IP-DSLAM / ONT devices per EdgeCO
  std::vector<TelcoRegionSpec> regions;
};

[[nodiscard]] TelcoProfile att_profile();
[[nodiscard]] Isp generate_telco(const TelcoProfile& profile, net::Rng& rng);

/// Architectural archetypes of the mobile carriers (Fig 17).
enum class MobileArch {
  kCentralized,   ///< AT&T: one mobile EdgeCO per (large) region
  kRegionalized,  ///< Verizon: several EdgeCOs share a BackboneCO
  kDistributed,   ///< T-Mobile: EdgeCOs peer with multiple backbones
};

/// One packet-core region of a mobile carrier.
struct MobileRegionSpec {
  std::string name;                 ///< e.g. "VNN" or "VISTCA"
  std::string city;                 ///< EdgeCO (mobile datacenter) anchor
  std::string state;
  std::vector<std::string> states;  ///< coverage area (attach by state)
  int pgws = 2;
  std::uint64_t region_code = 0;    ///< value for the plan's region bits
  /// For Verizon-style plans: the backbone region this EdgeCO homes to.
  std::string backbone_name;
  std::string backbone_city;
  std::string backbone_state;
  std::vector<int> backbone_asns;   ///< providers with interconnects here
};

struct MobileProfile {
  std::string name;
  int asn = 0;
  MobileArch arch = MobileArch::kCentralized;
  Ipv6FieldPlan plan;
  /// Typical radio-access one-way delay bounds (ms) added at attach time.
  double ran_delay_min_ms = 12.0;
  double ran_delay_max_ms = 30.0;
  bool infra_has_rdns = false;  ///< only Verizon names backbone hops
  std::vector<MobileRegionSpec> regions;
};

[[nodiscard]] MobileProfile att_mobile_profile();
[[nodiscard]] MobileProfile verizon_profile();
[[nodiscard]] MobileProfile tmobile_profile();

[[nodiscard]] Isp generate_mobile(const MobileProfile& profile, net::Rng& rng);

}  // namespace ran::topo
