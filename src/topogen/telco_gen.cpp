// Ground-truth generator for an AT&T-style wireline telco (§6).
//
// Architecture per region (Fig 12 / Fig 13): one fortified BackboneCO (the
// former Long Lines tandem) housing two backbone routers; four aggregation
// routers in four AggCOs, all MPLS P-routers with no rDNS; dozens of
// EdgeCOs (dense, a legacy of copper loop-length limits) each with two
// routers homed to an aggregation router pair; and many IP-DSLAM / ONT
// last-mile devices per EdgeCO, each homed to both EdgeCO routers, carrying
// lightspeed rDNS. Regional router addresses come from a handful of
// per-region /24s (App. C, Table 6); the backbone uses its own 12/8-style
// space.
#include <algorithm>

#include "builder.hpp"
#include "netbase/clli.hpp"
#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"
#include "profiles.hpp"

namespace ran::topo {

namespace {

/// Assigns every gazetteer city to its nearest region anchor so adjacent
/// regions in the same state (San Diego vs Los Angeles) split cities
/// geographically — Calexico and El Centro fall to San Diego (§6.3).
std::vector<std::vector<const net::City*>> assign_cities_to_anchors(
    const std::vector<const net::City*>& anchors) {
  std::vector<std::vector<const net::City*>> out(anchors.size());
  for (const auto& city : net::us_cities()) {
    std::size_t best = 0;
    double best_km = 1e18;
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const double km = net::haversine_km(city.location, anchors[i]->location);
      if (km < best_km) {
        best_km = km;
        best = i;
      }
    }
    // Only fold a city into a region within plausible metro reach.
    if (best_km <= 260.0) out[best].push_back(&city);
  }
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    auto& cities = out[i];
    if (std::find(cities.begin(), cities.end(), anchors[i]) == cities.end())
      cities.push_back(anchors[i]);
    std::sort(cities.begin(), cities.end(),
              [&](const net::City* a, const net::City* b) {
                return a->population_rank < b->population_rank;
              });
  }
  return out;
}

}  // namespace

Isp generate_telco(const TelcoProfile& profile, net::Rng& rng) {
  Isp isp{profile.name, profile.asn, IspKind::kTelco};
  isp.add_prefix(profile.backbone_pool);
  isp.add_prefix(profile.regional_pool);

  AddressAllocator backbone_alloc{profile.backbone_pool};
  AddressAllocator master{profile.regional_pool};
  BuildContext ctx{.isp = isp, .rng = rng, .alloc = &backbone_alloc,
                   .p2p_len = 30, .hop_cost_ms = 0.1,
                   .long_link_stretch = 2.6, .building_counter = {}};

  std::vector<const net::City*> anchors;
  anchors.reserve(profile.regions.size());
  for (const auto& spec : profile.regions) {
    const auto* city = net::find_city(spec.city, spec.state);
    RAN_EXPECTS(city != nullptr);
    anchors.push_back(city);
  }
  const auto region_cities = assign_cities_to_anchors(anchors);

  std::vector<RouterId> backbone_routers;  // one per region, for the mesh
  for (std::size_t r = 0; r < profile.regions.size(); ++r) {
    const auto& spec = profile.regions[r];
    const auto* anchor = anchors[r];

    Region region;
    region.name = net::clli6(*anchor);  // metro code, e.g. "sndgca"
    region.state_hint = spec.state;
    const RegionId region_id = isp.add_region(std::move(region));

    // Per-region address pool; sequential allocation clusters the region's
    // router addresses into a few /24s (Table 6).
    AddressAllocator region_alloc{master.alloc(16)};
    // Dedicated block for router interfaces so a region's routers cluster
    // into a handful of /24s (Table 6) regardless of lspgw/customer churn.
    AddressAllocator router_alloc{region_alloc.alloc(21)};
    ctx.alloc = &router_alloc;

    // BackboneCO: the single tandem building with two backbone routers.
    const CoId bb_co =
        make_co(ctx, region_id, CoRole::kBackbone, *anchor);
    isp.regions()[region_id].backbone_entries.push_back(bb_co);
    std::vector<RouterId> crs;
    for (int i = 0; i < 2; ++i) {
      const RouterId cr = make_router(ctx, bb_co, RouterRole::kBackbone,
                                      net::format("cr%d", i + 1));
      // Dedicated (12/8-style) peering interface, created first so it is
      // also the router's Mercator primary.
      Interface peering;
      peering.router = cr;
      peering.addr = backbone_alloc.alloc_addr();
      (void)isp.add_iface(peering);
      crs.push_back(cr);
    }
    // The two tandem routers interconnect inside the building.
    {
      const auto saved = ctx.alloc;
      ctx.alloc = &backbone_alloc;
      connect(ctx, crs[0], crs[1]);
      ctx.alloc = saved;
    }
    backbone_routers.push_back(crs.front());

    // Four AggCOs ("inter-office" COs), one aggregation router each; all
    // are MPLS P-routers hidden from ordinary traceroutes.
    std::vector<RouterId> aggs;
    for (int a = 0; a < profile.agg_cos; ++a) {
      const CoId agg_co =
          make_co(ctx, region_id, CoRole::kAgg, *anchor, /*agg_level=*/1);
      const RouterId agg = make_router(ctx, agg_co, RouterRole::kAgg,
                                       net::format("ag%d", a + 1));
      isp.router(agg).mpls_interior = true;
      aggs.push_back(agg);
    }
    // Full mesh backbone routers x aggregation routers (§6.2: "both appear
    // fully connected to all aggregation routers"). Allocate these first so
    // the aggregation-facing addresses form their own /24 (Table 6).
    for (const RouterId cr : crs)
      for (const RouterId agg : aggs) connect(ctx, cr, agg);
    // A shallow chain between aggregation routers carries intra-region
    // cross-subregion paths (Table 5 shows two consecutive AggCO hops).
    for (std::size_t a = 0; a + 1 < aggs.size(); ++a)
      connect(ctx, aggs[a], aggs[a + 1]);

    // EdgeCOs across the region's cities, two routers each, homed to an
    // aggregation-router pair; subregions alternate between pairs.
    const auto& cities = region_cities[r];
    for (int e = 0; e < spec.edge_cos; ++e) {
      const auto& city = *cities[static_cast<std::size_t>(e) % cities.size()];
      const CoId edge_co = make_co(ctx, region_id, CoRole::kEdge, city);
      const std::size_t pair = (static_cast<std::size_t>(e) % 2) * 2;
      std::vector<RouterId> edge_routers;
      for (int i = 0; i < profile.routers_per_edge_co; ++i) {
        const RouterId router = make_router(ctx, edge_co, RouterRole::kEdge,
                                            net::format("rur%d", i + 1));
        connect(ctx, router, aggs[pair % aggs.size()]);
        connect(ctx, router, aggs[(pair + 1) % aggs.size()]);
        // lspgw-facing LAN interface (the address seen from inside; Fig 20a
        // hop 3).
        Interface lan;
        lan.router = router;
        lan.addr = ctx.alloc->alloc_addr();
        const IfaceId lan_id = isp.add_iface(lan);
        isp.router(router).lan_iface = lan_id;
        edge_routers.push_back(router);
      }
      // IP-DSLAMs / ONTs, each homed to both EdgeCO routers (§6.2); their
      // gateway and customer addresses come from the general region pool.
      ctx.alloc = &region_alloc;
      for (int m = 0; m < profile.lspgw_per_edge_co; ++m)
        (void)make_last_mile(ctx, edge_co, edge_routers);
      ctx.alloc = &router_alloc;
    }
  }

  // National backbone mesh (ip.att.net, the 12/8-style space): ring plus
  // chords over the regions' BackboneCOs.
  ctx.alloc = &backbone_alloc;
  for (std::size_t i = 0; i + 1 < backbone_routers.size(); ++i)
    connect(ctx, backbone_routers[i], backbone_routers[i + 1]);
  if (backbone_routers.size() > 2)
    connect(ctx, backbone_routers.back(), backbone_routers.front());
  for (std::size_t i = 0; i + 2 < backbone_routers.size(); i += 2)
    connect(ctx, backbone_routers[i], backbone_routers[i + 2]);

  return isp;
}

TelcoProfile att_profile() {
  TelcoProfile p;
  p.name = "att";
  p.asn = 7018;
  p.backbone_pool = *net::IPv4Prefix::parse("12.0.0.0/12");
  p.regional_pool = *net::IPv4Prefix::parse("71.0.0.0/10");
  p.agg_cos = 4;
  p.routers_per_edge_co = 2;
  p.lspgw_per_edge_co = 8;
  // The paper found 37 regions identified in rDNS; San Diego (the §6 case
  // study) has 42 EdgeCOs, matching the historical tandem documents.
  p.regions = {
      {"san diego", "ca", 42},   {"los angeles", "ca", 55},
      {"san francisco", "ca", 40}, {"sacramento", "ca", 28},
      {"fresno", "ca", 22},      {"houston", "tx", 48},
      {"dallas", "tx", 52},      {"san antonio", "tx", 30},
      {"austin", "tx", 26},      {"el paso", "tx", 16},
      {"oklahoma city", "ok", 22}, {"tulsa", "ok", 16},
      {"kansas city", "mo", 26}, {"st louis", "mo", 30},
      {"chicago", "il", 58},     {"detroit", "mi", 40},
      {"cleveland", "oh", 30},   {"columbus", "oh", 26},
      {"indianapolis", "in", 26}, {"milwaukee", "wi", 24},
      {"nashville", "tn", 24},   {"memphis", "tn", 18},
      {"atlanta", "ga", 46},     {"miami", "fl", 40},
      {"jacksonville", "fl", 20}, {"new orleans", "la", 20},
      {"birmingham", "al", 18},  {"charlotte", "nc", 24},
      {"louisville", "ky", 18},  {"little rock", "ar", 14},
      {"jackson", "ms", 12},     {"phoenix", "az", 32},
      {"tucson", "az", 14},      {"albuquerque", "nm", 14},
      {"denver", "co", 30},      {"salt lake city", "ut", 20},
      {"seattle", "wa", 36},
  };
  return p;
}

}  // namespace ran::topo
