#include "mctraceroute.hpp"

#include <limits>

#include "netbase/contracts.hpp"
#include "netbase/strings.hpp"

namespace ran::vp {

std::vector<Hotspot> enumerate_hotspots(const sim::World& world,
                                        int isp_index, topo::RegionId region,
                                        const HotspotConfig& config,
                                        net::Rng& rng) {
  RAN_EXPECTS(config.restaurants > 0);
  const auto& isp = world.isp(isp_index);

  // Candidate neighbourhoods: around every EdgeCO of the region (fast-food
  // sites cluster where people live, i.e. where EdgeCOs are).
  std::vector<const topo::CentralOffice*> edges;
  for (const topo::CoId co_id : isp.region(region).cos)
    if (isp.co(co_id).role == topo::CoRole::kEdge)
      edges.push_back(&isp.co(co_id));
  RAN_EXPECTS(!edges.empty());

  std::vector<Hotspot> out;
  out.reserve(static_cast<std::size_t>(config.restaurants));
  for (int i = 0; i < config.restaurants; ++i) {
    const auto& co = *edges[static_cast<std::size_t>(i) % edges.size()];
    Hotspot spot;
    spot.name = net::format("restaurant-%02d-%s", i, co.clli.c_str());
    spot.location = {co.location.lat + rng.uniform_real(-0.04, 0.04),
                     co.location.lon + rng.uniform_real(-0.04, 0.04)};
    spot.on_target_isp = rng.chance(config.target_isp_share);
    if (spot.on_target_isp) {
      // Attach to a last-mile link of the nearest EdgeCO.
      double best_km = std::numeric_limits<double>::infinity();
      for (const auto& lm : isp.last_miles()) {
        if (isp.co(lm.edge_co).region != region) continue;
        const double km = net::haversine_km(lm.location, spot.location);
        if (km < best_km) {
          best_km = km;
          spot.last_mile = lm.id;
        }
      }
      if (spot.last_mile == topo::kInvalidId) spot.on_target_isp = false;
    }
    out.push_back(std::move(spot));
  }
  return out;
}

sim::ProbeSource hotspot_source(const sim::World& world, int isp_index,
                                const Hotspot& hotspot,
                                const HotspotConfig& config) {
  RAN_EXPECTS(hotspot.on_target_isp &&
              hotspot.last_mile != topo::kInvalidId);
  auto src = world.vantage_behind(isp_index, hotspot.last_mile);
  src.access_delay_ms += config.wifi_delay_ms;
  return src;
}

}  // namespace ran::vp
