// McTraceroute (§6.1): public WiFi hotspots of fast-food chains as
// geographically distributed internal vantage points.
//
// Restaurant sites are placed across a region's populated areas; each one
// buys consumer broadband from some ISP, and the fraction on the target
// ISP (23 of the 58 San Diego McDonald's used AT&T) become usable VPs,
// each attached to a last-mile link of the nearest EdgeCO.
#pragma once

#include <string>
#include <vector>

#include "netbase/rng.hpp"
#include "simnet/world.hpp"

namespace ran::vp {

struct Hotspot {
  std::string name;
  net::GeoPoint location;
  /// False when the restaurant's broadband comes from a different ISP.
  bool on_target_isp = false;
  topo::LastMileId last_mile = topo::kInvalidId;  ///< valid when usable
};

struct HotspotConfig {
  int restaurants = 58;
  /// Fraction of sites whose WiFi uplink is the target ISP (~23/58).
  double target_isp_share = 0.4;
  /// WiFi adds a little access latency on top of the wireline last mile.
  double wifi_delay_ms = 2.0;
};

/// Enumerates the chain's sites in a region and wires the usable ones to
/// last-mile links. Deterministic given the rng.
[[nodiscard]] std::vector<Hotspot> enumerate_hotspots(
    const sim::World& world, int isp_index, topo::RegionId region,
    const HotspotConfig& config, net::Rng& rng);

/// ProbeSource for a usable hotspot (WiFi + last-mile delay).
[[nodiscard]] sim::ProbeSource hotspot_source(const sim::World& world,
                                              int isp_index,
                                              const Hotspot& hotspot,
                                              const HotspotConfig& config);

}  // namespace ran::vp
